"""The case-study instrumentation library.

One module per case study, each packaging the paper's handler, the
instrumentation spec that drives it, and host-side result marshaling:

* :mod:`repro.handlers.opcode_histogram` — Figure 3's pedagogical
  dynamic-instruction categorizer.
* :mod:`repro.handlers.branch_profiler` — Case Study I (Figure 4):
  per-branch divergence statistics.
* :mod:`repro.handlers.memory_divergence` — Case Study II (Figure 6):
  warp-occupancy × address-divergence profiling.
* :mod:`repro.handlers.value_profiler` — Case Study III (Figure 9):
  constant-bit and scalar-value profiling.
* :mod:`repro.handlers.error_injection` — Case Study IV: profiling and
  architecture-level bit-flip injection.
* :mod:`repro.handlers.memtrace` — Section 9.4's "driving other
  simulators" extension: collect a memory trace for replay.
"""

from repro.handlers.opcode_histogram import OpcodeHistogram
from repro.handlers.branch_profiler import BranchProfiler
from repro.handlers.memory_divergence import MemoryDivergenceProfiler
from repro.handlers.value_profiler import ValueProfiler
from repro.handlers.error_injection import (
    ErrorInjectionCampaign,
    InjectionOutcome,
)
from repro.handlers.memtrace import MemoryTracer

__all__ = [
    "OpcodeHistogram",
    "BranchProfiler",
    "MemoryDivergenceProfiler",
    "ValueProfiler",
    "ErrorInjectionCampaign",
    "InjectionOutcome",
    "MemoryTracer",
]
