"""Figure 3: the pedagogical dynamic-instruction categorizer.

The paper's handler increments seven device counters per executing
thread: memory, extended memory (width > 4 bytes), control transfer,
synchronization, numeric, texture, and total.  Counters live in device
global memory and are marshalled by the CUPTI analog.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.sassi import SassiRuntime, spec_from_flags
from repro.sassi.cupti import CounterBuffer, CuptiSubscription
from repro.sassi.handlers import SASSIContext

CATEGORIES = (
    "memory",
    "extended_memory",
    "control_xfer",
    "sync",
    "numeric",
    "texture",
    "total_executed",
)


class OpcodeHistogram:
    """Attachable Figure 3 profiler.

    Usage::

        histogram = OpcodeHistogram(device)
        kernel = histogram.compile(kernel_ir)
        device.launch(kernel, grid, block, args)
        print(histogram.totals())
    """

    FLAGS = "-sassi-inst-before=all -sassi-before-args=mem-info"

    def __init__(self, device, per_kernel: bool = True,
                 vectorized: bool = True):
        self.device = device
        self.vectorized = vectorized
        self.cupti = CuptiSubscription(device)
        self.counters = CounterBuffer(self.cupti, len(CATEGORIES),
                                      per_kernel=per_kernel)
        self.runtime = SassiRuntime(device)
        self.runtime.register_before_handler(self.handler)
        self.spec = spec_from_flags(self.FLAGS)
        #: (fn_addr, ins_offset) -> tuple of counter slots to bump;
        #: the classification is static per site
        self._site_slots: Dict[tuple, tuple] = {}

    def compile(self, kernel_ir, cache=None):
        self._site_slots.clear()
        return self.runtime.compile(kernel_ir, self.spec, cache=cache)

    def handler(self, ctx: SASSIContext) -> None:
        if not self.vectorized:
            return self._handler_scalar(ctx)
        bp = ctx.bp
        # sampled firings stand in for sample_rate firings: the scaled
        # increment keeps the counters unbiased estimators (×1 when exact)
        threads = ctx.num_active * ctx.sample_rate
        key = (bp.GetFnAddr(), bp.GetInsOffset())
        slots = self._site_slots.get(key)
        if slots is None:
            slots = self._classify(bp, ctx.mp)
            self._site_slots[key] = slots
        for slot in slots:
            ctx.atomic_add(self.counters.element_ptr(slot), threads)

    @staticmethod
    def _classify(bp, mp) -> tuple:
        slots = []
        if bp.IsMem():
            slots.append(0)
            if mp is not None and mp.GetWidth() > 4:
                slots.append(1)
        if bp.IsControlXfer():
            slots.append(2)
        if bp.IsSync():
            slots.append(3)
        if bp.IsNumeric():
            slots.append(4)
        if bp.IsTexture():
            slots.append(5)
        slots.append(6)
        return tuple(slots)

    def _handler_scalar(self, ctx: SASSIContext) -> None:
        """Per-lane reference body (the differential baseline)."""
        threads = len(ctx.lanes()) * ctx.sample_rate
        bp, mp = ctx.bp, ctx.mp
        if bp.IsMem():
            ctx.atomic_add(self.counters.element_ptr(0), threads)
            if mp is not None and mp.GetWidth() > 4:
                ctx.atomic_add(self.counters.element_ptr(1), threads)
        if bp.IsControlXfer():
            ctx.atomic_add(self.counters.element_ptr(2), threads)
        if bp.IsSync():
            ctx.atomic_add(self.counters.element_ptr(3), threads)
        if bp.IsNumeric():
            ctx.atomic_add(self.counters.element_ptr(4), threads)
        if bp.IsTexture():
            ctx.atomic_add(self.counters.element_ptr(5), threads)
        ctx.atomic_add(self.counters.element_ptr(6), threads)

    def totals(self) -> Dict[str, int]:
        values = self.counters.final_totals()
        return {name: int(values[i]) for i, name in enumerate(CATEGORIES)}
