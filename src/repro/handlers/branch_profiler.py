"""Case Study I (Figure 4): per-branch divergence statistics.

For every conditional control transfer the handler records, in a
device-memory hash table keyed by the instruction's address: total
executions, active threads, taken threads, fall-through threads, and
divergent executions (both sides non-empty).  The host-side report
reproduces Table 1's static/dynamic divergence percentages and the
per-branch distributions of Figure 5.

Both a warp-level handler (the default, used by the studies) and a
thread-level transliteration of the paper's Figure 4 CUDA code are
provided; tests check they agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.sassi import SassiRuntime, spec_from_flags
from repro.sassi.cupti import CuptiSubscription, DeviceHashTable
from repro.sassi.handlers import SASSIContext
from repro.sassi.threadsimt import AtomicAdd, Ballot, ffs, popc

#: counter slots per branch
TOTAL, ACTIVE, TAKEN, NOT_TAKEN, DIVERGENT = range(5)


@dataclass
class BranchStats:
    """Host-side view of one branch's counters."""

    address: int
    total: int
    active_threads: int
    taken_threads: int
    not_taken_threads: int
    divergent: int

    @property
    def divergence_rate(self) -> float:
        return self.divergent / self.total if self.total else 0.0


@dataclass
class DivergenceSummary:
    """The Table 1 row for one application run."""

    static_branches: int
    static_divergent: int
    dynamic_branches: int
    dynamic_divergent: int

    @property
    def static_pct(self) -> float:
        return 100.0 * self.static_divergent / self.static_branches \
            if self.static_branches else 0.0

    @property
    def dynamic_pct(self) -> float:
        return 100.0 * self.dynamic_divergent / self.dynamic_branches \
            if self.dynamic_branches else 0.0


class BranchProfiler:
    """Attachable Case Study I profiler."""

    FLAGS = ("-sassi-inst-before=branches "
             "-sassi-before-args=cond-branch-info")

    def __init__(self, device, capacity: int = 2048,
                 kind: str = "warp", vectorized: bool = True):
        self.device = device
        self.vectorized = vectorized
        self.cupti = CuptiSubscription(device)
        self.table = DeviceHashTable(device, capacity=capacity,
                                     num_counters=5)
        self.runtime = SassiRuntime(device)
        handler = self.handler if kind == "warp" else self.thread_handler
        self.runtime.register_before_handler(handler, kind=kind)
        self.spec = spec_from_flags(self.FLAGS)

    def compile(self, kernel_ir, cache=None):
        return self.runtime.compile(kernel_ir, self.spec, cache=cache)

    # ------------------------------------------------------ warp level

    def handler(self, ctx: SASSIContext) -> None:
        if ctx.brp is None:
            return
        if not self.vectorized:
            return self._handler_scalar(ctx)
        # warp-wide fast lane: only taken-count needs a reduction — the
        # fall-through count is its complement over the active lanes
        direction = ctx.brp.GetDirection()
        num_active = ctx.num_active
        num_taken = int(np.count_nonzero(direction[ctx.lanes_idx]))
        num_not_taken = num_active - num_taken
        w = ctx.sample_rate
        counters = self.table.find(ctx, ctx.bp.GetInsAddr())
        ctx.atomic_add(self.table.counter_ptr(counters, TOTAL), w)
        ctx.atomic_add(self.table.counter_ptr(counters, ACTIVE),
                       num_active * w)
        ctx.atomic_add(self.table.counter_ptr(counters, TAKEN),
                       num_taken * w)
        ctx.atomic_add(self.table.counter_ptr(counters, NOT_TAKEN),
                       num_not_taken * w)
        if num_taken != num_active and num_not_taken != num_active:
            ctx.atomic_add(self.table.counter_ptr(counters, DIVERGENT), w)

    def _handler_scalar(self, ctx: SASSIContext) -> None:
        """Per-lane reference body (the differential baseline)."""
        direction = ctx.brp.GetDirection()
        active = ctx.mask
        taken = direction & active
        not_taken = ~direction & active
        num_active = int(active.sum())
        num_taken = int(taken.sum())
        num_not_taken = int(not_taken.sum())
        w = ctx.sample_rate
        counters = self.table.find(ctx, ctx.bp.GetInsAddr())
        ctx.atomic_add(self.table.counter_ptr(counters, TOTAL), w)
        ctx.atomic_add(self.table.counter_ptr(counters, ACTIVE),
                       num_active * w)
        ctx.atomic_add(self.table.counter_ptr(counters, TAKEN),
                       num_taken * w)
        ctx.atomic_add(self.table.counter_ptr(counters, NOT_TAKEN),
                       num_not_taken * w)
        if num_taken != num_active and num_not_taken != num_active:
            ctx.atomic_add(self.table.counter_ptr(counters, DIVERGENT), w)

    # ---------------------------------------------------- thread level

    def thread_handler(self, t):
        """The Figure 4 CUDA handler, transliterated per-thread."""
        direction = bool(t.brp.GetDirection())
        active = yield Ballot(1)
        taken = yield Ballot(direction)
        ntaken = yield Ballot(not direction)
        num_active = popc(active)
        num_taken, num_not_taken = popc(taken), popc(ntaken)
        if ffs(active) - 1 == t.lane_id:
            # we cannot call table.find() from a generator (it reads
            # device memory synchronously), so resolve via the warp ctx
            w = t.sample_rate
            counters = self.table.find(t._ctx, t.bp.GetInsAddr())
            yield AtomicAdd(self.table.counter_ptr(counters, TOTAL), w)
            yield AtomicAdd(self.table.counter_ptr(counters, ACTIVE),
                            num_active * w)
            yield AtomicAdd(self.table.counter_ptr(counters, TAKEN),
                            num_taken * w)
            yield AtomicAdd(self.table.counter_ptr(counters, NOT_TAKEN),
                            num_not_taken * w)
            if num_taken != num_active and num_not_taken != num_active:
                yield AtomicAdd(
                    self.table.counter_ptr(counters, DIVERGENT), w)

    # ----------------------------------------------------- host report

    def branches(self) -> List[BranchStats]:
        result = []
        for address, counters in self.table.items():
            result.append(BranchStats(
                address=address,
                total=int(counters[TOTAL]),
                active_threads=int(counters[ACTIVE]),
                taken_threads=int(counters[TAKEN]),
                not_taken_threads=int(counters[NOT_TAKEN]),
                divergent=int(counters[DIVERGENT]),
            ))
        return sorted(result, key=lambda b: -b.total)

    def summary(self) -> DivergenceSummary:
        branches = self.branches()
        return DivergenceSummary(
            static_branches=len(branches),
            static_divergent=sum(1 for b in branches if b.divergent),
            dynamic_branches=sum(b.total for b in branches),
            dynamic_divergent=sum(b.divergent for b in branches),
        )

    def clear(self) -> None:
        self.table.clear()
