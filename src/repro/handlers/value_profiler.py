"""Case Study III (Figure 9): value profiling.

After every register-writing instruction the handler tracks, per
destination register:

* ``constantOnes`` / ``constantZeros`` — bits that were 1 (resp. 0) in
  *every* value written, maintained with atomic ANDs as in the paper;
* ``isScalar`` — whether all active lanes always agreed on the value
  (the ``__shfl``/``__all`` leader-compare idiom).

Host-side reports reproduce Table 2's four columns (dynamic/static % of
constant bits and scalar writes) and the per-instruction dumps of
Section 7.2 (``R13* <- [0000...0001]``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.sassi import SassiRuntime, spec_from_flags
from repro.sassi.cupti import CuptiSubscription, DeviceHashTable
from repro.sassi.handlers import SASSIContext

#: hash-entry counter layout
WEIGHT = 0
NUM_DSTS = 1
_PER_DST = 4        # regNum, constantOnes, constantZeros, isScalar
MAX_DSTS = 4
NUM_COUNTERS = 2 + MAX_DSTS * _PER_DST


def _dst_slot(dst: int, field: int) -> int:
    return 2 + dst * _PER_DST + field


@dataclass
class InstructionValueProfile:
    """Host-side view of one instruction's value profile."""

    address: int
    weight: int
    dsts: List[Tuple[int, int, int, bool]]  # (reg, ones, zeros, scalar)

    def constant_bits(self, dst: int) -> int:
        """Number of bits constant across all dynamic values."""
        _, ones, zeros, _ = self.dsts[dst]
        return bin((ones | zeros) & 0xFFFFFFFF).count("1")

    def bit_pattern(self, dst: int) -> str:
        """The Section 7.2 dump format: 0/1 for constant bits, T for
        bits that toggled."""
        _, ones, zeros, _ = self.dsts[dst]
        chars = []
        for bit in range(31, -1, -1):
            mask = 1 << bit
            if ones & mask:
                chars.append("1")
            elif zeros & mask:
                chars.append("0")
            else:
                chars.append("T")
        return "".join(chars)


@dataclass
class ValueProfileSummary:
    """The Table 2 row: % constant bits and % scalar, dynamic & static."""

    dynamic_const_bits_pct: float
    dynamic_scalar_pct: float
    static_const_bits_pct: float
    static_scalar_pct: float


class ValueProfiler:
    """Attachable Case Study III profiler."""

    FLAGS = "-sassi-inst-after=reg-writes -sassi-after-args=reg-info"

    def __init__(self, device, capacity: int = 4096,
                 vectorized: bool = True):
        self.device = device
        self.vectorized = vectorized
        self.cupti = CuptiSubscription(device)
        self.table = DeviceHashTable(device, capacity=capacity,
                                     num_counters=NUM_COUNTERS)
        self.runtime = SassiRuntime(device)
        self.runtime.register_after_handler(self.handler)
        self.spec = spec_from_flags(self.FLAGS)

    def compile(self, kernel_ir, cache=None):
        return self.runtime.compile(kernel_ir, self.spec, cache=cache)

    def handler(self, ctx: SASSIContext) -> None:
        if ctx.rp is None:
            return
        num_dsts = ctx.rp.GetNumGPRDsts()
        if num_dsts == 0:
            return
        counters = self.table.find(ctx, ctx.bp.GetInsAddr())

        def ptr(index):
            return self.table.counter_ptr(counters, index)

        if ctx.read_device(ptr(WEIGHT), 8) == 0:
            # first touch: initialize the AND-accumulators
            ctx.write_device(ptr(NUM_DSTS), num_dsts, 8)
            for dst in range(num_dsts):
                ctx.write_device(ptr(_dst_slot(dst, 1)), 0xFFFFFFFF, 8)
                ctx.write_device(ptr(_dst_slot(dst, 2)), 0xFFFFFFFF, 8)
                ctx.write_device(ptr(_dst_slot(dst, 3)), 1, 8)
        # WEIGHT is the only additive counter here; the AND-accumulators
        # and the isScalar flag are idempotent and must not be scaled
        ctx.atomic_add(ptr(WEIGHT), ctx.sample_rate)

        if self.vectorized:
            # warp-wide fast lane: AND-reduce the active values and
            # compare against the leader in one vector pass per dst
            idx = ctx.lanes_idx
            for dst in range(num_dsts):
                values = ctx.rp.GetRegValue(dst)
                ctx.write_device(ptr(_dst_slot(dst, 0)),
                                 ctx.rp.GetRegNum(dst), 8)
                active = values[idx].astype(np.uint32, copy=False)
                if active.size:
                    combined_ones = int(np.bitwise_and.reduce(active))
                    combined_zeros = int(np.bitwise_and.reduce(~active))
                    all_same = bool((active == active[0]).all())
                else:
                    combined_ones = combined_zeros = 0xFFFFFFFF
                    all_same = True
                ctx.atomic_and(ptr(_dst_slot(dst, 1)), combined_ones,
                               width=8)
                ctx.atomic_and(ptr(_dst_slot(dst, 2)), combined_zeros,
                               width=8)
                if not all_same:
                    ctx.atomic_and(ptr(_dst_slot(dst, 3)), 0, width=8)
            return

        # per-lane reference body (the differential baseline)
        lanes = ctx.lanes()
        leader = ctx.leader()
        for dst in range(num_dsts):
            values = ctx.rp.GetRegValue(dst)
            ctx.write_device(ptr(_dst_slot(dst, 0)),
                             ctx.rp.GetRegNum(dst), 8)
            combined_ones = combined_zeros = 0xFFFFFFFF
            for lane in lanes:
                value = int(values[lane])
                combined_ones &= value
                combined_zeros &= ~value & 0xFFFFFFFF
            ctx.atomic_and(ptr(_dst_slot(dst, 1)), combined_ones, width=8)
            ctx.atomic_and(ptr(_dst_slot(dst, 2)), combined_zeros, width=8)
            leader_value = int(values[leader])
            all_same = all(int(values[lane]) == leader_value
                           for lane in lanes)
            if not all_same:
                ctx.atomic_and(ptr(_dst_slot(dst, 3)), 0, width=8)

    # ----------------------------------------------------- host report

    def profiles(self) -> List[InstructionValueProfile]:
        result = []
        for address, counters in self.table.items():
            num_dsts = int(counters[NUM_DSTS])
            dsts = []
            for dst in range(num_dsts):
                dsts.append((
                    int(counters[_dst_slot(dst, 0)]),
                    int(counters[_dst_slot(dst, 1)]) & 0xFFFFFFFF,
                    int(counters[_dst_slot(dst, 2)]) & 0xFFFFFFFF,
                    bool(counters[_dst_slot(dst, 3)]),
                ))
            result.append(InstructionValueProfile(
                address=address, weight=int(counters[WEIGHT]), dsts=dsts))
        return sorted(result, key=lambda p: p.address)

    def summary(self) -> ValueProfileSummary:
        profiles = [p for p in self.profiles() if p.dsts]
        if not profiles:
            return ValueProfileSummary(0.0, 0.0, 0.0, 0.0)
        static_bits = static_scalar = 0.0
        dynamic_bits = dynamic_scalar = 0.0
        static_n = dynamic_n = 0
        for profile in profiles:
            for dst in range(len(profile.dsts)):
                const_fraction = profile.constant_bits(dst) / 32.0
                scalar = 1.0 if profile.dsts[dst][3] else 0.0
                static_bits += const_fraction
                static_scalar += scalar
                static_n += 1
                dynamic_bits += const_fraction * profile.weight
                dynamic_scalar += scalar * profile.weight
                dynamic_n += profile.weight
        return ValueProfileSummary(
            dynamic_const_bits_pct=100.0 * dynamic_bits / dynamic_n,
            dynamic_scalar_pct=100.0 * dynamic_scalar / dynamic_n,
            static_const_bits_pct=100.0 * static_bits / static_n,
            static_scalar_pct=100.0 * static_scalar / static_n,
        )

    def dump(self, profile: InstructionValueProfile) -> str:
        """The Section 7.2 per-instruction dump format."""
        lines = []
        for dst in range(len(profile.dsts)):
            reg, _, _, scalar = profile.dsts[dst]
            star = "*" if scalar else ""
            lines.append(f"R{reg}{star} <- [{profile.bit_pattern(dst)}]")
        return "\n".join(lines)
