"""Section 9.4 extension: memory-trace collection for driving other
simulators.

"SASSI can collect low-level traces of device-side events, which can
then be processed by separate tools.  For instance, a memory trace
collected by SASSI can be used to drive a memory hierarchy simulator."

The tracer records, per warp memory access: the instruction address, the
access kind, and the coalesced 32-byte line addresses.  The
``examples/memtrace_cachesim.py`` example replays such a trace through
the :mod:`repro.sim.cache` models offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.sassi import SassiRuntime, spec_from_flags
from repro.sassi.handlers import SASSIContext
from repro.sim.coalescer import OFFSET_BITS
from repro.sim.memory import is_global


@dataclass(frozen=True)
class TraceRecord:
    """One warp-level memory access."""

    ins_addr: int
    is_load: bool
    line_addresses: Tuple[int, ...]
    active_lanes: int


class MemoryTracer:
    """Attachable trace collector (host-side buffer, as a CPU-side
    trace consumer per the paper's heterogeneous-instrumentation
    prototype)."""

    FLAGS = "-sassi-inst-before=memory -sassi-before-args=mem-info"

    def __init__(self, device, global_only: bool = True):
        self.device = device
        self.global_only = global_only
        self.trace: List[TraceRecord] = []
        self.runtime = SassiRuntime(device)
        self.runtime.register_before_handler(self.handler)
        self.spec = spec_from_flags(self.FLAGS)

    def compile(self, kernel_ir, cache=None):
        return self.runtime.compile(kernel_ir, self.spec, cache=cache)

    def handler(self, ctx: SASSIContext) -> None:
        if ctx.mp is None:
            return
        will_execute = ctx.bp.GetInstrWillExecute()
        addresses = ctx.mp.GetAddress()
        lanes = [lane for lane in ctx.lanes() if will_execute[lane]]
        if self.global_only:
            lanes = [lane for lane in lanes
                     if is_global(int(addresses[lane]),
                                  self.device.heap_bytes)]
        if not lanes:
            return
        lines = []
        seen = set()
        for lane in lanes:
            line = (int(addresses[lane]) >> OFFSET_BITS) << OFFSET_BITS
            if line not in seen:
                seen.add(line)
                lines.append(line)
        self.trace.append(TraceRecord(
            ins_addr=ctx.bp.GetInsAddr(),
            is_load=ctx.mp.IsLoad(),
            line_addresses=tuple(lines),
            active_lanes=len(lanes),
        ))

    def replay_through(self, cache) -> None:
        """Feed the collected line addresses to a cache model."""
        for record in self.trace:
            for line in record.line_addresses:
                cache.access(line)
