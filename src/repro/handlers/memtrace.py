"""Section 9.4 extension: memory-trace collection for driving other
simulators.

"SASSI can collect low-level traces of device-side events, which can
then be processed by separate tools.  For instance, a memory trace
collected by SASSI can be used to drive a memory hierarchy simulator."

The tracer streams, per warp memory access: the instruction address,
the access kind, and the coalesced 32-byte line addresses.  Records go
straight to a :class:`~repro.trace.io.TraceWriter` (bounded host
memory, any trace length), so the resulting ``.rptrace`` file can also
be fed to ``repro replay`` / :func:`repro.trace.replay`.  The
``examples/memtrace_cachesim.py`` example replays such a trace through
the :mod:`repro.sim.cache` models offline.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.sassi import SassiRuntime, spec_from_flags
from repro.sassi.handlers import SASSIContext
from repro.sim.coalescer import OFFSET_BITS
from repro.sim.memory import GLOBAL_BASE, is_global
from repro.trace.format import (
    KernelEndEvent,
    LaunchEvent,
    MEM_FLAG_ATOMIC,
    MEM_FLAG_LOAD,
    MEM_FLAG_STORE,
    MemEvent,
)
from repro.trace.index import index_path_for
from repro.trace.io import TraceReader, TraceWriter


@dataclass(frozen=True)
class TraceRecord:
    """One warp-level memory access (host-side view of a
    :class:`~repro.trace.format.MemEvent`)."""

    ins_addr: int
    is_load: bool
    line_addresses: Tuple[int, ...]
    active_lanes: int


class MemoryTracer:
    """Attachable trace collector (streaming to disk, as a CPU-side
    trace consumer per the paper's heterogeneous-instrumentation
    prototype).

    Pass *path* to keep the ``.rptrace`` file; otherwise records stream
    to an unlinked-on-collection temp file.  Iterate with
    :meth:`records` (constant memory) or replay directly with
    :meth:`replay_through`.  Memory events are framed by kernel-launch
    records (the CUPTI-analog callbacks), so the trace is seekable and
    shardable like any capture-produced trace.
    """

    FLAGS = "-sassi-inst-before=memory -sassi-before-args=mem-info"

    def __init__(self, device, global_only: bool = True,
                 path: Optional[str] = None,
                 buffer_bytes: int = 256 * 1024,
                 vectorized: bool = True):
        self.device = device
        self.global_only = global_only
        self.vectorized = vectorized
        if path is None:
            fd, path = tempfile.mkstemp(suffix=".rptrace",
                                        prefix="memtrace-")
            os.close(fd)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self._writer: Optional[TraceWriter] = TraceWriter(
            path, buffer_bytes=buffer_bytes)
        self._manifest = None
        self._launch_index = 0
        device.on_kernel_launch(self._on_launch)
        device.on_kernel_exit(self._on_exit)
        #: sampling-weighted event count: each recorded event adds its
        #: firing's sample rate, so under 1/N sampling this remains an
        #: unbiased estimate of the exact event count (trace events
        #: themselves are never scaled — the format is per-access).
        self.weighted_events = 0
        self.runtime = SassiRuntime(device)
        self.runtime.register_before_handler(self.handler)
        self.spec = spec_from_flags(self.FLAGS)

    def compile(self, kernel_ir, cache=None):
        return self.runtime.compile(kernel_ir, self.spec, cache=cache)

    # -------------------------------------------------------- framing

    def _on_launch(self, device, kernel, grid, block) -> None:
        if self._writer is not None:
            self._writer.write(LaunchEvent(
                kernel=kernel.name,
                grid=(grid.x, grid.y, grid.z),
                block=(block.x, block.y, block.z),
                launch_index=self._launch_index))
            self._launch_index += 1

    def _on_exit(self, device, kernel, stats) -> None:
        if self._writer is not None:
            self._writer.write(KernelEndEvent(
                warp_instructions=stats.warp_instructions))

    def handler(self, ctx: SASSIContext) -> None:
        if ctx.mp is None:
            return
        if not self.vectorized:
            return self._handler_scalar(ctx)
        # warp-wide fast lane: vector lane filter plus first-occurrence-
        # ordered unique lines (identical bytes to the seen-set loop)
        idx = ctx.lanes_idx
        addresses = ctx.mp.GetAddress()[idx]
        keep = ctx.bp.GetInstrWillExecute()[idx].astype(bool, copy=False)
        if self.global_only:
            heap_top = GLOBAL_BASE + self.device.heap_bytes
            keep &= (addresses >= GLOBAL_BASE) & (addresses < heap_top)
        num_lanes = int(np.count_nonzero(keep))
        if not num_lanes:
            return
        line_vals = (addresses[keep] >> OFFSET_BITS) << OFFSET_BITS
        _, first = np.unique(line_vals, return_index=True)
        lines = tuple(int(line_vals[i]) for i in np.sort(first))
        mp = ctx.mp
        flags = 0
        if mp.IsLoad():
            flags |= MEM_FLAG_LOAD
        if mp.IsStore():
            flags |= MEM_FLAG_STORE
        if mp.IsAtomic():
            flags |= MEM_FLAG_ATOMIC
        self.weighted_events += ctx.sample_rate
        self._writer.write(MemEvent(
            ins_addr=ctx.bp.GetInsAddr(),
            flags=flags,
            width=mp.GetWidth(),
            active_lanes=num_lanes,
            line_addresses=lines,
        ))

    def _handler_scalar(self, ctx: SASSIContext) -> None:
        """Per-lane reference body (the differential baseline)."""
        will_execute = ctx.bp.GetInstrWillExecute()
        addresses = ctx.mp.GetAddress()
        lanes = [lane for lane in ctx.lanes() if will_execute[lane]]
        if self.global_only:
            lanes = [lane for lane in lanes
                     if is_global(int(addresses[lane]),
                                  self.device.heap_bytes)]
        if not lanes:
            return
        lines = []
        seen = set()
        for lane in lanes:
            line = (int(addresses[lane]) >> OFFSET_BITS) << OFFSET_BITS
            if line not in seen:
                seen.add(line)
                lines.append(line)
        mp = ctx.mp
        flags = 0
        if mp.IsLoad():
            flags |= MEM_FLAG_LOAD
        if mp.IsStore():
            flags |= MEM_FLAG_STORE
        if mp.IsAtomic():
            flags |= MEM_FLAG_ATOMIC
        self.weighted_events += ctx.sample_rate
        self._writer.write(MemEvent(
            ins_addr=ctx.bp.GetInsAddr(),
            flags=flags,
            width=mp.GetWidth(),
            active_lanes=len(lanes),
            line_addresses=tuple(lines),
        ))

    # ------------------------------------------------------- host side

    def flush(self):
        """Finalize the trace file (idempotent).  Returns the
        :class:`~repro.trace.format.TraceManifest`.  Recording more
        accesses after this raises."""
        if self._writer is not None:
            self._manifest = self._writer.close()
            self._writer = None
        return self._manifest

    def records(self) -> Iterator[TraceRecord]:
        """Stream the collected accesses back (constant memory)."""
        self.flush()
        for event in TraceReader(self.path).events():
            if isinstance(event, MemEvent):
                yield TraceRecord(
                    ins_addr=event.ins_addr,
                    is_load=event.is_load,
                    line_addresses=event.line_addresses,
                    active_lanes=event.active_lanes,
                )

    def replay_through(self, cache) -> None:
        """Feed the collected line addresses to a cache model, flushing
        its contents at every kernel-launch frame — the same
        launch-boundary semantics as the ``cachesim`` replay analysis,
        so both grade a multi-launch trace identically."""
        self.flush()
        for event in TraceReader(self.path).events():
            if isinstance(event, MemEvent):
                for line in event.line_addresses:
                    cache.access(line)
            elif isinstance(event, LaunchEvent):
                cache.invalidate()

    def close(self) -> None:
        """Finalize, and remove the backing file (and its index
        sidecar) if we created them."""
        self.flush()
        if self._owns_file:
            for path in (self.path, index_path_for(self.path)):
                if os.path.exists(path):
                    os.unlink(path)
            self._owns_file = False

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
