"""Case Study II (Figure 6): memory-address-divergence profiling.

The handler filters out predicated-off lanes and non-global addresses,
computes each lane's 32-byte cache-line address, counts the unique lines
across the warp, and tallies a 32×32 (active-threads × unique-lines)
matrix of counters in device memory — the data behind the paper's
Figure 7 PMFs and Figure 8 heat maps.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sassi import SassiRuntime, spec_from_flags
from repro.sassi.cupti import CounterBuffer, CuptiSubscription
from repro.sassi.handlers import SASSIContext
from repro.sim.coalescer import OFFSET_BITS
from repro.sim.memory import GLOBAL_BASE, is_global


class MemoryDivergenceProfiler:
    """Attachable Case Study II profiler."""

    FLAGS = "-sassi-inst-before=memory -sassi-before-args=mem-info"

    def __init__(self, device, per_kernel: bool = False,
                 vectorized: bool = True):
        self.device = device
        self.vectorized = vectorized
        self.cupti = CuptiSubscription(device)
        #: row = active threads - 1, column = unique lines - 1
        self.counters = CounterBuffer(self.cupti, 32 * 32,
                                      per_kernel=per_kernel)
        self.runtime = SassiRuntime(device)
        self.runtime.register_before_handler(self.handler)
        self.spec = spec_from_flags(self.FLAGS)

    def compile(self, kernel_ir, cache=None):
        return self.runtime.compile(kernel_ir, self.spec, cache=cache)

    def handler(self, ctx: SASSIContext) -> None:
        if ctx.mp is None:
            return
        if not self.vectorized:
            return self._handler_scalar(ctx)
        # warp-wide fast lane: lane filter and unique-line count as
        # array reductions over the active rows
        idx = ctx.lanes_idx
        addresses = ctx.mp.GetAddress()[idx]
        keep = ctx.bp.GetInstrWillExecute()[idx].astype(bool, copy=False)
        heap_top = GLOBAL_BASE + self.device.heap_bytes
        keep &= (addresses >= GLOBAL_BASE) & (addresses < heap_top)
        num_active = int(np.count_nonzero(keep))
        if not num_active:
            return
        unique = int(np.unique(addresses[keep] >> OFFSET_BITS).size)
        index = (num_active - 1) * 32 + min(unique, 32) - 1
        ctx.atomic_add(self.counters.element_ptr(index), ctx.sample_rate)

    def _handler_scalar(self, ctx: SASSIContext) -> None:
        """Per-lane reference body (the differential baseline)."""
        will_execute = ctx.bp.GetInstrWillExecute()
        addresses = ctx.mp.GetAddress()
        participating = [
            lane for lane in ctx.lanes()
            if will_execute[lane] and is_global(int(addresses[lane]),
                                                self.device.heap_bytes)
        ]
        if not participating:
            return
        lines = {int(addresses[lane]) >> OFFSET_BITS
                 for lane in participating}
        num_active = len(participating)
        unique = len(lines)
        index = (num_active - 1) * 32 + min(unique, 32) - 1
        ctx.atomic_add(self.counters.element_ptr(index), ctx.sample_rate)

    # ----------------------------------------------------- host report

    def matrix(self) -> np.ndarray:
        """The 32×32 occupancy × divergence matrix (Figure 8)."""
        return self.counters.final_totals().reshape(32, 32)

    def pmf(self) -> np.ndarray:
        """Fraction of *thread-level* accesses issued from warps
        requesting N unique lines, N = 1..32 (Figure 7).

        Each warp access is weighted by its active-thread count, matching
        the paper's "percentage of thread-level memory accesses"."""
        matrix = self.matrix().astype(np.float64)
        occupancy = np.arange(1, 33, dtype=np.float64)[:, None]
        weighted = matrix * occupancy
        total = weighted.sum()
        if total == 0:
            return np.zeros(32)
        return weighted.sum(axis=0) / total

    def diverged_fraction(self) -> float:
        """Fraction of warp memory accesses touching more than one line."""
        matrix = self.matrix()
        total = matrix.sum()
        return float(matrix[:, 1:].sum() / total) if total else 0.0

    def fully_diverged_fraction(self) -> float:
        pmf = self.pmf()
        return float(pmf[31])
