"""Case Study IV: architecture-level error injection (paper Section 8).

An architecture-level error is a single bit flip in a destination of one
dynamic instruction of one thread.  The campaign follows the paper's
three steps:

1. **profile** — an instrumented run counts the eligible dynamic events
   (instructions that are not predicated off and either write a register
   or write memory);
2. **select** — sites are drawn uniformly at random from the event space
   (the paper samples 1 000 per application);
3. **inject** — each injection run re-executes the application with an
   after-handler that flips one random bit of one random destination of
   the selected dynamic event (via SASSI register write-back, or a
   direct memory/predicate poke for stores and predicate writers), then
   the run is monitored for crashes (device faults), hangs (watchdog),
   and output corruption against a golden run.

Outcome taxonomy mirrors Figure 10: masked; crash; hang; failure
symptom (the run completed but produced non-finite values — the analog
of error messages on stderr); potential SDCs split into stdout-only
(digest differs, output file matches) and output-file corruption.
"""

from __future__ import annotations

import enum
import os
import tempfile
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.campaign.compile_cache import CACHE_DIR_ENV, CompileCache, \
    get_cache
from repro.campaign.engine import run_tasks, trial_rng
from repro.sassi import SassiRuntime, spec_from_flags
from repro.sassi.cupti import CounterBuffer, CuptiSubscription
from repro.sassi.handlers import SASSIContext
from repro.sim import Device, DeviceFault, HangDetected
from repro.sim.memory import GLOBAL_BASE, is_global

PROFILE_FLAGS = ("-sassi-inst-after=reg-writes,memory "
                 "-sassi-after-args=reg-info,mem-info")
INJECT_FLAGS = ("-sassi-inst-after=reg-writes,memory "
                "-sassi-after-args=reg-info,mem-info "
                "-sassi-writeback-regs")
#: injection plus a full before-site trace capture in the same run.
#: The extra before sites never change the after-site event numbering
#: (after sites exclude control transfers and marshal the same frames),
#: so traced trials hit the identical injection site as untraced ones.
TRACED_INJECT_FLAGS = ("-sassi-inst-before=all "
                       "-sassi-before-args=mem-info,cond-branch-info "
                       + INJECT_FLAGS)


def default_trace_dir(workload_name: str) -> str:
    """Per-workload sidecar directory under the campaign cache layout
    (``$REPRO_CACHE_DIR/traces/<workload>`` when the cache dir is set)."""
    root = os.environ.get(CACHE_DIR_ENV) or os.path.join(
        tempfile.gettempdir(), "repro-cache")
    safe = "".join(c if c.isalnum() or c in "-_." else "_"
                   for c in workload_name)
    return os.path.join(root, "traces", safe)


class InjectionOutcome(enum.Enum):
    MASKED = "masked"
    CRASH = "crash"
    HANG = "hang"
    FAILURE_SYMPTOM = "failure_symptom"
    SDC_STDOUT = "stdout_only_different"
    SDC_OUTPUT = "output_file_different"


@dataclass
class InjectionRecord:
    """One injection's site and outcome."""

    target_event: int
    outcome: InjectionOutcome
    flipped_bit: int
    description: str = ""


class _EventCounterHandler:
    """Profiling-phase handler: counts eligible dynamic events."""

    def __init__(self, counters: CounterBuffer):
        self.counters = counters

    def __call__(self, ctx: SASSIContext) -> None:
        will_execute = ctx.bp.GetInstrWillExecute()
        eligible = sum(1 for lane in ctx.lanes() if will_execute[lane])
        if eligible and (_has_reg_dst(ctx) or _is_store(ctx)):
            ctx.atomic_add(self.counters.element_ptr(0), eligible)


def _has_reg_dst(ctx: SASSIContext) -> bool:
    return ctx.rp is not None and ctx.rp.GetNumGPRDsts() > 0


def _is_store(ctx: SASSIContext) -> bool:
    return ctx.mp is not None and ctx.mp.IsStore()


class _InjectionHandler:
    """Injection-phase handler: flips one bit at the target event."""

    def __init__(self, counters: CounterBuffer, target_event: int,
                 dst_seed: int, bit_seed: int):
        self.counters = counters
        self.target_event = target_event
        self.dst_seed = dst_seed
        self.bit_seed = bit_seed
        self.injected: Optional[str] = None

    def __call__(self, ctx: SASSIContext) -> None:
        will_execute = ctx.bp.GetInstrWillExecute()
        eligible = [lane for lane in ctx.lanes() if will_execute[lane]]
        if not eligible or not (_has_reg_dst(ctx) or _is_store(ctx)):
            return
        count_ptr = self.counters.element_ptr(0)
        seen = ctx.read_device(count_ptr, 8)
        ctx.write_device(count_ptr, seen + len(eligible), 8)
        if self.injected is not None:
            return
        if not seen <= self.target_event < seen + len(eligible):
            return
        lane = eligible[self.target_event - seen]
        self._inject(ctx, lane)

    def _inject(self, ctx: SASSIContext, lane: int) -> None:
        bit = self.bit_seed % 32
        if _has_reg_dst(ctx):
            dst = self.dst_seed % ctx.rp.GetNumGPRDsts()
            old = int(ctx.rp.GetRegValue(dst)[lane])
            ctx.rp.SetRegValue(dst, lane, old ^ (1 << bit))
            self.injected = (f"reg R{ctx.rp.GetRegNum(dst)} bit {bit} "
                             f"lane {lane}")
            return
        # store: flip the bit in the freshly written memory location
        address = int(ctx.mp.GetAddress()[lane])
        width = max(1, ctx.mp.GetWidth())
        if is_global(address, ctx.device.heap_bytes):
            bit = self.bit_seed % (8 * width)
            offset = address - GLOBAL_BASE
            old = ctx.device.global_mem.read(offset, width)
            ctx.device.global_mem.write(offset, width, old ^ (1 << bit))
            self.injected = f"memory 0x{address:x} bit {bit} lane {lane}"


@dataclass
class CampaignResult:
    """Figure 10 for one application."""

    workload: str
    records: List[InjectionRecord] = field(default_factory=list)

    def outcome_counts(self) -> Counter:
        return Counter(r.outcome for r in self.records)

    def fractions(self) -> Dict[InjectionOutcome, float]:
        counts = self.outcome_counts()
        total = len(self.records) or 1
        return {outcome: counts.get(outcome, 0) / total
                for outcome in InjectionOutcome}


class ErrorInjectionCampaign:
    """Runs a full injection campaign against one workload.

    *workload* follows the :class:`repro.workloads.base.Workload`
    protocol (``build_ir`` and ``execute(device, kernel) -> np.ndarray``).

    *workload_name* is the registry key; it is what lets ``run(jobs=N)``
    fan trials out to worker processes (each worker re-instantiates the
    workload by name).  Trial *k* always draws from
    ``trial_rng(seed, k)``, so the outcome of one trial never depends on
    how many trials ran before it, in which process, or in what order.
    """

    def __init__(self, workload, num_injections: int = 100,
                 seed: int = 2015, workload_name: Optional[str] = None,
                 use_cache: bool = True,
                 trace_dir: Optional[str] = None,
                 cache: Optional[CompileCache] = None,
                 on_device: Optional[Callable] = None):
        self.workload = workload
        self.num_injections = num_injections
        self.seed = seed
        self.workload_name = workload_name
        self.use_cache = use_cache
        #: explicit cache override (e.g. a per-tenant namespaced view);
        #: None falls back to the process-wide cache when use_cache
        self.cache = cache
        #: called with every fresh Device this campaign creates — the
        #: server's job layer hooks per-trial KernelStats through this
        self.on_device = on_device
        #: when set, every trial writes a full event-trace sidecar to
        #: ``<trace_dir>/seed<seed>-trial<index>.rptrace`` (see
        #: ``repro trace-diff`` for comparing them across seeds)
        self.trace_dir = trace_dir
        self._golden: Optional[np.ndarray] = None
        self.total_events = 0

    @property
    def _cache(self) -> Optional[CompileCache]:
        if not self.use_cache:
            return None
        return self.cache if self.cache is not None else get_cache()

    def _new_device(self) -> Device:
        device = Device()
        if self.on_device is not None:
            self.on_device(device)
        return device

    # ------------------------------------------------------------ steps

    def golden_run(self) -> np.ndarray:
        from repro.backend import ptxas
        from repro.campaign.compile_cache import cached_ptxas

        device = self._new_device()
        ir = self.workload.build_ir()
        kernel = cached_ptxas(ir, cache=self._cache) \
            if self.use_cache else ptxas(ir)
        self._golden = self.workload.execute(device, kernel)
        return self._golden

    def profile(self) -> int:
        """Step 1: count the eligible dynamic events."""
        device = self._new_device()
        cupti = CuptiSubscription(device)
        counters = CounterBuffer(cupti, 1, per_kernel=False)
        runtime = SassiRuntime(device, poison_caller_saved=False)
        runtime.register_after_handler(_EventCounterHandler(counters))
        kernel = runtime.compile(self.workload.build_ir(),
                                 spec_from_flags(PROFILE_FLAGS),
                                 cache=self._cache)
        self.workload.execute(device, kernel)
        self.total_events = int(counters.final_totals()[0])
        return self.total_events

    def inject_once(self, target_event: int, dst_seed: int,
                    bit_seed: int,
                    trace_path: Optional[str] = None) -> InjectionRecord:
        """Step 3: one injection run, classified against the golden.

        With *trace_path*, the run also streams a full event-trace
        sidecar (before-site capture piggybacked on the injection
        runtime).  The writer is finalized even when the trial crashes
        or hangs, so every sidecar is a valid, diffable ``.rptrace``
        covering everything up to the fault.
        """
        if self._golden is None:
            self.golden_run()
        device = self._new_device()
        cupti = CuptiSubscription(device)
        counters = CounterBuffer(cupti, 1, per_kernel=False)
        handler = _InjectionHandler(counters, target_event, dst_seed,
                                    bit_seed)
        runtime = SassiRuntime(device, poison_caller_saved=False)
        runtime.register_after_handler(handler)
        writer = None
        if trace_path is not None:
            from repro.trace.capture import TraceRecorder
            from repro.trace.io import TraceWriter

            writer = TraceWriter(trace_path)
            TraceRecorder(device, writer, runtime=runtime)
            flags = TRACED_INJECT_FLAGS
        else:
            flags = INJECT_FLAGS
        kernel = runtime.compile(self.workload.build_ir(),
                                 spec_from_flags(flags),
                                 cache=self._cache)
        try:
            output = self.workload.execute(device, kernel)
        except HangDetected:
            return InjectionRecord(target_event, InjectionOutcome.HANG,
                                   bit_seed % 32, handler.injected or "")
        except DeviceFault:
            return InjectionRecord(target_event, InjectionOutcome.CRASH,
                                   bit_seed % 32, handler.injected or "")
        finally:
            if writer is not None:
                writer.close()
        outcome = self._classify(output)
        return InjectionRecord(target_event, outcome, bit_seed % 32,
                               handler.injected or "")

    def _classify(self, output: np.ndarray) -> InjectionOutcome:
        """Outcome taxonomy per the paper's Section 8.

        The benchmarks write their results as formatted text, so the
        *output file* comparison tolerates sub-print-precision float
        perturbations (rtol 1e-3); the *stdout* digest (the checksum the
        apps print) is more sensitive (rtol 1e-6 on the running sum).
        Integer outputs compare exactly.
        """
        golden = self._golden
        if output.dtype.kind == "f" and not np.isfinite(output).all():
            return InjectionOutcome.FAILURE_SYMPTOM
        if output.shape != golden.shape:
            return InjectionOutcome.SDC_OUTPUT
        if output.dtype.kind == "f":
            file_matches = bool(np.allclose(output, golden,
                                            rtol=1e-3, atol=1e-5,
                                            equal_nan=True))
        else:
            file_matches = bool((output == golden).all())
        with np.errstate(all="ignore"):
            digest_matches = bool(np.isclose(
                self._digest(output), self._digest(golden),
                rtol=1e-6, atol=1e-9))
        if file_matches and digest_matches:
            return InjectionOutcome.MASKED
        if file_matches:
            return InjectionOutcome.SDC_STDOUT
        return InjectionOutcome.SDC_OUTPUT

    def _digest(self, output: np.ndarray) -> float:
        digest = getattr(self.workload, "digest", None)
        if digest is not None:
            return digest(output)
        with np.errstate(all="ignore"):
            return float(np.asarray(output, dtype=np.float64).sum())

    # ------------------------------------------------------------ drive

    def trial(self, index: int) -> InjectionRecord:
        """Trial *index*: pick a site from ``trial_rng(seed, index)`` and
        inject.  Self-contained — does not advance any campaign state —
        so serial loops and worker processes produce identical records.
        """
        if self.total_events == 0:
            self.profile()
        rng = trial_rng(self.seed, index)
        target = int(rng.integers(0, self.total_events))
        dst_seed = int(rng.integers(0, 1 << 16))
        bit_seed = int(rng.integers(0, 1 << 16))
        return self.inject_once(target, dst_seed, bit_seed,
                                trace_path=self.trial_trace_path(index))

    def trial_trace_path(self, index: int) -> Optional[str]:
        if self.trace_dir is None:
            return None
        return os.path.join(self.trace_dir,
                            f"seed{self.seed}-trial{index:05d}.rptrace")

    def run(self, num_injections: Optional[int] = None,
            jobs: int = 1) -> CampaignResult:
        count = num_injections or self.num_injections
        self.golden_run()
        total = self.profile()
        result = CampaignResult(workload=getattr(self.workload, "name",
                                                 "workload"))
        if total == 0:
            return result
        if self.trace_dir is not None:
            os.makedirs(self.trace_dir, exist_ok=True)
        if jobs > 1 and self.workload_name:
            tasks = [(self.workload_name, self.seed, k, self.use_cache,
                      self.trace_dir)
                     for k in range(count)]
            chunk = max(1, count // (4 * jobs))
            result.records.extend(
                run_tasks(_campaign_trial, tasks, jobs=jobs,
                          chunksize=chunk))
        else:
            result.records.extend(self.trial(k) for k in range(count))
        return result


# --------------------------------------------------------------- workers
#
# Per-process campaign memo: a worker pays for the golden run and the
# event-count profile once per (workload, cache mode) and then serves
# every trial chunk it is handed from warm state.

_WORKER_CAMPAIGNS: Dict[tuple, "ErrorInjectionCampaign"] = {}


def _campaign_trial(task) -> InjectionRecord:
    # older callers may still ship 4-tuples without a trace_dir
    workload_name, seed, index, use_cache = task[:4]
    trace_dir = task[4] if len(task) > 4 else None
    key = (workload_name, use_cache)
    campaign = _WORKER_CAMPAIGNS.get(key)
    if campaign is None:
        from repro.workloads import make

        campaign = ErrorInjectionCampaign(make(workload_name), seed=seed,
                                          workload_name=workload_name,
                                          use_cache=use_cache)
        campaign.golden_run()
        campaign.profile()
        _WORKER_CAMPAIGNS[key] = campaign
    campaign.seed = seed
    campaign.trace_dir = trace_dir
    return campaign.trial(index)
