"""Byte-addressed memory spaces and the device address map.

The simulated GPU exposes one 64-bit *generic* address space carved into
windows, as on real hardware:

===================  ==========================  =========================
window               range                        resolves to
===================  ==========================  =========================
global heap          ``[0x1000_0000, +heap)``    the device-wide heap
shared window        ``[0x0100_0000, +48 KiB)``  the executing CTA's SMEM
local window         ``[0x4000_0000, +stack)``   the executing *thread's*
                                                 local memory (thread-
                                                 indexed, like the
                                                 hardware local window)
===================  ==========================  =========================

``LDS/STS`` and ``LDL/STL`` use 32-bit offsets relative to the start of
their space; generic ``LD/ST`` take full generic addresses and dispatch by
window — which is how SASSI's injected code passes stack-allocated
parameter objects to handlers by generic pointer (paper Figure 2, step 4:
``LOP.OR R4, R1, c[0x0][0x24]`` forms a generic pointer from the local
stack pointer).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.sim.errors import DeviceFault

#: Generic-window bases (see module docstring).
GLOBAL_BASE = 0x1000_0000
SHARED_BASE = 0x0100_0000
LOCAL_BASE = 0x4000_0000

#: Default sizes.
DEFAULT_HEAP_BYTES = 64 << 20
SHARED_BYTES = 48 << 10
LOCAL_BYTES_PER_THREAD = 16 << 10


class Memory:
    """A flat little-endian byte array with typed accessors."""

    def __init__(self, size: int, name: str = "mem"):
        self.size = size
        self.name = name
        self.data = np.zeros(size, dtype=np.uint8)

    def _check(self, addr: int, width: int) -> None:
        if addr < 0 or addr + width > self.size:
            raise DeviceFault(
                f"{self.name}: access of {width} bytes at 0x{addr:x} "
                f"outside [0, 0x{self.size:x})")

    def read(self, addr: int, width: int) -> int:
        """Read *width* bytes as an unsigned little-endian integer."""
        addr = int(addr)
        self._check(addr, width)
        if width == 4 and addr % 4 == 0:
            return int(self.data[addr:addr + 4].view(np.uint32)[0])
        if width == 8 and addr % 8 == 0:
            return int(self.data[addr:addr + 8].view(np.uint64)[0])
        return int.from_bytes(self.data[addr:addr + width].tobytes(),
                              "little")

    def write(self, addr: int, width: int, value: int) -> None:
        addr = int(addr)
        self._check(addr, width)
        value = int(value) & ((1 << (8 * width)) - 1)
        if width == 4 and addr % 4 == 0:
            self.data[addr:addr + 4].view(np.uint32)[0] = value
            return
        if width == 8 and addr % 8 == 0:
            self.data[addr:addr + 8].view(np.uint64)[0] = value
            return
        self.data[addr:addr + width] = np.frombuffer(
            value.to_bytes(width, "little"), dtype=np.uint8)

    # ------------------------------------------------- vectorized lanes

    def lanes_in_bounds(self, offsets: np.ndarray, width: int) -> bool:
        """Whether every per-lane access ``[offset, offset+width)`` fits."""
        if offsets.size == 0:
            return True
        lo = int(offsets.min())
        return lo >= 0 and int(offsets.max()) + width <= self.size

    def read_lanes(self, offsets: np.ndarray, width: int) -> np.ndarray:
        """Gather *width*-byte accesses at *offsets* (one per lane).

        Returns a ``(len(offsets), width // 4)`` uint32 array of the
        little-endian words of each access — the shape the executor
        scatters straight into register rows.  *width* must be a
        multiple of 4; callers bounds-check with :meth:`lanes_in_bounds`
        first (out-of-range lanes take the scalar path so faults carry
        the per-lane address).
        """
        index = offsets.reshape(-1, 1) + np.arange(width, dtype=np.int64)
        raw = self.data[index]
        return raw.view(np.uint32)

    def write_lanes(self, offsets: np.ndarray, width: int,
                    words: np.ndarray) -> None:
        """Scatter per-lane values: *words* is ``(len(offsets), width//4)``
        uint32.  Lanes scatter in order, so on overlapping addresses the
        highest lane wins — the same contract as the scalar loop."""
        index = offsets.reshape(-1, 1) + np.arange(width, dtype=np.int64)
        payload = np.ascontiguousarray(words, dtype=np.uint32).view(np.uint8)
        self.data[index] = payload.reshape(len(offsets), width)

    def read_bytes(self, addr: int, count: int) -> bytes:
        self._check(addr, count)
        return self.data[addr:addr + count].tobytes()

    def write_bytes(self, addr: int, payload: bytes) -> None:
        self._check(addr, len(payload))
        self.data[addr:addr + len(payload)] = np.frombuffer(
            payload, dtype=np.uint8)


def is_global(addr: int, heap_bytes: int = DEFAULT_HEAP_BYTES) -> bool:
    """The ``__isGlobal`` intrinsic of the paper's Figure 6 handler."""
    return GLOBAL_BASE <= addr < GLOBAL_BASE + heap_bytes


def is_shared(addr: int) -> bool:
    return SHARED_BASE <= addr < SHARED_BASE + SHARED_BYTES


def is_local(addr: int) -> bool:
    return LOCAL_BASE <= addr < LOCAL_BASE + LOCAL_BYTES_PER_THREAD
