"""Set-associative cache models (L1 per-SM, shared L2).

Purely for statistics (hit/miss counts feed the cycle cost model); data
always comes from the backing store, so the caches cannot cause
incoherence.  The memory-hierarchy extension point mentioned in the
paper's Section 9.4 ("a memory trace collected by SASSI can be used to
drive a memory hierarchy simulator") is exercised by
``examples/memtrace_cachesim.py``, which replays a SASSI-collected trace
through these same models.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.evictions = 0


class Cache:
    """An LRU set-associative cache of line addresses."""

    def __init__(self, size_bytes: int, line_bytes: int = 32,
                 ways: int = 4, name: str = "cache",
                 next_level: Optional["Cache"] = None):
        if size_bytes % (line_bytes * ways):
            raise ValueError("cache size must be a multiple of line*ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        self.name = name
        self.next_level = next_level
        self.stats = CacheStats()
        self._sets: Dict[int, OrderedDict] = {}

    def access(self, line_addr: int) -> bool:
        """Access one line address; returns True on hit.  Misses are
        forwarded to the next level (if any)."""
        line = line_addr // self.line_bytes
        return self._access_line(line % self.num_sets,
                                 line // self.num_sets, line_addr)

    def _access_line(self, index: int, tag: int, line_addr: int) -> bool:
        self.stats.accesses += 1
        ways = self._sets.setdefault(index, OrderedDict())
        if tag in ways:
            ways.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if self.next_level is not None:
            self.next_level.access(line_addr)
        ways[tag] = True
        if len(ways) > self.ways:
            ways.popitem(last=False)
            self.stats.evictions += 1
        return False

    def access_lines(self, line_addresses: Sequence[int]) -> int:
        """Access a whole transaction vector (in order); returns the
        number of misses at this level.

        Equivalent to ``sum(not self.access(a) for a in line_addresses)``
        — set indices and tags are derived with one vectorized pass, and
        stats (including next-level forwarding and LRU state) are
        identical to the one-at-a-time loop.
        """
        if len(line_addresses) == 0:
            return 0
        raw = np.asarray(line_addresses, dtype=np.int64)
        arr = raw // self.line_bytes
        indices = (arr % self.num_sets).tolist()
        tags = (arr // self.num_sets).tolist()
        misses = 0
        access_line = self._access_line
        for index, tag, line_addr in zip(indices, tags, raw.tolist()):
            if not access_line(index, tag, line_addr):
                misses += 1
        return misses

    def reset(self) -> None:
        self.stats.reset()
        self._sets.clear()

    def invalidate(self) -> None:
        """Drop cached lines (cumulative stats survive), recursively
        through the hierarchy — the kernel-launch-boundary flush: every
        launch starts cold, so launch-partitioned replays of one trace
        grade accesses identically to a single streaming pass."""
        self._sets.clear()
        if self.next_level is not None:
            self.next_level.invalidate()


def kepler_hierarchy() -> Cache:
    """A K10-flavoured hierarchy: 16 KiB 4-way L1 over 512 KiB 16-way L2
    (sized down with the scaled workloads)."""
    l2 = Cache(512 << 10, ways=16, name="L2")
    return Cache(16 << 10, ways=4, name="L1", next_level=l2)
