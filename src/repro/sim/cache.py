"""Set-associative cache models (L1 per-SM, shared L2).

Purely for statistics (hit/miss counts feed the cycle cost model); data
always comes from the backing store, so the caches cannot cause
incoherence.  The memory-hierarchy extension point mentioned in the
paper's Section 9.4 ("a memory trace collected by SASSI can be used to
drive a memory hierarchy simulator") is exercised by
``examples/memtrace_cachesim.py``, which replays a SASSI-collected trace
through these same models.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.evictions = 0


class Cache:
    """An LRU set-associative cache of line addresses."""

    def __init__(self, size_bytes: int, line_bytes: int = 32,
                 ways: int = 4, name: str = "cache",
                 next_level: Optional["Cache"] = None):
        if size_bytes % (line_bytes * ways):
            raise ValueError("cache size must be a multiple of line*ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        self.name = name
        self.next_level = next_level
        self.stats = CacheStats()
        self._sets: Dict[int, OrderedDict] = {}

    def access(self, line_addr: int) -> bool:
        """Access one line address; returns True on hit.  Misses are
        forwarded to the next level (if any)."""
        self.stats.accesses += 1
        index = (line_addr // self.line_bytes) % self.num_sets
        tag = line_addr // self.line_bytes // self.num_sets
        ways = self._sets.setdefault(index, OrderedDict())
        if tag in ways:
            ways.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if self.next_level is not None:
            self.next_level.access(line_addr)
        ways[tag] = True
        if len(ways) > self.ways:
            ways.popitem(last=False)
            self.stats.evictions += 1
        return False

    def reset(self) -> None:
        self.stats.reset()
        self._sets.clear()


def kepler_hierarchy() -> Cache:
    """A K10-flavoured hierarchy: 16 KiB 4-way L1 over 512 KiB 16-way L2
    (sized down with the scaled workloads)."""
    l2 = Cache(512 << 10, ways=16, name="L2")
    return Cache(16 << 10, ways=4, name="L1", next_level=l2)
