"""Cycle cost model.

A deliberately simple issue-cost model: every warp instruction costs its
opcode's issue latency; memory instructions additionally pay one issue
slot per extra coalesced transaction (address-diverged accesses serialize,
the effect the paper's Case Study II quantifies); cache misses add a
miss penalty when the cache models are enabled.

The model's purpose is Table 3: *relative* kernel-time overheads of
instrumented vs. uninstrumented runs.  The injected instrumentation
executes real extra instructions (spills, parameter-object stores, the
call), so instrumented kernels accumulate proportionally more cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import Opcode

#: Extra issue cost (beyond 1) for slow opcodes.
_EXTRA_ISSUE = {
    Opcode.MUFU: 3,
    Opcode.IMUL: 1,
    Opcode.IMAD: 1,
    Opcode.BAR: 2,
    Opcode.ATOM: 4,
    Opcode.ATOMS: 2,
    Opcode.RED: 4,
}

#: Issue slots charged per coalesced memory transaction beyond the first.
TRANSACTION_COST = 2
#: Extra cycles per L1 miss / L2 miss when cache simulation is on.
L1_MISS_COST = 4
L2_MISS_COST = 16


def block_issue_cycles(opcodes) -> int:
    """Total issue cost of a straight-line opcode sequence — precomputed
    per superblock so the fused dispatch path adds one integer instead
    of calling :meth:`CycleCounter.issue` per instruction."""
    return sum(1 + _EXTRA_ISSUE.get(opcode, 0) for opcode in opcodes)


@dataclass
class CycleCounter:
    """Accumulates the simulated cycle count for one kernel launch."""

    cycles: int = 0

    def issue(self, opcode: Opcode) -> None:
        self.cycles += 1 + _EXTRA_ISSUE.get(opcode, 0)

    def memory_transactions(self, count: int) -> None:
        if count > 1:
            self.cycles += TRANSACTION_COST * (count - 1)

    def cache_misses(self, l1_misses: int, l2_misses: int) -> None:
        self.cycles += L1_MISS_COST * l1_misses + L2_MISS_COST * l2_misses
