"""Flat cycle cost model (compatibility shim over the scheduler table).

The stall-accurate timing model lives in :mod:`repro.sim.scheduler`;
this module keeps the original flat accounting that the functional
fast path accumulates inline: every warp instruction costs its
opcode's issue-port occupancy, memory instructions additionally pay
one issue slot per extra coalesced transaction (address-diverged
accesses serialize, the effect the paper's Case Study II quantifies),
and cache misses add a flat miss penalty when the cache models are
enabled.

The issue costs are *derived* from the scheduler's exhaustive
:data:`~repro.sim.scheduler.LATENCY_TABLE` — one source of truth — and
reproduce the retired ``_EXTRA_ISSUE`` values exactly, so the golden
cycle snapshots and the Table 3 relative overheads (instrumented vs.
uninstrumented) are unchanged.  Deriving the dict here also means this
module fails at import when an opcode lacks a timing entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import Opcode
from repro.sim.scheduler import LATENCY_TABLE, TRANSACTION_CYCLES

#: Issue-port occupancy per opcode (flat cost), from the scheduler table.
_ISSUE = {opcode: LATENCY_TABLE[opcode].issue for opcode in Opcode}

#: Issue slots charged per coalesced memory transaction beyond the first.
TRANSACTION_COST = TRANSACTION_CYCLES
#: Extra cycles per L1 miss / L2 miss when cache simulation is on.
L1_MISS_COST = 4
L2_MISS_COST = 16


def block_issue_cycles(opcodes) -> int:
    """Total issue cost of a straight-line opcode sequence — precomputed
    per superblock so the fused dispatch path adds one integer instead
    of calling :meth:`CycleCounter.issue` per instruction."""
    issue = _ISSUE
    return sum(issue[opcode] for opcode in opcodes)


@dataclass
class CycleCounter:
    """Accumulates the simulated cycle count for one kernel launch."""

    cycles: int = 0

    def issue(self, opcode: Opcode) -> None:
        self.cycles += _ISSUE[opcode]

    def memory_transactions(self, count: int) -> None:
        if count > 1:
            self.cycles += TRANSACTION_COST * (count - 1)

    def cache_misses(self, l1_misses: int, l2_misses: int) -> None:
        self.cycles += L1_MISS_COST * l1_misses + L2_MISS_COST * l2_misses
