"""The functional SIMT executor.

Executes one CTA at a time; within a CTA, warps run round-robin with a
run-to-barrier policy.  Lanes are numpy-vectorized: the register file is a
``(num_regs, 32)`` uint32 array per warp and ALU ops operate on whole
rows under the instruction's guard mask.

The executor is also where SASSI handler calls land: a ``JCAL`` whose
target lies in the handler address range (``SassProgram.HANDLER_BASE``)
invokes the binding registered with the device (see
:mod:`repro.sassi.handlers`) instead of transferring control — the
moral equivalent of the linker resolving ``sassi_before_handler`` in the
paper's Figure 1 flow.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.isa.instruction import (
    ConstRef,
    Imm,
    Instruction,
    LabelRef,
    MemRef,
    MemSpace,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import SassKernel, SassProgram
from repro.isa.registers import GPR, SpecialReg
from repro.sim.cache import Cache
from repro.sim.coalescer import coalesce
from repro.sim.costmodel import CycleCounter, block_issue_cycles
from repro.sim.errors import DeviceFault, HangDetected
from repro.sim.memory import (
    GLOBAL_BASE,
    LOCAL_BASE,
    SHARED_BASE,
    SHARED_BYTES,
    Memory,
)
from repro.sim.warp import WARP_SIZE, Warp, mask_to_u32
from repro.telemetry.classify import (
    OPCLASS_KEY,
    block_dispatch_counts,
    sassi_key,
)
from repro.telemetry.collector import TELEMETRY, Telemetry

#: Physical bytes of local memory actually backed per thread (the
#: addressing window is larger; see repro.sim.memory).
LOCAL_PHYS_BYTES = 4 << 10


@dataclass
class KernelStats:
    """Statistics for one kernel launch."""

    kernel: str = ""
    warp_instructions: int = 0
    thread_instructions: int = 0
    #: instructions injected by SASSI (tag == "sassi"), for overhead math
    sassi_warp_instructions: int = 0
    sassi_thread_instructions: int = 0
    opcode_counts: Counter = field(default_factory=Counter)
    global_mem_instructions: int = 0
    global_transactions: int = 0
    handler_calls: int = 0
    barriers: int = 0
    cycles: int = 0
    max_stack_depth: int = 0

    @property
    def baseline_warp_instructions(self) -> int:
        return self.warp_instructions - self.sassi_warp_instructions


@dataclass
class SimConfig:
    """Executor knobs."""

    enable_caches: bool = False
    #: watchdog: abort the launch after this many warp instructions.
    max_warp_instructions: int = 200_000_000
    #: fast path: execute straight-line superblocks with batched
    #: stats/telemetry accumulation (see ``_Superblock``).  Disable to
    #: force per-instruction dispatch — semantics and statistics are
    #: identical either way (the fast-path differential suite enforces
    #: this bit-exactly).
    fuse_blocks: bool = True
    #: fast path: serve single-space warp memory accesses with one
    #: vectorized gather/scatter instead of a per-lane loop.  Mixed-space
    #: generic accesses and faulting accesses always take the scalar
    #: path regardless.
    vector_memory: bool = True
    #: fast path: execute whole SASSI call sequences (spills, param
    #: marshaling, JCAL, restores) as one precompiled array-op plan per
    #: site (see ``repro.sassi.abi.SiteSequencePlan``), letting fused
    #: dispatch flow *through* instrumented sites instead of falling to
    #: per-instruction execution at every JCAL.  Disable to keep sites
    #: on the per-instruction path — the scalar reference the
    #: instrumented differential suite compares against bit-exactly.
    fuse_handler_calls: bool = True


class CTAContext:
    """Per-CTA execution context shared by its warps.

    Thread-local memories are rows of one CTA-wide byte block so that
    warp-uniform local accesses (the common case: SASSI's spill/param
    traffic always uses the same stack offset across the warp) can be
    served with one vectorized gather/scatter.
    """

    def __init__(self, ctaid: Tuple[int, int, int], shared_bytes: int,
                 num_threads: int = 1024):
        self.ctaid = ctaid
        self.shared = Memory(max(shared_bytes, SHARED_BYTES), name="shared")
        self.num_threads = num_threads
        self._local_block: Optional[np.ndarray] = None
        self._local_views: Dict[int, Memory] = {}

    def local_block(self) -> np.ndarray:
        if self._local_block is None:
            self._local_block = np.zeros(
                (self.num_threads, LOCAL_PHYS_BYTES), dtype=np.uint8)
        return self._local_block

    def local_mem(self, tid: int) -> Memory:
        mem = self._local_views.get(tid)
        if mem is None:
            mem = Memory.__new__(Memory)
            mem.size = LOCAL_PHYS_BYTES
            mem.name = f"local[t{tid}]"
            mem.data = self.local_block()[tid]
            self._local_views[tid] = mem
        return mem


class Executor:
    """Runs kernels on a device."""

    def __init__(self, device, config: Optional[SimConfig] = None):
        self.device = device
        self.config = config or SimConfig()
        self.l1: Optional[Cache] = None
        if self.config.enable_caches:
            from repro.sim.cache import kepler_hierarchy

            self.l1 = kepler_hierarchy()
        self.stats = KernelStats()
        self._watchdog = 0
        self._kernel: Optional[SassKernel] = None
        self._decoded: Optional[_DecodedKernel] = None
        self._targets: List[Optional[int]] = []
        self._cta: Optional[CTAContext] = None
        #: (bank, offset) -> uint32; const banks are immutable during a
        #: launch, so reads are memoized and flushed at each run().
        self._const_cache: dict = {}
        #: active-lane indices of the guard mask currently being
        #: dispatched — computed once per instruction (or once per fused
        #: block) and consumed by the scalar per-lane memory loops.
        self._active_lanes: Optional[np.ndarray] = None
        #: sampling weight of the site currently firing (1 = exact);
        #: handler contexts read it so sampled counters can be scaled
        #: into unbiased estimates.
        self._sample_rate: int = 1
        #: the device's AdaptiveController, if one is installed
        #: (``repro.sassi.runtime``); gates compiled site plans.
        self._adaptive = getattr(device, "adaptive", None)

    # ------------------------------------------------------------ launch

    def run(self, kernel: SassKernel, grid, block,
            shared_bytes: int = 0) -> KernelStats:
        self.stats = KernelStats(kernel=kernel.name)
        self._watchdog = 0
        self._const_cache.clear()
        self._kernel = kernel
        self._decoded = decode_kernel(kernel)
        self._targets = self._decoded.targets
        self._sample_rate = 1
        self._adaptive = ctrl = getattr(self.device, "adaptive", None)
        if ctrl is not None:
            ctrl.begin_launch(kernel)
        counter = CycleCounter()
        num_threads = block.x * block.y * block.z
        if num_threads == 0 or num_threads > 1024:
            raise DeviceFault(f"bad block size: {num_threads}")
        for cz in range(grid.z):
            for cy in range(grid.y):
                for cx in range(grid.x):
                    self._run_cta((cx, cy, cz), grid, block, num_threads,
                                  shared_bytes, counter)
        self.stats.cycles = counter.cycles
        return self.stats

    def _run_cta(self, ctaid, grid, block, num_threads, shared_bytes,
                 counter) -> None:
        kernel = self._kernel
        cta = CTAContext(ctaid, shared_bytes, num_threads=num_threads)
        self._cta = cta
        warps: List[Warp] = []
        num_regs = max(kernel.num_regs, 8)
        for warp_index in range((num_threads + WARP_SIZE - 1) // WARP_SIZE):
            base = warp_index * WARP_SIZE
            lanes = min(WARP_SIZE, num_threads - base)
            tids = np.arange(base, base + WARP_SIZE, dtype=np.int64)
            warp = Warp(warp_index, num_regs, lanes, tids)
            self._init_warp(warp, ctaid, grid, block, num_threads)
            warps.append(warp)
        pending = [w for w in warps]
        while pending:
            progressed = False
            for warp in pending:
                if warp.done or warp.at_barrier:
                    continue
                self._run_warp(warp, cta, counter)
                progressed = True
            pending = [w for w in pending if not w.done]
            if pending and all(w.at_barrier for w in pending):
                for warp in pending:
                    warp.at_barrier = False
                self.stats.barriers += 1
                progressed = True
            if not progressed and pending:
                raise DeviceFault(
                    f"{kernel.name}: deadlock (barrier never satisfied)")
        self._cta = None

    def _init_warp(self, warp, ctaid, grid, block, num_threads) -> None:
        tids = warp.lane_thread_ids
        warp.tid_x = (tids % block.x).astype(np.uint32)
        warp.tid_y = ((tids // block.x) % block.y).astype(np.uint32)
        warp.tid_z = (tids // (block.x * block.y)).astype(np.uint32)
        warp.ctaid = ctaid
        warp.ntid = (block.x, block.y, block.z)
        warp.nctaid = (grid.x, grid.y, grid.z)
        # R1 = ABI stack pointer (top of the thread's local stack).
        warp.regs[1, :] = LOCAL_PHYS_BYTES

    # ------------------------------------------------------------ warps

    def _run_warp(self, warp: Warp, cta: CTAContext, counter) -> None:
        kernel = self._kernel
        decoded = self._decoded
        if decoded is None or decoded.kernel is not kernel:
            # callers (tests) may install ``_kernel`` directly
            decoded = decode_kernel(kernel)
            self._decoded = decoded
            self._targets = decoded.targets
        records = decoded.records
        blocks = decoded.blocks_for(self.config.fuse_handler_calls) \
            if self.config.fuse_blocks else None
        limit = len(records)
        max_warp_instructions = self.config.max_warp_instructions
        execute = self._execute
        execute_block = self._execute_block
        execute_site = self._execute_site
        while not warp.done and not warp.at_barrier:
            pc = warp.pc
            if not (0 <= pc < limit):
                raise DeviceFault(
                    f"{kernel.name}: PC 0x{kernel.pc_of(pc):x} outside "
                    "kernel body")
            if blocks is not None:
                block = blocks[pc]
                if block is not None:
                    if block.__class__ is _Superblock:
                        execute_block(block, warp, cta, counter)
                    else:
                        execute_site(block, warp, cta, counter)
                    continue
            self._watchdog += 1
            if self._watchdog > max_warp_instructions:
                raise HangDetected(
                    f"{kernel.name}: watchdog after {self._watchdog} "
                    "warp instructions")
            execute(records[pc], warp, cta, counter)

    def _execute_block(self, block: "_Superblock", warp: Warp,
                       cta: CTAContext, counter: CycleCounter) -> None:
        """Execute one fused superblock.

        Every record is unconditional straight-line code, so the guard
        of each instruction is the warp's active mask, which nothing in
        the block can change — one uniformity read serves all records.
        Watchdog, stack-depth, and the per-instruction stats/telemetry
        increments collapse to per-block deltas (flushed at block exit);
        the opcode handlers themselves run exactly as on the slow path.
        """
        length = block.length
        self._watchdog += length
        if self._watchdog > self.config.max_warp_instructions:
            raise HangDetected(
                f"{self._kernel.name}: watchdog after {self._watchdog} "
                "warp instructions")
        stats = self.stats
        if warp.stack_depth > stats.max_stack_depth:
            stats.max_stack_depth = warp.stack_depth
        g = warp.active
        g_idx = np.nonzero(g)[0]
        self._active_lanes = g_idx
        lanes = g_idx.size
        for handler, dec in block.dispatch:
            handler(self, warp, cta, dec, g, counter)
        stats.warp_instructions += length
        stats.thread_instructions += lanes * length
        if block.n_sassi:
            stats.sassi_warp_instructions += block.n_sassi
            stats.sassi_thread_instructions += lanes * block.n_sassi
        stats.opcode_counts.update(block.opcode_counts)
        counter.cycles += block.issue_cycles
        telem = TELEMETRY
        if telem.enabled:
            if type(telem).record_dispatch is Telemetry.record_dispatch:
                telem.record_block(block.telemetry_counts)
            else:
                # a subclass wants per-site granularity: replay the
                # per-instruction hook (guards are uniform, so
                # lanes == active for every record)
                for _, dec in block.dispatch:
                    telem.record_dispatch(dec, lanes, lanes)

    def _execute_site(self, plan, warp: Warp, cta: CTAContext,
                      counter: CycleCounter) -> None:
        """Execute one instrumentation site as a batched plan.

        The per-instruction interpretation of the injected sequence is
        authoritative: the plan bails (returning None, before touching
        any state) on run-time preconditions it cannot batch — and a
        telemetry subclass observing per-dispatch granularity also
        forces the per-record path, exactly like ``_execute_block``.

        When an :class:`~repro.sassi.runtime.AdaptiveController` is
        installed, it gates every firing first.  Weight 0 skips the
        whole site (the injected sequence is architecturally invisible,
        so jumping ``warp.pc`` over it is exact) — the skipped
        instructions are accounted under the ``sassi.sampled_skipped``
        telemetry counter so overhead attribution still sums.  A weight
        of N > 1 runs the site with ``_sample_rate = N`` so the handler
        context can scale its counters into unbiased estimates.
        """
        ctrl = self._adaptive
        if ctrl is not None:
            weight = ctrl.decide(plan, warp, cta)
            if weight == 0:
                warp.pc = plan.start + plan.length
                telem = TELEMETRY
                if telem.enabled:
                    telem.incr("sassi.sampled_skipped", plan.length)
                return
            if weight != 1 or ctrl.wants_timing:
                timing = ctrl.wants_timing
                t0 = time.perf_counter() if timing else 0.0
                self._sample_rate = weight
                try:
                    self._site_body(plan, warp, cta, counter)
                finally:
                    self._sample_rate = 1
                    if timing:
                        ctrl.observe_fire(time.perf_counter() - t0)
                return
        self._site_body(plan, warp, cta, counter)

    def _site_body(self, plan, warp: Warp, cta: CTAContext,
                   counter: CycleCounter) -> None:
        length = plan.length
        self._watchdog += length
        if self._watchdog > self.config.max_warp_instructions:
            raise HangDetected(
                f"{self._kernel.name}: watchdog after {self._watchdog} "
                "warp instructions")
        stats = self.stats
        if warp.stack_depth > stats.max_stack_depth:
            stats.max_stack_depth = warp.stack_depth
        g = warp.active
        g_idx = np.nonzero(g)[0]
        self._active_lanes = g_idx
        telem = TELEMETRY
        partial = None
        if not telem.enabled \
                or type(telem).record_dispatch is Telemetry.record_dispatch:
            partial = plan.execute(self, warp, cta, g, g_idx, counter)
        if partial is None:
            end = plan.start + length
            records = plan.records
            start = plan.start
            execute = self._execute
            while warp.pc < end and not warp.done and not warp.at_barrier:
                execute(records[warp.pc - start], warp, cta, counter)
            return
        lanes = g_idx.size
        stats.warp_instructions += length
        stats.thread_instructions += lanes * plan.thread_weight
        stats.sassi_warp_instructions += length
        stats.sassi_thread_instructions += lanes * plan.thread_weight
        stats.opcode_counts.update(plan.opcode_counts)
        counter.cycles += plan.issue_cycles
        if telem.enabled:
            telem.record_block(plan.telemetry_counts)
            if partial:
                telem.incr("divergence.partial_dispatch", partial)

    def step(self, warp: Warp, cta: CTAContext, instr: Instruction,
             counter: CycleCounter) -> None:
        """Execute one instruction for one warp.

        Accepts a raw :class:`Instruction` (decoded on the fly) or a
        predecoded record from the per-kernel cache.
        """
        if not isinstance(instr, _Decoded):
            targets = self._targets
            target = targets[warp.pc] \
                if 0 <= warp.pc < len(targets) else None
            instr = _Decoded(instr, target)
        self._execute(instr, warp, cta, counter)

    def _execute(self, dec: "_Decoded", warp: Warp, cta: CTAContext,
                 counter: CycleCounter) -> None:
        stats = self.stats
        stats.warp_instructions += 1
        if dec.uncond:
            g = warp.active
        else:
            g = warp.guard_mask(warp.preds[dec.pred_index], dec.negated)
        g_idx = np.nonzero(g)[0]
        self._active_lanes = g_idx
        lanes = g_idx.size
        stats.thread_instructions += lanes
        stats.opcode_counts[dec.opcode] += 1
        if dec.sassi:
            stats.sassi_warp_instructions += 1
            stats.sassi_thread_instructions += lanes
        counter.issue(dec.opcode)
        if warp.stack_depth > stats.max_stack_depth:
            stats.max_stack_depth = warp.stack_depth
        if TELEMETRY.enabled:
            TELEMETRY.record_dispatch(
                dec, lanes, int(np.count_nonzero(warp.active)))

        handler = dec.handler
        if handler is None:
            raise DeviceFault(f"illegal instruction: {dec.instr!r}")
        handler(self, warp, cta, dec, g, counter)

    # --------------------------------------------------------- operands

    def _read(self, warp: Warp, operand) -> np.ndarray:
        """A 32-bit source operand as a uint32 row (or scalar)."""
        if isinstance(operand, GPR):
            if operand.is_zero:
                return np.uint32(0)
            return warp.regs[operand.index]
        if isinstance(operand, Imm):
            return np.uint32(operand.value & 0xFFFFFFFF)
        if isinstance(operand, ConstRef):
            key = (operand.bank, operand.offset)
            cached = self._const_cache.get(key)
            if cached is None:
                cached = np.uint32(self.device.const_read(operand.bank,
                                                          operand.offset))
                self._const_cache[key] = cached
            return cached
        raise DeviceFault(f"unreadable operand: {operand!r}")

    def _write(self, warp: Warp, operand, value, g: np.ndarray) -> None:
        if not isinstance(operand, GPR):
            raise DeviceFault(f"bad destination: {operand!r}")
        if operand.is_zero:
            return
        if operand.index >= warp.num_regs:
            raise DeviceFault(f"register R{operand.index} out of range")
        row = warp.regs[operand.index]
        if isinstance(value, np.ndarray):
            np.copyto(row, value, where=g, casting="unsafe")
        else:
            row[g] = np.uint32(value)

    # ------------------------------------------------------ memory core

    def _resolve_space(self, warp: Warp, cta: CTAContext, instr: Instruction,
                       addr: int, lane: int) -> Tuple[Memory, int, bool]:
        """Resolve (memory, offset, counts_as_global) for one lane."""
        opcode = instr.opcode
        if opcode in (Opcode.LDG, Opcode.STG, Opcode.ATOM, Opcode.RED,
                      Opcode.TLD):
            return self.device.global_mem, addr - GLOBAL_BASE, True
        if opcode in (Opcode.LDS, Opcode.STS, Opcode.ATOMS):
            return cta.shared, addr, False
        if opcode in (Opcode.LDL, Opcode.STL):
            tid = int(warp.lane_thread_ids[lane])
            return cta.local_mem(tid), addr, False
        if opcode == Opcode.LDC:
            return self.device.const_mem, addr, False
        # generic LD/ST: dispatch by window (local window sits above the
        # global heap, so test it first).
        if addr >= LOCAL_BASE:
            tid = int(warp.lane_thread_ids[lane])
            return cta.local_mem(tid), addr - LOCAL_BASE, False
        if addr >= GLOBAL_BASE:
            return self.device.global_mem, addr - GLOBAL_BASE, True
        if SHARED_BASE <= addr < SHARED_BASE + SHARED_BYTES:
            return cta.shared, addr - SHARED_BASE, False
        raise DeviceFault(f"unmapped generic address 0x{addr:x}")

    def lane_addresses(self, warp: Warp, instr: Instruction) -> np.ndarray:
        """Effective addresses (uint64 row) of a memory instruction."""
        ref = instr.mem_ref
        if ref is None:
            raise DeviceFault(f"memory instruction without operand: {instr!r}")
        base = ref.base
        if base.is_zero:
            lo = np.zeros(WARP_SIZE, dtype=np.uint64)
            return lo + np.uint64(ref.offset & 0xFFFFFFFFFFFFFFFF)
        offset = np.uint64(ref.offset & 0xFFFFFFFFFFFFFFFF)
        if instr.opcode in (Opcode.LDS, Opcode.STS, Opcode.ATOMS,
                            Opcode.LDL, Opcode.STL, Opcode.LDC):
            return warp.regs[base.index].astype(np.uint64) + offset
        lo = warp.regs[base.index].astype(np.uint64)
        hi = warp.regs[base.index + 1].astype(np.uint64) \
            if base.index + 1 < warp.num_regs else np.zeros(
                WARP_SIZE, dtype=np.uint64)
        return (lo | (hi << np.uint64(32))) + offset

    def _account_global(self, addrs, g, width, counter) -> None:
        active = addrs[g]
        if active.size == 0:
            return
        result = coalesce(active, width)
        self.stats.global_mem_instructions += 1
        self.stats.global_transactions += result.unique_lines
        counter.memory_transactions(result.unique_lines)
        if self.l1 is not None:
            l2 = self.l1.next_level
            l2_before = l2.stats.misses if l2 is not None else 0
            l1_misses = self.l1.access_lines(result.line_addresses)
            l2_misses = (l2.stats.misses - l2_before) if l2 is not None else 0
            counter.cache_misses(l1_misses, l2_misses)


# ---------------------------------------------------------------------
# per-kernel decode cache
# ---------------------------------------------------------------------


class _Decoded:
    """One instruction, predecoded.

    Everything the dispatch loop and the opcode handlers would otherwise
    recompute on every dynamic execution is resolved once per kernel:
    the handler function, the guard predicate, the branch target, the
    SASSI provenance flag, and the modifier-derived operand decodings
    (memory width/reference, comparison function, narrow-access
    extension, atomic operation).  The record intentionally mirrors the
    :class:`~repro.isa.instruction.Instruction` attribute surface
    (``opcode``/``dsts``/``srcs``/``mods``/``guard``/``mem_width``/
    ``mem_ref``) so opcode handlers accept either form.
    """

    __slots__ = ("instr", "opcode", "dsts", "srcs", "mods", "guard", "tag",
                 "uncond", "pred_index", "negated", "sassi", "handler",
                 "target", "mem_width", "mem_ref", "cmp_fn", "narrow",
                 "atom_op", "opclass_key", "sassi_key", "jcal_addr")

    def __init__(self, instr: Instruction, target: Optional[int] = None):
        self.instr = instr
        self.opcode = instr.opcode
        self.dsts = instr.dsts
        self.srcs = instr.srcs
        self.mods = instr.mods
        self.guard = instr.guard
        self.tag = instr.tag
        self.uncond = instr.guard.is_unconditional
        self.pred_index = instr.guard.pred.index
        self.negated = instr.guard.negated
        self.sassi = instr.tag == "sassi"
        self.opclass_key = OPCLASS_KEY[instr.opcode]
        self.sassi_key = sassi_key(instr) if self.sassi else None
        self.handler = _DISPATCH.get(instr.opcode)
        self.target = target
        self.mem_width = instr.mem_width
        self.mem_ref = instr.mem_ref
        self.cmp_fn = _CMP_FNS[next(
            (m for m in instr.mods if m in _CMP_FNS), "EQ")]
        self.narrow = next(
            (m for m in instr.mods if m in _SIGNED_EXT), None)
        self.atom_op = next(
            (m for m in instr.mods
             if m in _ATOM_FNS or m in ("MIN", "MAX")), "ADD")
        self.jcal_addr = instr.srcs[0].value & 0xFFFFFFFF \
            if (instr.opcode is Opcode.JCAL and instr.srcs
                and isinstance(instr.srcs[0], Imm)) else None

    def __repr__(self) -> str:
        return repr(self.instr)


#: Opcodes that terminate a superblock: control transfers, divergence
#: stack operations, barriers, SASSI handler calls — everything whose
#: handler may redirect ``pc``, change the active mask, park the warp,
#: or observe mid-block statistics (S2R reads ``SR_CLOCK``).
_BLOCK_TERMINATORS = frozenset({
    Opcode.BRA, Opcode.JCAL, Opcode.CAL, Opcode.RET, Opcode.EXIT,
    Opcode.SSY, Opcode.SYNC, Opcode.PBK, Opcode.BRK, Opcode.BAR,
    Opcode.S2R,
})


def _is_fusable(dec: "_Decoded") -> bool:
    """Whether a record may live inside a fused superblock: straight-line
    (handler always advances ``pc`` by one), unconditional (the block's
    single guard-uniformity test covers it), and a known opcode (illegal
    instructions fault on the slow path with the precise record)."""
    return (dec.handler is not None and dec.uncond
            and dec.opcode not in _BLOCK_TERMINATORS)


class _Superblock:
    """A maximal run of fusable records starting at a block leader.

    Everything the per-instruction dispatch loop accrues incrementally
    is pre-aggregated here: the opcode histogram, the SASSI-injected
    instruction count, the total issue-cycle cost, and the telemetry
    dispatch-counter deltas.  ``dispatch`` pairs each record with its
    handler so the fused loop does two tuple loads per instruction.
    """

    __slots__ = ("start", "length", "records", "dispatch", "opcode_counts",
                 "n_sassi", "issue_cycles", "telemetry_counts")

    def __init__(self, start: int, records: List["_Decoded"]):
        self.start = start
        self.records = records
        self.length = len(records)
        self.dispatch = [(dec.handler, dec) for dec in records]
        counts: Counter = Counter()
        for dec in records:
            counts[dec.opcode] += 1
        self.opcode_counts = dict(counts)
        self.n_sassi = sum(1 for dec in records if dec.sassi)
        self.issue_cycles = block_issue_cycles(
            dec.opcode for dec in records)
        self.telemetry_counts = block_dispatch_counts(records)


def _partition_superblocks(records: List["_Decoded"],
                           targets: List[Optional[int]],
                           fuse_handlers: bool = True):
    """Split *records* into superblocks and (optionally) site plans.

    ``blocks[pc]`` is the dispatch unit *starting* at ``pc`` — a
    :class:`_Superblock`, a ``SiteSequencePlan`` covering a whole SASSI
    call sequence, or None when ``pc`` is not a fused leader.  Branch
    targets always start a new block so a warp can only ever enter a
    block at its head; blocks shorter than two instructions stay on the
    per-instruction path (fusing them would only add overhead).

    With *fuse_handlers*, a first pass compiles every recognizable
    injected call sequence (``IADD R1, R1, -frame`` … ``JCAL`` … stack
    release) into one plan; the superblock pass then flows around the
    plans, so fused dispatch extends through instrumented sites instead
    of degenerating to per-instruction execution at every ``JCAL``.
    """
    limit = len(records)
    leaders = {target for target in targets
               if target is not None and 0 <= target < limit}
    blocks: list = [None] * limit
    covered = bytearray(limit)
    if fuse_handlers:
        from repro.sassi.abi import compile_site_plan

        handler_base = SassProgram.HANDLER_BASE
        pos = 0
        while pos < limit:
            rec = records[pos]
            if rec.sassi and rec.uncond \
                    and rec.opcode in (Opcode.IADD, Opcode.IADD32I):
                plan = compile_site_plan(records, pos, handler_base)
                if plan is not None and not any(
                        pos < leader < pos + plan.length
                        for leader in leaders):
                    blocks[pos] = plan
                    for index in range(pos, pos + plan.length):
                        covered[index] = 1
                    pos += plan.length
                    continue
            pos += 1
    start = 0
    while start < limit:
        if covered[start] or not _is_fusable(records[start]):
            start += 1
            continue
        end = start + 1
        while (end < limit and end not in leaders and not covered[end]
               and _is_fusable(records[end])):
            end += 1
        if end - start >= 2:
            blocks[start] = _Superblock(start, records[start:end])
        start = end

    return blocks


class _DecodedKernel:
    """The decode cache for one kernel: records, branch targets, and the
    superblock/site-plan partitions driving the fused dispatch fast
    path (one partition per ``fuse_handler_calls`` setting, built
    lazily — uninstrumented kernels share a single partition)."""

    __slots__ = ("kernel", "records", "targets", "_partitions")

    def __init__(self, kernel: SassKernel):
        self.kernel = kernel
        targets: List[Optional[int]] = []
        for instr in kernel.instructions:
            target: Optional[int] = None
            for operand in (*instr.srcs, *instr.dsts):
                if isinstance(operand, LabelRef):
                    target = kernel.label_target(operand.name)
            targets.append(target)
        self.targets = targets
        self.records = [_Decoded(instr, target) for instr, target
                        in zip(kernel.instructions, targets)]
        self._partitions: Dict[bool, list] = {}

    def blocks_for(self, fuse_handlers: bool) -> list:
        blocks = self._partitions.get(fuse_handlers)
        if blocks is None:
            blocks = _partition_superblocks(self.records, self.targets,
                                            fuse_handlers)
            self._partitions[fuse_handlers] = blocks
        return blocks

    @property
    def blocks(self) -> list:
        return self.blocks_for(True)


def decode_kernel(kernel: SassKernel) -> _DecodedKernel:
    """Decode *kernel* once and memoize the result on the instance, so
    every subsequent launch (BFS levels, iterative solvers...) skips
    straight to execution."""
    cached = kernel.__dict__.get("_decoded")
    if cached is None:
        cached = _DecodedKernel(kernel)
        object.__setattr__(kernel, "_decoded", cached)
    return cached


# ---------------------------------------------------------------------
# opcode semantics
# ---------------------------------------------------------------------


def _s32(row):
    if isinstance(row, np.ndarray):
        return row.view(np.int32) if row.dtype == np.uint32 \
            else row.astype(np.int32)
    return np.int32(np.uint32(row))


def _f32(row):
    if isinstance(row, np.ndarray):
        return row.view(np.float32)
    return np.uint32(row).view(np.float32) if hasattr(row, "view") \
        else np.frombuffer(np.uint32(row).tobytes(), dtype=np.float32)[0]


def _as_u32(row):
    if isinstance(row, np.ndarray):
        return row
    return np.uint32(row)


def _from_f32(row):
    return np.asarray(row, dtype=np.float32).view(np.uint32)


def _op_mov(ex, warp, cta, instr, g, counter):
    ex._write(warp, instr.dsts[0], _broadcast(ex._read(warp, instr.srcs[0])), g)


def _broadcast(value):
    if isinstance(value, np.ndarray):
        return value
    return np.full(WARP_SIZE, value, dtype=np.uint32)


def _op_sel(ex, warp, cta, instr, g, counter):
    a = _broadcast(ex._read(warp, instr.srcs[0]))
    b = _broadcast(ex._read(warp, instr.srcs[1]))
    pred = instr.srcs[2]
    row = warp.preds[pred.index]
    ex._write(warp, instr.dsts[0], np.where(row, a, b), g)


def _op_s2r(ex, warp, cta, instr, g, counter):
    name = instr.srcs[0].name
    lanes = np.arange(WARP_SIZE, dtype=np.uint32)
    table = {
        "SR_TID.X": warp.tid_x, "SR_TID.Y": warp.tid_y, "SR_TID.Z": warp.tid_z,
        "SR_CTAID.X": np.uint32(warp.ctaid[0]),
        "SR_CTAID.Y": np.uint32(warp.ctaid[1]),
        "SR_CTAID.Z": np.uint32(warp.ctaid[2]),
        "SR_NTID.X": np.uint32(warp.ntid[0]),
        "SR_NTID.Y": np.uint32(warp.ntid[1]),
        "SR_NTID.Z": np.uint32(warp.ntid[2]),
        "SR_NCTAID.X": np.uint32(warp.nctaid[0]),
        "SR_NCTAID.Y": np.uint32(warp.nctaid[1]),
        "SR_NCTAID.Z": np.uint32(warp.nctaid[2]),
        "SR_LANEID": lanes,
        "SR_WARPID": np.uint32(warp.warp_id),
        "SR_ACTIVEMASK": np.uint32(_mask_to_int(warp.active)),
        "SR_CLOCK": np.uint32(ex.stats.warp_instructions & 0xFFFFFFFF),
    }
    ex._write(warp, instr.dsts[0], _broadcast(table[name]), g)
    warp.pc += 1


def _mask_to_int(mask: np.ndarray) -> int:
    return mask_to_u32(mask)


def _op_p2r(ex, warp, cta, instr, g, counter):
    packed = np.zeros(WARP_SIZE, dtype=np.uint32)
    for index in range(7):
        packed |= warp.preds[index].astype(np.uint32) << np.uint32(index)
    mask = instr.srcs[-1]
    if isinstance(mask, Imm):
        packed &= np.uint32(mask.value & 0xFFFFFFFF)
    ex._write(warp, instr.dsts[0], packed, g)
    warp.pc += 1


def _op_r2p(ex, warp, cta, instr, g, counter):
    value = _broadcast(ex._read(warp, instr.srcs[0]))
    mask = instr.srcs[1].value if len(instr.srcs) > 1 \
        and isinstance(instr.srcs[1], Imm) else 0x7F
    for index in range(7):
        if mask & (1 << index):
            if isinstance(value, np.ndarray):
                bit = ((value >> np.uint32(index)) & np.uint32(1)) \
                    .astype(bool)
                warp.preds[index][g] = bit[g]
            else:
                warp.preds[index][g] = bool((int(value) >> index) & 1)
    warp.pc += 1


def _op_psetp(ex, warp, cta, instr, g, counter):
    a = warp.preds[instr.srcs[0].index]
    b = warp.preds[instr.srcs[1].index] if len(instr.srcs) > 1 \
        else warp.preds[7]
    if "OR" in instr.mods:
        result = a | b
    elif "XOR" in instr.mods:
        result = a ^ b
    else:
        result = a & b
    dst = instr.dsts[0]
    if not dst.is_true:
        warp.preds[dst.index][g] = result[g]
    warp.pc += 1


def _u64(value):
    """Promote a uint32 row or scalar to uint64 without overflow."""
    if isinstance(value, np.ndarray):
        return value.astype(np.uint64)
    return np.uint64(int(value) & 0xFFFFFFFF)


def _binary_int(ex, warp, instr):
    a = ex._read(warp, instr.srcs[0])
    b = ex._read(warp, instr.srcs[1])
    return _broadcast(a), _as_u32(b)


def _op_iadd(ex, warp, cta, instr, g, counter):
    mods = instr.mods
    if "NEGB" not in mods and "X" not in mods and "CC" not in mods:
        # hot path: uint32 wraparound add == 64-bit add masked to 32 bits
        a = _broadcast(ex._read(warp, instr.srcs[0]))
        b = _as_u32(ex._read(warp, instr.srcs[1]))
        ex._write(warp, instr.dsts[0], a + b, g)
        warp.pc += 1
        return
    a, b = _binary_int(ex, warp, instr)
    if "NEGB" in mods:
        b = ~_as_u32(b) + np.uint32(1)
    # carry chains in uint32: wraparound detection (sum < addend) gives
    # exactly bit 32 of the 64-bit sum, without uint64 temporaries.
    if "X" in mods:
        partial = a + b
        result = partial + warp.carry
        carry = (partial < a) | (result < partial)
    else:
        result = a + b
        carry = result < a
    if "CC" in mods:
        np.copyto(warp.carry, carry, where=g)
    ex._write(warp, instr.dsts[0], result, g)
    warp.pc += 1


def _op_imul(ex, warp, cta, instr, g, counter):
    a, b = _binary_int(ex, warp, instr)
    # a 32x32 product always fits uint64, so one widening multiply
    # suffices; the uint64->uint32 cast is the & 0xFFFFFFFF truncation.
    wide = np.multiply(a, b, dtype=np.uint64)
    if "WIDE" in instr.mods:
        lo = wide.astype(np.uint32)
        hi = (wide >> np.uint64(32)).astype(np.uint32)
        dst = instr.dsts[0]
        ex._write(warp, dst, lo, g)
        ex._write(warp, GPR(dst.index + 1), hi, g)
    else:
        ex._write(warp, instr.dsts[0], wide.astype(np.uint32), g)
    warp.pc += 1


def _op_imad(ex, warp, cta, instr, g, counter):
    a = _broadcast(ex._read(warp, instr.srcs[0]))
    b = _as_u32(ex._read(warp, instr.srcs[1]))
    c = _u64(_as_u32(ex._read(warp, instr.srcs[2])))
    result = (np.multiply(a, b, dtype=np.uint64) + c).astype(np.uint32)
    ex._write(warp, instr.dsts[0], result, g)
    warp.pc += 1


def _op_iscadd(ex, warp, cta, instr, g, counter):
    a = _broadcast(ex._read(warp, instr.srcs[0]))
    b = _as_u32(ex._read(warp, instr.srcs[1]))
    shift = instr.srcs[2].value if len(instr.srcs) > 2 else 0
    result = ((a.astype(np.uint64) << np.uint64(shift))
              + _u64(b)) & np.uint64(0xFFFFFFFF)
    ex._write(warp, instr.dsts[0], result.astype(np.uint32), g)
    warp.pc += 1


_CMP_FNS = {
    "LT": np.less, "LE": np.less_equal, "GT": np.greater,
    "GE": np.greater_equal, "EQ": np.equal, "NE": np.not_equal,
}


def _op_isetp(ex, warp, cta, instr, g, counter):
    a = _broadcast(ex._read(warp, instr.srcs[0]))
    b = _as_u32(ex._read(warp, instr.srcs[1]))
    signed = "S32" in instr.mods
    if signed:
        lhs, rhs = _s32(a), _s32(_broadcast(b))
    else:
        lhs, rhs = a, _broadcast(b)
    result = instr.cmp_fn(lhs, rhs)
    combine = warp.preds[instr.srcs[2].index] if len(instr.srcs) > 2 \
        and hasattr(instr.srcs[2], "index") else warp.preds[7]
    result = result & combine
    dst, inv = instr.dsts[0], instr.dsts[1] if len(instr.dsts) > 1 else None
    if not dst.is_true:
        warp.preds[dst.index][g] = result[g]
    if inv is not None and not inv.is_true:
        warp.preds[inv.index][g] = (~result & combine)[g]
    warp.pc += 1


def _op_imnmx(ex, warp, cta, instr, g, counter):
    a = _broadcast(ex._read(warp, instr.srcs[0]))
    b = _broadcast(_as_u32(ex._read(warp, instr.srcs[1])))
    signed = "S32" in instr.mods
    lhs, rhs = (_s32(a), _s32(b)) if signed else (a, b)
    result = np.minimum(lhs, rhs) if "MIN" in instr.mods \
        else np.maximum(lhs, rhs)
    ex._write(warp, instr.dsts[0], result.view(np.uint32) if signed
              else result, g)
    warp.pc += 1


def _op_lop(ex, warp, cta, instr, g, counter):
    a = _broadcast(ex._read(warp, instr.srcs[0]))
    b = _broadcast(_as_u32(ex._read(warp, instr.srcs[1])))
    if "OR" in instr.mods:
        result = a | b
    elif "XOR" in instr.mods:
        result = a ^ b
    elif "NOT_B" in instr.mods:
        result = ~b
    elif "PASS_B" in instr.mods:
        result = b
    else:
        result = a & b
    ex._write(warp, instr.dsts[0], result, g)
    warp.pc += 1


def _op_shl(ex, warp, cta, instr, g, counter):
    a = _broadcast(ex._read(warp, instr.srcs[0]))
    b = _broadcast(_as_u32(ex._read(warp, instr.srcs[1]))) & np.uint32(0xFF)
    amount = np.minimum(b, np.uint32(32)).astype(np.uint32)
    wide = a.astype(np.uint64) << amount.astype(np.uint64)
    ex._write(warp, instr.dsts[0],
              (wide & np.uint64(0xFFFFFFFF)).astype(np.uint32), g)
    warp.pc += 1


def _op_shr(ex, warp, cta, instr, g, counter):
    a = _broadcast(ex._read(warp, instr.srcs[0]))
    b = _broadcast(_as_u32(ex._read(warp, instr.srcs[1]))) & np.uint32(0xFF)
    amount = np.minimum(b, np.uint32(31 if "S32" in instr.mods else 32))
    if "S32" in instr.mods:
        result = (_s32(a) >> amount.astype(np.int32)).view(np.uint32)
    else:
        wide = a.astype(np.uint64) >> amount.astype(np.uint64)
        result = wide.astype(np.uint32)
    ex._write(warp, instr.dsts[0], result, g)
    warp.pc += 1


def _op_popc(ex, warp, cta, instr, g, counter):
    a = _broadcast(ex._read(warp, instr.srcs[0]))
    bits = np.unpackbits(a.view(np.uint8).reshape(WARP_SIZE, 4), axis=1)
    ex._write(warp, instr.dsts[0], bits.sum(axis=1).astype(np.uint32), g)
    warp.pc += 1


def _op_flo(ex, warp, cta, instr, g, counter):
    a = _broadcast(ex._read(warp, instr.srcs[0]))
    # bit_length via frexp: float64 holds any uint32 exactly, and frexp's
    # exponent is exact (no log2 rounding hazard at powers of two).
    _, exponent = np.frexp(a.astype(np.float64))
    result = np.where(a == 0, np.uint32(0xFFFFFFFF),
                      (exponent - 1).astype(np.uint32))
    ex._write(warp, instr.dsts[0], result, g)
    warp.pc += 1


def _op_bfe(ex, warp, cta, instr, g, counter):
    a = _broadcast(ex._read(warp, instr.srcs[0]))
    spec = _broadcast(_as_u32(ex._read(warp, instr.srcs[1])))
    pos = spec & np.uint32(0xFF)
    width = (spec >> np.uint32(8)) & np.uint32(0xFF)
    wide = a.astype(np.uint64) >> pos.astype(np.uint64)
    mask = (np.uint64(1) << width.astype(np.uint64)) - np.uint64(1)
    ex._write(warp, instr.dsts[0], (wide & mask).astype(np.uint32), g)
    warp.pc += 1


def _op_bfi(ex, warp, cta, instr, g, counter):
    base = _broadcast(ex._read(warp, instr.srcs[0]))
    spec = _broadcast(_as_u32(ex._read(warp, instr.srcs[1])))
    insert = _broadcast(_as_u32(ex._read(warp, instr.srcs[2])))
    pos = (spec & np.uint32(0xFF)).astype(np.uint64)
    width = ((spec >> np.uint32(8)) & np.uint32(0xFF)).astype(np.uint64)
    mask = ((np.uint64(1) << width) - np.uint64(1)) << pos
    result = (base.astype(np.uint64) & ~mask) \
        | ((insert.astype(np.uint64) << pos) & mask)
    ex._write(warp, instr.dsts[0], result.astype(np.uint32), g)
    warp.pc += 1


def _op_iabs(ex, warp, cta, instr, g, counter):
    a = _s32(_broadcast(ex._read(warp, instr.srcs[0])))
    ex._write(warp, instr.dsts[0], np.abs(a).view(np.uint32), g)
    warp.pc += 1


def _fbinary(ex, warp, instr):
    a = _f32(_broadcast(ex._read(warp, instr.srcs[0])))
    b_raw = _broadcast(_as_u32(ex._read(warp, instr.srcs[1])))
    return a, _f32(b_raw)


def _op_fadd(ex, warp, cta, instr, g, counter):
    a, b = _fbinary(ex, warp, instr)
    if "NEGB" in instr.mods:
        b = -b
    ex._write(warp, instr.dsts[0], _from_f32(a + b), g)
    warp.pc += 1


def _op_fmul(ex, warp, cta, instr, g, counter):
    a, b = _fbinary(ex, warp, instr)
    with np.errstate(all="ignore"):
        ex._write(warp, instr.dsts[0], _from_f32(a * b), g)
    warp.pc += 1


def _op_ffma(ex, warp, cta, instr, g, counter):
    a = _f32(_broadcast(ex._read(warp, instr.srcs[0])))
    b = _f32(_broadcast(_as_u32(ex._read(warp, instr.srcs[1]))))
    c = _f32(_broadcast(_as_u32(ex._read(warp, instr.srcs[2]))))
    with np.errstate(all="ignore"):
        ex._write(warp, instr.dsts[0], _from_f32(a * b + c), g)
    warp.pc += 1


def _op_fsetp(ex, warp, cta, instr, g, counter):
    a = _f32(_broadcast(ex._read(warp, instr.srcs[0])))
    b = _f32(_broadcast(_as_u32(ex._read(warp, instr.srcs[1]))))
    with np.errstate(invalid="ignore"):
        result = instr.cmp_fn(a, b)
    dst = instr.dsts[0]
    if not dst.is_true:
        warp.preds[dst.index][g] = result[g]
    if len(instr.dsts) > 1 and not instr.dsts[1].is_true:
        warp.preds[instr.dsts[1].index][g] = (~result)[g]
    warp.pc += 1


def _op_fmnmx(ex, warp, cta, instr, g, counter):
    a, b = _fbinary(ex, warp, instr)
    with np.errstate(invalid="ignore"):
        result = np.fmin(a, b) if "MIN" in instr.mods else np.fmax(a, b)
    ex._write(warp, instr.dsts[0], _from_f32(result), g)
    warp.pc += 1


def _op_mufu(ex, warp, cta, instr, g, counter):
    a = _f32(_broadcast(ex._read(warp, instr.srcs[0])))
    with np.errstate(all="ignore"):
        if "RCP" in instr.mods:
            result = np.float32(1.0) / a
        elif "SQRT" in instr.mods:
            result = np.sqrt(a)
        elif "RSQ" in instr.mods:
            result = np.float32(1.0) / np.sqrt(a)
        elif "LG2" in instr.mods:
            result = np.log2(a)
        elif "EX2" in instr.mods:
            result = np.exp2(a)
        elif "SIN" in instr.mods:
            result = np.sin(a)
        elif "COS" in instr.mods:
            result = np.cos(a)
        else:
            raise DeviceFault(f"MUFU without function: {instr!r}")
    ex._write(warp, instr.dsts[0], _from_f32(result), g)
    warp.pc += 1


def _op_f2i(ex, warp, cta, instr, g, counter):
    a = _f32(_broadcast(ex._read(warp, instr.srcs[0])))
    with np.errstate(invalid="ignore"):
        clipped = np.nan_to_num(np.trunc(a), nan=0.0,
                                posinf=2**31 - 1, neginf=-2**31)
        if "U32" in instr.mods:
            result = np.clip(clipped, 0, 2**32 - 1).astype(np.uint32)
        else:
            result = np.clip(clipped, -(2**31), 2**31 - 1) \
                .astype(np.int32).view(np.uint32)
    ex._write(warp, instr.dsts[0], result, g)
    warp.pc += 1


def _op_i2f(ex, warp, cta, instr, g, counter):
    a = _broadcast(ex._read(warp, instr.srcs[0]))
    if "S32" in instr.mods:
        result = _s32(a).astype(np.float32)
    else:
        result = a.astype(np.float32)
    ex._write(warp, instr.dsts[0], _from_f32(result), g)
    warp.pc += 1


def _op_sel_advance(ex, warp, cta, instr, g, counter):
    _op_sel(ex, warp, cta, instr, g, counter)
    warp.pc += 1


def _op_mov_advance(ex, warp, cta, instr, g, counter):
    _op_mov(ex, warp, cta, instr, g, counter)
    warp.pc += 1


_SIGNED_EXT = {"S8": (1, True), "U8": (1, False),
               "S16": (2, True), "U16": (2, False)}

#: Opcode → fixed memory space of the vectorized classifier; generic
#: LD/ST dispatch by window instead (same ladder as ``_resolve_space``).
_GLOBAL_OPS = frozenset({Opcode.LDG, Opcode.STG, Opcode.ATOM, Opcode.RED,
                         Opcode.TLD})
_SHARED_OPS = frozenset({Opcode.LDS, Opcode.STS, Opcode.ATOMS})
_LOCAL_OPS = frozenset({Opcode.LDL, Opcode.STL})


def _local_bounds_ok(offsets: np.ndarray, width: int) -> bool:
    return (int(offsets.min()) >= 0
            and int(offsets.max()) + width <= LOCAL_PHYS_BYTES)


def _vector_plan(ex, warp, cta, instr, g, addrs, width):
    """Classify every active lane of one warp memory access at once.

    Returns ``(memory, offsets, local_tids)``: the single
    :class:`Memory` serving all lanes plus per-lane int64 offsets, or —
    for thread-local accesses (``local_tids`` not None) — offsets into
    the CTA-wide local block, gathered 2-D by (thread, byte).  Returns
    None when the access cannot be served by one vectorized
    gather/scatter: no active lanes, lanes straddling spaces, unmapped
    generic addresses, or any lane out of bounds — the scalar loop then
    reproduces the exact per-lane classification and fault.
    """
    active = addrs[g]
    if active.size == 0:
        return None
    offsets = active.astype(np.int64)
    opcode = instr.opcode
    if opcode in _GLOBAL_OPS:
        mem = ex.device.global_mem
        offsets -= GLOBAL_BASE
    elif opcode in _SHARED_OPS:
        mem = cta.shared
    elif opcode is Opcode.LDC:
        mem = ex.device.const_mem
    elif opcode in _LOCAL_OPS:
        if not _local_bounds_ok(offsets, width):
            return None
        return None, offsets, warp.lane_thread_ids[g]
    else:  # generic LD/ST: the local window sits above the global heap
        if bool((offsets >= LOCAL_BASE).all()):
            offsets -= LOCAL_BASE
            if not _local_bounds_ok(offsets, width):
                return None
            return None, offsets, warp.lane_thread_ids[g]
        if bool(((offsets >= GLOBAL_BASE)
                 & (offsets < LOCAL_BASE)).all()):
            mem = ex.device.global_mem
            offsets -= GLOBAL_BASE
        elif bool(((offsets >= SHARED_BASE)
                   & (offsets < SHARED_BASE + SHARED_BYTES)).all()):
            mem = cta.shared
            offsets -= SHARED_BASE
        else:
            return None          # mixed-space or unmapped
    if not mem.lanes_in_bounds(offsets, width):
        return None
    return mem, offsets, None


def _local_lane_index(offsets: np.ndarray, width: int) -> np.ndarray:
    return offsets.reshape(-1, 1) + np.arange(width, dtype=np.int64)


def _local_read_lanes(cta, tids, offsets, width) -> np.ndarray:
    block = cta.local_block()
    raw = block[tids.reshape(-1, 1), _local_lane_index(offsets, width)]
    return raw.view(np.uint32)


def _local_write_lanes(cta, tids, offsets, width, words) -> None:
    block = cta.local_block()
    payload = np.ascontiguousarray(words, dtype=np.uint32).view(np.uint8)
    block[tids.reshape(-1, 1), _local_lane_index(offsets, width)] = \
        payload.reshape(len(offsets), width)


def _scatter_is_disjoint(offsets: np.ndarray, width: int) -> bool:
    """Whether the per-lane ranges ``[offset, offset+width)`` never
    overlap — the precondition for a well-defined numpy scatter (on
    overlap, lane order decides and the scalar loop is authoritative)."""
    if len(offsets) < 2:
        return True
    ordered = np.sort(offsets)
    return int((ordered[1:] - ordered[:-1]).min()) >= width


def _lane_indices(ex, g):
    """Active-lane indices of the guard mask being dispatched.

    ``_execute``/``_execute_block``/``_execute_site`` compute the
    nonzero scan once per dispatch and stash it on the executor; the
    scalar per-lane loops reuse it instead of re-scanning *g* (they
    always receive the dispatched guard unchanged)."""
    idx = ex._active_lanes
    if idx is None:
        return np.nonzero(g)[0]
    return idx


def _op_load(ex, warp, cta, instr, g, counter):
    width = instr.mem_width
    addrs = ex.lane_addresses(warp, instr)
    if instr.opcode in (Opcode.LDG, Opcode.LD, Opcode.TLD):
        ex._account_global(addrs, g, width, counter)
    dst = instr.dsts[0]
    narrow = instr.narrow
    if narrow is None and width % 4 == 0 and ex.config.vector_memory:
        plan = _vector_plan(ex, warp, cta, instr, g, addrs, width)
        if plan is not None:
            mem, offsets, tids = plan
            if tids is None:
                words = mem.read_lanes(offsets, width)
            else:
                words = _local_read_lanes(cta, tids, offsets, width)
            regs = warp.regs
            for word in range(width // 4):
                regs[dst.index + word][g] = words[:, word]
            warp.pc += 1
            return
    for lane in _lane_indices(ex, g):
        lane = int(lane)
        mem, offset, _ = ex._resolve_space(warp, cta, instr,
                                           int(addrs[lane]), lane)
        if narrow:
            nbytes, signed = _SIGNED_EXT[narrow]
            raw = mem.read(offset, nbytes)
            if signed and raw & (1 << (8 * nbytes - 1)):
                raw -= 1 << (8 * nbytes)
            warp.regs[dst.index, lane] = np.uint32(raw & 0xFFFFFFFF)
        else:
            raw = mem.read(offset, width)
            for word in range(width // 4):
                warp.regs[dst.index + word, lane] = np.uint32(
                    (raw >> (32 * word)) & 0xFFFFFFFF)
    warp.pc += 1


def _op_store(ex, warp, cta, instr, g, counter):
    width = instr.mem_width
    addrs = ex.lane_addresses(warp, instr)
    if instr.opcode in (Opcode.STG, Opcode.ST):
        ex._account_global(addrs, g, width, counter)
    data = instr.srcs[-1]
    narrow = instr.narrow
    if (narrow is None and width % 4 == 0 and ex.config.vector_memory
            and isinstance(data, GPR) and not data.is_zero):
        plan = _vector_plan(ex, warp, cta, instr, g, addrs, width)
        if plan is not None:
            mem, offsets, tids = plan
            # thread-local lanes write disjoint rows by construction
            if tids is not None or _scatter_is_disjoint(offsets, width):
                words = np.empty((len(offsets), width // 4), dtype=np.uint32)
                regs = warp.regs
                for word in range(width // 4):
                    words[:, word] = regs[data.index + word][g]
                if tids is None:
                    mem.write_lanes(offsets, width, words)
                else:
                    _local_write_lanes(cta, tids, offsets, width, words)
                warp.pc += 1
                return
    for lane in _lane_indices(ex, g):
        lane = int(lane)
        mem, offset, _ = ex._resolve_space(warp, cta, instr,
                                           int(addrs[lane]), lane)
        if isinstance(data, GPR) and not data.is_zero:
            if narrow:
                nbytes, _ = _SIGNED_EXT[narrow]
                mem.write(offset, nbytes,
                          int(warp.regs[data.index, lane]))
                continue
            value = 0
            for word in range(width // 4):
                value |= int(warp.regs[data.index + word, lane]) << (32 * word)
            mem.write(offset, width, value)
        else:
            value = 0 if not isinstance(data, Imm) else data.value
            mem.write(offset, width, value)
    warp.pc += 1


_ATOM_FNS = {
    "ADD": lambda old, val: old + val,
    "AND": lambda old, val: old & val,
    "OR": lambda old, val: old | val,
    "XOR": lambda old, val: old ^ val,
    "EXCH": lambda old, val: val,
    "INC": lambda old, val: old + 1,
    "DEC": lambda old, val: old - 1,
}


def _atom_vectorized(ex, warp, cta, instr, g, addrs, op, signed,
                     value_src, has_dst) -> bool:
    """Serve a whole warp atomic with one gather/compute/scatter.

    Only when every active lane targets a distinct word — conflicting
    lanes serialize in lane order, which the scalar loop is
    authoritative for.  Returns False to send the access down the
    scalar path.
    """
    plan = _vector_plan(ex, warp, cta, instr, g, addrs, 4)
    if plan is None:
        return False
    mem, offsets, tids = plan
    if tids is not None or not _scatter_is_disjoint(offsets, 4):
        return False
    old = mem.read_lanes(offsets, 4)[:, 0]
    if isinstance(value_src, GPR):
        val = warp.regs[value_src.index][g]
    else:
        val = np.full(len(offsets), value_src.value & 0xFFFFFFFF,
                      dtype=np.uint32)
    if op in ("MIN", "MAX"):
        fn = np.minimum if op == "MIN" else np.maximum
        if signed:
            new = fn(old.view(np.int32), val.view(np.int32)).view(np.uint32)
        else:
            new = fn(old, val)
    elif op == "EXCH":
        new = val
    elif op == "INC":
        new = old + np.uint32(1)
    elif op == "DEC":
        new = old - np.uint32(1)
    elif op == "AND":
        new = old & val
    elif op == "OR":
        new = old | val
    elif op == "XOR":
        new = old ^ val
    elif op == "ADD":
        new = old + val
    else:
        return False
    mem.write_lanes(offsets, 4, new.reshape(-1, 1))
    if has_dst:
        warp.regs[instr.dsts[0].index][g] = old
    return True


def _op_atom(ex, warp, cta, instr, g, counter):
    addrs = ex.lane_addresses(warp, instr)
    if instr.opcode in (Opcode.ATOM, Opcode.RED):
        ex._account_global(addrs, g, 4, counter)
    op = instr.atom_op
    signed = "S32" in instr.mods
    value_src = instr.srcs[-1]
    has_dst = bool(instr.dsts)
    if ex.config.vector_memory and _atom_vectorized(
            ex, warp, cta, instr, g, addrs, op, signed, value_src, has_dst):
        warp.pc += 1
        return
    for lane in _lane_indices(ex, g):
        lane = int(lane)
        mem, offset, _ = ex._resolve_space(warp, cta, instr,
                                           int(addrs[lane]), lane)
        old = mem.read(offset, 4)
        val = int(warp.regs[value_src.index, lane]) \
            if isinstance(value_src, GPR) else int(value_src.value)
        if op in ("MIN", "MAX"):
            def to_signed(x):
                return x - (1 << 32) if signed and x & (1 << 31) else x
            pair = (to_signed(old), to_signed(val))
            new = (min if op == "MIN" else max)(pair)
        else:
            new = _ATOM_FNS[op](old, val)
        mem.write(offset, 4, new & 0xFFFFFFFF)
        if has_dst:
            warp.regs[instr.dsts[0].index, lane] = np.uint32(old & 0xFFFFFFFF)
    warp.pc += 1


def _op_membar(ex, warp, cta, instr, g, counter):
    warp.pc += 1


def _op_bra(ex, warp, cta, instr, g, counter):
    target = ex._targets[warp.pc]
    warp.branch(g, target)


def _op_jcal(ex, warp, cta, instr, g, counter):
    address = getattr(instr, "jcal_addr", None)
    if address is None:
        target_op = instr.srcs[0] if instr.srcs else None
        if not isinstance(target_op, Imm):
            raise DeviceFault(f"JCAL needs an absolute target: {instr!r}")
        address = target_op.value & 0xFFFFFFFF
    binding = ex.device.handler_bindings.get(address)
    if binding is not None:
        ex.stats.handler_calls += 1
        binding(ex, warp, cta, g)
        warp.pc += 1
        return
    raise DeviceFault(f"JCAL to unbound address 0x{address:x}")


def _op_cal(ex, warp, cta, instr, g, counter):
    target = ex._targets[warp.pc]
    warp.call_stack.append(warp.pc + 1)
    warp.pc = target


def _op_ret(ex, warp, cta, instr, g, counter):
    if warp.call_stack:
        warp.pc = warp.call_stack.pop()
    else:
        warp.exit_lanes(g)


def _op_exit(ex, warp, cta, instr, g, counter):
    warp.exit_lanes(g)


def _op_ssy(ex, warp, cta, instr, g, counter):
    warp.push_sync(ex._targets[warp.pc])
    warp.pc += 1


def _op_sync(ex, warp, cta, instr, g, counter):
    warp.sync()


def _op_pbk(ex, warp, cta, instr, g, counter):
    warp.push_brk(ex._targets[warp.pc])
    warp.pc += 1


def _op_brk(ex, warp, cta, instr, g, counter):
    warp.brk(g)


def _op_bar(ex, warp, cta, instr, g, counter):
    warp.at_barrier = True
    warp.pc += 1


def _op_nop(ex, warp, cta, instr, g, counter):
    warp.pc += 1


def _op_vote(ex, warp, cta, instr, g, counter):
    pred_src = instr.srcs[0]
    row = warp.preds[pred_src.index] & warp.active
    if "BALLOT" in instr.mods:
        value = np.uint32(_mask_to_int(row))
    elif "ALL" in instr.mods:
        value = np.uint32(1 if bool((row | ~warp.active).all()) else 0)
    else:  # ANY
        value = np.uint32(1 if bool(row.any()) else 0)
    ex._write(warp, instr.dsts[0], _broadcast(value), g)
    warp.pc += 1


def _op_shfl(ex, warp, cta, instr, g, counter):
    value = _broadcast(ex._read(warp, instr.srcs[0]))
    lane_spec = _broadcast(_as_u32(ex._read(warp, instr.srcs[1])))
    lanes = np.arange(WARP_SIZE, dtype=np.int64)
    if "IDX" in instr.mods:
        source = lane_spec.astype(np.int64)
    elif "UP" in instr.mods:
        source = lanes - lane_spec.astype(np.int64)
    elif "DOWN" in instr.mods:
        source = lanes + lane_spec.astype(np.int64)
    else:  # BFLY
        source = lanes ^ lane_spec.astype(np.int64)
    source = np.clip(source, 0, WARP_SIZE - 1)
    ex._write(warp, instr.dsts[0], value[source], g)
    warp.pc += 1


def _op_ldc(ex, warp, cta, instr, g, counter):
    _op_load(ex, warp, cta, instr, g, counter)


_DISPATCH: Dict[Opcode, Callable] = {
    Opcode.MOV: _op_mov_advance,
    Opcode.MOV32I: _op_mov_advance,
    Opcode.SEL: _op_sel_advance,
    Opcode.S2R: _op_s2r,
    Opcode.P2R: _op_p2r,
    Opcode.R2P: _op_r2p,
    Opcode.PSETP: _op_psetp,
    Opcode.IADD: _op_iadd,
    Opcode.IADD32I: _op_iadd,
    Opcode.IMUL: _op_imul,
    Opcode.IMAD: _op_imad,
    Opcode.ISCADD: _op_iscadd,
    Opcode.ISETP: _op_isetp,
    Opcode.IMNMX: _op_imnmx,
    Opcode.LOP: _op_lop,
    Opcode.LOP32I: _op_lop,
    Opcode.SHL: _op_shl,
    Opcode.SHR: _op_shr,
    Opcode.POPC: _op_popc,
    Opcode.FLO: _op_flo,
    Opcode.BFE: _op_bfe,
    Opcode.BFI: _op_bfi,
    Opcode.IABS: _op_iabs,
    Opcode.FADD: _op_fadd,
    Opcode.FMUL: _op_fmul,
    Opcode.FFMA: _op_ffma,
    Opcode.FSETP: _op_fsetp,
    Opcode.FMNMX: _op_fmnmx,
    Opcode.MUFU: _op_mufu,
    Opcode.F2I: _op_f2i,
    Opcode.I2F: _op_i2f,
    Opcode.F2F: _op_mov_advance,
    Opcode.LD: _op_load,
    Opcode.ST: _op_store,
    Opcode.LDG: _op_load,
    Opcode.STG: _op_store,
    Opcode.LDS: _op_load,
    Opcode.STS: _op_store,
    Opcode.LDL: _op_load,
    Opcode.STL: _op_store,
    Opcode.LDC: _op_ldc,
    Opcode.ATOM: _op_atom,
    Opcode.ATOMS: _op_atom,
    Opcode.RED: _op_atom,
    Opcode.TLD: _op_load,
    Opcode.MEMBAR: _op_membar,
    Opcode.BRA: _op_bra,
    Opcode.JCAL: _op_jcal,
    Opcode.CAL: _op_cal,
    Opcode.RET: _op_ret,
    Opcode.EXIT: _op_exit,
    Opcode.SSY: _op_ssy,
    Opcode.SYNC: _op_sync,
    Opcode.PBK: _op_pbk,
    Opcode.BRK: _op_brk,
    Opcode.BAR: _op_bar,
    Opcode.NOP: _op_nop,
    Opcode.BPT: _op_nop,
    Opcode.VOTE: _op_vote,
    Opcode.SHFL: _op_shfl,
}
