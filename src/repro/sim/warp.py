"""Warp state: registers, predicates, and the divergence token stack.

The token stack implements Kepler-style divergence control:

* ``SSY L`` pushes a *sync* token carrying the current active mask and the
  reconvergence point ``L``.
* a divergent predicated branch pushes a *div* token carrying the
  fall-through PC and the not-taken mask, then runs the taken side.
* ``SYNC`` (sitting at the reconvergence point) pops: a div token resumes
  the other side; a sync token restores the region-entry mask.
* ``PBK L`` pushes a *brk* token (the loop-break point); ``BRK`` parks the
  breaking lanes in that token **and scrubs them from every token above
  it**, so that popping an inner sync token can never resurrect a lane
  that has left the loop.
* ``EXIT`` retires lanes from the warp and from every token.

Whenever the active mask empties, the stack unwinds: empty tokens are
discarded, div tokens resume the deferred side, brk tokens release the
accumulated breakers at the loop exit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.sim.errors import DeviceFault

WARP_SIZE = 32


def mask_to_u32(mask: np.ndarray) -> int:
    """Pack a 32-lane boolean mask into its ballot integer (lane 0 =
    bit 0) with one vectorized pass."""
    return int(np.packbits(mask[::-1]).view(">u4")[0])


class TokenKind(enum.Enum):
    SYNC = "sync"   # pushed by SSY
    DIV = "div"     # pushed by a divergent branch
    BRK = "brk"     # pushed by PBK


@dataclass
class Token:
    kind: TokenKind
    pc: int                    # resume PC (reconv / fallthrough / break)
    mask: np.ndarray           # lanes parked in (or owned by) this token

    def __repr__(self) -> str:
        bits = mask_to_u32(self.mask) if len(self.mask) == 32 else -1
        return f"<{self.kind.value} pc={self.pc} mask={bits:#010x}>"


class Warp:
    """One warp's architectural state."""

    def __init__(self, warp_id: int, num_regs: int, num_lanes: int,
                 lane_thread_ids: np.ndarray):
        self.warp_id = warp_id
        self.num_regs = max(num_regs, 2)
        #: 32-bit register file, one row per architectural register.
        self.regs = np.zeros((self.num_regs, WARP_SIZE), dtype=np.uint32)
        #: predicate file P0..P6 + PT (index 7, pinned true).
        self.preds = np.zeros((8, WARP_SIZE), dtype=bool)
        self.preds[7, :] = True
        #: carry flag (set by IADD.CC, consumed by IADD.X).
        self.carry = np.zeros(WARP_SIZE, dtype=bool)
        self.pc = 0
        self.active = np.zeros(WARP_SIZE, dtype=bool)
        self.active[:num_lanes] = True
        #: lanes that belong to the launch (vs padding of a partial warp).
        self.valid = self.active.copy()
        self.stack: List[Token] = []
        self.call_stack: List[int] = []
        self.done = False
        self.at_barrier = False
        #: global linear thread id per lane (for local-window addressing).
        self.lane_thread_ids = lane_thread_ids
        #: CTA-relative linear thread id of lane 0.
        self.base_tid = int(lane_thread_ids[0]) if len(lane_thread_ids) else 0

    # ------------------------------------------------------------ masks

    def guard_mask(self, pred_row: Optional[np.ndarray],
                   negated: bool) -> np.ndarray:
        """Lanes that are active *and* pass the instruction's guard."""
        if pred_row is None:
            return self.active.copy()
        passed = ~pred_row if negated else pred_row
        return self.active & passed

    # ------------------------------------------------------ stack ops

    def push_sync(self, reconv_pc: int) -> None:
        self.stack.append(Token(TokenKind.SYNC, reconv_pc, self.active.copy()))

    def push_brk(self, break_pc: int) -> None:
        self.stack.append(Token(TokenKind.BRK, break_pc,
                                np.zeros(WARP_SIZE, dtype=bool)))

    def branch(self, taken: np.ndarray, target_pc: int) -> None:
        """Resolve a predicated branch: *taken* lanes jump to
        *target_pc*, the rest fall through to ``pc+1``."""
        not_taken = self.active & ~taken
        if not taken.any():
            self.pc += 1
            return
        if not not_taken.any():
            self.pc = target_pc
            return
        self.stack.append(Token(TokenKind.DIV, self.pc + 1, not_taken))
        self.active = taken.copy()
        self.pc = target_pc

    def sync(self) -> None:
        """Execute SYNC at a reconvergence point."""
        while True:
            if not self.stack:
                raise DeviceFault(f"warp {self.warp_id}: SYNC on empty stack")
            token = self.stack.pop()
            if not token.mask.any():
                continue
            if token.kind is TokenKind.DIV:
                self.active = token.mask
                self.pc = token.pc
                return
            if token.kind is TokenKind.SYNC:
                self.active = token.mask
                self.pc += 1
                return
            raise DeviceFault(
                f"warp {self.warp_id}: SYNC popped a {token.kind.value} token")

    def brk(self, breaking: np.ndarray) -> None:
        """Park *breaking* lanes at the innermost break point."""
        if not breaking.any():
            self.pc += 1
            return
        brk_index = None
        for index in range(len(self.stack) - 1, -1, -1):
            if self.stack[index].kind is TokenKind.BRK:
                brk_index = index
                break
        if brk_index is None:
            raise DeviceFault(f"warp {self.warp_id}: BRK without PBK")
        self.stack[brk_index].mask |= breaking
        for token in self.stack[brk_index + 1:]:
            token.mask &= ~breaking
        self.active = self.active & ~breaking
        if self.active.any():
            self.pc += 1
        else:
            self._unwind()

    def exit_lanes(self, exiting: np.ndarray) -> None:
        """Retire lanes (EXIT): remove them from the warp entirely."""
        if not exiting.any():
            self.pc += 1
            return
        for token in self.stack:
            token.mask &= ~exiting
        self.valid = self.valid & ~exiting
        self.active = self.active & ~exiting
        if self.active.any():
            self.pc += 1
        else:
            self._unwind()

    def _unwind(self) -> None:
        """Resume the nearest deferred lanes after the active mask
        emptied (all lanes broke, exited, or diverged away)."""
        while self.stack:
            token = self.stack.pop()
            if not token.mask.any():
                continue
            self.active = token.mask
            self.pc = token.pc
            return
        self.done = True

    @property
    def stack_depth(self) -> int:
        return len(self.stack)
