"""The simulated GPU.

A functional SIMT machine in the Kepler mould: 32-lane warps with a
divergence token stack (``SSY``/``SYNC``/``PBK``/``BRK``), CTA-wide
barriers, shared/local/global/constant/texture memory spaces, per-warp
32-byte-line coalescing, optional L1/L2 cache models, and a simple
issue/transaction cycle cost model.

Public surface:

* :class:`repro.sim.device.Device` — memory allocation, host↔device
  copies, program loading, kernel launch.
* :class:`repro.sim.launch.Dim3` — grid/block dimensions.
* :class:`repro.sim.executor.KernelStats` — per-launch statistics.
* :exc:`repro.sim.errors.DeviceFault` — the simulated equivalent of an
  ``Xid`` error / CUDA "unspecified launch failure" (bad addresses, stack
  overflows), used by the error-injection study to detect crashes.
"""

from repro.sim.device import Device
from repro.sim.errors import DeviceFault, SimulationError, HangDetected
from repro.sim.launch import Dim3
from repro.sim.executor import KernelStats

__all__ = [
    "Device",
    "DeviceFault",
    "SimulationError",
    "HangDetected",
    "Dim3",
    "KernelStats",
]
