"""SM occupancy calculator (Kepler-flavoured).

The paper's instrumentation discussion repeatedly touches occupancy:
handlers are capped at 16 registers so they do not change the kernel's
register footprint, and Section 9.3 warns that handlers using shared
memory "risk affecting occupancy".  This module provides the standard
occupancy math (the CUDA Occupancy Calculator's core) over the same
per-SM limits as a Tesla K10-class device, so studies and tests can
quantify those effects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.warp import WARP_SIZE


@dataclass(frozen=True)
class SMResources:
    """Per-SM limits (defaults: Kepler GK104-class)."""

    max_threads: int = 2048
    max_warps: int = 64
    max_ctas: int = 16
    registers: int = 65536
    shared_bytes: int = 48 << 10
    register_allocation_unit: int = 256
    shared_allocation_unit: int = 256

    def _round_up(self, value: int, unit: int) -> int:
        if value == 0:
            return 0
        return ((value + unit - 1) // unit) * unit


KEPLER_SM = SMResources()


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation for one kernel config."""

    ctas_per_sm: int
    warps_per_sm: int
    limiter: str

    @property
    def fraction(self) -> float:
        return self.warps_per_sm / KEPLER_SM.max_warps


def occupancy(threads_per_cta: int, regs_per_thread: int,
              shared_per_cta: int = 0,
              sm: SMResources = KEPLER_SM) -> Occupancy:
    """CTAs/warps resident per SM and the limiting resource."""
    if threads_per_cta <= 0 or threads_per_cta > 1024:
        raise ValueError(f"bad CTA size {threads_per_cta}")
    warps_per_cta = (threads_per_cta + WARP_SIZE - 1) // WARP_SIZE

    limits = {"ctas": sm.max_ctas,
              "threads": sm.max_threads // threads_per_cta,
              "warps": sm.max_warps // warps_per_cta}
    regs_per_cta = sm._round_up(
        regs_per_thread * WARP_SIZE,
        sm.register_allocation_unit) * warps_per_cta
    limits["registers"] = sm.registers // regs_per_cta if regs_per_cta \
        else sm.max_ctas
    if shared_per_cta:
        rounded = sm._round_up(shared_per_cta, sm.shared_allocation_unit)
        limits["shared"] = sm.shared_bytes // rounded if rounded else 0

    limiter = min(limits, key=lambda key: limits[key])
    ctas = max(limits[limiter], 0)
    return Occupancy(ctas_per_sm=ctas,
                     warps_per_sm=ctas * warps_per_cta,
                     limiter=limiter)


def occupancy_impact_of_instrumentation(kernel_before, kernel_after,
                                        threads_per_cta: int,
                                        shared_per_cta: int = 0) -> float:
    """Ratio of instrumented to baseline occupancy for a kernel pair —
    1.0 when SASSI's 16-register handler cap does its job (the injected
    code reuses the ABI registers, so the footprint barely moves)."""
    before = occupancy(threads_per_cta, kernel_before.num_regs,
                       shared_per_cta)
    after = occupancy(threads_per_cta, kernel_after.num_regs,
                      shared_per_cta)
    if before.warps_per_sm == 0:
        return 0.0
    return after.warps_per_sm / before.warps_per_sm
