"""The device: memory, program image, handler bindings, kernel launch.

The host-side API mirrors the CUDA runtime shape the paper's tooling
assumes: allocate device memory, copy to/from it, launch kernels with a
grid/block configuration, and register launch/exit callbacks (which the
CUPTI analog in :mod:`repro.sassi.cupti` builds on to marshal
instrumentation counters, paper Section 3.3).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.isa.program import SassKernel, SassProgram, STACK_BASE_OFFSET
from repro.sim.errors import DeviceFault
from repro.sim.executor import Executor, KernelStats, SimConfig
from repro.sim.launch import Dim3
from repro.sim.memory import (
    DEFAULT_HEAP_BYTES,
    GLOBAL_BASE,
    LOCAL_BASE,
    Memory,
)
from repro.telemetry.collector import span as telemetry_span

#: Size of constant bank 0 (launch configuration + kernel parameters).
CONST_BANK_BYTES = 64 << 10

LaunchCallback = Callable[["Device", SassKernel, Dim3, Dim3], None]
ExitCallback = Callable[["Device", SassKernel, KernelStats], None]


class Device:
    """A simulated GPU with one resident program."""

    def __init__(self, heap_bytes: int = DEFAULT_HEAP_BYTES,
                 config: Optional[SimConfig] = None):
        self.heap_bytes = heap_bytes
        self.global_mem = Memory(heap_bytes, name="global")
        self.const_mem = Memory(CONST_BANK_BYTES, name="const")
        self.program = SassProgram()
        self.handler_bindings: Dict[int, Callable] = {}
        self.config = config or SimConfig()
        self._bump = 0x100  # leave a null page unallocated
        self._launch_callbacks: List[LaunchCallback] = []
        self._exit_callbacks: List[ExitCallback] = []
        self.last_stats: Optional[KernelStats] = None
        #: optional repro.sassi.runtime.AdaptiveController gating
        #: compiled instrumentation sites at launch time
        self.adaptive = None
        # the generic local window base, read by injected code from
        # c[0x0][0x24] exactly as in the paper's Figure 2.
        self.const_mem.write(STACK_BASE_OFFSET, 4, LOCAL_BASE)

    # ----------------------------------------------------------- memory

    def alloc(self, nbytes: int, align: int = 256) -> int:
        """Allocate device-heap memory; returns a generic address."""
        offset = (self._bump + align - 1) & ~(align - 1)
        if offset + nbytes > self.heap_bytes:
            raise DeviceFault(
                f"device OOM: {nbytes} bytes requested, "
                f"{self.heap_bytes - offset} free")
        self._bump = offset + nbytes
        return GLOBAL_BASE + offset

    def alloc_array(self, array: np.ndarray, align: int = 256) -> int:
        """Allocate and copy a numpy array; returns its device address."""
        pointer = self.alloc(array.nbytes, align)
        self.memcpy_htod(pointer, array)
        return pointer

    def reset_heap(self) -> None:
        """Free everything (bump-allocator reset) and zero the heap."""
        self._bump = 0x100
        self.global_mem.data[:] = 0

    def _heap_offset(self, pointer: int, nbytes: int) -> int:
        offset = pointer - GLOBAL_BASE
        if offset < 0 or offset + nbytes > self.heap_bytes:
            raise DeviceFault(f"bad device pointer 0x{pointer:x}")
        return offset

    def memcpy_htod(self, pointer: int, data: Union[bytes, np.ndarray]) -> None:
        payload = data.tobytes() if isinstance(data, np.ndarray) else bytes(data)
        self.global_mem.write_bytes(self._heap_offset(pointer, len(payload)),
                                    payload)

    def memcpy_dtoh(self, pointer: int, nbytes: int) -> bytes:
        return self.global_mem.read_bytes(self._heap_offset(pointer, nbytes),
                                          nbytes)

    def read_array(self, pointer: int, count: int, dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        raw = self.memcpy_dtoh(pointer, count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).copy()

    def memset(self, pointer: int, value: int, nbytes: int) -> None:
        offset = self._heap_offset(pointer, nbytes)
        self.global_mem.data[offset:offset + nbytes] = value & 0xFF

    def const_read(self, bank: int, offset: int) -> int:
        if bank != 0:
            raise DeviceFault(f"only constant bank 0 exists (got {bank})")
        return self.const_mem.read(offset, 4)

    # ---------------------------------------------------------- program

    def load_kernel(self, kernel: SassKernel) -> SassKernel:
        return self.program.add_kernel(kernel)

    def bind_handler(self, name: str, fn: Callable) -> int:
        """Assign a trampoline address to *fn* under *name* (the nvlink
        analog for instrumentation handlers)."""
        address = self.program.add_handler_symbol(name)
        self.handler_bindings[address] = fn
        return address

    # ------------------------------------------------------- callbacks

    def on_kernel_launch(self, callback: LaunchCallback) -> None:
        self._launch_callbacks.append(callback)

    def on_kernel_exit(self, callback: ExitCallback) -> None:
        self._exit_callbacks.append(callback)

    def clear_callbacks(self) -> None:
        self._launch_callbacks.clear()
        self._exit_callbacks.clear()

    # ----------------------------------------------------------- launch

    def _encode_params(self, kernel: SassKernel, args: Sequence) -> None:
        if len(args) != len(kernel.params):
            raise DeviceFault(
                f"{kernel.name}: expected {len(kernel.params)} args, "
                f"got {len(args)}")
        for param, value in zip(kernel.params, args):
            if isinstance(value, float):
                raw = struct.unpack("<I", struct.pack("<f", value))[0]
            else:
                raw = int(value) & ((1 << (8 * param.size)) - 1)
            self.const_mem.write(param.offset, param.size, raw)

    def launch(self, kernel: Union[str, SassKernel], grid, block,
               args: Sequence = (), shared_bytes: int = 0) -> KernelStats:
        """Launch a kernel synchronously and return its statistics."""
        if isinstance(kernel, str):
            kernel = self.program.kernels[kernel]
        elif kernel.name not in self.program.kernels:
            kernel = self.load_kernel(kernel)
        grid = Dim3.of(grid)
        block = Dim3.of(block)
        self._encode_params(kernel, args)
        for callback in self._launch_callbacks:
            callback(self, kernel, grid, block)
        executor = Executor(self, self.config)
        try:
            with telemetry_span("launch", kernel=kernel.name):
                stats = executor.run(kernel, grid, block, shared_bytes)
        finally:
            self.last_stats = executor.stats
        for callback in self._exit_callbacks:
            callback(self, kernel, stats)
        return stats
