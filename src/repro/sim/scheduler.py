"""Cycle-stepped warp scheduler: the stall-accurate timing model.

The flat model in :mod:`repro.sim.costmodel` answers *how many* issue
slots a kernel consumed; this module answers *where the time went*.  It
replays per-warp instruction streams (rebuilt from a recorded trace by
:mod:`repro.trace.timing`) through a single-issue scheduler in the
fixed-latency stall-count + scoreboard-barrier style of SASSI-era
hardware models:

* every opcode has an explicit :class:`LatencyEntry` — issue-port
  occupancy (identical to the flat model's cost, so Table 3 ratios are
  unchanged), a stall count before the same warp may issue again, and a
  result latency;
* variable-latency producers (memory, MUFU, atomics) allocate one of
  ``scoreboard_slots`` wait barriers; the warp's instruction
  ``dep_distance`` slots later waits on it (the compiler-scheduled
  consumer-distance approximation), and running out of slots is a
  structural stall;
* memory latency is graded by the coalescer/cache accounting carried on
  each :class:`WarpInstr` — L1 hit, L2 hit, or DRAM — and extra
  coalesced transactions serialize through the issue port exactly as
  the flat model charged them;
* the issue policy is configurable: ``gto`` (greedy-then-oldest) or
  ``lrr`` (loose round-robin).

Whenever the issue port sits idle because no warp is ready, the gap is
recorded as a :class:`Bubble` classified by the binding constraint of
the earliest-ready warp (``mem_dep``, ``exec_dep``, or ``scoreboard``)
and attributed to the producing instruction — the raw material for the
``repro trace summary`` hotspot and idle-gap reports.

Everything is integer arithmetic over deterministic orderings, so a
schedule is bit-reproducible across runs and platforms, and
``cycles == busy_cycles + bubble cycles`` holds exactly.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.opcodes import OpClass, OPCODE_CLASSES, Opcode

#: issue-port cycles per coalesced memory transaction beyond the first
#: (kept equal to the flat model's ``TRANSACTION_COST``)
TRANSACTION_CYCLES = 2

#: graded global-memory result latencies (cycles), selected by the
#: cache outcome recorded on the instruction
L1_HIT_LATENCY = 36
L2_HIT_LATENCY = 120
DRAM_LATENCY = 350

#: scheduler-wide defaults
SCOREBOARD_SLOTS = 6
DEP_DISTANCE = 2

#: issue policies understood by :class:`SchedulerConfig`
POLICIES = ("gto", "lrr")

#: bubble / stall classification
REASON_EXEC = "exec_dep"      # fixed-latency producer still in flight
REASON_MEM = "mem_dep"        # scoreboard barrier set by a memory op
REASON_SCOREBOARD = "scoreboard"  # all wait-barrier slots busy
REASONS = (REASON_EXEC, REASON_MEM, REASON_SCOREBOARD)


@dataclass(frozen=True)
class LatencyEntry:
    """Timing of one opcode.

    ``issue``   — issue-port occupancy (the flat model's cost).
    ``stall``   — min cycles before the same warp issues again (the
                  SASS control-word stall count).
    ``latency`` — result latency; only waited on (via a scoreboard
                  barrier) when ``barrier`` is set.
    """

    issue: int
    stall: int
    latency: int
    barrier: bool = False


_MOVE = LatencyEntry(1, 2, 2)
_IALU = LatencyEntry(1, 4, 4)
_ISLOW = LatencyEntry(1, 5, 5)
_FALU = LatencyEntry(1, 5, 5)
_CTRL = LatencyEntry(1, 2, 2)
_NOPL = LatencyEntry(1, 1, 1)
_GMEM = LatencyEntry(1, 2, L1_HIT_LATENCY, barrier=True)

#: Exhaustive per-opcode timing table.  Every :class:`Opcode` member
#: MUST have an entry (``missing_entries`` + a unit test enforce it,
#: and :mod:`repro.sim.costmodel` fails at import otherwise).  The
#: ``issue`` fields reproduce the retired flat ``_EXTRA_ISSUE`` costs
#: exactly so golden cycle counts and Table 3 ratios are unchanged.
LATENCY_TABLE: Dict[Opcode, LatencyEntry] = {
    # moves / selections / special registers
    Opcode.MOV: _MOVE,
    Opcode.MOV32I: _MOVE,
    Opcode.SEL: _MOVE,
    Opcode.S2R: _MOVE,
    Opcode.P2R: _MOVE,
    Opcode.R2P: _MOVE,
    Opcode.PSETP: _MOVE,
    # integer arithmetic and logic
    Opcode.IADD: _IALU,
    Opcode.IADD32I: _IALU,
    Opcode.IMUL: LatencyEntry(2, 5, 5),
    Opcode.IMAD: LatencyEntry(2, 5, 5),
    Opcode.ISCADD: _IALU,
    Opcode.ISETP: _IALU,
    Opcode.IMNMX: _IALU,
    Opcode.LOP: _IALU,
    Opcode.LOP32I: _IALU,
    Opcode.SHL: _IALU,
    Opcode.SHR: _IALU,
    Opcode.POPC: _ISLOW,
    Opcode.FLO: _ISLOW,
    Opcode.BFE: _IALU,
    Opcode.BFI: _IALU,
    Opcode.IABS: _IALU,
    # floating point
    Opcode.FADD: _FALU,
    Opcode.FMUL: _FALU,
    Opcode.FFMA: _FALU,
    Opcode.FSETP: _FALU,
    Opcode.FMNMX: _FALU,
    Opcode.MUFU: LatencyEntry(4, 4, 18, barrier=True),
    Opcode.F2I: _FALU,
    Opcode.I2F: _FALU,
    Opcode.F2F: _FALU,
    # memory (global latencies are graded by the cache outcome)
    Opcode.LD: _GMEM,
    Opcode.ST: _GMEM,
    Opcode.LDG: _GMEM,
    Opcode.STG: _GMEM,
    Opcode.LDS: LatencyEntry(1, 2, 28, barrier=True),
    Opcode.STS: LatencyEntry(1, 2, 28, barrier=True),
    Opcode.LDL: LatencyEntry(1, 2, L1_HIT_LATENCY, barrier=True),
    Opcode.STL: LatencyEntry(1, 2, L1_HIT_LATENCY, barrier=True),
    Opcode.LDC: LatencyEntry(1, 2, 20, barrier=True),
    Opcode.ATOM: LatencyEntry(5, 2, 330, barrier=True),
    Opcode.ATOMS: LatencyEntry(3, 2, 60, barrier=True),
    Opcode.RED: LatencyEntry(5, 2, 330, barrier=True),
    Opcode.TLD: LatencyEntry(1, 2, 60, barrier=True),
    Opcode.MEMBAR: LatencyEntry(1, 6, 6),
    # control flow
    Opcode.BRA: _CTRL,
    Opcode.JCAL: _CTRL,
    Opcode.CAL: _CTRL,
    Opcode.RET: _CTRL,
    Opcode.EXIT: _NOPL,
    Opcode.SSY: _NOPL,
    Opcode.SYNC: _CTRL,
    Opcode.BAR: LatencyEntry(3, 1, 1),
    Opcode.BPT: _NOPL,
    Opcode.NOP: _NOPL,
    Opcode.PBK: _NOPL,
    Opcode.BRK: _CTRL,
    # warp-wide
    Opcode.VOTE: _IALU,
    Opcode.SHFL: _IALU,
}


def missing_entries(table: Optional[Dict[Opcode, LatencyEntry]] = None
                    ) -> List[Opcode]:
    """Opcodes lacking a timing entry (must be empty; tested)."""
    if table is None:
        table = LATENCY_TABLE
    return [op for op in Opcode if op not in table]


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the cycle-stepped scheduler."""

    policy: str = "gto"
    scoreboard_slots: int = SCOREBOARD_SLOTS
    dep_distance: int = DEP_DISTANCE

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError(f"unknown issue policy {self.policy!r} "
                             f"(choose from {', '.join(POLICIES)})")


@dataclass(slots=True)
class WarpInstr:
    """One dynamic warp instruction of a rebuilt stream.

    ``transactions``/``l1_misses``/``l2_misses`` carry the coalescer
    and cache outcome of a recorded memory access (zero when the
    instruction made none); ``divergent`` marks instructions executed
    with fewer active lanes than the warp's reconverged width.
    """

    addr: int
    opcode: Opcode
    lanes: int
    transactions: int = 0
    l1_misses: int = 0
    l2_misses: int = 0
    divergent: bool = False


@dataclass
class WarpStream:
    """The in-order instruction stream of one warp within one CTA."""

    warp: int
    instrs: List[WarpInstr] = field(default_factory=list)


@dataclass
class Bubble:
    """An idle-gap region: the issue port had nothing to do."""

    cta: int
    start: int        # launch-relative cycle the port went idle
    cycles: int
    reason: str       # one of REASONS
    addr: int         # producing instruction the gap waited on
    opcode: Opcode


@dataclass
class Hotspot:
    """Per-static-instruction issue and blame accounting."""

    addr: int
    opcode: Opcode
    issues: int = 0
    issue_cycles: int = 0
    stall_cycles: int = 0

    @property
    def cost(self) -> int:
        return self.issue_cycles + self.stall_cycles


@dataclass
class LaunchSchedule:
    """The scheduled timing of one kernel launch (CTAs sequential)."""

    policy: str
    cycles: int = 0
    busy_cycles: int = 0
    issued: int = 0
    barrier_releases: int = 0
    divergent_instrs: int = 0
    stall_cycles: Dict[str, int] = field(
        default_factory=lambda: {reason: 0 for reason in REASONS})
    bubbles: List[Bubble] = field(default_factory=list)
    hotspots: Dict[int, Hotspot] = field(default_factory=dict)

    @property
    def bubble_cycles(self) -> int:
        return self.cycles - self.busy_cycles

    def top_hotspots(self, n: int = 5) -> List[Hotspot]:
        rows = sorted(self.hotspots.values(),
                      key=lambda h: (-h.cost, h.addr))
        return rows[:n]

    def top_bubbles(self, n: int = 5) -> List[Bubble]:
        rows = sorted(self.bubbles,
                      key=lambda b: (-b.cycles, b.cta, b.start))
        return rows[:n]

    # -- accumulation helpers used by the per-CTA stepper ------------

    def _issue(self, instr: WarpInstr, occupancy: int) -> None:
        spot = self.hotspots.get(instr.addr)
        if spot is None:
            spot = self.hotspots[instr.addr] = Hotspot(
                addr=instr.addr, opcode=instr.opcode)
        spot.issues += 1
        spot.issue_cycles += occupancy
        self.issued += 1
        self.busy_cycles += occupancy
        if instr.divergent:
            self.divergent_instrs += 1

    def _bubble(self, cta: int, start: int, cycles: int, reason: str,
                addr: int, opcode: Opcode) -> None:
        self.bubbles.append(Bubble(cta=cta, start=start, cycles=cycles,
                                   reason=reason, addr=addr,
                                   opcode=opcode))
        self.stall_cycles[reason] += cycles
        spot = self.hotspots.get(addr)
        if spot is None:
            spot = self.hotspots[addr] = Hotspot(addr=addr, opcode=opcode)
        spot.stall_cycles += cycles


def _memory_latency(entry: LatencyEntry, instr: WarpInstr) -> int:
    """Result latency of a barrier-setting instruction, graded by the
    recorded cache outcome for global accesses."""
    if not (OPCODE_CLASSES[instr.opcode] & OpClass.MEMORY):
        return entry.latency
    if instr.l2_misses > 0:
        latency = DRAM_LATENCY
    elif instr.l1_misses > 0:
        latency = L2_HIT_LATENCY
    elif instr.transactions > 0:
        latency = L1_HIT_LATENCY
    else:
        # no recorded access (shared/local space, or predicated away)
        return entry.latency
    return max(latency, entry.latency)


#: per-opcode timing columns indexed by opcode *value* — one gather
#: replaces a LATENCY_TABLE dict probe per issued instruction
_op_columns: Optional[Tuple[np.ndarray, ...]] = None


def _opcode_columns() -> Tuple[np.ndarray, ...]:
    global _op_columns
    if _op_columns is None:
        n = max(op.value for op in Opcode) + 1
        issue = np.zeros(n, dtype=np.int64)
        stall = np.zeros(n, dtype=np.int64)
        latency = np.zeros(n, dtype=np.int64)
        barrier = np.zeros(n, dtype=bool)
        ismem = np.zeros(n, dtype=bool)
        for op, entry in LATENCY_TABLE.items():
            issue[op.value] = entry.issue
            stall[op.value] = entry.stall
            latency[op.value] = entry.latency
            barrier[op.value] = entry.barrier
            ismem[op.value] = bool(OPCODE_CLASSES[op] & OpClass.MEMORY)
        _op_columns = (issue, stall, latency, barrier, ismem)
    return _op_columns


def _stream_columns(instrs: Sequence[WarpInstr]
                    ) -> Tuple[List[int], List[int], List[int],
                               List[str], List[bool]]:
    """Precompute per-instruction timing columns for one stream:
    ``(occupancy, resume_delta, completion_latency, barrier_kind,
    sets_barrier)``.  Every value equals what the scalar expressions in
    the old per-issue path computed (occupancy with the transaction
    surcharge, ``max(stall, occupancy)`` resume, the cache-graded
    :func:`_memory_latency`), hoisted out of the scheduling loop."""
    n = len(instrs)
    op_issue, op_stall, op_lat, op_barrier, op_ismem = _opcode_columns()
    if n < 32:
        occ: List[int] = []
        rdelta: List[int] = []
        lat: List[int] = []
        kind: List[str] = []
        barrier_f: List[bool] = []
        for instr in instrs:
            entry = LATENCY_TABLE[instr.opcode]
            occupancy = entry.issue
            if instr.transactions > 1:
                occupancy += TRANSACTION_CYCLES * (instr.transactions - 1)
            occ.append(occupancy)
            rdelta.append(max(entry.stall, occupancy))
            lat.append(_memory_latency(entry, instr))
            kind.append(REASON_MEM
                        if OPCODE_CLASSES[instr.opcode] & OpClass.MEMORY
                        else REASON_EXEC)
            barrier_f.append(entry.barrier)
        return occ, rdelta, lat, kind, barrier_f
    ops = np.fromiter((i.opcode.value for i in instrs), np.int64, n)
    tx = np.fromiter((i.transactions for i in instrs), np.int64, n)
    l1m = np.fromiter((i.l1_misses for i in instrs), np.int64, n)
    l2m = np.fromiter((i.l2_misses for i in instrs), np.int64, n)
    occ_a = op_issue[ops] + np.where(
        tx > 1, TRANSACTION_CYCLES * (tx - 1), 0)
    rdelta_a = np.maximum(op_stall[ops], occ_a)
    base = op_lat[ops]
    graded = np.where(l2m > 0, DRAM_LATENCY,
                      np.where(l1m > 0, L2_HIT_LATENCY,
                               np.where(tx > 0, L1_HIT_LATENCY, base)))
    ismem = op_ismem[ops]
    lat_a = np.where(ismem, np.maximum(graded, base), base)
    kind = [REASON_MEM if m else REASON_EXEC for m in ismem.tolist()]
    return (occ_a.tolist(), rdelta_a.tolist(), lat_a.tolist(),
            kind, op_barrier[ops].tolist())


class _WarpState:
    """Scheduler-side runtime state of one warp."""

    __slots__ = ("idx", "instrs", "pos", "resume", "parked", "done",
                 "barriers", "last_addr", "last_op", "seq", "occ",
                 "rdelta", "lat", "kind", "barrier_f", "_ready")

    def __init__(self, idx: int, stream: WarpStream):
        self.idx = idx
        self.instrs = stream.instrs
        self.pos = 0
        self.resume = 0          # earliest next-issue cycle (stall count)
        self.parked = False
        self.done = not self.instrs
        #: outstanding scoreboard barriers: (pos, completion, reason,
        #: addr, opcode) in allocation order
        self.barriers: List[Tuple[int, int, str, int, Opcode]] = []
        self.last_addr = 0
        self.last_op = Opcode.NOP
        #: bumped on every issue; heap entries carry the seq they were
        #: pushed with, so stale entries self-identify on pop
        self.seq = 0
        (self.occ, self.rdelta, self.lat, self.kind,
         self.barrier_f) = _stream_columns(self.instrs)
        #: memoized ready() — invalidated only by issue()
        self._ready: Optional[Tuple[int, str, int, Opcode]] = None

    def ready(self, config: SchedulerConfig
              ) -> Tuple[int, str, int, Opcode]:
        """``(cycle, reason, blocker_addr, blocker_op)`` — earliest
        issue time of the next instruction and, if it must wait, the
        producing instruction to blame.  A pure function of per-warp
        state, so it is memoized between issues."""
        state = self._ready
        if state is not None:
            return state
        when = self.resume
        reason = REASON_EXEC
        addr, op = self.last_addr, self.last_op
        barriers = self.barriers
        if barriers:
            dep_limit = self.pos - config.dep_distance
            for bpos, completion, kind, baddr, bop in barriers:
                if bpos <= dep_limit and completion > when:
                    when, reason, addr, op = completion, kind, baddr, bop
        if (self.barrier_f[self.pos]
                and len(barriers) >= config.scoreboard_slots):
            # a free slot appears when the k-th oldest completion
            # passes; expiry-before-allocate in issue() keeps the list
            # at <= scoreboard_slots entries, where the k-th oldest IS
            # the minimum — one pass, no sorted() allocation
            oldest = min(barriers, key=lambda b: b[1])
            if len(barriers) == config.scoreboard_slots:
                freed = oldest[1]
            else:
                completions = sorted(b[1] for b in barriers)
                freed = completions[len(completions)
                                    - config.scoreboard_slots]
            if freed > when:
                when, reason = freed, REASON_SCOREBOARD
                addr, op = oldest[3], oldest[4]
        state = (when, reason, addr, op)
        self._ready = state
        return state

    def issue(self, cycle: int, config: SchedulerConfig
              ) -> Tuple[WarpInstr, int]:
        """Issue the next instruction at *cycle*; returns it and its
        issue-port occupancy."""
        pos = self.pos
        instr = self.instrs[pos]
        occupancy = self.occ[pos]
        if self.barriers:
            self.barriers = [b for b in self.barriers if b[1] > cycle]
        if self.barrier_f[pos]:
            self.barriers.append((pos, cycle + self.lat[pos],
                                  self.kind[pos], instr.addr,
                                  instr.opcode))
        self.resume = cycle + self.rdelta[pos]
        self.last_addr, self.last_op = instr.addr, instr.opcode
        self.pos = pos = pos + 1
        if pos >= len(self.instrs):
            self.done = True
        elif instr.opcode is Opcode.BAR:
            self.parked = True
        self.seq += 1
        self._ready = None
        return instr, occupancy


def _pick(candidates: List[_WarpState], n_warps: int, last: int,
          policy: str) -> _WarpState:
    if policy == "gto":
        for warp in candidates:
            if warp.idx == last:
                return warp          # greedy: stick with the last warp
        return min(candidates, key=lambda w: w.idx)   # then oldest
    # loose round-robin: the successor of `last` in the sorted
    # candidate-index ring (strictly-after first, wrapping, `last`
    # itself only when it is the sole candidate)
    by_idx = {w.idx: w for w in candidates}
    idxs = sorted(by_idx)
    return by_idx[idxs[bisect_right(idxs, last) % len(idxs)]]


def _schedule_cta(streams: Sequence[WarpStream], config: SchedulerConfig,
                  acc: LaunchSchedule, cta: int, base_cycle: int) -> int:
    """Step one CTA through the scheduler; returns its cycle count.

    The per-issue ``states`` list rebuild of the original stepper is
    replaced by a ready-heap of ``(when, idx, seq)`` entries: only the
    issued warp's readiness changes per iteration, so everything else
    stays put.  Entries invalidated without being popped (the greedy
    reissue path below) self-identify by a stale ``seq`` and are
    discarded lazily; the issue order, bubbles, and blame are identical
    to the full-scan loop because the heap order (when, idx) is exactly
    the scan's min key and the popped candidate set is exactly its
    ``t <= issue_at`` filter."""
    warps = [_WarpState(i, s) for i, s in enumerate(streams)]
    n_warps = len(warps)
    live = sum(1 for w in warps if not w.done)
    heap: List[Tuple[int, int, int]] = [
        (w.ready(config)[0], w.idx, w.seq) for w in warps if not w.done]
    heapq.heapify(heap)
    greedy = config.policy == "gto"
    port_free = 0
    last = 0
    while live:
        # drop entries whose warp has issued since they were pushed
        while heap:
            _, idx, seq = heap[0]
            if warps[idx].seq == seq:
                break
            heapq.heappop(heap)
        if not heap:
            # every live warp is parked at the CTA barrier: release
            acc.barrier_releases += 1
            for warp in warps:
                if not warp.done:
                    warp.parked = False
                    heapq.heappush(heap, (warp.ready(config)[0],
                                          warp.idx, warp.seq))
            continue
        warp = warps[last]
        if (greedy and not warp.done and not warp.parked
                and warp.ready(config)[0] <= port_free):
            # greedy reissue: `last` is a candidate (its ready time is
            # at or before the port), so GTO picks it and the earliest
            # ready time can't exceed port_free — no bubble.  Skip the
            # candidate pops entirely; the warp's old heap entry goes
            # stale via seq.
            instr, occupancy = warp.issue(port_free, config)
            acc._issue(instr, occupancy)
            port_free += occupancy
            if warp.done:
                live -= 1
            elif not warp.parked:
                heapq.heappush(heap, (warp.ready(config)[0],
                                      warp.idx, warp.seq))
            if len(heap) > 4 * n_warps + 16:    # compact stale entries
                heap = [(t, i, s) for t, i, s in heap
                        if warps[i].seq == s]
                heapq.heapify(heap)
            continue
        when, idx, _ = heap[0]
        issue_at = max(when, port_free)
        if when > port_free:
            _, reason, baddr, bop = warps[idx].ready(config)
            acc._bubble(cta, base_cycle + port_free, when - port_free,
                        reason, baddr, bop)
        candidates = []
        while heap and heap[0][0] <= issue_at:
            when, idx, seq = heapq.heappop(heap)
            if warps[idx].seq == seq:
                candidates.append(warps[idx])
        warp = _pick(candidates, n_warps, last, config.policy)
        instr, occupancy = warp.issue(issue_at, config)
        acc._issue(instr, occupancy)
        port_free = issue_at + occupancy
        last = warp.idx
        for other in candidates:
            if other is not warp:
                heapq.heappush(heap, (other.ready(config)[0],
                                      other.idx, other.seq))
        if warp.done:
            live -= 1
        elif not warp.parked:
            heapq.heappush(heap, (warp.ready(config)[0], warp.idx,
                                  warp.seq))
    return port_free


def schedule_launch(ctas: Sequence[Sequence[WarpStream]],
                    config: Optional[SchedulerConfig] = None
                    ) -> LaunchSchedule:
    """Schedule one launch: CTAs run back to back (the executor is
    sequential across CTAs), warps within a CTA compete for the single
    issue port under ``config.policy``."""
    config = config or SchedulerConfig()
    acc = LaunchSchedule(policy=config.policy)
    base = 0
    for cta_index, streams in enumerate(ctas):
        base += _schedule_cta(streams, config, acc, cta_index, base)
    acc.cycles = base
    return acc


def divergence_spans(stream: WarpStream
                     ) -> List[Tuple[int, int, int]]:
    """Maximal runs of divergence-serialized instructions in *stream*
    as ``(start_addr, length, min_lanes)`` tuples."""
    spans = []
    start = length = 0
    min_lanes = 0
    for instr in stream.instrs:
        if instr.divergent:
            if length == 0:
                start, min_lanes = instr.addr, instr.lanes
            length += 1
            min_lanes = min(min_lanes, instr.lanes)
        elif length:
            spans.append((start, length, min_lanes))
            length = 0
    if length:
        spans.append((start, length, min_lanes))
    return spans
