"""Cycle-stepped warp scheduler: the stall-accurate timing model.

The flat model in :mod:`repro.sim.costmodel` answers *how many* issue
slots a kernel consumed; this module answers *where the time went*.  It
replays per-warp instruction streams (rebuilt from a recorded trace by
:mod:`repro.trace.timing`) through a single-issue scheduler in the
fixed-latency stall-count + scoreboard-barrier style of SASSI-era
hardware models:

* every opcode has an explicit :class:`LatencyEntry` — issue-port
  occupancy (identical to the flat model's cost, so Table 3 ratios are
  unchanged), a stall count before the same warp may issue again, and a
  result latency;
* variable-latency producers (memory, MUFU, atomics) allocate one of
  ``scoreboard_slots`` wait barriers; the warp's instruction
  ``dep_distance`` slots later waits on it (the compiler-scheduled
  consumer-distance approximation), and running out of slots is a
  structural stall;
* memory latency is graded by the coalescer/cache accounting carried on
  each :class:`WarpInstr` — L1 hit, L2 hit, or DRAM — and extra
  coalesced transactions serialize through the issue port exactly as
  the flat model charged them;
* the issue policy is configurable: ``gto`` (greedy-then-oldest) or
  ``lrr`` (loose round-robin).

Whenever the issue port sits idle because no warp is ready, the gap is
recorded as a :class:`Bubble` classified by the binding constraint of
the earliest-ready warp (``mem_dep``, ``exec_dep``, or ``scoreboard``)
and attributed to the producing instruction — the raw material for the
``repro trace summary`` hotspot and idle-gap reports.

Everything is integer arithmetic over deterministic orderings, so a
schedule is bit-reproducible across runs and platforms, and
``cycles == busy_cycles + bubble cycles`` holds exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.isa.opcodes import OpClass, OPCODE_CLASSES, Opcode

#: issue-port cycles per coalesced memory transaction beyond the first
#: (kept equal to the flat model's ``TRANSACTION_COST``)
TRANSACTION_CYCLES = 2

#: graded global-memory result latencies (cycles), selected by the
#: cache outcome recorded on the instruction
L1_HIT_LATENCY = 36
L2_HIT_LATENCY = 120
DRAM_LATENCY = 350

#: scheduler-wide defaults
SCOREBOARD_SLOTS = 6
DEP_DISTANCE = 2

#: issue policies understood by :class:`SchedulerConfig`
POLICIES = ("gto", "lrr")

#: bubble / stall classification
REASON_EXEC = "exec_dep"      # fixed-latency producer still in flight
REASON_MEM = "mem_dep"        # scoreboard barrier set by a memory op
REASON_SCOREBOARD = "scoreboard"  # all wait-barrier slots busy
REASONS = (REASON_EXEC, REASON_MEM, REASON_SCOREBOARD)


@dataclass(frozen=True)
class LatencyEntry:
    """Timing of one opcode.

    ``issue``   — issue-port occupancy (the flat model's cost).
    ``stall``   — min cycles before the same warp issues again (the
                  SASS control-word stall count).
    ``latency`` — result latency; only waited on (via a scoreboard
                  barrier) when ``barrier`` is set.
    """

    issue: int
    stall: int
    latency: int
    barrier: bool = False


_MOVE = LatencyEntry(1, 2, 2)
_IALU = LatencyEntry(1, 4, 4)
_ISLOW = LatencyEntry(1, 5, 5)
_FALU = LatencyEntry(1, 5, 5)
_CTRL = LatencyEntry(1, 2, 2)
_NOPL = LatencyEntry(1, 1, 1)
_GMEM = LatencyEntry(1, 2, L1_HIT_LATENCY, barrier=True)

#: Exhaustive per-opcode timing table.  Every :class:`Opcode` member
#: MUST have an entry (``missing_entries`` + a unit test enforce it,
#: and :mod:`repro.sim.costmodel` fails at import otherwise).  The
#: ``issue`` fields reproduce the retired flat ``_EXTRA_ISSUE`` costs
#: exactly so golden cycle counts and Table 3 ratios are unchanged.
LATENCY_TABLE: Dict[Opcode, LatencyEntry] = {
    # moves / selections / special registers
    Opcode.MOV: _MOVE,
    Opcode.MOV32I: _MOVE,
    Opcode.SEL: _MOVE,
    Opcode.S2R: _MOVE,
    Opcode.P2R: _MOVE,
    Opcode.R2P: _MOVE,
    Opcode.PSETP: _MOVE,
    # integer arithmetic and logic
    Opcode.IADD: _IALU,
    Opcode.IADD32I: _IALU,
    Opcode.IMUL: LatencyEntry(2, 5, 5),
    Opcode.IMAD: LatencyEntry(2, 5, 5),
    Opcode.ISCADD: _IALU,
    Opcode.ISETP: _IALU,
    Opcode.IMNMX: _IALU,
    Opcode.LOP: _IALU,
    Opcode.LOP32I: _IALU,
    Opcode.SHL: _IALU,
    Opcode.SHR: _IALU,
    Opcode.POPC: _ISLOW,
    Opcode.FLO: _ISLOW,
    Opcode.BFE: _IALU,
    Opcode.BFI: _IALU,
    Opcode.IABS: _IALU,
    # floating point
    Opcode.FADD: _FALU,
    Opcode.FMUL: _FALU,
    Opcode.FFMA: _FALU,
    Opcode.FSETP: _FALU,
    Opcode.FMNMX: _FALU,
    Opcode.MUFU: LatencyEntry(4, 4, 18, barrier=True),
    Opcode.F2I: _FALU,
    Opcode.I2F: _FALU,
    Opcode.F2F: _FALU,
    # memory (global latencies are graded by the cache outcome)
    Opcode.LD: _GMEM,
    Opcode.ST: _GMEM,
    Opcode.LDG: _GMEM,
    Opcode.STG: _GMEM,
    Opcode.LDS: LatencyEntry(1, 2, 28, barrier=True),
    Opcode.STS: LatencyEntry(1, 2, 28, barrier=True),
    Opcode.LDL: LatencyEntry(1, 2, L1_HIT_LATENCY, barrier=True),
    Opcode.STL: LatencyEntry(1, 2, L1_HIT_LATENCY, barrier=True),
    Opcode.LDC: LatencyEntry(1, 2, 20, barrier=True),
    Opcode.ATOM: LatencyEntry(5, 2, 330, barrier=True),
    Opcode.ATOMS: LatencyEntry(3, 2, 60, barrier=True),
    Opcode.RED: LatencyEntry(5, 2, 330, barrier=True),
    Opcode.TLD: LatencyEntry(1, 2, 60, barrier=True),
    Opcode.MEMBAR: LatencyEntry(1, 6, 6),
    # control flow
    Opcode.BRA: _CTRL,
    Opcode.JCAL: _CTRL,
    Opcode.CAL: _CTRL,
    Opcode.RET: _CTRL,
    Opcode.EXIT: _NOPL,
    Opcode.SSY: _NOPL,
    Opcode.SYNC: _CTRL,
    Opcode.BAR: LatencyEntry(3, 1, 1),
    Opcode.BPT: _NOPL,
    Opcode.NOP: _NOPL,
    Opcode.PBK: _NOPL,
    Opcode.BRK: _CTRL,
    # warp-wide
    Opcode.VOTE: _IALU,
    Opcode.SHFL: _IALU,
}


def missing_entries(table: Optional[Dict[Opcode, LatencyEntry]] = None
                    ) -> List[Opcode]:
    """Opcodes lacking a timing entry (must be empty; tested)."""
    if table is None:
        table = LATENCY_TABLE
    return [op for op in Opcode if op not in table]


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the cycle-stepped scheduler."""

    policy: str = "gto"
    scoreboard_slots: int = SCOREBOARD_SLOTS
    dep_distance: int = DEP_DISTANCE

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError(f"unknown issue policy {self.policy!r} "
                             f"(choose from {', '.join(POLICIES)})")


@dataclass(slots=True)
class WarpInstr:
    """One dynamic warp instruction of a rebuilt stream.

    ``transactions``/``l1_misses``/``l2_misses`` carry the coalescer
    and cache outcome of a recorded memory access (zero when the
    instruction made none); ``divergent`` marks instructions executed
    with fewer active lanes than the warp's reconverged width.
    """

    addr: int
    opcode: Opcode
    lanes: int
    transactions: int = 0
    l1_misses: int = 0
    l2_misses: int = 0
    divergent: bool = False


@dataclass
class WarpStream:
    """The in-order instruction stream of one warp within one CTA."""

    warp: int
    instrs: List[WarpInstr] = field(default_factory=list)


@dataclass
class Bubble:
    """An idle-gap region: the issue port had nothing to do."""

    cta: int
    start: int        # launch-relative cycle the port went idle
    cycles: int
    reason: str       # one of REASONS
    addr: int         # producing instruction the gap waited on
    opcode: Opcode


@dataclass
class Hotspot:
    """Per-static-instruction issue and blame accounting."""

    addr: int
    opcode: Opcode
    issues: int = 0
    issue_cycles: int = 0
    stall_cycles: int = 0

    @property
    def cost(self) -> int:
        return self.issue_cycles + self.stall_cycles


@dataclass
class LaunchSchedule:
    """The scheduled timing of one kernel launch (CTAs sequential)."""

    policy: str
    cycles: int = 0
    busy_cycles: int = 0
    issued: int = 0
    barrier_releases: int = 0
    divergent_instrs: int = 0
    stall_cycles: Dict[str, int] = field(
        default_factory=lambda: {reason: 0 for reason in REASONS})
    bubbles: List[Bubble] = field(default_factory=list)
    hotspots: Dict[int, Hotspot] = field(default_factory=dict)

    @property
    def bubble_cycles(self) -> int:
        return self.cycles - self.busy_cycles

    def top_hotspots(self, n: int = 5) -> List[Hotspot]:
        rows = sorted(self.hotspots.values(),
                      key=lambda h: (-h.cost, h.addr))
        return rows[:n]

    def top_bubbles(self, n: int = 5) -> List[Bubble]:
        rows = sorted(self.bubbles,
                      key=lambda b: (-b.cycles, b.cta, b.start))
        return rows[:n]

    # -- accumulation helpers used by the per-CTA stepper ------------

    def _issue(self, instr: WarpInstr, occupancy: int) -> None:
        spot = self.hotspots.get(instr.addr)
        if spot is None:
            spot = self.hotspots[instr.addr] = Hotspot(
                addr=instr.addr, opcode=instr.opcode)
        spot.issues += 1
        spot.issue_cycles += occupancy
        self.issued += 1
        self.busy_cycles += occupancy
        if instr.divergent:
            self.divergent_instrs += 1

    def _bubble(self, cta: int, start: int, cycles: int, reason: str,
                addr: int, opcode: Opcode) -> None:
        self.bubbles.append(Bubble(cta=cta, start=start, cycles=cycles,
                                   reason=reason, addr=addr,
                                   opcode=opcode))
        self.stall_cycles[reason] += cycles
        spot = self.hotspots.get(addr)
        if spot is None:
            spot = self.hotspots[addr] = Hotspot(addr=addr, opcode=opcode)
        spot.stall_cycles += cycles


def _memory_latency(entry: LatencyEntry, instr: WarpInstr) -> int:
    """Result latency of a barrier-setting instruction, graded by the
    recorded cache outcome for global accesses."""
    if not (OPCODE_CLASSES[instr.opcode] & OpClass.MEMORY):
        return entry.latency
    if instr.l2_misses > 0:
        latency = DRAM_LATENCY
    elif instr.l1_misses > 0:
        latency = L2_HIT_LATENCY
    elif instr.transactions > 0:
        latency = L1_HIT_LATENCY
    else:
        # no recorded access (shared/local space, or predicated away)
        return entry.latency
    return max(latency, entry.latency)


class _WarpState:
    """Scheduler-side runtime state of one warp."""

    __slots__ = ("idx", "instrs", "pos", "resume", "parked", "done",
                 "barriers", "last_addr", "last_op")

    def __init__(self, idx: int, stream: WarpStream):
        self.idx = idx
        self.instrs = stream.instrs
        self.pos = 0
        self.resume = 0          # earliest next-issue cycle (stall count)
        self.parked = False
        self.done = not self.instrs
        #: outstanding scoreboard barriers: (pos, completion, reason,
        #: addr, opcode) in allocation order
        self.barriers: List[Tuple[int, int, str, int, Opcode]] = []
        self.last_addr = 0
        self.last_op = Opcode.NOP

    def ready(self, config: SchedulerConfig
              ) -> Tuple[int, str, int, Opcode]:
        """``(cycle, reason, blocker_addr, blocker_op)`` — earliest
        issue time of the next instruction and, if it must wait, the
        producing instruction to blame."""
        when = self.resume
        reason = REASON_EXEC
        addr, op = self.last_addr, self.last_op
        dep_limit = self.pos - config.dep_distance
        for bpos, completion, kind, baddr, bop in self.barriers:
            if bpos <= dep_limit and completion > when:
                when, reason, addr, op = completion, kind, baddr, bop
        entry = LATENCY_TABLE[self.instrs[self.pos].opcode]
        if entry.barrier and len(self.barriers) >= config.scoreboard_slots:
            # a free slot appears when the k-th oldest completion passes
            completions = sorted(b[1] for b in self.barriers)
            freed = completions[len(completions) - config.scoreboard_slots]
            if freed > when:
                oldest = min(self.barriers, key=lambda b: b[1])
                when, reason = freed, REASON_SCOREBOARD
                addr, op = oldest[3], oldest[4]
        return when, reason, addr, op

    def issue(self, cycle: int, config: SchedulerConfig
              ) -> Tuple[WarpInstr, int]:
        """Issue the next instruction at *cycle*; returns it and its
        issue-port occupancy."""
        instr = self.instrs[self.pos]
        entry = LATENCY_TABLE[instr.opcode]
        occupancy = entry.issue
        if instr.transactions > 1:
            occupancy += TRANSACTION_CYCLES * (instr.transactions - 1)
        if self.barriers:
            self.barriers = [b for b in self.barriers if b[1] > cycle]
        if entry.barrier:
            completion = cycle + _memory_latency(entry, instr)
            kind = (REASON_MEM
                    if OPCODE_CLASSES[instr.opcode] & OpClass.MEMORY
                    else REASON_EXEC)
            self.barriers.append((self.pos, completion, kind,
                                  instr.addr, instr.opcode))
        self.resume = cycle + max(entry.stall, occupancy)
        self.last_addr, self.last_op = instr.addr, instr.opcode
        self.pos += 1
        if self.pos >= len(self.instrs):
            self.done = True
        elif instr.opcode is Opcode.BAR:
            self.parked = True
        return instr, occupancy


def _pick(candidates: List[_WarpState], n_warps: int, last: int,
          policy: str) -> _WarpState:
    if policy == "gto":
        for warp in candidates:
            if warp.idx == last:
                return warp          # greedy: stick with the last warp
        return min(candidates, key=lambda w: w.idx)   # then oldest
    by_idx = {w.idx: w for w in candidates}
    for step in range(1, n_warps + 1):               # loose round-robin
        warp = by_idx.get((last + step) % n_warps)
        if warp is not None:
            return warp
    raise AssertionError("no candidate warp")


def _schedule_cta(streams: Sequence[WarpStream], config: SchedulerConfig,
                  acc: LaunchSchedule, cta: int, base_cycle: int) -> int:
    """Step one CTA through the scheduler; returns its cycle count."""
    warps = [_WarpState(i, s) for i, s in enumerate(streams)]
    n_warps = len(warps)
    port_free = 0
    last = 0
    while True:
        live = [w for w in warps if not w.done]
        if not live:
            break
        runnable = [w for w in live if not w.parked]
        if not runnable:
            # every live warp is parked at the CTA barrier: release
            for warp in live:
                warp.parked = False
            acc.barrier_releases += 1
            continue
        states = [(w.ready(config), w) for w in runnable]
        (when, reason, baddr, bop), _ = min(
            states, key=lambda item: (item[0][0], item[1].idx))
        issue_at = max(when, port_free)
        if when > port_free:
            acc._bubble(cta, base_cycle + port_free, when - port_free,
                        reason, baddr, bop)
        candidates = [w for (t, _, _, _), w in states if t <= issue_at]
        warp = _pick(candidates, n_warps, last, config.policy)
        instr, occupancy = warp.issue(issue_at, config)
        acc._issue(instr, occupancy)
        port_free = issue_at + occupancy
        last = warp.idx
    return port_free


def schedule_launch(ctas: Sequence[Sequence[WarpStream]],
                    config: Optional[SchedulerConfig] = None
                    ) -> LaunchSchedule:
    """Schedule one launch: CTAs run back to back (the executor is
    sequential across CTAs), warps within a CTA compete for the single
    issue port under ``config.policy``."""
    config = config or SchedulerConfig()
    acc = LaunchSchedule(policy=config.policy)
    base = 0
    for cta_index, streams in enumerate(ctas):
        base += _schedule_cta(streams, config, acc, cta_index, base)
    acc.cycles = base
    return acc


def divergence_spans(stream: WarpStream
                     ) -> List[Tuple[int, int, int]]:
    """Maximal runs of divergence-serialized instructions in *stream*
    as ``(start_addr, length, min_lanes)`` tuples."""
    spans = []
    start = length = 0
    min_lanes = 0
    for instr in stream.instrs:
        if instr.divergent:
            if length == 0:
                start, min_lanes = instr.addr, instr.lanes
            length += 1
            min_lanes = min(min_lanes, instr.lanes)
        elif length:
            spans.append((start, length, min_lanes))
            length = 0
    if length:
        spans.append((start, length, min_lanes))
    return spans
