"""Launch-dimension helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


@dataclass(frozen=True)
class Dim3:
    """A CUDA-style 3-component dimension."""

    x: int = 1
    y: int = 1
    z: int = 1

    @property
    def count(self) -> int:
        return self.x * self.y * self.z

    @classmethod
    def of(cls, value: Union[int, Tuple[int, ...], "Dim3"]) -> "Dim3":
        if isinstance(value, Dim3):
            return value
        if isinstance(value, int):
            return cls(value)
        return cls(*value)


def grid_for(total_threads: int, block: int) -> Dim3:
    """A 1-D grid covering *total_threads* with *block*-sized CTAs."""
    return Dim3((total_threads + block - 1) // block)
