"""Per-warp memory-access coalescing.

Warp-wide accesses to global memory are combined into 32-byte cache-line
transactions, exactly the granularity the paper's memory-divergence study
uses ("we use a 32B line size", Section 6.1).  The coalescer reports, per
warp memory instruction, the number of active lanes and the number of
unique lines touched — the two axes of the paper's Figure 8 matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

#: Cache-line size in bytes (power of two).
LINE_BYTES = 32
#: log2(LINE_BYTES) — the paper handler's OFFSET_BITS.
OFFSET_BITS = 5


@dataclass(frozen=True)
class CoalesceResult:
    """Outcome of coalescing one warp memory instruction."""

    active_lanes: int
    unique_lines: int
    line_addresses: Tuple[int, ...]

    @property
    def is_diverged(self) -> bool:
        """More than one transaction needed (address divergence)."""
        return self.unique_lines > 1

    @property
    def is_fully_diverged(self) -> bool:
        return self.unique_lines == 32


def coalesce(addresses: Sequence[int], width: int) -> CoalesceResult:
    """Coalesce the *addresses* (one per active lane) of a warp access.

    *width* is the per-lane access width in bytes; an access straddling a
    line boundary touches both lines (width > 1 accesses are naturally
    aligned in compiled code, but handlers may construct unaligned ones).

    Lines are reported in order of first touch (lane order, first line of
    an access before its straddle line) — the order cache models see the
    transactions in, so it is part of the stats contract.
    """
    arr = np.asarray(addresses, dtype=np.uint64)
    if arr.size == 0:
        return CoalesceResult(0, 0, ())
    shift = np.uint64(OFFSET_BITS)
    first = arr >> shift
    last = (arr + np.uint64(width - 1)) >> shift
    span = int((last - first).max())
    if span > 1:
        # an access spanning 3+ lines (width > LINE_BYTES, only possible
        # from handler-constructed accesses): scalar expansion
        return _coalesce_scalar(arr, width)
    # first-occurrence dedup via dict.fromkeys (insertion-ordered): at
    # warp width a Python dict beats np.unique's sort by ~2x.
    if span == 0:
        # common case: no access straddles a line boundary
        touched = first.tolist()
    else:
        # interleave [first0, last0, first1, last1, ...] — exactly the
        # order the per-lane walk touches lines in.
        touched = [line for pair in zip(first.tolist(), last.tolist())
                   for line in pair]
    lines = [line << OFFSET_BITS for line in dict.fromkeys(touched)]
    return CoalesceResult(active_lanes=int(arr.size),
                          unique_lines=len(lines),
                          line_addresses=tuple(lines))


def _coalesce_scalar(addresses, width: int) -> CoalesceResult:
    lines: List[int] = []
    seen = set()
    for addr in addresses:
        first = int(addr) >> OFFSET_BITS
        last = (int(addr) + width - 1) >> OFFSET_BITS
        for line in range(first, last + 1):
            if line not in seen:
                seen.add(line)
                lines.append(line << OFFSET_BITS)
    return CoalesceResult(active_lanes=len(addresses),
                          unique_lines=len(lines),
                          line_addresses=tuple(lines))
