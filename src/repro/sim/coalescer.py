"""Per-warp memory-access coalescing.

Warp-wide accesses to global memory are combined into 32-byte cache-line
transactions, exactly the granularity the paper's memory-divergence study
uses ("we use a 32B line size", Section 6.1).  The coalescer reports, per
warp memory instruction, the number of active lanes and the number of
unique lines touched — the two axes of the paper's Figure 8 matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Cache-line size in bytes (power of two).
LINE_BYTES = 32
#: log2(LINE_BYTES) — the paper handler's OFFSET_BITS.
OFFSET_BITS = 5


@dataclass(frozen=True)
class CoalesceResult:
    """Outcome of coalescing one warp memory instruction."""

    active_lanes: int
    unique_lines: int
    line_addresses: Tuple[int, ...]

    @property
    def is_diverged(self) -> bool:
        """More than one transaction needed (address divergence)."""
        return self.unique_lines > 1

    @property
    def is_fully_diverged(self) -> bool:
        return self.unique_lines == 32


def coalesce(addresses: Sequence[int], width: int) -> CoalesceResult:
    """Coalesce the *addresses* (one per active lane) of a warp access.

    *width* is the per-lane access width in bytes; an access straddling a
    line boundary touches both lines (width > 1 accesses are naturally
    aligned in compiled code, but handlers may construct unaligned ones).
    """
    lines = []
    seen = set()
    for addr in addresses:
        first = int(addr) >> OFFSET_BITS
        last = (int(addr) + width - 1) >> OFFSET_BITS
        for line in range(first, last + 1):
            if line not in seen:
                seen.add(line)
                lines.append(line << OFFSET_BITS)
    return CoalesceResult(active_lanes=len(addresses),
                          unique_lines=len(lines),
                          line_addresses=tuple(lines))
