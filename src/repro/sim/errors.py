"""Simulation error types.

:class:`DeviceFault` models what a real GPU surfaces as an Xid error /
"unspecified launch failure": out-of-bounds or misaligned accesses, local
stack overflow, or executing off the end of a kernel.  The error-injection
case study (paper Section 8) categorizes injections that raise this as
*crashes*; :class:`HangDetected` (watchdog expiry) maps to *hangs*.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for simulator-detected failures."""


class DeviceFault(SimulationError):
    """An access violation or illegal-instruction condition on the device."""


class HangDetected(SimulationError):
    """The watchdog instruction budget was exhausted (runaway kernel)."""
