"""The ``.rptrace`` binary event-trace format.

Record once on the (slow) instrumented simulator, answer many questions
offline at replay speed — the Section 9.4 workflow ("a memory trace
collected by SASSI can be used to drive a memory hierarchy simulator")
promoted to a first-class artifact.  A trace file is::

    [header]   magic b"RPTR" + one version byte
    [events]   varint-tagged, delta-compressed records (see below)
    [end]      a single zero tag byte
    [footer]   per-kind event counts, total count, CRC-32 of the event
               byte stream (torn/partial writes are detected, never
               silently accepted)
    [trailer]  fixed 8 bytes: u32-LE footer length + magic b"RPTE"
               (lets readers locate the footer without scanning)

All integers are unsigned LEB128 varints; signed quantities (address
deltas) are ZigZag-mapped first.  Instruction addresses are encoded as
deltas against the previous event's address and coalesced line
addresses as deltas against the previous line, with both generators
reset at every kernel-launch frame — traces stay compact and each
kernel frame is independently decodable.

Event kinds:

====  ========  ====================================================
tag   kind      payload
====  ========  ====================================================
1     LAUNCH    kernel name, grid (x,y,z), block (x,y,z), launch index
2     KEND      warp-instruction count of the finished launch
3     INSTR     Δins_addr, opcode id, active lanes, memory width
4     MEM       Δins_addr, flags (bit0 load, bit1 store, bit2 atomic),
                width, active lanes, line count, Δline addresses
5     BRANCH    Δins_addr, active/taken/not-taken lane counts
====  ========  ====================================================

Malformed input of any shape raises :class:`TraceFormatError` — never a
``struct``/unpickling traceback (the format contains no pickles at all).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

MAGIC = b"RPTR"
TRAILER_MAGIC = b"RPTE"
VERSION = 1
TRAILER_SIZE = 8

#: event tags (0 is the end-of-events marker, not an event)
TAG_END = 0
TAG_LAUNCH = 1
TAG_KEND = 2
TAG_INSTR = 3
TAG_MEM = 4
TAG_BRANCH = 5

KIND_NAMES = {
    TAG_LAUNCH: "launch",
    TAG_KEND: "kernel_end",
    TAG_INSTR: "instr",
    TAG_MEM: "mem",
    TAG_BRANCH: "branch",
}

MEM_FLAG_LOAD = 1 << 0
MEM_FLAG_STORE = 1 << 1
MEM_FLAG_ATOMIC = 1 << 2

U64_MASK = (1 << 64) - 1


class TraceFormatError(Exception):
    """The file is not a valid (complete) trace."""


# ---------------------------------------------------------------------
# varint codec
# ---------------------------------------------------------------------


def encode_varint(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise ValueError(f"varint value must be unsigned: {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(buf: bytes, pos: int) -> Tuple[int, int]:
    """Decode one varint at *pos*; returns (value, next_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise TraceFormatError("truncated varint (unexpected EOF)")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise TraceFormatError("varint too long (corrupt trace)")


def zigzag(value: int) -> int:
    """Map a signed integer onto unsigned (small magnitudes stay small)."""
    return value * 2 if value >= 0 else -value * 2 - 1


def unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


# ---------------------------------------------------------------------
# events
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class LaunchEvent:
    """Kernel-launch framing: every event until the matching
    :class:`KernelEndEvent` belongs to this launch."""

    kernel: str
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    launch_index: int

    tag = TAG_LAUNCH


@dataclass(frozen=True)
class KernelEndEvent:
    """End-of-launch frame (warp-instruction count of the launch)."""

    warp_instructions: int

    tag = TAG_KEND


@dataclass(frozen=True)
class InstrEvent:
    """One warp-level instruction issue at an instrumented site."""

    ins_addr: int
    opcode: int
    lanes: int
    #: memory access width in bytes (0 for non-memory instructions)
    width: int

    tag = TAG_INSTR


@dataclass(frozen=True)
class MemEvent:
    """One warp-level memory access with its coalesced line addresses."""

    ins_addr: int
    flags: int
    width: int
    active_lanes: int
    line_addresses: Tuple[int, ...]

    tag = TAG_MEM

    @property
    def is_load(self) -> bool:
        return bool(self.flags & MEM_FLAG_LOAD)

    @property
    def is_store(self) -> bool:
        return bool(self.flags & MEM_FLAG_STORE)

    @property
    def unique_lines(self) -> int:
        return len(self.line_addresses)


@dataclass(frozen=True)
class BranchEvent:
    """One conditional-branch execution (Case Study I's raw datum)."""

    ins_addr: int
    active: int
    taken: int
    not_taken: int

    tag = TAG_BRANCH

    @property
    def divergent(self) -> bool:
        return self.taken != self.active and self.not_taken != self.active


TraceEvent = object  # union marker for documentation purposes


# ---------------------------------------------------------------------
# codec: events <-> bytes (with cross-event delta state)
# ---------------------------------------------------------------------


class EncoderState:
    """Delta generators shared across successive events."""

    __slots__ = ("prev_addr", "prev_line")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.prev_addr = 0
        self.prev_line = 0


def encode_event(event, state: EncoderState) -> bytes:
    """One event as tag + payload bytes, advancing *state*."""
    out = bytearray()
    tag = event.tag
    out += encode_varint(tag)
    if tag == TAG_LAUNCH:
        name = event.kernel.encode("utf-8")
        out += encode_varint(len(name))
        out += name
        for value in (*event.grid, *event.block, event.launch_index):
            out += encode_varint(int(value))
        state.reset()
        return bytes(out)
    if tag == TAG_KEND:
        out += encode_varint(int(event.warp_instructions))
        return bytes(out)
    # the remaining kinds all lead with a delta-coded instruction address
    delta = int(event.ins_addr) - state.prev_addr
    state.prev_addr = int(event.ins_addr)
    out += encode_varint(zigzag(delta))
    if tag == TAG_INSTR:
        out += encode_varint(int(event.opcode))
        out += encode_varint(int(event.lanes))
        out += encode_varint(int(event.width))
    elif tag == TAG_MEM:
        out += encode_varint(int(event.flags))
        out += encode_varint(int(event.width))
        out += encode_varint(int(event.active_lanes))
        out += encode_varint(len(event.line_addresses))
        for line in event.line_addresses:
            out += encode_varint(zigzag(int(line) - state.prev_line))
            state.prev_line = int(line)
    elif tag == TAG_BRANCH:
        out += encode_varint(int(event.active))
        out += encode_varint(int(event.taken))
        out += encode_varint(int(event.not_taken))
    else:
        raise ValueError(f"unknown event: {event!r}")
    return bytes(out)


def decode_event(tag: int, buf: bytes, pos: int,
                 state: EncoderState) -> Tuple[object, int]:
    """Decode the payload of one event whose *tag* was already read."""
    if tag == TAG_LAUNCH:
        length, pos = decode_varint(buf, pos)
        if pos + length > len(buf):
            raise TraceFormatError("truncated kernel name")
        try:
            name = buf[pos:pos + length].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(f"bad kernel name bytes: {exc}")
        pos += length
        dims = []
        for _ in range(7):
            value, pos = decode_varint(buf, pos)
            dims.append(value)
        state.reset()
        return LaunchEvent(kernel=name, grid=tuple(dims[0:3]),
                           block=tuple(dims[3:6]),
                           launch_index=dims[6]), pos
    if tag == TAG_KEND:
        count, pos = decode_varint(buf, pos)
        return KernelEndEvent(warp_instructions=count), pos
    if tag in (TAG_INSTR, TAG_MEM, TAG_BRANCH):
        raw, pos = decode_varint(buf, pos)
        addr = state.prev_addr + unzigzag(raw)
        state.prev_addr = addr
        if tag == TAG_INSTR:
            opcode, pos = decode_varint(buf, pos)
            lanes, pos = decode_varint(buf, pos)
            width, pos = decode_varint(buf, pos)
            return InstrEvent(ins_addr=addr, opcode=opcode, lanes=lanes,
                              width=width), pos
        if tag == TAG_MEM:
            flags, pos = decode_varint(buf, pos)
            width, pos = decode_varint(buf, pos)
            active, pos = decode_varint(buf, pos)
            count, pos = decode_varint(buf, pos)
            lines = []
            for _ in range(count):
                raw, pos = decode_varint(buf, pos)
                line = state.prev_line + unzigzag(raw)
                state.prev_line = line
                lines.append(line)
            return MemEvent(ins_addr=addr, flags=flags, width=width,
                            active_lanes=active,
                            line_addresses=tuple(lines)), pos
        active, pos = decode_varint(buf, pos)
        taken, pos = decode_varint(buf, pos)
        not_taken, pos = decode_varint(buf, pos)
        return BranchEvent(ins_addr=addr, active=active, taken=taken,
                           not_taken=not_taken), pos
    raise TraceFormatError(f"unknown event tag {tag}")


# ---------------------------------------------------------------------
# frame slices (seekable decode for indexed readers / sharded replay)
# ---------------------------------------------------------------------


def iter_slice_events(data: bytes) -> Iterator[object]:
    """Decode a byte slice that begins at a record boundary where the
    delta state is known-reset — i.e. at a LAUNCH record (the codec
    resets :class:`EncoderState` there, making every launch frame
    independently decodable).  Yields events until the slice ends."""
    state = EncoderState()
    pos = 0
    end = len(data)
    while pos < end:
        tag, pos = decode_varint(data, pos)
        event, pos = decode_event(tag, data, pos, state)
        yield event


def decode_varint_stream(data: bytes, pos: int = 0) -> list:
    """Every varint in ``data[pos:]`` as one flat list.

    Only valid where the remaining bytes are *pure* varints — true for
    any span of INSTR/MEM/BRANCH/KEND records (their tags and payloads
    are all varints; only LAUNCH embeds raw string bytes).  One tight
    pass over the bytes, no per-value function calls — the decode fast
    path under columnar replay.
    """
    values: list = []
    append = values.append
    result = 0
    shift = 0
    for byte in memoryview(data)[pos:]:
        if byte & 0x80:
            result |= (byte & 0x7F) << shift
            shift += 7
            if shift > 70:
                raise TraceFormatError("varint too long (corrupt trace)")
        else:
            append(result | (byte << shift))
            result = 0
            shift = 0
    if shift:
        raise TraceFormatError("truncated varint (unexpected EOF)")
    return values


def decode_launch_frame(data: bytes) -> Tuple[LaunchEvent, list]:
    """Split one ``LAUNCH .. KEND`` frame slice into its launch header
    and the flat varint token stream of every record after it."""
    pos = 0
    tag, pos = decode_varint(data, pos)
    if tag != TAG_LAUNCH:
        raise TraceFormatError(
            "frame slice does not start at a launch record")
    state = EncoderState()
    launch, pos = decode_event(tag, data, pos, state)
    return launch, decode_varint_stream(data, pos)


# ---------------------------------------------------------------------
# footer
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class TraceManifest:
    """The footer's summary of a finished trace."""

    version: int
    total_events: int
    counts: Tuple[Tuple[int, int], ...]   # (tag, count) pairs
    checksum: int                         # CRC-32 of the event bytes

    def count(self, tag: int) -> int:
        for entry_tag, value in self.counts:
            if entry_tag == tag:
                return value
        return 0

    def kind_counts(self):
        return {KIND_NAMES.get(tag, f"tag{tag}"): count
                for tag, count in self.counts}


def encode_footer(manifest: TraceManifest) -> bytes:
    body = bytearray()
    body += encode_varint(len(manifest.counts))
    for tag, count in manifest.counts:
        body += encode_varint(tag)
        body += encode_varint(count)
    body += encode_varint(manifest.total_events)
    body += encode_varint(manifest.checksum)
    trailer = len(body).to_bytes(4, "little") + TRAILER_MAGIC
    return bytes(body) + trailer


def decode_footer(buf: bytes, version: int) -> TraceManifest:
    """Decode footer *body* bytes (without the 8-byte trailer)."""
    pos = 0
    n_kinds, pos = decode_varint(buf, pos)
    if n_kinds > 64:
        raise TraceFormatError("implausible footer (corrupt trace)")
    counts = []
    for _ in range(n_kinds):
        tag, pos = decode_varint(buf, pos)
        count, pos = decode_varint(buf, pos)
        counts.append((tag, count))
    total, pos = decode_varint(buf, pos)
    checksum, pos = decode_varint(buf, pos)
    return TraceManifest(version=version, total_events=total,
                         counts=tuple(counts), checksum=checksum)


def crc32(data: bytes, value: int = 0) -> int:
    return zlib.crc32(data, value) & 0xFFFFFFFF
