"""``repro.trace`` — binary event-trace capture, replay, and diff.

The Section 9.4 workflow as a subsystem: record one instrumented run
into a compact, versioned, streaming binary format (``.rptrace``), then
answer many questions offline at replay speed — cache simulation,
branch divergence, memory divergence, opcode histograms — and compare
traces across runs (``trace-diff``) to pinpoint where an injected error
first became architecturally visible.

Quick start::

    from repro.trace import TraceWriter, TraceRecorder, replay, \\
        CacheSimAnalysis

    with TraceWriter("run.rptrace") as writer:
        recorder = TraceRecorder(device, writer)
        kernel = recorder.compile(workload.build_ir())
        workload.execute(device, kernel)

    (cache,) = replay("run.rptrace", [CacheSimAnalysis()])
    print(cache.report())
"""

from repro.trace.format import (
    BranchEvent,
    InstrEvent,
    KernelEndEvent,
    LaunchEvent,
    MemEvent,
    TraceFormatError,
    TraceManifest,
)
from repro.trace.io import FrameColumns, TraceReader, TraceWriter, \
    decode_frame_columns
from repro.trace.capture import CAPTURE_FLAGS, TraceRecorder, \
    capture_workload
from repro.trace.replay import (
    ANALYSES,
    CacheSimAnalysis,
    DivergenceAnalysis,
    MemoryDivergenceAnalysis,
    OpcodeHistogramAnalysis,
    TraceAnalysis,
    make_analysis,
    replay,
    replay_sharded,
)
from repro.trace.index import (
    IndexBuilder,
    LaunchEntry,
    TraceIndex,
    build_index,
    ensure_index,
    index_path_for,
    read_index,
    sidecar_index,
    write_index,
)
from repro.trace.query import QueryFilter, QueryStats, run_query
from repro.trace.diff import TraceDiff, diff_traces
from repro.trace.timing import (
    TeeWriter,
    TimingAnalysis,
    TimingModel,
    TimingReport,
    TimingSink,
    live_timing,
    render_iters,
    render_summary,
)

__all__ = [
    "BranchEvent", "InstrEvent", "KernelEndEvent", "LaunchEvent",
    "MemEvent", "TraceFormatError", "TraceManifest",
    "FrameColumns", "TraceReader", "TraceWriter",
    "decode_frame_columns",
    "CAPTURE_FLAGS", "TraceRecorder", "capture_workload",
    "ANALYSES", "CacheSimAnalysis", "DivergenceAnalysis",
    "MemoryDivergenceAnalysis", "OpcodeHistogramAnalysis",
    "TraceAnalysis", "make_analysis", "replay", "replay_sharded",
    "IndexBuilder", "LaunchEntry", "TraceIndex", "build_index",
    "ensure_index", "index_path_for", "read_index", "sidecar_index",
    "write_index",
    "QueryFilter", "QueryStats", "run_query",
    "TraceDiff", "diff_traces",
    "TeeWriter", "TimingAnalysis", "TimingModel", "TimingReport",
    "TimingSink", "live_timing", "render_iters", "render_summary",
]
