"""Trace-driven timing: warp-stream reconstruction + scheduled replay.

The ``timing`` analysis rebuilds per-warp instruction streams from a
recorded event stream and runs them through the cycle-stepped scheduler
in :mod:`repro.sim.scheduler`, entirely off the functional fast path:
the executor's inline accounting stays the flat model, and the
stall-accurate numbers come from replaying a trace (or from tee-ing a
live capture through :class:`TimingSink`, which by construction gives
bit-identical results — both paths feed the same pure
:meth:`TimingModel.feed`).

**Warp segmentation.**  Trace events carry no warp IDs (the format is
unchanged), so streams are rebuilt from the executor's deterministic
scheduling contract: CTAs run sequentially; within a CTA, warps run in
index order, each to its next barrier or exit; when every live warp is
parked the barrier releases and the pass restarts at the lowest live
index.  Under that contract each event extends the *current* warp, and
only three opcodes can hand off:

* ``BAR`` always parks (the executor parks unconditionally) and will
  resume at the next instruction;
* ``EXIT``/``RET`` are terminal only when the *next* event does not
  continue this warp — the lookahead address decides: ``addr + 8``
  means surviving lanes fell through; the computed start address of
  the next schedulable warp means this warp retired; anything else is
  a divergence-stack unwind within the same warp.

The two candidate addresses cannot collide (the entry address precedes
any exit fall-through, and a barrier-resume address equal to the exit
fall-through would need a BAR and an EXIT at the same address), so the
reconstruction is exact for programs the executor can produce.

**Divergence spans.**  An instruction is divergence-serialized when it
executes with fewer active lanes than the warp's reconverged width;
the width rebases after partial exits and self-heals upward at
reconvergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.opcodes import Opcode
from repro.isa.program import INSTRUCTION_BYTES
from repro.sim.cache import Cache
from repro.sim.scheduler import (
    LaunchSchedule,
    SchedulerConfig,
    WarpInstr,
    WarpStream,
    divergence_spans,
    schedule_launch,
)
from repro.sim.warp import WARP_SIZE
from repro.trace.format import (
    TAG_INSTR,
    TAG_KEND,
    TAG_MEM,
    BranchEvent,
    InstrEvent,
    KernelEndEvent,
    LaunchEvent,
    MemEvent,
)
from repro.trace.io import FrameColumns
from repro.trace.replay import ANALYSES, TraceAnalysis

#: opcode id -> Opcode member, skipping the per-event Enum __call__
_OPCODES_BY_VALUE = {op.value: op for op in Opcode}


class _LaunchBuilder:
    """Segments one launch's event stream into per-CTA warp streams."""

    def __init__(self, event: LaunchEvent):
        self.kernel = event.kernel
        self.launch_index = event.launch_index
        self.grid = event.grid
        self.block = event.block
        bx, by, bz = event.block
        gx, gy, gz = event.grid
        self.threads = max(1, bx * by * bz)
        self.warps_per_cta = -(-self.threads // WARP_SIZE)
        self.num_ctas = max(1, gx * gy * gz)
        self.entry_addr: Optional[int] = None
        self.instr_count = 0
        self.warp_instructions = 0   # from the KernelEndEvent
        self.desyncs = 0             # events after the model saw the end
        self.ctas: List[List[WarpStream]] = []
        self._start_cta()

    def _start_cta(self) -> None:
        n = self.warps_per_cta
        self.streams = [WarpStream(warp=i) for i in range(n)]
        self.alive = [True] * n
        self.parked = [False] * n
        self.started = [False] * n
        self.resume = [0] * n
        self.rebase = [False] * n
        self.committed = [
            min(WARP_SIZE, self.threads - i * WARP_SIZE) for i in range(n)]
        self.current = 0
        self.started[0] = True

    # ---------------------------------------------------- scheduling

    def _select_next(self, current_dead: bool):
        """What runs after the current warp hands off: ``("warp", index,
        start_addr, release)``, ``("cta", ...)``, or ``("end", ...)``
        — computed without mutating (also used as EXIT lookahead)."""
        alive = self.alive
        skip = self.current if current_dead else -1
        for i in range(self.current + 1, self.warps_per_cta):
            if i != skip and alive[i] and not self.parked[i]:
                addr = self.resume[i] if self.started[i] else self.entry_addr
                return ("warp", i, addr, False)
        for i in range(self.warps_per_cta):
            if i != skip and alive[i]:
                # end of pass; every survivor is parked at the barrier
                return ("warp", i, self.resume[i], True)
        if len(self.ctas) + 1 < self.num_ctas:
            return ("cta", 0, self.entry_addr, False)
        return ("end", None, None, False)

    def _advance(self, current_dead: bool) -> None:
        if current_dead:
            self.alive[self.current] = False
        kind, index, _, release = self._select_next(current_dead=False)
        if kind == "warp":
            if release:
                for i in range(self.warps_per_cta):
                    self.parked[i] = False
            self.current = index
            self.started[index] = True
        elif kind == "cta":
            self.ctas.append(self.streams)
            self._start_cta()
        # "end": nothing left; stray events count as desyncs in add()

    # ------------------------------------------------------- events

    def add(self, rec: WarpInstr, next_addr: Optional[int]) -> None:
        """Assign *rec* to the current warp; *next_addr* is the
        one-event lookahead (None at launch end)."""
        if self.entry_addr is None:
            self.entry_addr = rec.addr
        w = self.current
        if not self.alive[w]:
            self.desyncs += 1        # model mismatch: keep appending
        if self.rebase[w]:
            self.committed[w] = max(rec.lanes, 1)
            self.rebase[w] = False
        if rec.lanes > self.committed[w]:
            self.committed[w] = rec.lanes    # reconvergence self-heal
        rec.divergent = 0 < rec.lanes < self.committed[w]
        self.streams[w].instrs.append(rec)
        self.instr_count += 1
        opcode = rec.opcode
        if opcode is Opcode.BAR:
            self.parked[w] = True
            self.resume[w] = rec.addr + INSTRUCTION_BYTES
            self._advance(current_dead=False)
        elif opcode is Opcode.EXIT or opcode is Opcode.RET:
            self.rebase[w] = True    # survivors re-base the warp width
            if next_addr is None:
                self._advance(current_dead=True)
            elif next_addr == rec.addr + INSTRUCTION_BYTES:
                pass                 # surviving lanes fell through
            else:
                kind, _, cand, _ = self._select_next(current_dead=True)
                if kind != "end" and next_addr == cand:
                    self._advance(current_dead=True)
                # else: divergence-stack unwind within this warp

    def finalize(self) -> None:
        if any(stream.instrs for stream in self.streams):
            self.ctas.append(self.streams)
        self.streams = []


@dataclass
class LaunchTiming:
    """One launch's scheduled timing plus its divergence geometry."""

    kernel: str
    launch_index: int
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    ctas: int
    warps: int
    instructions: int
    schedule: LaunchSchedule
    #: (start_addr, length, min_lanes), longest first
    spans: List[Tuple[int, int, int]]

    @property
    def cycles(self) -> int:
        return self.schedule.cycles

    @property
    def bubble_pct(self) -> float:
        cycles = self.schedule.cycles
        return 100.0 * self.schedule.bubble_cycles / cycles if cycles else 0.0


@dataclass
class TimingReport:
    """All launches of one trace under one issue policy."""

    policy: str
    launches: List[LaunchTiming]

    @property
    def total_cycles(self) -> int:
        return sum(launch.cycles for launch in self.launches)

    def kernels(self) -> Dict[str, List[LaunchTiming]]:
        """Launches grouped by kernel, in first-seen order."""
        grouped: Dict[str, List[LaunchTiming]] = {}
        for launch in self.launches:
            grouped.setdefault(launch.kernel, []).append(launch)
        return grouped


class TimingModel:
    """Feed trace events in order; schedule afterwards.

    ``feed`` is a pure function of the event stream, so a live capture
    tee'd through it and an offline replay of the same trace produce
    bit-identical reports.  The cache hierarchy that grades memory
    latencies is the ``cachesim`` default (16 KiB/4-way L1 over
    256 KiB/16-way L2), fed in event order.
    """

    def __init__(self, l1_kib: int = 16, l1_ways: int = 4,
                 l2_kib: int = 256, l2_ways: int = 16):
        self.l2 = Cache(l2_kib << 10, ways=l2_ways, name="L2")
        self.l1 = Cache(l1_kib << 10, ways=l1_ways, name="L1",
                        next_level=self.l2)
        self.launches: List[_LaunchBuilder] = []
        self._builder: Optional[_LaunchBuilder] = None
        self._pending: Optional[WarpInstr] = None
        self._reports: Dict[str, TimingReport] = {}

    # ------------------------------------------------------- feeding

    def feed(self, event) -> None:
        if isinstance(event, InstrEvent):
            self._flush(next_addr=event.ins_addr)
            self._pending = WarpInstr(addr=event.ins_addr,
                                      opcode=Opcode(event.opcode),
                                      lanes=event.lanes)
        elif isinstance(event, MemEvent):
            pending = self._pending
            if pending is not None:
                before_l1 = self.l1.stats.misses
                before_l2 = self.l2.stats.misses
                access = self.l1.access
                for line in event.line_addresses:
                    access(line)
                pending.transactions += len(event.line_addresses)
                pending.l1_misses += self.l1.stats.misses - before_l1
                pending.l2_misses += self.l2.stats.misses - before_l2
        elif isinstance(event, LaunchEvent):
            self._end_launch()
            # launch-boundary flush: memory latencies are graded against
            # caches that start cold at every kernel launch, making the
            # model launch-local (sharded replay == streaming replay)
            self.l1.invalidate()
            self._builder = _LaunchBuilder(event)
            self.launches.append(self._builder)
        elif isinstance(event, KernelEndEvent):
            self._flush(next_addr=None)
            if self._builder is not None:
                self._builder.warp_instructions = event.warp_instructions
                self._builder.finalize()
            self._builder = None
        # BranchEvents add nothing: divergence comes from lane counts

    def feed_batch(self, events: Iterable) -> None:
        for event in events:
            self.feed(event)

    def feed_frame(self, frame: FrameColumns) -> None:
        """Columnar equivalent of feeding one launch frame's events
        through :meth:`feed` in record order — bit-identical model
        state (stream rebuild, cache grading, pending flushes), minus
        the per-event object construction and isinstance dispatch."""
        self.feed(frame.launch)
        tags = frame.record_tags.tolist()
        if not tags:
            return
        instr_addr = frame.instr_addr.tolist()
        instr_op = frame.instr_opcodes.tolist()
        instr_lanes = frame.instr_lanes.tolist()
        line_ends = np.cumsum(frame.mem_nlines).tolist()
        kend_counts = frame.kend_counts.tolist()
        mem_lines = frame.mem_lines
        opcode_of = _OPCODES_BY_VALUE
        l1 = self.l1
        l2 = self.l2
        builder = self._builder
        pending = self._pending
        ii = mi = ki = 0
        line_at = 0
        for tag in tags:
            if tag == TAG_INSTR:
                addr = instr_addr[ii]
                if pending is not None and builder is not None:
                    builder.add(pending, addr)
                    self._reports.clear()
                value = instr_op[ii]
                opcode = opcode_of.get(value) or Opcode(value)
                pending = WarpInstr(addr=addr, opcode=opcode,
                                    lanes=instr_lanes[ii])
                ii += 1
            elif tag == TAG_MEM:
                end = line_ends[mi]
                if pending is not None:
                    before_l2 = l2.stats.misses
                    pending.l1_misses += l1.access_lines(
                        mem_lines[line_at:end])
                    pending.l2_misses += l2.stats.misses - before_l2
                    pending.transactions += end - line_at
                line_at = end
                mi += 1
            elif tag == TAG_KEND:
                if pending is not None and builder is not None:
                    builder.add(pending, None)
                    self._reports.clear()
                pending = None
                if builder is not None:
                    builder.warp_instructions = kend_counts[ki]
                    builder.finalize()
                builder = self._builder = None
                ki += 1
            # TAG_BRANCH: divergence comes from lane counts, as in feed()
        self._pending = pending

    def finish(self) -> None:
        """Close a trailing launch that never saw its end event."""
        self._end_launch()

    def _flush(self, next_addr: Optional[int]) -> None:
        pending, self._pending = self._pending, None
        if pending is not None and self._builder is not None:
            self._builder.add(pending, next_addr)
            self._reports.clear()

    def _end_launch(self) -> None:
        self._flush(next_addr=None)
        if self._builder is not None:
            self._builder.finalize()
            self._builder = None

    # ---------------------------------------------------- scheduling

    def schedule(self, policy: str = "gto") -> TimingReport:
        report = self._reports.get(policy)
        if report is not None:
            return report
        config = SchedulerConfig(policy=policy)
        launches = []
        for builder in self.launches:
            sched = schedule_launch(builder.ctas, config)
            spans = []
            for streams in builder.ctas:
                for stream in streams:
                    spans.extend(divergence_spans(stream))
            spans.sort(key=lambda s: (-s[1], s[0], s[2]))
            launches.append(LaunchTiming(
                kernel=builder.kernel,
                launch_index=builder.launch_index,
                grid=builder.grid, block=builder.block,
                ctas=len(builder.ctas),
                warps=sum(len(streams) for streams in builder.ctas),
                instructions=builder.instr_count,
                schedule=sched, spans=spans))
        report = TimingReport(policy=policy, launches=launches)
        self._reports[policy] = report
        return report


class TimingAnalysis(TraceAnalysis):
    """The replay-side entry point: ``repro replay --analysis=timing``
    and the ``repro trace summary``/``iters`` subcommands."""

    name = "timing"
    mergeable = True
    columnar = True

    def __init__(self, policy: str = "gto"):
        self.policy = policy
        self.model = TimingModel()
        self._merged: List[LaunchTiming] = []

    def feed_columns(self, frame: FrameColumns) -> None:
        self.model.feed_frame(frame)

    def on_launch(self, event: LaunchEvent) -> None:
        self.model.feed(event)

    def on_kernel_end(self, event: KernelEndEvent) -> None:
        self.model.feed(event)

    def on_instr(self, event: InstrEvent) -> None:
        self.model.feed(event)

    def on_mem(self, event: MemEvent) -> None:
        self.model.feed(event)

    def on_branch(self, event: BranchEvent) -> None:
        self.model.feed(event)

    def finish_shard(self) -> List[LaunchTiming]:
        """Schedule in the worker; ship only the compact per-launch
        timings (not the rebuilt warp streams) back to the parent."""
        return self.model.schedule(self.policy).launches

    def merge(self, piece: List[LaunchTiming]) -> None:
        self._merged.extend(piece)

    def _report(self) -> TimingReport:
        if self._merged:
            return TimingReport(policy=self.policy,
                                launches=list(self._merged))
        return self.model.schedule(self.policy)

    def result(self) -> Dict:
        report = self._report()
        return {
            "policy": report.policy,
            "total_cycles": report.total_cycles,
            "launches": [{
                "kernel": launch.kernel,
                "launch_index": launch.launch_index,
                "cycles": launch.cycles,
                "busy_cycles": launch.schedule.busy_cycles,
                "bubble_cycles": launch.schedule.bubble_cycles,
                "issued": launch.schedule.issued,
                "stall_cycles": dict(launch.schedule.stall_cycles),
                "divergent_instrs": launch.schedule.divergent_instrs,
            } for launch in report.launches],
        }

    def report(self) -> str:
        report = self._report()
        busy = sum(l.schedule.busy_cycles for l in report.launches)
        bubbles = sum(l.schedule.bubble_cycles for l in report.launches)
        total = report.total_cycles
        pct = 100.0 * bubbles / total if total else 0.0
        return (f"timing[{report.policy}]: {len(report.launches)} "
                f"launches, {total:,} cycles (busy {busy:,}, "
                f"{bubbles:,} bubble cycles = {pct:.1f}%)")


ANALYSES[TimingAnalysis.name] = TimingAnalysis


# ------------------------------------------------------------ live path

class TimingSink:
    """A ``TraceWriter``-shaped sink feeding a :class:`TimingModel`
    instead of disk — live timing with no trace file."""

    def __init__(self, model: TimingModel):
        self.model = model

    def write(self, event) -> None:
        self.model.feed(event)

    def write_batch(self, events) -> None:
        self.model.feed_batch(events)

    def close(self):
        self.model.finish()
        return None


class TeeWriter:
    """Forward every event to an inner :class:`TraceWriter` *and* a
    :class:`TimingModel` — capture a trace and time it in one run.
    The inner writer sees exactly the calls it would see alone, so the
    trace bytes are unchanged."""

    def __init__(self, inner, model: TimingModel):
        self.inner = inner
        self.model = model

    def write(self, event) -> None:
        self.inner.write(event)
        self.model.feed(event)

    def write_batch(self, events) -> None:
        self.inner.write_batch(events)
        self.model.feed_batch(events)

    def close(self):
        self.model.finish()
        return self.inner.close()


def live_timing(workload_name: str, global_only: bool = True,
                cache=None) -> Tuple[TimingModel, bool]:
    """Run *workload_name* instrumented, feeding a :class:`TimingModel`
    directly (no trace file); returns ``(model, verified)``."""
    from repro.sim import Device
    from repro.trace.capture import TraceRecorder
    from repro.workloads import make

    model = TimingModel()
    workload = make(workload_name)
    device = Device()
    recorder = TraceRecorder(device, TimingSink(model),
                             global_only=global_only)
    kernel = recorder.compile(workload.build_ir(), cache=cache)
    output = workload.execute(device, kernel)
    verified = workload.verify(output)
    model.finish()
    return model, verified


# ------------------------------------------------------------ rendering

def _pct(part: int, whole: int) -> float:
    return 100.0 * part / whole if whole else 0.0


def render_summary(report: TimingReport, top: int = 5) -> str:
    """The ``repro trace summary`` text: per-kernel cycles, top-N
    hotspot instructions, idle-gap regions, divergence spans."""
    lines = [f"timing summary — policy {report.policy}"]
    for kernel, launches in report.kernels().items():
        cycles = sum(l.cycles for l in launches)
        busy = sum(l.schedule.busy_cycles for l in launches)
        bubbles = cycles - busy
        issued = sum(l.schedule.issued for l in launches)
        lines.append(
            f"kernel {kernel}: {len(launches)} launch"
            f"{'es' if len(launches) != 1 else ''}, {cycles:,} cycles "
            f"(busy {busy:,}, bubbles {bubbles:,} = "
            f"{_pct(bubbles, cycles):.1f}%), {issued:,} warp instrs")
        stalls = {reason: 0 for reason
                  in launches[0].schedule.stall_cycles}
        releases = 0
        for launch in launches:
            for reason, count in launch.schedule.stall_cycles.items():
                stalls[reason] += count
            releases += launch.schedule.barrier_releases
        stall_text = ", ".join(f"{reason} {count:,}"
                               for reason, count in sorted(stalls.items()))
        lines.append(f"  stalls: {stall_text}; "
                     f"barrier releases {releases:,}")
        merged: Dict[int, List] = {}
        for launch in launches:
            for spot in launch.schedule.hotspots.values():
                row = merged.setdefault(
                    spot.addr, [spot.opcode, 0, 0, 0])
                row[1] += spot.issues
                row[2] += spot.issue_cycles
                row[3] += spot.stall_cycles
        ranked = sorted(merged.items(),
                        key=lambda item: (-(item[1][2] + item[1][3]),
                                          item[0]))[:top]
        if ranked:
            lines.append("  hotspots:")
            for addr, (opcode, issues, issue_cycles, stall) in ranked:
                lines.append(f"    0x{addr:08x} {opcode.name:<6} "
                             f"issues {issues:>8,}  "
                             f"issue {issue_cycles:>8,}  "
                             f"stall {stall:>8,}")
        bubble_rows = []
        for launch in launches:
            for bubble in launch.schedule.bubbles:
                bubble_rows.append((bubble, launch.launch_index))
        bubble_rows.sort(key=lambda item: (-item[0].cycles, item[1],
                                           item[0].cta, item[0].start))
        if bubble_rows:
            lines.append("  bubbles:")
            for bubble, launch_index in bubble_rows[:top]:
                lines.append(
                    f"    launch {launch_index} cta {bubble.cta} "
                    f"@ {bubble.start:,}: {bubble.cycles:,} cycles "
                    f"({bubble.reason}) on 0x{bubble.addr:08x} "
                    f"{bubble.opcode.name}")
        span_count = sum(len(l.spans) for l in launches)
        divergent = sum(l.schedule.divergent_instrs for l in launches)
        lines.append(f"  divergence: {span_count:,} serialized spans, "
                     f"{divergent:,} warp instrs "
                     f"({_pct(divergent, issued):.1f}% of issued)")
        if span_count:
            spans = []
            for launch in launches:
                spans.extend(launch.spans)
            spans.sort(key=lambda s: (-s[1], s[0], s[2]))
            for start, length, min_lanes in spans[:top]:
                lines.append(f"    0x{start:08x} x{length:<6,} "
                             f"min lanes {min_lanes}")
    lines.append(f"total: {report.total_cycles:,} cycles across "
                 f"{len(report.launches)} launches")
    return "\n".join(lines)


def render_iters(report: TimingReport) -> str:
    """The ``repro trace iters`` text: per-launch cycles and the
    per-kernel iteration spread (launch-to-launch variance)."""
    lines = [f"timing iters — policy {report.policy}"]
    for launch in report.launches:
        lines.append(f"  #{launch.launch_index:<4} "
                     f"{launch.kernel:<24} {launch.cycles:>12,} cycles  "
                     f"{launch.schedule.issued:>10,} instrs  "
                     f"{launch.bubble_pct:5.1f}% bubble")
    for kernel, launches in report.kernels().items():
        cycles = [launch.cycles for launch in launches]
        low, high = min(cycles), max(cycles)
        mean = sum(cycles) / len(cycles)
        spread = high - low
        lines.append(
            f"kernel {kernel}: {len(cycles)} iters, cycles "
            f"min {low:,} mean {mean:,.1f} max {high:,}, "
            f"spread {spread:,} ({_pct(spread, round(mean)):.1f}% of mean)")
    return "\n".join(lines)
