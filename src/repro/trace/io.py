"""Streaming trace I/O: bounded-memory writer, lazy reader, and the
columnar frame decoder.

:class:`TraceWriter` appends events to a file (or file object) through a
bounded byte buffer — host-side memory stays O(buffer), never O(trace),
no matter how many events the instrumented run produces.  Closing the
writer publishes the manifest footer; a file without a valid footer is
reported as torn by :class:`TraceReader`, which streams events lazily
and verifies the CRC as it goes.

Path-target writers also maintain a columnar index
(:mod:`repro.trace.index`) as they go and publish it to the ``.rpti``
sidecar at close — :meth:`TraceReader.open_launch` then seeks straight
to launch *n* instead of scanning the whole stream.

:class:`FrameColumns` is the replay stack's batch currency: one
``LAUNCH .. KEND`` frame decoded into ndarray columns by
:func:`decode_frame_columns` — the whole varint stream in a few numpy
passes (continuation-bit segmentation, masked shift-accumulate,
cumulative-sum zigzag-delta undo, pointer-doubled record walk), with
the scalar token walk kept as the bit-exact reference and fallback.
:func:`repro.trace.replay.replay`, :func:`~repro.trace.replay.\
replay_sharded`, and ``repro trace query`` all consume it.
"""

from __future__ import annotations

import io
import os
from typing import IO, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.telemetry.collector import TELEMETRY
from repro.trace import index as index_mod
from repro.trace.format import (
    EncoderState,
    KIND_NAMES,
    MAGIC,
    TAG_BRANCH,
    TAG_END,
    TAG_INSTR,
    TAG_KEND,
    TAG_LAUNCH,
    TAG_MEM,
    TRAILER_MAGIC,
    TRAILER_SIZE,
    TraceFormatError,
    TraceManifest,
    VERSION,
    crc32,
    decode_event,
    decode_footer,
    decode_varint,
    decode_varint_stream,
    encode_event,
    encode_footer,
    encode_varint,
    iter_slice_events,
    unzigzag,
)

#: flush the host-side buffer once it holds this many bytes
DEFAULT_BUFFER_BYTES = 256 << 10
#: reader chunk size
READ_CHUNK = 256 << 10


class TraceWriter:
    """Writes a ``.rptrace`` stream with bounded host-side memory.

    Accepts a path (the file is created/truncated and closed with the
    writer) or a seekable binary file object (left open after
    :meth:`close` so callers can read it back).  Usable as a context
    manager; the footer is written exactly once, by ``close``.
    """

    def __init__(self, target: Union[str, os.PathLike, IO[bytes]],
                 buffer_bytes: int = DEFAULT_BUFFER_BYTES):
        if hasattr(target, "write"):
            self._file: IO[bytes] = target
            self._owns_file = False
            self.path: Optional[str] = getattr(target, "name", None)
        else:
            self.path = os.fspath(target)
            self._file = open(self.path, "wb")
            self._owns_file = True
        self._buffer = bytearray()
        self._buffer_bytes = max(1, buffer_bytes)
        self._state = EncoderState()
        self._counts: dict = {}
        self._total = 0
        self._crc = 0
        self._closed = False
        self.bytes_written = 0
        # index only path targets: a sidecar next to a borrowed file
        # object would be a surprise, and the backfill command covers it
        self._index: Optional["index_mod.IndexBuilder"] = (
            index_mod.IndexBuilder() if self._owns_file else None)
        self._header_size = len(MAGIC) + 1
        self._file.write(MAGIC + bytes([VERSION]))

    # ------------------------------------------------------------ write

    def write(self, event) -> None:
        if self._closed:
            raise ValueError("trace writer already closed")
        encoded = encode_event(event, self._state)
        if self._index is not None:
            self._index.observe(
                event.tag, event,
                self._header_size + self.bytes_written + len(self._buffer),
                encoded)
        self._buffer += encoded
        self._crc = crc32(encoded, self._crc)
        tag = event.tag
        self._counts[tag] = self._counts.get(tag, 0) + 1
        self._total += 1
        if TELEMETRY.enabled:
            TELEMETRY.incr("trace.events")
            TELEMETRY.incr(f"trace.events.{KIND_NAMES[tag]}")
        if len(self._buffer) >= self._buffer_bytes:
            self.flush()

    def write_batch(self, events) -> None:
        """Append several events in order with one buffer/telemetry pass.

        Byte- and counter-identical to calling :meth:`write` per event:
        the stateful encoder still sees the events sequentially, and the
        telemetry counters receive the same totals in one ``incr`` each.
        """
        if self._closed:
            raise ValueError("trace writer already closed")
        if not events:
            return
        batch_counts: dict = {}
        index = self._index
        for event in events:
            encoded = encode_event(event, self._state)
            if index is not None:
                index.observe(
                    event.tag, event,
                    self._header_size + self.bytes_written
                    + len(self._buffer),
                    encoded)
            self._buffer += encoded
            self._crc = crc32(encoded, self._crc)
            tag = event.tag
            batch_counts[tag] = batch_counts.get(tag, 0) + 1
        for tag, count in batch_counts.items():
            self._counts[tag] = self._counts.get(tag, 0) + count
            self._total += count
        if TELEMETRY.enabled:
            TELEMETRY.incr("trace.events", sum(batch_counts.values()))
            for tag, count in batch_counts.items():
                TELEMETRY.incr(f"trace.events.{KIND_NAMES[tag]}", count)
        if len(self._buffer) >= self._buffer_bytes:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self._file.write(self._buffer)
            self.bytes_written += len(self._buffer)
            self._buffer.clear()

    @property
    def total_events(self) -> int:
        return self._total

    # ------------------------------------------------------------ close

    def close(self) -> TraceManifest:
        """Flush, publish the footer, and (for path targets) close the
        file.  Idempotent."""
        if self._closed:
            return self._manifest()
        end = encode_varint(TAG_END)
        self._buffer += end
        self._crc = crc32(end, self._crc)
        manifest = self._manifest()
        self._buffer += encode_footer(manifest)
        self.flush()
        self._file.flush()
        if self._owns_file:
            self._file.close()
        self._closed = True
        if self._index is not None and self.path is not None:
            index_mod.write_index(self._index.finish(manifest),
                                  index_mod.index_path_for(self.path))
        if TELEMETRY.enabled:
            TELEMETRY.incr("trace.bytes_written", self.bytes_written)
        return manifest

    def _manifest(self) -> TraceManifest:
        return TraceManifest(
            version=VERSION, total_events=self._total,
            counts=tuple(sorted(self._counts.items())), checksum=self._crc)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceReader:
    """Lazy event iteration over a ``.rptrace`` file.

    ``for event in reader`` decodes one event at a time from buffered
    chunks; the whole trace is never resident.  The CRC accumulated
    while streaming is checked against the footer when the end marker is
    reached — a torn or bit-rotted file raises
    :class:`~repro.trace.format.TraceFormatError` mid-iteration instead
    of yielding silently wrong events.

    Accepts a path (opened per iteration) or a seekable binary file
    object (rewound per iteration, left open).
    """

    def __init__(self, target: Union[str, os.PathLike, IO[bytes]]):
        if hasattr(target, "read"):
            self._fileobj: Optional[IO[bytes]] = target
            self.path = getattr(target, "name", None)
        else:
            self._fileobj = None
            self.path = os.fspath(target)

    def _open(self) -> IO[bytes]:
        if self._fileobj is not None:
            self._fileobj.seek(0)
            return self._fileobj
        try:
            return open(self.path, "rb")
        except OSError as exc:
            raise TraceFormatError(
                f"cannot open trace {self.path}: {exc.strerror or exc}")

    def _check_header(self, handle: IO[bytes]) -> int:
        header = handle.read(len(MAGIC) + 1)
        if len(header) < len(MAGIC) + 1 or header[:len(MAGIC)] != MAGIC:
            raise TraceFormatError(
                f"{self._name()} is not a trace (bad magic)")
        version = header[len(MAGIC)]
        if version != VERSION:
            raise TraceFormatError(
                f"{self._name()}: unsupported trace version {version} "
                f"(this reader speaks version {VERSION})")
        return version

    def _name(self) -> str:
        return self.path or "<trace stream>"

    # ---------------------------------------------------------- iterate

    def __iter__(self) -> Iterator[object]:
        return self.events()

    def events(self) -> Iterator[object]:
        """Yield events lazily; validates the footer checksum at EOF."""
        handle = self._open()
        owns = self._fileobj is None
        try:
            version = self._check_header(handle)
            state = EncoderState()
            buf = b""
            pos = 0
            crc = 0
            total = 0
            while True:
                # top up the buffer so one maximal record always fits
                if len(buf) - pos < READ_CHUNK // 2:
                    chunk = handle.read(READ_CHUNK)
                    if chunk:
                        buf = buf[pos:] + chunk
                        pos = 0
                if pos >= len(buf):
                    raise TraceFormatError(
                        f"{self._name()}: truncated trace (no end "
                        "marker — torn write?)")
                start = pos
                tag, pos = decode_varint(buf, pos)
                if tag == TAG_END:
                    crc = crc32(buf[start:pos], crc)
                    footer = buf[pos:] + handle.read()
                    self._check_footer(footer, version, crc, total)
                    return
                try:
                    event, pos = decode_event(tag, buf, pos, state)
                except TraceFormatError:
                    # the record may just straddle the buffer boundary;
                    # pull the rest of the file once, then re-raise
                    rest = handle.read()
                    if not rest:
                        raise
                    buf = buf + rest
                    pos = start
                    tag, pos = decode_varint(buf, pos)
                    event, pos = decode_event(tag, buf, pos, state)
                crc = crc32(buf[start:pos], crc)
                total += 1
                yield event
        finally:
            if owns:
                handle.close()

    def _check_footer(self, footer: bytes, version: int, crc: int,
                      total: int) -> None:
        manifest = _parse_footer_block(footer, version, self._name())
        if manifest.checksum != crc:
            raise TraceFormatError(
                f"{self._name()}: checksum mismatch (trace corrupt: "
                f"footer says {manifest.checksum:#010x}, stream is "
                f"{crc:#010x})")
        if manifest.total_events != total:
            raise TraceFormatError(
                f"{self._name()}: event count mismatch (footer says "
                f"{manifest.total_events}, stream held {total})")

    # ------------------------------------------------------------- seek

    def open_launch(self, n: int,
                    index: Optional["index_mod.TraceIndex"] = None
                    ) -> Iterator[object]:
        """Decode exactly launch frame *n* — O(frame), not O(trace).

        Yields the :class:`~repro.trace.format.LaunchEvent`, the frame's
        events in stream order, and the closing
        :class:`~repro.trace.format.KernelEndEvent`.  Uses the ``.rpti``
        sidecar when *index* is not given (building one in memory if the
        sidecar is missing or stale).  The frame bytes are validated
        against the index's per-frame CRC before any event is yielded.
        """
        if index is None:
            if self.path is None:
                raise TraceFormatError(
                    "open_launch on a trace stream needs an explicit "
                    "index (no path to find the sidecar by)")
            index = index_mod.ensure_index(self.path)
            if index is None:
                raise TraceFormatError(
                    f"{self._name()} is not a readable trace")
        entry = index.entry(n)
        data = self.read_frame(entry)
        return iter_slice_events(data)

    def read_frame(self, entry: "index_mod.LaunchEntry") -> bytes:
        """The raw, CRC-validated bytes of one indexed launch frame."""
        handle = self._open()
        owns = self._fileobj is None
        try:
            handle.seek(entry.offset)
            data = handle.read(entry.length)
        finally:
            if owns:
                handle.close()
        if len(data) != entry.length:
            raise TraceFormatError(
                f"{self._name()}: indexed frame at {entry.offset} runs "
                "past the end of the trace (stale index?)")
        if crc32(data) != entry.checksum:
            raise TraceFormatError(
                f"{self._name()}: frame checksum mismatch at launch "
                f"{entry.launch_index} (stale index or corrupt trace)")
        return data

    def frames(self, index: "index_mod.TraceIndex"
               ) -> Iterator[Tuple["index_mod.LaunchEntry", bytes]]:
        """Yield ``(entry, frame_bytes)`` for every indexed launch frame
        through a single file handle — the sequential-batch counterpart
        of :meth:`read_frame` (which reopens the trace per call).  Each
        frame is validated against the index's per-frame CRC before it
        is yielded."""
        handle = self._open()
        owns = self._fileobj is None
        try:
            for entry in index.entries:
                handle.seek(entry.offset)
                data = handle.read(entry.length)
                if len(data) != entry.length:
                    raise TraceFormatError(
                        f"{self._name()}: indexed frame at {entry.offset}"
                        " runs past the end of the trace (stale index?)")
                if crc32(data) != entry.checksum:
                    raise TraceFormatError(
                        f"{self._name()}: frame checksum mismatch at "
                        f"launch {entry.launch_index} (stale index or "
                        "corrupt trace)")
                yield entry, data
        finally:
            if owns:
                handle.close()

    # ---------------------------------------------------------- summary

    def manifest(self) -> TraceManifest:
        """Read the footer without scanning events (uses the trailer)."""
        handle = self._open()
        owns = self._fileobj is None
        try:
            version = self._check_header(handle)
            handle.seek(0, io.SEEK_END)
            size = handle.tell()
            if size < len(MAGIC) + 1 + TRAILER_SIZE:
                raise TraceFormatError(
                    f"{self._name()}: truncated trace (no footer — "
                    "torn write?)")
            handle.seek(size - TRAILER_SIZE)
            trailer = handle.read(TRAILER_SIZE)
            if trailer[4:] != TRAILER_MAGIC:
                raise TraceFormatError(
                    f"{self._name()}: missing footer trailer (torn "
                    "write?)")
            footer_len = int.from_bytes(trailer[:4], "little")
            footer_at = size - TRAILER_SIZE - footer_len
            if footer_len > size or footer_at < len(MAGIC) + 1:
                raise TraceFormatError(
                    f"{self._name()}: implausible footer length "
                    f"{footer_len} (corrupt trace)")
            handle.seek(footer_at)
            return decode_footer(handle.read(footer_len), version)
        finally:
            if owns:
                handle.close()


def _parse_footer_block(footer: bytes, version: int,
                        name: str) -> TraceManifest:
    """Parse ``footer body + trailer`` bytes read off the event stream."""
    if len(footer) < TRAILER_SIZE:
        raise TraceFormatError(f"{name}: truncated footer (torn write?)")
    trailer = footer[-TRAILER_SIZE:]
    if trailer[4:] != TRAILER_MAGIC:
        raise TraceFormatError(f"{name}: missing footer trailer "
                               "(torn write?)")
    footer_len = int.from_bytes(trailer[:4], "little")
    body = footer[:-TRAILER_SIZE]
    if footer_len != len(body):
        raise TraceFormatError(f"{name}: footer length mismatch "
                               "(corrupt trace)")
    return decode_footer(body, version)


# ---------------------------------------------------------------------
# columnar frame decode: one launch frame -> int64 ndarray columns
# ---------------------------------------------------------------------

#: longest varint the vectorized decoder accepts: 9 bytes carry 63
#: payload bits, so every decoded value fits int64 without overflow.
#: Longer (still wire-legal) varints punt to the scalar reference.
_VECTOR_VARINT_MAX = 9

#: |cumulative address| ceiling for trusting the int64 delta cumsum; a
#: float64 shadow sum below this proves no int64 wrap occurred (its
#: relative error is far smaller than the 2x margin to 2**63).
_ADDR_SAFE_LIMIT = float(2 ** 62)


def _decode_varints(data: bytes, pos: int) -> Optional[np.ndarray]:
    """Every varint in ``data[pos:]`` as one int64 ndarray.

    The vectorized core of the columnar decoder: terminator bytes
    (``< 0x80``) segment the stream, and one masked shift-accumulate
    per varint-length step assembles all values at once.  Returns
    ``None`` when the stream needs the scalar reference decoder — a
    truncated trailing varint (the scalar path raises the canonical
    error) or a varint longer than 9 bytes (could overflow int64).
    """
    buf = np.frombuffer(data, dtype=np.uint8, offset=pos)
    if buf.size == 0:
        return np.empty(0, dtype=np.int64)
    terminators = buf < 0x80
    if not terminators[-1]:
        return None
    ends = np.flatnonzero(terminators)
    lengths = np.diff(ends, prepend=-1)
    max_len = int(lengths.max())
    if max_len > _VECTOR_VARINT_MAX:
        return None
    starts = ends - lengths + 1
    payload = (buf & 0x7F).astype(np.int64)
    values = payload[starts]
    for k in range(1, max_len):
        more = lengths > k
        values[more] |= payload[starts[more] + k] << (7 * k)
    return values


def _record_starts(tok: np.ndarray) -> Optional[np.ndarray]:
    """Start position of every record in the flat token stream *tok*.

    Record lengths are data-dependent (MEM records embed a line count),
    so the boundaries form a linked list ``i -> i + len(record at i)``.
    Pointer doubling walks it in O(log n) array passes instead of one
    Python step per record.  Returns ``None`` on any structural
    anomaly — unknown tag, nested launch, a record overrunning the
    stream — so the scalar walk can raise its canonical error.
    """
    n = int(tok.size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    step = np.full(n, -1, dtype=np.int64)
    step[tok == TAG_KEND] = 2
    step[(tok == TAG_INSTR) | (tok == TAG_BRANCH)] = 5
    mem = np.flatnonzero(tok == TAG_MEM)
    counted = mem[mem + 5 < n]
    counts = tok[counted + 5]
    sane = counts <= n            # larger can never fit; avoids overflow
    step[counted[sane]] = 6 + counts[sane]
    targets = np.arange(n, dtype=np.int64) + step
    jump = np.empty(n + 2, dtype=np.int64)
    jump[:n] = np.where((step > 0) & (targets <= n), targets, n + 1)
    jump[n] = n                   # clean end: absorbing
    jump[n + 1] = n + 1           # anomaly: absorbing
    starts = np.zeros(1, dtype=np.int64)
    reached = 1
    while reached < n:
        starts = np.concatenate([starts, jump[starts]])
        jump = jump[jump]
        reached *= 2
    starts = np.unique(starts)
    if starts[-1] != n:           # walk hit a bad tag or fell off
        return None
    return starts[:-1]


def _unzigzag_cumsum(raw: np.ndarray) -> Optional[np.ndarray]:
    """Undo zigzag and the delta chain in two array ops; ``None`` when
    the reconstructed values might not fit int64."""
    deltas = (raw >> 1) ^ -(raw & 1)
    if deltas.size:
        shadow = np.cumsum(deltas.astype(np.float64))
        if float(np.abs(shadow).max()) >= _ADDR_SAFE_LIMIT:
            return None
    return np.cumsum(deltas)


def _columns_vector(tok: np.ndarray) -> Optional[tuple]:
    """The whole-frame vectorized column extraction; ``None`` punts to
    the scalar reference (structural anomaly or int64-overflow risk)."""
    rec = _record_starts(tok)
    if rec is None:
        return None
    tags = tok[rec]
    instr_at = rec[tags == TAG_INSTR]
    mem_at = rec[tags == TAG_MEM]
    branch_at = rec[tags == TAG_BRANCH]
    kend_at = rec[tags == TAG_KEND]
    addr_at = rec[tags != TAG_KEND]
    addrs = _unzigzag_cumsum(tok[addr_at + 1])
    if addrs is None:
        return None
    nlines = tok[mem_at + 5]
    total = int(nlines.sum())
    if total:
        cum = np.cumsum(nlines)
        flat = (np.repeat(mem_at + 6 - (cum - nlines), nlines)
                + np.arange(total, dtype=np.int64))
        lines = _unzigzag_cumsum(tok[flat])
        if lines is None:
            return None
    else:
        lines = np.empty(0, dtype=np.int64)
    return (tags, tok[kend_at + 1],
            addrs[np.searchsorted(addr_at, instr_at)],
            tok[instr_at + 2], tok[instr_at + 3], tok[instr_at + 4],
            addrs[np.searchsorted(addr_at, mem_at)],
            tok[mem_at + 2], tok[mem_at + 3], tok[mem_at + 4],
            nlines, lines,
            addrs[np.searchsorted(addr_at, branch_at)],
            tok[branch_at + 2], tok[branch_at + 3], tok[branch_at + 4])


def _columns_scalar(tokens: List[int]) -> Optional[tuple]:
    """The bit-exact reference walk over a frame's flat token list.

    Mirrors the event decoder record by record and raises the canonical
    :class:`TraceFormatError` where the stream is structurally bad.
    Returns ``None`` when a decoded value exceeds int64 — the caller
    then replays the frame in events mode, which handles
    arbitrary-precision values.
    """
    record_tags: List[int] = []
    kend_counts: List[int] = []
    instr_addr: List[int] = []
    instr_opcodes: List[int] = []
    instr_lanes: List[int] = []
    instr_widths: List[int] = []
    mem_addr: List[int] = []
    mem_flags: List[int] = []
    mem_width: List[int] = []
    mem_active: List[int] = []
    mem_nlines: List[int] = []
    mem_lines: List[int] = []
    branch_addr: List[int] = []
    branch_active: List[int] = []
    branch_taken: List[int] = []
    branch_not_taken: List[int] = []
    prev_addr = 0
    prev_line = 0
    i = 0
    n = len(tokens)
    while i < n:
        tag = tokens[i]
        if tag == TAG_INSTR:
            if i + 5 > n:
                raise TraceFormatError("truncated record (corrupt trace)")
            prev_addr += unzigzag(tokens[i + 1])
            instr_addr.append(prev_addr)
            instr_opcodes.append(tokens[i + 2])
            instr_lanes.append(tokens[i + 3])
            instr_widths.append(tokens[i + 4])
            i += 5
        elif tag == TAG_MEM:
            if i + 6 > n:
                raise TraceFormatError("truncated record (corrupt trace)")
            prev_addr += unzigzag(tokens[i + 1])
            mem_addr.append(prev_addr)
            mem_flags.append(tokens[i + 2])
            mem_width.append(tokens[i + 3])
            mem_active.append(tokens[i + 4])
            count = tokens[i + 5]
            mem_nlines.append(count)
            i += 6
            if i + count > n:
                raise TraceFormatError("truncated record (corrupt trace)")
            for raw in tokens[i:i + count]:
                prev_line += unzigzag(raw)
                mem_lines.append(prev_line)
            i += count
        elif tag == TAG_BRANCH:
            if i + 5 > n:
                raise TraceFormatError("truncated record (corrupt trace)")
            prev_addr += unzigzag(tokens[i + 1])
            branch_addr.append(prev_addr)
            branch_active.append(tokens[i + 2])
            branch_taken.append(tokens[i + 3])
            branch_not_taken.append(tokens[i + 4])
            i += 5
        elif tag == TAG_KEND:
            if i + 2 > n:
                raise TraceFormatError("truncated record (corrupt trace)")
            kend_counts.append(tokens[i + 1])
            i += 2
        elif tag == TAG_LAUNCH:
            raise TraceFormatError(
                "nested launch record inside a frame slice")
        else:
            raise TraceFormatError(f"unknown event tag {tag}")
        record_tags.append(tag)
    try:
        return tuple(np.asarray(column, dtype=np.int64)
                     for column in (
                         record_tags, kend_counts,
                         instr_addr, instr_opcodes, instr_lanes,
                         instr_widths,
                         mem_addr, mem_flags, mem_width, mem_active,
                         mem_nlines, mem_lines,
                         branch_addr, branch_active, branch_taken,
                         branch_not_taken))
    except OverflowError:
        return None


class FrameColumns:
    """One ``LAUNCH .. KEND`` frame decoded into int64 ndarray columns.

    The replay stack's batch currency: built by
    :func:`decode_frame_columns` in a few whole-frame array passes (no
    per-event objects, no per-varint calls) and consumed by the
    columnar analyses, the sharded replay workers, and the indexed
    query path.  ``record_tags`` preserves the frame's full record
    order; the per-kind columns are in stream order, so kind-local
    index *k* is the *k*-th record of that kind.
    """

    __slots__ = ("launch", "events", "warp_instructions",
                 "record_tags", "kend_counts",
                 "instr_addr", "instr_opcodes", "instr_lanes",
                 "instr_widths",
                 "mem_addr", "mem_flags", "mem_width", "mem_active",
                 "mem_nlines", "mem_lines",
                 "branch_addr", "branch_active", "branch_taken",
                 "branch_not_taken")

    def __init__(self, launch, columns: tuple):
        (self.record_tags, self.kend_counts,
         self.instr_addr, self.instr_opcodes, self.instr_lanes,
         self.instr_widths,
         self.mem_addr, self.mem_flags, self.mem_width, self.mem_active,
         self.mem_nlines, self.mem_lines,
         self.branch_addr, self.branch_active, self.branch_taken,
         self.branch_not_taken) = columns
        self.launch = launch
        self.events = int(self.record_tags.size) + 1
        self.warp_instructions = (int(self.kend_counts[-1])
                                  if self.kend_counts.size else 0)

    @classmethod
    def from_frame(cls, data: bytes) -> Optional["FrameColumns"]:
        return decode_frame_columns(data)


def decode_frame_columns(data: bytes) -> Optional[FrameColumns]:
    """Decode one frame slice into :class:`FrameColumns`.

    The vectorized pipeline handles well-formed frames in a few array
    passes; any anomaly (over-long varints, truncation, bad tags) falls
    back to the scalar reference walk, which raises the canonical
    :class:`TraceFormatError` for corrupt input — so the error
    behaviour is bit-identical to the streaming decoder.  Returns
    ``None`` only when a decoded value exceeds int64; callers then
    replay the frame in events mode (arbitrary-precision Python ints).
    """
    pos = 0
    tag, pos = decode_varint(data, pos)
    if tag != TAG_LAUNCH:
        raise TraceFormatError(
            "frame slice does not start at a launch record")
    state = EncoderState()
    launch, pos = decode_event(tag, data, pos, state)
    tok = _decode_varints(data, pos)
    columns = _columns_vector(tok) if tok is not None else None
    if columns is None:
        columns = _columns_scalar(decode_varint_stream(data, pos))
        if columns is None:
            return None
    return FrameColumns(launch, columns)
