"""Streaming trace I/O: bounded-memory writer, lazy reader.

:class:`TraceWriter` appends events to a file (or file object) through a
bounded byte buffer — host-side memory stays O(buffer), never O(trace),
no matter how many events the instrumented run produces.  Closing the
writer publishes the manifest footer; a file without a valid footer is
reported as torn by :class:`TraceReader`, which streams events lazily
and verifies the CRC as it goes.

Path-target writers also maintain a columnar index
(:mod:`repro.trace.index`) as they go and publish it to the ``.rpti``
sidecar at close — :meth:`TraceReader.open_launch` then seeks straight
to launch *n* instead of scanning the whole stream.
"""

from __future__ import annotations

import io
import os
from typing import IO, Iterator, Optional, Union

from repro.telemetry.collector import TELEMETRY
from repro.trace import index as index_mod
from repro.trace.format import (
    EncoderState,
    KIND_NAMES,
    MAGIC,
    TAG_END,
    TRAILER_MAGIC,
    TRAILER_SIZE,
    TraceFormatError,
    TraceManifest,
    VERSION,
    crc32,
    decode_event,
    decode_footer,
    decode_varint,
    encode_event,
    encode_footer,
    encode_varint,
    iter_slice_events,
)

#: flush the host-side buffer once it holds this many bytes
DEFAULT_BUFFER_BYTES = 256 << 10
#: reader chunk size
READ_CHUNK = 256 << 10


class TraceWriter:
    """Writes a ``.rptrace`` stream with bounded host-side memory.

    Accepts a path (the file is created/truncated and closed with the
    writer) or a seekable binary file object (left open after
    :meth:`close` so callers can read it back).  Usable as a context
    manager; the footer is written exactly once, by ``close``.
    """

    def __init__(self, target: Union[str, os.PathLike, IO[bytes]],
                 buffer_bytes: int = DEFAULT_BUFFER_BYTES):
        if hasattr(target, "write"):
            self._file: IO[bytes] = target
            self._owns_file = False
            self.path: Optional[str] = getattr(target, "name", None)
        else:
            self.path = os.fspath(target)
            self._file = open(self.path, "wb")
            self._owns_file = True
        self._buffer = bytearray()
        self._buffer_bytes = max(1, buffer_bytes)
        self._state = EncoderState()
        self._counts: dict = {}
        self._total = 0
        self._crc = 0
        self._closed = False
        self.bytes_written = 0
        # index only path targets: a sidecar next to a borrowed file
        # object would be a surprise, and the backfill command covers it
        self._index: Optional["index_mod.IndexBuilder"] = (
            index_mod.IndexBuilder() if self._owns_file else None)
        self._header_size = len(MAGIC) + 1
        self._file.write(MAGIC + bytes([VERSION]))

    # ------------------------------------------------------------ write

    def write(self, event) -> None:
        if self._closed:
            raise ValueError("trace writer already closed")
        encoded = encode_event(event, self._state)
        if self._index is not None:
            self._index.observe(
                event.tag, event,
                self._header_size + self.bytes_written + len(self._buffer),
                encoded)
        self._buffer += encoded
        self._crc = crc32(encoded, self._crc)
        tag = event.tag
        self._counts[tag] = self._counts.get(tag, 0) + 1
        self._total += 1
        if TELEMETRY.enabled:
            TELEMETRY.incr("trace.events")
            TELEMETRY.incr(f"trace.events.{KIND_NAMES[tag]}")
        if len(self._buffer) >= self._buffer_bytes:
            self.flush()

    def write_batch(self, events) -> None:
        """Append several events in order with one buffer/telemetry pass.

        Byte- and counter-identical to calling :meth:`write` per event:
        the stateful encoder still sees the events sequentially, and the
        telemetry counters receive the same totals in one ``incr`` each.
        """
        if self._closed:
            raise ValueError("trace writer already closed")
        if not events:
            return
        batch_counts: dict = {}
        index = self._index
        for event in events:
            encoded = encode_event(event, self._state)
            if index is not None:
                index.observe(
                    event.tag, event,
                    self._header_size + self.bytes_written
                    + len(self._buffer),
                    encoded)
            self._buffer += encoded
            self._crc = crc32(encoded, self._crc)
            tag = event.tag
            batch_counts[tag] = batch_counts.get(tag, 0) + 1
        for tag, count in batch_counts.items():
            self._counts[tag] = self._counts.get(tag, 0) + count
            self._total += count
        if TELEMETRY.enabled:
            TELEMETRY.incr("trace.events", sum(batch_counts.values()))
            for tag, count in batch_counts.items():
                TELEMETRY.incr(f"trace.events.{KIND_NAMES[tag]}", count)
        if len(self._buffer) >= self._buffer_bytes:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self._file.write(self._buffer)
            self.bytes_written += len(self._buffer)
            self._buffer.clear()

    @property
    def total_events(self) -> int:
        return self._total

    # ------------------------------------------------------------ close

    def close(self) -> TraceManifest:
        """Flush, publish the footer, and (for path targets) close the
        file.  Idempotent."""
        if self._closed:
            return self._manifest()
        end = encode_varint(TAG_END)
        self._buffer += end
        self._crc = crc32(end, self._crc)
        manifest = self._manifest()
        self._buffer += encode_footer(manifest)
        self.flush()
        self._file.flush()
        if self._owns_file:
            self._file.close()
        self._closed = True
        if self._index is not None and self.path is not None:
            index_mod.write_index(self._index.finish(manifest),
                                  index_mod.index_path_for(self.path))
        if TELEMETRY.enabled:
            TELEMETRY.incr("trace.bytes_written", self.bytes_written)
        return manifest

    def _manifest(self) -> TraceManifest:
        return TraceManifest(
            version=VERSION, total_events=self._total,
            counts=tuple(sorted(self._counts.items())), checksum=self._crc)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceReader:
    """Lazy event iteration over a ``.rptrace`` file.

    ``for event in reader`` decodes one event at a time from buffered
    chunks; the whole trace is never resident.  The CRC accumulated
    while streaming is checked against the footer when the end marker is
    reached — a torn or bit-rotted file raises
    :class:`~repro.trace.format.TraceFormatError` mid-iteration instead
    of yielding silently wrong events.

    Accepts a path (opened per iteration) or a seekable binary file
    object (rewound per iteration, left open).
    """

    def __init__(self, target: Union[str, os.PathLike, IO[bytes]]):
        if hasattr(target, "read"):
            self._fileobj: Optional[IO[bytes]] = target
            self.path = getattr(target, "name", None)
        else:
            self._fileobj = None
            self.path = os.fspath(target)

    def _open(self) -> IO[bytes]:
        if self._fileobj is not None:
            self._fileobj.seek(0)
            return self._fileobj
        try:
            return open(self.path, "rb")
        except OSError as exc:
            raise TraceFormatError(
                f"cannot open trace {self.path}: {exc.strerror or exc}")

    def _check_header(self, handle: IO[bytes]) -> int:
        header = handle.read(len(MAGIC) + 1)
        if len(header) < len(MAGIC) + 1 or header[:len(MAGIC)] != MAGIC:
            raise TraceFormatError(
                f"{self._name()} is not a trace (bad magic)")
        version = header[len(MAGIC)]
        if version != VERSION:
            raise TraceFormatError(
                f"{self._name()}: unsupported trace version {version} "
                f"(this reader speaks version {VERSION})")
        return version

    def _name(self) -> str:
        return self.path or "<trace stream>"

    # ---------------------------------------------------------- iterate

    def __iter__(self) -> Iterator[object]:
        return self.events()

    def events(self) -> Iterator[object]:
        """Yield events lazily; validates the footer checksum at EOF."""
        handle = self._open()
        owns = self._fileobj is None
        try:
            version = self._check_header(handle)
            state = EncoderState()
            buf = b""
            pos = 0
            crc = 0
            total = 0
            while True:
                # top up the buffer so one maximal record always fits
                if len(buf) - pos < READ_CHUNK // 2:
                    chunk = handle.read(READ_CHUNK)
                    if chunk:
                        buf = buf[pos:] + chunk
                        pos = 0
                if pos >= len(buf):
                    raise TraceFormatError(
                        f"{self._name()}: truncated trace (no end "
                        "marker — torn write?)")
                start = pos
                tag, pos = decode_varint(buf, pos)
                if tag == TAG_END:
                    crc = crc32(buf[start:pos], crc)
                    footer = buf[pos:] + handle.read()
                    self._check_footer(footer, version, crc, total)
                    return
                try:
                    event, pos = decode_event(tag, buf, pos, state)
                except TraceFormatError:
                    # the record may just straddle the buffer boundary;
                    # pull the rest of the file once, then re-raise
                    rest = handle.read()
                    if not rest:
                        raise
                    buf = buf + rest
                    pos = start
                    tag, pos = decode_varint(buf, pos)
                    event, pos = decode_event(tag, buf, pos, state)
                crc = crc32(buf[start:pos], crc)
                total += 1
                yield event
        finally:
            if owns:
                handle.close()

    def _check_footer(self, footer: bytes, version: int, crc: int,
                      total: int) -> None:
        manifest = _parse_footer_block(footer, version, self._name())
        if manifest.checksum != crc:
            raise TraceFormatError(
                f"{self._name()}: checksum mismatch (trace corrupt: "
                f"footer says {manifest.checksum:#010x}, stream is "
                f"{crc:#010x})")
        if manifest.total_events != total:
            raise TraceFormatError(
                f"{self._name()}: event count mismatch (footer says "
                f"{manifest.total_events}, stream held {total})")

    # ------------------------------------------------------------- seek

    def open_launch(self, n: int,
                    index: Optional["index_mod.TraceIndex"] = None
                    ) -> Iterator[object]:
        """Decode exactly launch frame *n* — O(frame), not O(trace).

        Yields the :class:`~repro.trace.format.LaunchEvent`, the frame's
        events in stream order, and the closing
        :class:`~repro.trace.format.KernelEndEvent`.  Uses the ``.rpti``
        sidecar when *index* is not given (building one in memory if the
        sidecar is missing or stale).  The frame bytes are validated
        against the index's per-frame CRC before any event is yielded.
        """
        if index is None:
            if self.path is None:
                raise TraceFormatError(
                    "open_launch on a trace stream needs an explicit "
                    "index (no path to find the sidecar by)")
            index = index_mod.ensure_index(self.path)
            if index is None:
                raise TraceFormatError(
                    f"{self._name()} is not a readable trace")
        entry = index.entry(n)
        data = self.read_frame(entry)
        return iter_slice_events(data)

    def read_frame(self, entry: "index_mod.LaunchEntry") -> bytes:
        """The raw, CRC-validated bytes of one indexed launch frame."""
        handle = self._open()
        owns = self._fileobj is None
        try:
            handle.seek(entry.offset)
            data = handle.read(entry.length)
        finally:
            if owns:
                handle.close()
        if len(data) != entry.length:
            raise TraceFormatError(
                f"{self._name()}: indexed frame at {entry.offset} runs "
                "past the end of the trace (stale index?)")
        if crc32(data) != entry.checksum:
            raise TraceFormatError(
                f"{self._name()}: frame checksum mismatch at launch "
                f"{entry.launch_index} (stale index or corrupt trace)")
        return data

    # ---------------------------------------------------------- summary

    def manifest(self) -> TraceManifest:
        """Read the footer without scanning events (uses the trailer)."""
        handle = self._open()
        owns = self._fileobj is None
        try:
            version = self._check_header(handle)
            handle.seek(0, io.SEEK_END)
            size = handle.tell()
            if size < len(MAGIC) + 1 + TRAILER_SIZE:
                raise TraceFormatError(
                    f"{self._name()}: truncated trace (no footer — "
                    "torn write?)")
            handle.seek(size - TRAILER_SIZE)
            trailer = handle.read(TRAILER_SIZE)
            if trailer[4:] != TRAILER_MAGIC:
                raise TraceFormatError(
                    f"{self._name()}: missing footer trailer (torn "
                    "write?)")
            footer_len = int.from_bytes(trailer[:4], "little")
            footer_at = size - TRAILER_SIZE - footer_len
            if footer_len > size or footer_at < len(MAGIC) + 1:
                raise TraceFormatError(
                    f"{self._name()}: implausible footer length "
                    f"{footer_len} (corrupt trace)")
            handle.seek(footer_at)
            return decode_footer(handle.read(footer_len), version)
        finally:
            if owns:
                handle.close()


def _parse_footer_block(footer: bytes, version: int,
                        name: str) -> TraceManifest:
    """Parse ``footer body + trailer`` bytes read off the event stream."""
    if len(footer) < TRAILER_SIZE:
        raise TraceFormatError(f"{name}: truncated footer (torn write?)")
    trailer = footer[-TRAILER_SIZE:]
    if trailer[4:] != TRAILER_MAGIC:
        raise TraceFormatError(f"{name}: missing footer trailer "
                               "(torn write?)")
    footer_len = int.from_bytes(trailer[:4], "little")
    body = footer[:-TRAILER_SIZE]
    if footer_len != len(body):
        raise TraceFormatError(f"{name}: footer length mismatch "
                               "(corrupt trace)")
    return decode_footer(body, version)
