"""``repro trace query``: filtered event extraction from a trace.

Treats a recorded trace as a queryable artifact instead of a linear
stream (the nsys-style ``search`` workflow): filter events by launch
range, opcode class, instruction/line address range, and warp, and let
the ``.rpti`` index skip entire launch frames — a query over one late
launch reads O(frame) bytes, not O(trace).

Filter semantics:

* ``launches`` — half-open ordinal range ``[lo, hi)`` over the trace's
  launch frames (ordinal = position in the trace, not ``launch_index``).
* ``classes`` — an :class:`~repro.isa.opcodes.OpClass` mask matched
  against each instruction's opcode classes.  Memory and branch events
  carry no opcode, so they inherit the verdict of the instruction event
  they are attached to (capture writes ``[instr, mem?, branch?]``
  batches per site — attachment is "after this instruction, before the
  next one").
* ``addr`` — half-open address range; an event matches on its
  instruction address, and a memory event also matches when any of its
  coalesced line addresses falls in the range.
* ``warp`` — global warp ordinal within each launch
  (``cta_index * warps_per_cta + warp_index``), recovered by the same
  deterministic warp segmentation the timing model uses.  Only
  meaningful for full captures (warp reconstruction needs every
  instruction); tagging runs only when the filter is set.
* ``kinds`` — restrict which event kinds are emitted at all
  (``instr`` / ``mem`` / ``branch``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.isa.opcodes import Opcode, OpClass, OPCODE_CLASSES
from repro.trace import index as index_mod
from repro.trace.format import (
    InstrEvent,
    KernelEndEvent,
    LaunchEvent,
    MemEvent,
)
from repro.trace.io import TraceReader

QUERY_KINDS = ("instr", "mem", "branch")

#: OpClass members addressable from the CLI (lowercase)
CLASS_NAMES = {name.lower(): member
               for name, member in OpClass.__members__.items()
               if member is not OpClass.NONE}


class QueryError(ValueError):
    """A malformed query filter (bad range/class/address syntax)."""


def _parse_range(text: str, what: str
                 ) -> Tuple[Optional[int], Optional[int]]:
    """``"a:b"`` / ``"a:"`` / ``":b"`` / ``"a"`` -> (lo, hi-exclusive)."""
    try:
        if ":" not in text:
            value = int(text, 0)
            return value, value + 1
        lo_text, hi_text = text.split(":", 1)
        lo = int(lo_text, 0) if lo_text else None
        hi = int(hi_text, 0) if hi_text else None
        return lo, hi
    except ValueError:
        raise QueryError(f"bad {what} range {text!r} (want N, N:M, N:, "
                         "or :M; addresses may be hex)")


@dataclass(frozen=True)
class QueryFilter:
    """One query's predicates (all optional, AND-ed together)."""

    launches: Optional[Tuple[Optional[int], Optional[int]]] = None
    classes: Optional[OpClass] = None
    addr: Optional[Tuple[Optional[int], Optional[int]]] = None
    warp: Optional[int] = None
    kinds: Tuple[str, ...] = QUERY_KINDS

    @classmethod
    def parse(cls, launches: Optional[str] = None,
              classes: Optional[str] = None,
              addr: Optional[str] = None,
              warp: Optional[int] = None,
              kinds: Optional[str] = None) -> "QueryFilter":
        """Build a filter from CLI strings."""
        launch_range = _parse_range(launches, "launch") if launches else None
        mask = None
        if classes:
            mask = OpClass.NONE
            for name in classes.split(","):
                name = name.strip().lower()
                if name not in CLASS_NAMES:
                    raise QueryError(
                        f"unknown opcode class {name!r} (choose from "
                        f"{', '.join(sorted(CLASS_NAMES))})")
                mask |= CLASS_NAMES[name]
        addr_range = _parse_range(addr, "address") if addr else None
        kind_tuple = QUERY_KINDS
        if kinds:
            requested = tuple(k.strip() for k in kinds.split(","))
            for kind in requested:
                if kind not in QUERY_KINDS:
                    raise QueryError(
                        f"unknown event kind {kind!r} (choose from "
                        f"{', '.join(QUERY_KINDS)})")
            kind_tuple = requested
        return cls(launches=launch_range, classes=mask, addr=addr_range,
                   warp=warp, kinds=kind_tuple)

    # ------------------------------------------------------ predicates

    def launch_in_range(self, ordinal: int) -> bool:
        if self.launches is None:
            return True
        lo, hi = self.launches
        return ((lo is None or ordinal >= lo)
                and (hi is None or ordinal < hi))

    def addr_matches(self, event) -> bool:
        if self.addr is None:
            return True
        lo, hi = self.addr

        def contains(value: int) -> bool:
            return ((lo is None or value >= lo)
                    and (hi is None or value < hi))

        if contains(event.ins_addr):
            return True
        if isinstance(event, MemEvent):
            return any(contains(line) for line in event.line_addresses)
        return False


@dataclass(frozen=True)
class QueryHit:
    """One matching event with its launch/warp context."""

    launch: int                  # launch ordinal (-1: before any launch)
    kernel: str                  # "" before any launch
    warp: Optional[int]          # tagged only when filtering by warp
    event: object


@dataclass
class QueryStats:
    """What the query engine did (shown by the CLI)."""

    launches_total: int = 0
    launches_visited: int = 0
    launches_skipped: int = 0
    events_scanned: int = 0
    hits: int = 0
    used_index: bool = False


class _WarpTagger:
    """Recovers each instruction's warp ordinal for one launch via the
    timing model's deterministic segmentation (one-event lookahead)."""

    def __init__(self, launch: LaunchEvent):
        from repro.trace.timing import _LaunchBuilder

        self._builder = _LaunchBuilder(launch)

    def tag(self, event: InstrEvent, next_addr: Optional[int]) -> int:
        from repro.sim.scheduler import WarpInstr

        builder = self._builder
        ordinal = (len(builder.ctas) * builder.warps_per_cta
                   + builder.current)
        builder.add(WarpInstr(addr=event.ins_addr,
                              opcode=Opcode(event.opcode),
                              lanes=event.lanes), next_addr)
        return ordinal


def _frame_hits(events, ordinal: int, kernel: str, filt: QueryFilter,
                stats: QueryStats, launch: Optional[LaunchEvent]
                ) -> Iterator[QueryHit]:
    """Filter one frame's events (the leading launch record excluded).

    Warp tagging needs one-instruction lookahead, so under a warp
    filter each instruction and its attachments are buffered until the
    next instruction (or frame end) resolves the warp handoff.
    """
    tagger = (_WarpTagger(launch)
              if filt.warp is not None and launch is not None else None)
    want_instr = "instr" in filt.kinds
    want_mem = "mem" in filt.kinds
    want_branch = "branch" in filt.kinds
    pending_instr: Optional[InstrEvent] = None
    pending_emit: List[object] = []
    # class verdict of the current attachment group; events before the
    # first instruction have nothing to inherit from
    group_match = filt.classes is None

    def flush(next_addr: Optional[int]) -> Iterator[QueryHit]:
        nonlocal pending_instr, pending_emit
        if pending_instr is not None:
            warp = tagger.tag(pending_instr, next_addr)
            if warp == filt.warp:
                for item in pending_emit:
                    stats.hits += 1
                    yield QueryHit(launch=ordinal, kernel=kernel,
                                   warp=warp, event=item)
        pending_instr = None
        pending_emit = []

    for event in events:
        stats.events_scanned += 1
        if isinstance(event, InstrEvent):
            yield from flush(event.ins_addr)
            group_match = (filt.classes is None
                           or bool(OPCODE_CLASSES[Opcode(event.opcode)]
                                   & filt.classes))
            passes = (group_match and want_instr
                      and filt.addr_matches(event))
            if tagger is not None:
                pending_instr = event
                if passes:
                    pending_emit.append(event)
            elif passes:
                stats.hits += 1
                yield QueryHit(launch=ordinal, kernel=kernel, warp=None,
                               event=event)
        elif isinstance(event, (LaunchEvent, KernelEndEvent)):
            yield from flush(None)
        else:
            is_mem = isinstance(event, MemEvent)
            wanted = want_mem if is_mem else want_branch
            if not (wanted and group_match and filt.addr_matches(event)):
                continue
            if tagger is not None:
                if pending_instr is not None:
                    pending_emit.append(event)
                # no anchoring instruction (frameless trace): the warp
                # cannot be recovered, so a warp filter excludes it
            else:
                stats.hits += 1
                yield QueryHit(launch=ordinal, kernel=kernel, warp=None,
                               event=event)
    yield from flush(None)


def _entry_can_match(entry: "index_mod.LaunchEntry",
                     filt: QueryFilter) -> bool:
    """Can anything in this frame match, judging by counts alone?"""
    wanted = 0
    if "instr" in filt.kinds:
        wanted += entry.instr
    if "mem" in filt.kinds:
        wanted += entry.mem
    if "branch" in filt.kinds:
        wanted += entry.branch
    if wanted == 0:
        return False
    if filt.classes is not None and entry.instr == 0:
        return False             # nothing for mem/branch to inherit from
    return True


def run_query(trace_path: str, filt: QueryFilter,
              index: Optional["index_mod.TraceIndex"] = None
              ) -> Tuple[Iterator[QueryHit], QueryStats]:
    """Run *filt* over *trace_path*.

    Returns ``(hits, stats)`` — a lazy hit iterator plus a stats object
    that fills in as the iterator is consumed (final once exhausted;
    a truncated consumer sees the stats of what was actually read).
    Uses the ``.rpti`` index to skip launches when available, else
    falls back to a full scan (``stats.used_index`` says which).
    """
    stats = QueryStats()
    if index is None:
        index = index_mod.ensure_index(trace_path)
    if index is not None and index.shardable:
        stats.used_index = True
        stats.launches_total = index.launches

        def indexed_hits() -> Iterator[QueryHit]:
            reader = TraceReader(trace_path)
            for ordinal, entry in enumerate(index.entries):
                if (not filt.launch_in_range(ordinal)
                        or not _entry_can_match(entry, filt)):
                    stats.launches_skipped += 1
                    continue
                stats.launches_visited += 1
                events = reader.open_launch(ordinal, index)
                launch = next(events)
                stats.events_scanned += 1
                yield from _frame_hits(events, ordinal, entry.kernel,
                                       filt, stats, launch)

        return indexed_hits(), stats

    def scanned_hits() -> Iterator[QueryHit]:
        ordinal = -1
        launch: Optional[LaunchEvent] = None
        frame: List[object] = []

        def drain() -> Iterator[QueryHit]:
            if not frame:
                return
            if filt.launch_in_range(ordinal):
                stats.launches_visited += ordinal >= 0
                kernel = launch.kernel if launch is not None else ""
                yield from _frame_hits(frame, ordinal, kernel, filt,
                                       stats, launch)
            else:
                stats.launches_skipped += 1
                stats.events_scanned += len(frame)
            frame.clear()

        for event in TraceReader(trace_path).events():
            if isinstance(event, LaunchEvent):
                yield from drain()
                ordinal += 1
                launch = event
                stats.launches_total += 1
                stats.events_scanned += 1
            else:
                frame.append(event)
        yield from drain()

    return scanned_hits(), stats
