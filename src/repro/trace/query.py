"""``repro trace query``: filtered event extraction from a trace.

Treats a recorded trace as a queryable artifact instead of a linear
stream (the nsys-style ``search`` workflow): filter events by launch
range, opcode class, instruction/line address range, and warp, and let
the ``.rpti`` index skip entire launch frames — a query over one late
launch reads O(frame) bytes, not O(trace).

Filter semantics:

* ``launches`` — half-open ordinal range ``[lo, hi)`` over the trace's
  launch frames (ordinal = position in the trace, not ``launch_index``).
* ``classes`` — an :class:`~repro.isa.opcodes.OpClass` mask matched
  against each instruction's opcode classes.  Memory and branch events
  carry no opcode, so they inherit the verdict of the instruction event
  they are attached to (capture writes ``[instr, mem?, branch?]``
  batches per site — attachment is "after this instruction, before the
  next one").
* ``addr`` — half-open address range; an event matches on its
  instruction address, and a memory event also matches when any of its
  coalesced line addresses falls in the range.
* ``warp`` — global warp ordinal within each launch
  (``cta_index * warps_per_cta + warp_index``), recovered by the same
  deterministic warp segmentation the timing model uses.  Only
  meaningful for full captures (warp reconstruction needs every
  instruction); tagging runs only when the filter is set.
* ``kinds`` — restrict which event kinds are emitted at all
  (``instr`` / ``mem`` / ``branch``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.isa.opcodes import Opcode, OpClass, OPCODE_CLASSES
from repro.trace import index as index_mod
from repro.trace.format import (
    TAG_BRANCH,
    TAG_INSTR,
    TAG_MEM,
    BranchEvent,
    InstrEvent,
    KernelEndEvent,
    LaunchEvent,
    MemEvent,
    iter_slice_events,
)
from repro.trace.io import FrameColumns, TraceReader, decode_frame_columns

QUERY_KINDS = ("instr", "mem", "branch")

#: OpClass members addressable from the CLI (lowercase)
CLASS_NAMES = {name.lower(): member
               for name, member in OpClass.__members__.items()
               if member is not OpClass.NONE}


class QueryError(ValueError):
    """A malformed query filter (bad range/class/address syntax)."""


def _parse_range(text: str, what: str
                 ) -> Tuple[Optional[int], Optional[int]]:
    """``"a:b"`` / ``"a:"`` / ``":b"`` / ``"a"`` -> (lo, hi-exclusive)."""
    try:
        if ":" not in text:
            value = int(text, 0)
            return value, value + 1
        lo_text, hi_text = text.split(":", 1)
        lo = int(lo_text, 0) if lo_text else None
        hi = int(hi_text, 0) if hi_text else None
        return lo, hi
    except ValueError:
        raise QueryError(f"bad {what} range {text!r} (want N, N:M, N:, "
                         "or :M; addresses may be hex)")


@dataclass(frozen=True)
class QueryFilter:
    """One query's predicates (all optional, AND-ed together)."""

    launches: Optional[Tuple[Optional[int], Optional[int]]] = None
    classes: Optional[OpClass] = None
    addr: Optional[Tuple[Optional[int], Optional[int]]] = None
    warp: Optional[int] = None
    kinds: Tuple[str, ...] = QUERY_KINDS

    @classmethod
    def parse(cls, launches: Optional[str] = None,
              classes: Optional[str] = None,
              addr: Optional[str] = None,
              warp: Optional[int] = None,
              kinds: Optional[str] = None) -> "QueryFilter":
        """Build a filter from CLI strings."""
        launch_range = _parse_range(launches, "launch") if launches else None
        mask = None
        if classes:
            mask = OpClass.NONE
            for name in classes.split(","):
                name = name.strip().lower()
                if name not in CLASS_NAMES:
                    raise QueryError(
                        f"unknown opcode class {name!r} (choose from "
                        f"{', '.join(sorted(CLASS_NAMES))})")
                mask |= CLASS_NAMES[name]
        addr_range = _parse_range(addr, "address") if addr else None
        kind_tuple = QUERY_KINDS
        if kinds:
            requested = tuple(k.strip() for k in kinds.split(","))
            for kind in requested:
                if kind not in QUERY_KINDS:
                    raise QueryError(
                        f"unknown event kind {kind!r} (choose from "
                        f"{', '.join(QUERY_KINDS)})")
            kind_tuple = requested
        return cls(launches=launch_range, classes=mask, addr=addr_range,
                   warp=warp, kinds=kind_tuple)

    # ------------------------------------------------------ predicates

    def launch_in_range(self, ordinal: int) -> bool:
        if self.launches is None:
            return True
        lo, hi = self.launches
        return ((lo is None or ordinal >= lo)
                and (hi is None or ordinal < hi))

    def addr_matches(self, event) -> bool:
        if self.addr is None:
            return True
        lo, hi = self.addr

        def contains(value: int) -> bool:
            return ((lo is None or value >= lo)
                    and (hi is None or value < hi))

        if contains(event.ins_addr):
            return True
        if isinstance(event, MemEvent):
            return any(contains(line) for line in event.line_addresses)
        return False


@dataclass(frozen=True)
class QueryHit:
    """One matching event with its launch/warp context."""

    launch: int                  # launch ordinal (-1: before any launch)
    kernel: str                  # "" before any launch
    warp: Optional[int]          # tagged only when filtering by warp
    event: object


@dataclass
class QueryStats:
    """What the query engine did (shown by the CLI)."""

    launches_total: int = 0
    launches_visited: int = 0
    launches_skipped: int = 0
    events_scanned: int = 0
    hits: int = 0
    used_index: bool = False


class _WarpTagger:
    """Recovers each instruction's warp ordinal for one launch via the
    timing model's deterministic segmentation (one-event lookahead)."""

    def __init__(self, launch: LaunchEvent):
        from repro.trace.timing import _LaunchBuilder

        self._builder = _LaunchBuilder(launch)

    def tag(self, event: InstrEvent, next_addr: Optional[int]) -> int:
        from repro.sim.scheduler import WarpInstr

        builder = self._builder
        ordinal = (len(builder.ctas) * builder.warps_per_cta
                   + builder.current)
        builder.add(WarpInstr(addr=event.ins_addr,
                              opcode=Opcode(event.opcode),
                              lanes=event.lanes), next_addr)
        return ordinal


def _frame_hits(events, ordinal: int, kernel: str, filt: QueryFilter,
                stats: QueryStats, launch: Optional[LaunchEvent]
                ) -> Iterator[QueryHit]:
    """Filter one frame's events (the leading launch record excluded).

    Warp tagging needs one-instruction lookahead, so under a warp
    filter each instruction and its attachments are buffered until the
    next instruction (or frame end) resolves the warp handoff.
    """
    tagger = (_WarpTagger(launch)
              if filt.warp is not None and launch is not None else None)
    want_instr = "instr" in filt.kinds
    want_mem = "mem" in filt.kinds
    want_branch = "branch" in filt.kinds
    pending_instr: Optional[InstrEvent] = None
    pending_emit: List[object] = []
    # class verdict of the current attachment group; events before the
    # first instruction have nothing to inherit from
    group_match = filt.classes is None

    def flush(next_addr: Optional[int]) -> Iterator[QueryHit]:
        nonlocal pending_instr, pending_emit
        if pending_instr is not None:
            warp = tagger.tag(pending_instr, next_addr)
            if warp == filt.warp:
                for item in pending_emit:
                    stats.hits += 1
                    yield QueryHit(launch=ordinal, kernel=kernel,
                                   warp=warp, event=item)
        pending_instr = None
        pending_emit = []

    for event in events:
        stats.events_scanned += 1
        if isinstance(event, InstrEvent):
            yield from flush(event.ins_addr)
            group_match = (filt.classes is None
                           or bool(OPCODE_CLASSES[Opcode(event.opcode)]
                                   & filt.classes))
            passes = (group_match and want_instr
                      and filt.addr_matches(event))
            if tagger is not None:
                pending_instr = event
                if passes:
                    pending_emit.append(event)
            elif passes:
                stats.hits += 1
                yield QueryHit(launch=ordinal, kernel=kernel, warp=None,
                               event=event)
        elif isinstance(event, (LaunchEvent, KernelEndEvent)):
            yield from flush(None)
        else:
            is_mem = isinstance(event, MemEvent)
            wanted = want_mem if is_mem else want_branch
            if not (wanted and group_match and filt.addr_matches(event)):
                continue
            if tagger is not None:
                if pending_instr is not None:
                    pending_emit.append(event)
                # no anchoring instruction (frameless trace): the warp
                # cannot be recovered, so a warp filter excludes it
            else:
                stats.hits += 1
                yield QueryHit(launch=ordinal, kernel=kernel, warp=None,
                               event=event)
    yield from flush(None)


#: opcode id -> OPCODE_CLASSES flag value, for vectorized class tests
_class_values: Optional[np.ndarray] = None


def _opclass_values() -> np.ndarray:
    global _class_values
    if _class_values is None:
        table = np.zeros(max(op.value for op in Opcode) + 1,
                         dtype=np.int64)
        for op in Opcode:
            table[op.value] = OPCODE_CLASSES[op].value
        _class_values = table
    return _class_values


def _frame_hits_columns(frame: FrameColumns, ordinal: int, kernel: str,
                        filt: QueryFilter, stats: QueryStats
                        ) -> Iterator[QueryHit]:
    """Columnar twin of :func:`_frame_hits` for warp-less filters: the
    class/addr/kind predicates run as array masks over one decoded
    frame, and only the matching events are materialized as objects.
    Hit set and order are identical to the event-stream walk."""
    stats.events_scanned += frame.events
    tags = frame.record_tags
    instr_pos = np.flatnonzero(tags == TAG_INSTR)

    addr_range = filt.addr

    def in_range(values: np.ndarray) -> np.ndarray:
        if addr_range is None:
            return np.ones(values.size, dtype=bool)
        lo, hi = addr_range
        match = np.ones(values.size, dtype=bool)
        if lo is not None:
            match &= values >= lo
        if hi is not None:
            match &= values < hi
        return match

    if filt.classes is None:
        instr_class = np.ones(instr_pos.size, dtype=bool)
    else:
        instr_class = (_opclass_values()[frame.instr_opcodes]
                       & filt.classes.value) != 0

    def inherited(positions: np.ndarray) -> np.ndarray:
        """Class verdict a mem/branch record inherits from the nearest
        preceding instruction of the frame (none -> no match unless the
        class filter is off)."""
        if filt.classes is None:
            return np.ones(positions.size, dtype=bool)
        group = np.searchsorted(instr_pos, positions, side="right") - 1
        verdict = np.zeros(positions.size, dtype=bool)
        anchored = group >= 0
        verdict[anchored] = instr_class[group[anchored]]
        return verdict

    pos_parts: List[np.ndarray] = []
    kind_parts: List[np.ndarray] = []
    local_parts: List[np.ndarray] = []

    def add(kind: int, positions: np.ndarray, sel: np.ndarray) -> None:
        local = np.flatnonzero(sel)
        if local.size:
            pos_parts.append(positions[local])
            kind_parts.append(np.full(local.size, kind, dtype=np.int64))
            local_parts.append(local)

    if "instr" in filt.kinds and instr_pos.size:
        add(0, instr_pos, instr_class & in_range(frame.instr_addr))
    if "mem" in filt.kinds:
        mem_pos = np.flatnonzero(tags == TAG_MEM)
        if mem_pos.size:
            sel = inherited(mem_pos)
            if addr_range is not None:
                line_match = in_range(frame.mem_lines)
                seg = np.repeat(np.arange(mem_pos.size), frame.mem_nlines)
                any_line = np.bincount(
                    seg, weights=line_match,
                    minlength=mem_pos.size) > 0
                sel &= in_range(frame.mem_addr) | any_line
            add(1, mem_pos, sel)
    if "branch" in filt.kinds:
        branch_pos = np.flatnonzero(tags == TAG_BRANCH)
        if branch_pos.size:
            add(2, branch_pos,
                inherited(branch_pos) & in_range(frame.branch_addr))
    if not pos_parts:
        return
    order = np.argsort(np.concatenate(pos_parts))
    kinds = np.concatenate(kind_parts)[order].tolist()
    locals_ = np.concatenate(local_parts)[order].tolist()
    line_offsets = np.concatenate(
        ([0], np.cumsum(frame.mem_nlines))).tolist()
    for kind, i in zip(kinds, locals_):
        if kind == 0:
            event: object = InstrEvent(
                ins_addr=int(frame.instr_addr[i]),
                opcode=int(frame.instr_opcodes[i]),
                lanes=int(frame.instr_lanes[i]),
                width=int(frame.instr_widths[i]))
        elif kind == 1:
            lines = frame.mem_lines[line_offsets[i]:
                                    line_offsets[i + 1]]
            event = MemEvent(
                ins_addr=int(frame.mem_addr[i]),
                flags=int(frame.mem_flags[i]),
                width=int(frame.mem_width[i]),
                active_lanes=int(frame.mem_active[i]),
                line_addresses=tuple(lines.tolist()))
        else:
            event = BranchEvent(
                ins_addr=int(frame.branch_addr[i]),
                active=int(frame.branch_active[i]),
                taken=int(frame.branch_taken[i]),
                not_taken=int(frame.branch_not_taken[i]))
        stats.hits += 1
        yield QueryHit(launch=ordinal, kernel=kernel, warp=None,
                       event=event)


def _entry_can_match(entry: "index_mod.LaunchEntry",
                     filt: QueryFilter) -> bool:
    """Can anything in this frame match, judging by counts alone?"""
    wanted = 0
    if "instr" in filt.kinds:
        wanted += entry.instr
    if "mem" in filt.kinds:
        wanted += entry.mem
    if "branch" in filt.kinds:
        wanted += entry.branch
    if wanted == 0:
        return False
    if filt.classes is not None and entry.instr == 0:
        return False             # nothing for mem/branch to inherit from
    return True


def run_query(trace_path: str, filt: QueryFilter,
              index: Optional["index_mod.TraceIndex"] = None
              ) -> Tuple[Iterator[QueryHit], QueryStats]:
    """Run *filt* over *trace_path*.

    Returns ``(hits, stats)`` — a lazy hit iterator plus a stats object
    that fills in as the iterator is consumed (final once exhausted;
    a truncated consumer sees the stats of what was actually read).
    Uses the ``.rpti`` sidecar to skip launches when one is on disk and
    bound to this trace, else falls back to a full scan
    (``stats.used_index`` says which — a missing sidecar is reported as
    a full scan, never silently rebuilt by a hidden one).  Indexed
    queries without a warp filter run the columnar fast path
    (:func:`_frame_hits_columns`) per visited frame.
    """
    stats = QueryStats()
    if index is None:
        index = index_mod.sidecar_index(trace_path)
    if index is not None and index.shardable:
        stats.used_index = True
        stats.launches_total = index.launches

        def indexed_hits() -> Iterator[QueryHit]:
            reader = TraceReader(trace_path)
            for ordinal, entry in enumerate(index.entries):
                if (not filt.launch_in_range(ordinal)
                        or not _entry_can_match(entry, filt)):
                    stats.launches_skipped += 1
                    continue
                stats.launches_visited += 1
                if filt.warp is None:
                    data = reader.read_frame(entry)
                    frame = decode_frame_columns(data)
                    if frame is not None:
                        yield from _frame_hits_columns(
                            frame, ordinal, entry.kernel, filt, stats)
                        continue
                    events = iter(iter_slice_events(data))
                else:
                    events = reader.open_launch(ordinal, index)
                launch = next(events)
                stats.events_scanned += 1
                yield from _frame_hits(events, ordinal, entry.kernel,
                                       filt, stats, launch)

        return indexed_hits(), stats

    def scanned_hits() -> Iterator[QueryHit]:
        ordinal = -1
        launch: Optional[LaunchEvent] = None
        frame: List[object] = []

        def drain() -> Iterator[QueryHit]:
            if not frame:
                return
            if filt.launch_in_range(ordinal):
                stats.launches_visited += ordinal >= 0
                kernel = launch.kernel if launch is not None else ""
                yield from _frame_hits(frame, ordinal, kernel, filt,
                                       stats, launch)
            else:
                stats.launches_skipped += 1
                stats.events_scanned += len(frame)
            frame.clear()

        for event in TraceReader(trace_path).events():
            if isinstance(event, LaunchEvent):
                yield from drain()
                ordinal += 1
                launch = event
                stats.launches_total += 1
                stats.events_scanned += 1
            else:
                frame.append(event)
        yield from drain()

    return scanned_hits(), stats
