"""Replay engine: run pluggable offline analyses over a recorded trace.

Record once on the (slow) instrumented simulator; every question after
that is answered at replay speed from the trace file.  Each analysis
consumes the event stream through three hooks (``on_instr``/``on_mem``/
``on_branch`` plus launch framing) and produces both a structured
result (``result()``) and a human-readable ``report()``.

The built-in analyses mirror the live instrumentation they replace, and
tests hold them *exactly* equal to the live-instrumented results:

* ``cachesim``   — the ``examples/memtrace_cachesim.py`` hierarchy sweep
* ``divergence`` — Case Study I branch-divergence statistics
* ``memdiv``     — Case Study II memory-address-divergence matrix/PMF
* ``opcodes``    — the Figure 3 dynamic-instruction categorizer
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Type

import numpy as np

from repro.isa.opcodes import Opcode, OpClass, OPCODE_CLASSES
from repro.sim.cache import Cache
from repro.telemetry.collector import TELEMETRY, span as telemetry_span
from repro.trace.format import (
    BranchEvent,
    InstrEvent,
    KernelEndEvent,
    LaunchEvent,
    MemEvent,
)
from repro.trace.io import TraceReader


class TraceAnalysis:
    """Base class: override the hooks you care about."""

    #: registry key (used by ``repro replay --analysis=...``)
    name = "analysis"

    def on_launch(self, event: LaunchEvent) -> None:
        pass

    def on_kernel_end(self, event: KernelEndEvent) -> None:
        pass

    def on_instr(self, event: InstrEvent) -> None:
        pass

    def on_mem(self, event: MemEvent) -> None:
        pass

    def on_branch(self, event: BranchEvent) -> None:
        pass

    def result(self) -> Dict:
        return {}

    def report(self) -> str:
        return f"{self.name}: {self.result()}"


class CacheSimAnalysis(TraceAnalysis):
    """The memory-hierarchy simulator of ``examples/memtrace_cachesim``:
    feed every coalesced line address through an L1/L2 model."""

    name = "cachesim"

    def __init__(self, l1_kib: int = 16, l1_ways: int = 4,
                 l2_kib: int = 256, l2_ways: int = 16):
        self.l2 = Cache(l2_kib << 10, ways=l2_ways, name="L2")
        self.l1 = Cache(l1_kib << 10, ways=l1_ways, name="L1",
                        next_level=self.l2)

    def on_mem(self, event: MemEvent) -> None:
        access = self.l1.access
        for line in event.line_addresses:
            access(line)

    def result(self) -> Dict:
        return {
            "l1": {"accesses": self.l1.stats.accesses,
                   "hits": self.l1.stats.hits,
                   "misses": self.l1.stats.misses,
                   "hit_rate": self.l1.stats.hit_rate},
            "l2": {"accesses": self.l2.stats.accesses,
                   "hits": self.l2.stats.hits,
                   "misses": self.l2.stats.misses,
                   "hit_rate": self.l2.stats.hit_rate},
        }

    def report(self) -> str:
        r = self.result()
        return (f"cachesim: L1 {100 * r['l1']['hit_rate']:5.1f}% hit "
                f"({r['l1']['hits']:,}/{r['l1']['accesses']:,}), "
                f"L2 {100 * r['l2']['hit_rate']:5.1f}% hit "
                f"({r['l2']['hits']:,}/{r['l2']['accesses']:,})")


class DivergenceAnalysis(TraceAnalysis):
    """Case Study I offline: per-branch divergence statistics, equal to
    a live :class:`~repro.handlers.branch_profiler.BranchProfiler` run."""

    name = "divergence"

    def __init__(self):
        #: address -> [total, active, taken, not_taken, divergent]
        self.table: Dict[int, List[int]] = {}

    def on_branch(self, event: BranchEvent) -> None:
        row = self.table.get(event.ins_addr)
        if row is None:
            row = self.table[event.ins_addr] = [0, 0, 0, 0, 0]
        row[0] += 1
        row[1] += event.active
        row[2] += event.taken
        row[3] += event.not_taken
        if event.divergent:
            row[4] += 1

    def branches(self):
        from repro.handlers.branch_profiler import BranchStats

        rows = [BranchStats(address=addr, total=row[0],
                            active_threads=row[1], taken_threads=row[2],
                            not_taken_threads=row[3], divergent=row[4])
                for addr, row in self.table.items()]
        return sorted(rows, key=lambda b: -b.total)

    def summary(self):
        from repro.handlers.branch_profiler import DivergenceSummary

        branches = self.branches()
        return DivergenceSummary(
            static_branches=len(branches),
            static_divergent=sum(1 for b in branches if b.divergent),
            dynamic_branches=sum(b.total for b in branches),
            dynamic_divergent=sum(b.divergent for b in branches),
        )

    def result(self) -> Dict:
        summary = self.summary()
        return {
            "static_branches": summary.static_branches,
            "static_divergent": summary.static_divergent,
            "dynamic_branches": summary.dynamic_branches,
            "dynamic_divergent": summary.dynamic_divergent,
        }

    def report(self) -> str:
        s = self.summary()
        return (f"divergence: {s.dynamic_divergent:,} of "
                f"{s.dynamic_branches:,} dynamic branches diverged "
                f"({s.dynamic_pct:.1f}%); {s.static_divergent}/"
                f"{s.static_branches} static branches ever diverged")


class MemoryDivergenceAnalysis(TraceAnalysis):
    """Case Study II offline: the 32×32 occupancy × unique-lines matrix,
    equal to a live :class:`MemoryDivergenceProfiler` run."""

    name = "memdiv"

    def __init__(self):
        self._matrix = np.zeros((32, 32), dtype=np.int64)

    def on_mem(self, event: MemEvent) -> None:
        self._matrix[event.active_lanes - 1,
                     min(event.unique_lines, 32) - 1] += 1

    def matrix(self) -> np.ndarray:
        return self._matrix.copy()

    def pmf(self) -> np.ndarray:
        matrix = self._matrix.astype(np.float64)
        occupancy = np.arange(1, 33, dtype=np.float64)[:, None]
        weighted = matrix * occupancy
        total = weighted.sum()
        if total == 0:
            return np.zeros(32)
        return weighted.sum(axis=0) / total

    def diverged_fraction(self) -> float:
        total = self._matrix.sum()
        return float(self._matrix[:, 1:].sum() / total) if total else 0.0

    def result(self) -> Dict:
        return {
            "warp_accesses": int(self._matrix.sum()),
            "diverged_fraction": self.diverged_fraction(),
            "pmf": [float(p) for p in self.pmf()],
        }

    def report(self) -> str:
        r = self.result()
        return (f"memdiv: {r['warp_accesses']:,} warp accesses, "
                f"{100 * r['diverged_fraction']:.1f}% touched more than "
                "one 32B line")


class OpcodeHistogramAnalysis(TraceAnalysis):
    """The Figure 3 categorizer offline, equal to a live
    :class:`~repro.handlers.opcode_histogram.OpcodeHistogram` run."""

    name = "opcodes"

    def __init__(self):
        from repro.handlers.opcode_histogram import CATEGORIES

        self.categories = CATEGORIES
        self._totals = {name: 0 for name in CATEGORIES}

    def on_instr(self, event: InstrEvent) -> None:
        totals = self._totals
        classes = OPCODE_CLASSES[Opcode(event.opcode)]
        threads = event.lanes
        if classes & OpClass.MEMORY:
            totals["memory"] += threads
            if event.width > 4:
                totals["extended_memory"] += threads
        if classes & OpClass.CONTROL:
            totals["control_xfer"] += threads
        if classes & OpClass.SYNC:
            totals["sync"] += threads
        if classes & OpClass.NUMERIC:
            totals["numeric"] += threads
        if classes & OpClass.TEXTURE:
            totals["texture"] += threads
        totals["total_executed"] += threads

    def totals(self) -> Dict[str, int]:
        return dict(self._totals)

    def result(self) -> Dict:
        return self.totals()

    def report(self) -> str:
        totals = self._totals
        body = ", ".join(f"{name}={totals[name]:,}"
                         for name in self.categories)
        return f"opcodes: {body}"


#: registry for the CLI's ``--analysis`` flag
ANALYSES: Dict[str, Type[TraceAnalysis]] = {
    CacheSimAnalysis.name: CacheSimAnalysis,
    DivergenceAnalysis.name: DivergenceAnalysis,
    MemoryDivergenceAnalysis.name: MemoryDivergenceAnalysis,
    OpcodeHistogramAnalysis.name: OpcodeHistogramAnalysis,
}


def make_analysis(name: str) -> TraceAnalysis:
    try:
        return ANALYSES[name]()
    except KeyError:
        raise KeyError(f"unknown analysis {name!r} "
                       f"(choose from {', '.join(sorted(ANALYSES))})")


def replay(trace, analyses: Sequence[TraceAnalysis]
           ) -> List[TraceAnalysis]:
    """One streaming pass over *trace*, feeding every analysis.

    *trace* is a path or a :class:`TraceReader`.  Returns the analyses
    (now holding their results) for convenience.
    """
    reader = trace if isinstance(trace, TraceReader) else TraceReader(trace)
    analyses = list(analyses)
    with telemetry_span("trace.replay",
                        trace=str(getattr(reader, "path", ""))):
        hooks = [(a.on_launch, a.on_kernel_end, a.on_instr, a.on_mem,
                  a.on_branch) for a in analyses]
        events = 0
        for event in reader.events():
            events += 1
            if isinstance(event, InstrEvent):
                for _, _, on_instr, _, _ in hooks:
                    on_instr(event)
            elif isinstance(event, MemEvent):
                for _, _, _, on_mem, _ in hooks:
                    on_mem(event)
            elif isinstance(event, BranchEvent):
                for _, _, _, _, on_branch in hooks:
                    on_branch(event)
            elif isinstance(event, LaunchEvent):
                for on_launch, _, _, _, _ in hooks:
                    on_launch(event)
            elif isinstance(event, KernelEndEvent):
                for _, on_kernel_end, _, _, _ in hooks:
                    on_kernel_end(event)
        if TELEMETRY.enabled:
            TELEMETRY.incr("trace.replay.events", events)
    return analyses
