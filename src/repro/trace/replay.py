"""Replay engine: run pluggable offline analyses over a recorded trace.

Record once on the (slow) instrumented simulator; every question after
that is answered at replay speed from the trace file.  Each analysis
consumes the event stream through three hooks (``on_instr``/``on_mem``/
``on_branch`` plus launch framing) and produces both a structured
result (``result()``) and a human-readable ``report()``.

The built-in analyses mirror the live instrumentation they replace, and
tests hold them *exactly* equal to the live-instrumented results:

* ``cachesim``   — the ``examples/memtrace_cachesim.py`` hierarchy sweep
* ``divergence`` — Case Study I branch-divergence statistics
* ``memdiv``     — Case Study II memory-address-divergence matrix/PMF
* ``opcodes``    — the Figure 3 dynamic-instruction categorizer

Two replay drivers share the analyses.  :func:`replay` is the serial
pass: when every requested analysis supports the columnar fast path
and a ``.rpti`` sidecar is on disk, it decodes whole launch frames
into :class:`~repro.trace.io.FrameColumns` ndarray batches
(:func:`~repro.trace.io.decode_frame_columns`) and feeds vectorized
batch kernels — ``np.bincount``-style reductions instead of per-event
Python dispatch — falling back to the original event-stream pass
otherwise (``columnar=False`` forces it; results are bit-identical
either way).  :func:`replay_sharded` partitions the trace by
kernel-launch frames (using the ``.rpti`` index), replays frames
through a :func:`repro.campaign.engine.run_tasks` process pool, and
folds per-shard results back together in launch order with
``merge()`` — bit-identical to the streaming pass because every
analysis is launch-local: caches flush at launch boundaries
(:meth:`~repro.sim.cache.Cache.invalidate`), so no state crosses a
frame edge.  Shard workers use the same columnar frame decode, so
every shard inherits the vectorized serial core.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

from repro.campaign.engine import default_jobs, run_tasks
from repro.isa.opcodes import Opcode, OpClass, OPCODE_CLASSES
from repro.sim.cache import Cache
from repro.telemetry.collector import TELEMETRY, span as telemetry_span
from repro.trace import index as index_mod
from repro.trace.format import (
    BranchEvent,
    InstrEvent,
    KernelEndEvent,
    LaunchEvent,
    MemEvent,
    TraceFormatError,
    iter_slice_events,
)
from repro.trace.io import FrameColumns, TraceReader, decode_frame_columns


class TraceAnalysis:
    """Base class: override the hooks you care about.

    Sharding contract: an analysis that sets ``mergeable = True`` must
    produce, for any launch-frame partition of a trace, the same final
    state from ``merge()``-folding per-shard instances (in launch
    order) as one instance fed the whole stream — i.e. it must be
    launch-local.  ``finish_shard()`` runs in the worker and returns
    the picklable piece shipped back; the default ships the analysis
    itself.  Analyses that additionally set ``columnar = True`` and
    implement ``feed_columns`` opt into the no-event-objects decode
    fast path.
    """

    #: registry key (used by ``repro replay --analysis=...``)
    name = "analysis"
    #: True when merge() reassembles launch-partitioned shards exactly
    mergeable = False
    #: True when feed_columns() can consume FrameColumns directly
    columnar = False

    def on_launch(self, event: LaunchEvent) -> None:
        pass

    def on_kernel_end(self, event: KernelEndEvent) -> None:
        pass

    def on_instr(self, event: InstrEvent) -> None:
        pass

    def on_mem(self, event: MemEvent) -> None:
        pass

    def on_branch(self, event: BranchEvent) -> None:
        pass

    def feed_columns(self, frame: "FrameColumns") -> None:
        raise NotImplementedError(
            f"{self.name} does not implement the columnar fast path")

    def finish_shard(self):
        """Reduce to the picklable per-shard piece (worker side)."""
        return self

    def merge(self, piece) -> None:
        """Fold one shard piece (from ``finish_shard``) into this
        instance; called in launch order on the parent side."""
        raise NotImplementedError(
            f"{self.name} does not support sharded replay")

    def result(self) -> Dict:
        return {}

    def report(self) -> str:
        return f"{self.name}: {self.result()}"


class CacheSimAnalysis(TraceAnalysis):
    """The memory-hierarchy simulator of ``examples/memtrace_cachesim``:
    feed every coalesced line address through an L1/L2 model."""

    name = "cachesim"
    mergeable = True
    columnar = True

    def __init__(self, l1_kib: int = 16, l1_ways: int = 4,
                 l2_kib: int = 256, l2_ways: int = 16):
        self.l2 = Cache(l2_kib << 10, ways=l2_ways, name="L2")
        self.l1 = Cache(l1_kib << 10, ways=l1_ways, name="L1",
                        next_level=self.l2)

    def on_launch(self, event: LaunchEvent) -> None:
        # launch-boundary flush: every kernel starts cold, which both
        # models real per-launch L1 behaviour and makes the analysis
        # launch-local (shard merges exactly equal the streaming pass)
        self.l1.invalidate()

    def on_mem(self, event: MemEvent) -> None:
        access = self.l1.access
        for line in event.line_addresses:
            access(line)

    def feed_columns(self, frame: FrameColumns) -> None:
        self.l1.invalidate()
        # access_lines is stat-identical to the per-line access loop
        self.l1.access_lines(frame.mem_lines)

    def merge(self, piece: "CacheSimAnalysis") -> None:
        for mine, theirs in ((self.l1.stats, piece.l1.stats),
                             (self.l2.stats, piece.l2.stats)):
            mine.accesses += theirs.accesses
            mine.hits += theirs.hits
            mine.misses += theirs.misses
            mine.evictions += theirs.evictions

    def result(self) -> Dict:
        return {
            "l1": {"accesses": self.l1.stats.accesses,
                   "hits": self.l1.stats.hits,
                   "misses": self.l1.stats.misses,
                   "hit_rate": self.l1.stats.hit_rate},
            "l2": {"accesses": self.l2.stats.accesses,
                   "hits": self.l2.stats.hits,
                   "misses": self.l2.stats.misses,
                   "hit_rate": self.l2.stats.hit_rate},
        }

    def report(self) -> str:
        r = self.result()
        return (f"cachesim: L1 {100 * r['l1']['hit_rate']:5.1f}% hit "
                f"({r['l1']['hits']:,}/{r['l1']['accesses']:,}), "
                f"L2 {100 * r['l2']['hit_rate']:5.1f}% hit "
                f"({r['l2']['hits']:,}/{r['l2']['accesses']:,})")


class DivergenceAnalysis(TraceAnalysis):
    """Case Study I offline: per-branch divergence statistics, equal to
    a live :class:`~repro.handlers.branch_profiler.BranchProfiler` run."""

    name = "divergence"
    mergeable = True
    columnar = True

    def __init__(self):
        #: address -> [total, active, taken, not_taken, divergent]
        self.table: Dict[int, List[int]] = {}

    def on_branch(self, event: BranchEvent) -> None:
        row = self.table.get(event.ins_addr)
        if row is None:
            row = self.table[event.ins_addr] = [0, 0, 0, 0, 0]
        row[0] += 1
        row[1] += event.active
        row[2] += event.taken
        row[3] += event.not_taken
        if event.divergent:
            row[4] += 1

    def feed_columns(self, frame: FrameColumns) -> None:
        addr = frame.branch_addr
        if not addr.size:
            return
        active = frame.branch_active
        taken = frame.branch_taken
        not_taken = frame.branch_not_taken
        # one reduction per statistic: group branches by address with
        # np.unique, sum the lane counts per group with bincount.  The
        # float64 weights are exact (lane sums sit far below 2**53).
        uniq, first, inverse = np.unique(addr, return_index=True,
                                         return_inverse=True)
        totals = np.bincount(inverse)
        sum_active = np.bincount(inverse, weights=active)
        sum_taken = np.bincount(inverse, weights=taken)
        sum_not = np.bincount(inverse, weights=not_taken)
        divergent = ((taken != active) & (not_taken != active))
        sum_div = np.bincount(inverse, weights=divergent)
        table = self.table
        # visit groups in first-occurrence order so the dict's insertion
        # order (the stable-sort tie-break in branches()) matches the
        # streaming pass exactly
        for g in np.argsort(first, kind="stable").tolist():
            key = int(uniq[g])
            row = table.get(key)
            if row is None:
                row = table[key] = [0, 0, 0, 0, 0]
            row[0] += int(totals[g])
            row[1] += int(sum_active[g])
            row[2] += int(sum_taken[g])
            row[3] += int(sum_not[g])
            row[4] += int(sum_div[g])

    def merge(self, piece: "DivergenceAnalysis") -> None:
        # folding in launch order preserves global first-occurrence
        # order in the dict, so the stable sort in branches() breaks
        # ties exactly as a streaming pass would
        table = self.table
        for addr, other in piece.table.items():
            row = table.get(addr)
            if row is None:
                table[addr] = list(other)
            else:
                for i in range(5):
                    row[i] += other[i]

    def branches(self):
        from repro.handlers.branch_profiler import BranchStats

        rows = [BranchStats(address=addr, total=row[0],
                            active_threads=row[1], taken_threads=row[2],
                            not_taken_threads=row[3], divergent=row[4])
                for addr, row in self.table.items()]
        return sorted(rows, key=lambda b: -b.total)

    def summary(self):
        from repro.handlers.branch_profiler import DivergenceSummary

        branches = self.branches()
        return DivergenceSummary(
            static_branches=len(branches),
            static_divergent=sum(1 for b in branches if b.divergent),
            dynamic_branches=sum(b.total for b in branches),
            dynamic_divergent=sum(b.divergent for b in branches),
        )

    def result(self) -> Dict:
        summary = self.summary()
        return {
            "static_branches": summary.static_branches,
            "static_divergent": summary.static_divergent,
            "dynamic_branches": summary.dynamic_branches,
            "dynamic_divergent": summary.dynamic_divergent,
        }

    def report(self) -> str:
        s = self.summary()
        return (f"divergence: {s.dynamic_divergent:,} of "
                f"{s.dynamic_branches:,} dynamic branches diverged "
                f"({s.dynamic_pct:.1f}%); {s.static_divergent}/"
                f"{s.static_branches} static branches ever diverged")


class MemoryDivergenceAnalysis(TraceAnalysis):
    """Case Study II offline: the 32×32 occupancy × unique-lines matrix,
    equal to a live :class:`MemoryDivergenceProfiler` run."""

    name = "memdiv"
    mergeable = True
    columnar = True

    def __init__(self):
        self._matrix = np.zeros((32, 32), dtype=np.int64)

    def on_mem(self, event: MemEvent) -> None:
        self._matrix[event.active_lanes - 1,
                     min(event.unique_lines, 32) - 1] += 1

    def feed_columns(self, frame: FrameColumns) -> None:
        active = frame.mem_active
        if not active.size:
            return
        np.add.at(self._matrix,
                  (active - 1, np.minimum(frame.mem_nlines, 32) - 1), 1)

    def merge(self, piece: "MemoryDivergenceAnalysis") -> None:
        self._matrix += piece._matrix

    def matrix(self) -> np.ndarray:
        return self._matrix.copy()

    def pmf(self) -> np.ndarray:
        matrix = self._matrix.astype(np.float64)
        occupancy = np.arange(1, 33, dtype=np.float64)[:, None]
        weighted = matrix * occupancy
        total = weighted.sum()
        if total == 0:
            return np.zeros(32)
        return weighted.sum(axis=0) / total

    def diverged_fraction(self) -> float:
        total = self._matrix.sum()
        return float(self._matrix[:, 1:].sum() / total) if total else 0.0

    def result(self) -> Dict:
        return {
            "warp_accesses": int(self._matrix.sum()),
            "diverged_fraction": self.diverged_fraction(),
            "pmf": [float(p) for p in self.pmf()],
        }

    def report(self) -> str:
        r = self.result()
        return (f"memdiv: {r['warp_accesses']:,} warp accesses, "
                f"{100 * r['diverged_fraction']:.1f}% touched more than "
                "one 32B line")


class OpcodeHistogramAnalysis(TraceAnalysis):
    """The Figure 3 categorizer offline, equal to a live
    :class:`~repro.handlers.opcode_histogram.OpcodeHistogram` run."""

    name = "opcodes"
    mergeable = True
    columnar = True

    def __init__(self):
        from repro.handlers.opcode_histogram import CATEGORIES

        self.categories = CATEGORIES
        self._totals = {name: 0 for name in CATEGORIES}

    def on_instr(self, event: InstrEvent) -> None:
        totals = self._totals
        classes = OPCODE_CLASSES[Opcode(event.opcode)]
        threads = event.lanes
        if classes & OpClass.MEMORY:
            totals["memory"] += threads
            if event.width > 4:
                totals["extended_memory"] += threads
        if classes & OpClass.CONTROL:
            totals["control_xfer"] += threads
        if classes & OpClass.SYNC:
            totals["sync"] += threads
        if classes & OpClass.NUMERIC:
            totals["numeric"] += threads
        if classes & OpClass.TEXTURE:
            totals["texture"] += threads
        totals["total_executed"] += threads

    def feed_columns(self, frame: FrameColumns) -> None:
        opcodes = frame.instr_opcodes
        if not opcodes.size:
            return
        lanes = frame.instr_lanes
        # one mask gather + one masked reduction per category; the
        # lane sums are exact (far below any integer precision edge)
        masks = _class_mask_table()[opcodes]
        totals = self._totals
        memory = (masks & _MASK_MEMORY) != 0
        totals["memory"] += int(lanes[memory].sum())
        totals["extended_memory"] += int(
            lanes[memory & (frame.instr_widths > 4)].sum())
        totals["control_xfer"] += int(
            lanes[(masks & _MASK_CONTROL) != 0].sum())
        totals["sync"] += int(lanes[(masks & _MASK_SYNC) != 0].sum())
        totals["numeric"] += int(
            lanes[(masks & _MASK_NUMERIC) != 0].sum())
        totals["texture"] += int(
            lanes[(masks & _MASK_TEXTURE) != 0].sum())
        totals["total_executed"] += int(lanes.sum())

    def merge(self, piece: "OpcodeHistogramAnalysis") -> None:
        for name, value in piece._totals.items():
            self._totals[name] += value

    def totals(self) -> Dict[str, int]:
        return dict(self._totals)

    def result(self) -> Dict:
        return self.totals()

    def report(self) -> str:
        totals = self._totals
        body = ", ".join(f"{name}={totals[name]:,}"
                         for name in self.categories)
        return f"opcodes: {body}"


# ---------------------------------------------------------------------
# columnar fast path: flat-decoded launch frames
# ---------------------------------------------------------------------

_MASK_MEMORY = 1 << 0
_MASK_CONTROL = 1 << 1
_MASK_SYNC = 1 << 2
_MASK_NUMERIC = 1 << 3
_MASK_TEXTURE = 1 << 4

_mask_table: Optional[np.ndarray] = None


def _class_mask_table() -> np.ndarray:
    """Opcode id -> category bitmask, replacing per-event enum
    construction and Flag intersections with one array gather."""
    global _mask_table
    if _mask_table is None:
        table = np.zeros(max(op.value for op in Opcode) + 1,
                         dtype=np.int64)
        for op in Opcode:
            classes = OPCODE_CLASSES[op]
            mask = 0
            if classes & OpClass.MEMORY:
                mask |= _MASK_MEMORY
            if classes & OpClass.CONTROL:
                mask |= _MASK_CONTROL
            if classes & OpClass.SYNC:
                mask |= _MASK_SYNC
            if classes & OpClass.NUMERIC:
                mask |= _MASK_NUMERIC
            if classes & OpClass.TEXTURE:
                mask |= _MASK_TEXTURE
            table[op.value] = mask
        _mask_table = table
    return _mask_table


#: registry for the CLI's ``--analysis`` flag
ANALYSES: Dict[str, Type[TraceAnalysis]] = {
    CacheSimAnalysis.name: CacheSimAnalysis,
    DivergenceAnalysis.name: DivergenceAnalysis,
    MemoryDivergenceAnalysis.name: MemoryDivergenceAnalysis,
    OpcodeHistogramAnalysis.name: OpcodeHistogramAnalysis,
}


def make_analysis(name: str, **kwargs) -> TraceAnalysis:
    try:
        cls = ANALYSES[name]
    except KeyError:
        raise KeyError(f"unknown analysis {name!r} "
                       f"(choose from {', '.join(sorted(ANALYSES))})")
    return cls(**kwargs)


def replay(trace, analyses: Sequence[TraceAnalysis],
           columnar: bool = True) -> List[TraceAnalysis]:
    """One serial pass over *trace*, feeding every analysis.

    *trace* is a path or a :class:`TraceReader`.  Returns the analyses
    (now holding their results) for convenience.

    When every analysis supports the columnar fast path and a usable
    ``.rpti`` sidecar is on disk, frames are decoded into
    :class:`~repro.trace.io.FrameColumns` batches and fed through
    ``feed_columns`` — bit-identical results, an order of magnitude
    fewer Python-level dispatches.  ``columnar=False`` forces the
    event-stream reference pass.
    """
    reader = trace if isinstance(trace, TraceReader) else TraceReader(trace)
    analyses = list(analyses)
    path = getattr(reader, "path", None)
    if (columnar and analyses and path is not None
            and all(a.columnar for a in analyses)):
        index = index_mod.sidecar_index(path)
        if index is not None and index.shardable:
            return _replay_columnar(reader, index, analyses)
    with telemetry_span("trace.replay",
                        trace=str(getattr(reader, "path", ""))):
        hooks = [(a.on_launch, a.on_kernel_end, a.on_instr, a.on_mem,
                  a.on_branch) for a in analyses]
        events = 0
        for event in reader.events():
            events += 1
            if isinstance(event, InstrEvent):
                for _, _, on_instr, _, _ in hooks:
                    on_instr(event)
            elif isinstance(event, MemEvent):
                for _, _, _, on_mem, _ in hooks:
                    on_mem(event)
            elif isinstance(event, BranchEvent):
                for _, _, _, _, on_branch in hooks:
                    on_branch(event)
            elif isinstance(event, LaunchEvent):
                for on_launch, _, _, _, _ in hooks:
                    on_launch(event)
            elif isinstance(event, KernelEndEvent):
                for _, on_kernel_end, _, _, _ in hooks:
                    on_kernel_end(event)
        if TELEMETRY.enabled:
            TELEMETRY.incr("trace.replay.events", events)
    return analyses


def _replay_columnar(reader: TraceReader, index: "index_mod.TraceIndex",
                     analyses: List[TraceAnalysis]) -> List[TraceAnalysis]:
    """Serial columnar pass: one :class:`FrameColumns` batch per launch
    frame, with decode-vs-analyze time attributed in telemetry.  Frames
    the vector decoder declines (see :func:`decode_frame_columns`) drop
    to the events-mode feed, so results never depend on which path ran.
    """
    events = 0
    decode_ns = 0
    analyze_ns = 0
    timed = TELEMETRY.enabled
    with telemetry_span("trace.replay", trace=str(reader.path),
                        columnar="true"):
        for entry, data in reader.frames(index):
            t0 = time.perf_counter_ns() if timed else 0
            frame = decode_frame_columns(data)
            t1 = time.perf_counter_ns() if timed else 0
            decode_ns += t1 - t0
            if frame is None:
                _feed_frame_events(data, analyses)
                events += entry.events
            else:
                for analysis in analyses:
                    analysis.feed_columns(frame)
                events += frame.events
            if timed:
                analyze_ns += time.perf_counter_ns() - t1
        if timed:
            TELEMETRY.incr("trace.replay.events", events)
            TELEMETRY.incr("trace.replay.decode_ns", decode_ns)
            TELEMETRY.incr("trace.replay.analyze_ns", analyze_ns)
    return analyses


# ---------------------------------------------------------------------
# sharded replay
# ---------------------------------------------------------------------

#: an analysis request: a registry name, or (name, constructor kwargs)
AnalysisSpec = Union[str, Tuple[str, Dict]]


def _norm_specs(specs: Iterable[AnalysisSpec]) -> Tuple[Tuple[str, Dict], ...]:
    out = []
    for spec in specs:
        if isinstance(spec, str):
            out.append((spec, {}))
        else:
            name, kwargs = spec
            out.append((name, dict(kwargs)))
    return tuple(out)


def _build(specs: Tuple[Tuple[str, Dict], ...]) -> List[TraceAnalysis]:
    return [make_analysis(name, **kwargs) for name, kwargs in specs]


def _feed_frame_events(data: bytes, analyses: List[TraceAnalysis]) -> None:
    """Events-mode frame feed: same dispatch as the streaming pass."""
    hooks = [(a.on_launch, a.on_kernel_end, a.on_instr, a.on_mem,
              a.on_branch) for a in analyses]
    for event in iter_slice_events(data):
        if isinstance(event, InstrEvent):
            for _, _, on_instr, _, _ in hooks:
                on_instr(event)
        elif isinstance(event, MemEvent):
            for _, _, _, on_mem, _ in hooks:
                on_mem(event)
        elif isinstance(event, BranchEvent):
            for _, _, _, _, on_branch in hooks:
                on_branch(event)
        elif isinstance(event, LaunchEvent):
            for on_launch, _, _, _, _ in hooks:
                on_launch(event)
        elif isinstance(event, KernelEndEvent):
            for _, on_kernel_end, _, _, _ in hooks:
                on_kernel_end(event)


def _replay_shard(task):
    """Worker: replay one launch frame through fresh analyses.

    Module-level so it pickles under both fork and forkserver starts.
    """
    path, entry, specs = task
    analyses = _build(specs)
    data = TraceReader(path).read_frame(entry)
    frame = (decode_frame_columns(data)
             if all(a.columnar for a in analyses) else None)
    if frame is not None:
        for analysis in analyses:
            analysis.feed_columns(frame)
        events = frame.events
    else:
        _feed_frame_events(data, analyses)
        events = entry.events
    if TELEMETRY.enabled:
        TELEMETRY.incr("trace.replay.events", events)
    return [analysis.finish_shard() for analysis in analyses]


def replay_sharded(trace, specs: Iterable[AnalysisSpec],
                   jobs: Optional[int] = None,
                   index: Optional["index_mod.TraceIndex"] = None,
                   pool=None) -> List[TraceAnalysis]:
    """Replay *trace* partitioned by kernel-launch frames.

    *specs* name the analyses (registry names or ``(name, kwargs)``
    pairs) — workers must construct their own instances, so live
    objects are not accepted here.  One task per launch frame is run
    through :func:`repro.campaign.engine.run_tasks` (honoring
    ``REPRO_JOBS`` when *jobs* is ``None``), and the per-shard pieces
    are merged in launch order.  The partition is identical at every
    job count, and every stock analysis is launch-local, so the merged
    results are bit-identical to :func:`replay` — the differential
    suite pins this.

    Falls back to the streaming pass (still honoring the analysis
    list) when the trace has no usable frame index, when any requested
    analysis is not mergeable, or for frameless traces.

    Pass a :func:`repro.campaign.engine.task_pool` as *pool* to amortize
    worker startup across many sharded replays (*jobs* then only sizes
    the chunking, not the pool).
    """
    path = trace.path if isinstance(trace, TraceReader) else os.fspath(trace)
    specs = _norm_specs(specs)
    analyses = _build(specs)
    if index is None:
        index = index_mod.ensure_index(path)
    if (index is None or not index.shardable
            or not all(a.mergeable for a in analyses)):
        return replay(path, analyses)
    if jobs is None:
        jobs = default_jobs()
    tasks = [(path, entry, specs) for entry in index.entries]
    with telemetry_span("trace.replay", trace=str(path),
                        sharded="true", jobs=str(jobs)):
        chunksize = max(1, len(tasks) // (max(1, jobs) * 4))
        pieces = run_tasks(_replay_shard, tasks, jobs=jobs,
                           chunksize=chunksize, pool=pool)
    for shard in pieces:
        for analysis, piece in zip(analyses, shard):
            analysis.merge(piece)
    return analyses
