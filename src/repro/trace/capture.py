"""Trace capture: a SASSI before-handler that streams events to disk.

:class:`TraceRecorder` rides the existing handler machinery — it is
"just another handler" registered with a :class:`SassiRuntime`, exactly
like the case-study profilers, plus launch/exit callbacks (the CUPTI
analog) for kernel framing.  Every instrumented site emits an
:class:`~repro.trace.format.InstrEvent`; memory sites add a
:class:`~repro.trace.format.MemEvent` with coalesced 32-byte line
addresses; conditional branches add a
:class:`~repro.trace.format.BranchEvent`.  One recorded run therefore
feeds *all* the replay analyses in :mod:`repro.trace.replay`.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.isa.program import INSTRUCTION_BYTES
from repro.sassi import SassiRuntime, spec_from_flags
from repro.sassi.handlers import SASSIContext
from repro.sim.coalescer import OFFSET_BITS
from repro.sim.memory import GLOBAL_BASE, is_global
from repro.telemetry.collector import span as telemetry_span
from repro.trace.format import (
    BranchEvent,
    InstrEvent,
    KernelEndEvent,
    LaunchEvent,
    MEM_FLAG_ATOMIC,
    MEM_FLAG_LOAD,
    MEM_FLAG_STORE,
    MemEvent,
)
from repro.trace.io import TraceWriter

#: the capture spec: every instruction, with memory and branch details
CAPTURE_FLAGS = ("-sassi-inst-before=all "
                 "-sassi-before-args=mem-info,cond-branch-info")


class TraceRecorder:
    """Attachable trace capture (the record half of record/replay).

    Pass an existing *runtime* to piggyback capture onto another
    instrumentation (the error-injection campaign does this for its
    per-trial trace sidecars); otherwise the recorder owns a fresh
    :class:`SassiRuntime` and ``compile`` works like every other
    attachable profiler in :mod:`repro.handlers`.
    """

    def __init__(self, device, writer: TraceWriter,
                 runtime: Optional[SassiRuntime] = None,
                 global_only: bool = True,
                 vectorized: bool = True):
        self.device = device
        self.writer = writer
        self.global_only = global_only
        self.vectorized = vectorized
        self.runtime = runtime or SassiRuntime(device)
        self.runtime.register_before_handler(self.handler)
        self.spec = spec_from_flags(CAPTURE_FLAGS)
        self._launch_index = 0
        device.on_kernel_launch(self._on_launch)
        device.on_kernel_exit(self._on_exit)

    def compile(self, kernel_ir, cache=None):
        return self.runtime.compile(kernel_ir, self.spec, cache=cache)

    # -------------------------------------------------------- framing

    def _on_launch(self, device, kernel, grid, block) -> None:
        self.writer.write(LaunchEvent(
            kernel=kernel.name,
            grid=(grid.x, grid.y, grid.z),
            block=(block.x, block.y, block.z),
            launch_index=self._launch_index))
        self._launch_index += 1

    def _on_exit(self, device, kernel, stats) -> None:
        self.writer.write(KernelEndEvent(
            warp_instructions=stats.warp_instructions))

    # -------------------------------------------------------- handler

    def handler(self, ctx: SASSIContext) -> None:
        if not self.vectorized:
            return self._handler_scalar(ctx)
        bp = ctx.bp
        # Record the instruction's address in the *original* (pre-
        # injection) layout — GetInsAddr() would shift with the
        # instrumentation spec, making traces from different specs
        # incomparable under trace-diff.
        ins_addr = bp.GetFnAddr() + bp.GetID() * INSTRUCTION_BYTES
        mp = ctx.mp
        width = mp.GetWidth() if mp is not None else 0
        events = [InstrEvent(ins_addr=ins_addr,
                             opcode=bp.GetOpcode().value,
                             lanes=ctx.num_active,
                             width=width)]
        if mp is not None:
            self._record_mem(ctx, ins_addr, mp, width, events.append)
        brp = ctx.brp
        if brp is not None:
            direction = brp.GetDirection()
            num_active = ctx.num_active
            taken = int(np.count_nonzero(direction[ctx.lanes_idx]))
            events.append(BranchEvent(ins_addr=ins_addr,
                                      active=num_active,
                                      taken=taken,
                                      not_taken=num_active - taken))
        self.writer.write_batch(events)

    def _handler_scalar(self, ctx: SASSIContext) -> None:
        """Per-event reference body (the differential baseline)."""
        write = self.writer.write
        bp = ctx.bp
        ins_addr = bp.GetFnAddr() + bp.GetID() * INSTRUCTION_BYTES
        mp = ctx.mp
        width = mp.GetWidth() if mp is not None else 0
        write(InstrEvent(ins_addr=ins_addr,
                         opcode=bp.GetOpcode().value,
                         lanes=len(ctx.lanes()),
                         width=width))
        if mp is not None:
            self._record_mem_scalar(ctx, ins_addr, mp, width, write)
        brp = ctx.brp
        if brp is not None:
            direction = brp.GetDirection()
            active = ctx.mask
            taken = int((direction & active).sum())
            write(BranchEvent(ins_addr=ins_addr,
                              active=int(active.sum()),
                              taken=taken,
                              not_taken=int((~direction & active).sum())))

    def _record_mem(self, ctx, ins_addr, mp, width, write) -> None:
        idx = ctx.lanes_idx
        addresses = mp.GetAddress()[idx]
        keep = ctx.bp.GetInstrWillExecute()[idx].astype(bool, copy=False)
        if self.global_only:
            heap_top = GLOBAL_BASE + self.device.heap_bytes
            keep &= (addresses >= GLOBAL_BASE) & (addresses < heap_top)
        num_lanes = int(np.count_nonzero(keep))
        if not num_lanes:
            return
        line_vals = (addresses[keep] >> OFFSET_BITS) << OFFSET_BITS
        _, first = np.unique(line_vals, return_index=True)
        lines = tuple(int(line_vals[i]) for i in np.sort(first))
        flags = 0
        if mp.IsLoad():
            flags |= MEM_FLAG_LOAD
        if mp.IsStore():
            flags |= MEM_FLAG_STORE
        if mp.IsAtomic():
            flags |= MEM_FLAG_ATOMIC
        write(MemEvent(ins_addr=ins_addr, flags=flags, width=width,
                       active_lanes=num_lanes,
                       line_addresses=lines))

    def _record_mem_scalar(self, ctx, ins_addr, mp, width, write) -> None:
        will_execute = ctx.bp.GetInstrWillExecute()
        addresses = mp.GetAddress()
        lanes = [lane for lane in ctx.lanes() if will_execute[lane]]
        if self.global_only:
            heap = self.device.heap_bytes
            lanes = [lane for lane in lanes
                     if is_global(int(addresses[lane]), heap)]
        if not lanes:
            return
        lines = []
        seen = set()
        for lane in lanes:
            line = (int(addresses[lane]) >> OFFSET_BITS) << OFFSET_BITS
            if line not in seen:
                seen.add(line)
                lines.append(line)
        flags = 0
        if mp.IsLoad():
            flags |= MEM_FLAG_LOAD
        if mp.IsStore():
            flags |= MEM_FLAG_STORE
        if mp.IsAtomic():
            flags |= MEM_FLAG_ATOMIC
        write(MemEvent(ins_addr=ins_addr, flags=flags, width=width,
                       active_lanes=len(lanes),
                       line_addresses=tuple(lines)))


def capture_workload(name: str, path: str, cache=None,
                     global_only: bool = True):
    """Record one workload's trace to *path*.

    Returns ``(manifest, verified, wall_seconds)`` — the trace manifest,
    whether the instrumented run still produced the right answer, and
    the recorded run's wall time (the record-overhead numerator).
    """
    import time

    from repro.sim import Device
    from repro.workloads import make

    workload = make(name)
    device = Device()
    with telemetry_span("trace.capture", workload=name):
        with TraceWriter(path) as writer:
            recorder = TraceRecorder(device, writer,
                                     global_only=global_only)
            kernel = recorder.compile(workload.build_ir(), cache=cache)
            start = time.perf_counter()
            output = workload.execute(device, kernel)
            wall = time.perf_counter() - start
            verified = workload.verify(output)
        manifest = writer.close()
    return manifest, verified, wall
