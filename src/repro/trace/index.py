"""The ``.rpti`` columnar index sidecar: O(1) seek into a trace.

A trace's event stream is framed by kernel launches, and the delta
codec resets at every :class:`~repro.trace.format.LaunchEvent` — each
``LAUNCH .. KEND`` frame is independently decodable from its first
byte with a fresh :class:`~repro.trace.format.EncoderState`.  The index
records, per launch frame, everything a reader needs to exploit that:
the absolute byte offset and length, a CRC-32 of the frame bytes, the
event counts per record kind, and the launch geometry — so
``TraceReader.open_launch(n)`` seeks straight to launch *n*, sharded
replay partitions a trace by frames without scanning it, and
``repro trace info``/``query`` answer per-launch questions from the
sidecar alone.

File layout (all integers unsigned LEB128 varints unless noted)::

    [header]   magic b"RPTI" + one version byte
    [binding]  trace version, total events, footer CRC-32 — the index
               is only valid against the exact trace it was built from
    [names]    kernel-name string table (count, then len+utf8 each)
    [launches] row count, then one varint *column* at a time:
               name id, launch index, grid x/y/z, block x/y/z,
               offset delta (first absolute), frame length, frame
               CRC-32, events, instr, mem, branch
    [stray]    events outside any complete frame (before the first
               launch, between frames, or in a torn frame) — nonzero
               disables frame-sharded replay but not ``open_launch``
    [crc]      4 bytes LE: CRC-32 of everything since the header
    [trailer]  fixed 8 bytes: u32-LE body length + magic b"RPIE"

Truncation or corruption of any byte raises
:class:`~repro.trace.format.TraceFormatError` — exactly the trace
format's own contract.  The sidecar is written by
:class:`~repro.trace.io.TraceWriter` at capture time and backfilled
for existing traces by :func:`build_index` (``repro trace index``);
both produce byte-identical files for the same trace.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import IO, List, Optional, Tuple

from repro.trace.format import (
    MAGIC,
    TAG_BRANCH,
    TAG_END,
    TAG_INSTR,
    TAG_KEND,
    TAG_LAUNCH,
    TAG_MEM,
    TraceFormatError,
    TraceManifest,
    crc32,
    decode_varint,
    encode_varint,
)

INDEX_MAGIC = b"RPTI"
INDEX_TRAILER_MAGIC = b"RPIE"
INDEX_VERSION = 1
INDEX_TRAILER_SIZE = 8
INDEX_SUFFIX = ".rpti"

#: size of the trace header preceding the first event record
_TRACE_HEADER_SIZE = len(MAGIC) + 1


def index_path_for(trace_path: str) -> str:
    """``foo.rptrace`` -> ``foo.rpti`` (any other suffix just appends)."""
    base, ext = os.path.splitext(trace_path)
    if ext == ".rptrace":
        return base + INDEX_SUFFIX
    return trace_path + INDEX_SUFFIX


@dataclass(frozen=True)
class LaunchEntry:
    """One indexed ``LAUNCH .. KEND`` frame."""

    kernel: str
    launch_index: int
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    #: absolute byte offset of the LAUNCH record in the trace file
    offset: int
    #: byte length of the frame (LAUNCH through KEND inclusive)
    length: int
    #: CRC-32 of the frame bytes
    checksum: int
    #: event counts inside the frame (events includes LAUNCH and KEND)
    events: int
    instr: int
    mem: int
    branch: int


@dataclass(frozen=True)
class TraceIndex:
    """The decoded sidecar: per-launch frame geometry + trace binding."""

    trace_version: int
    trace_total_events: int
    trace_checksum: int
    entries: Tuple[LaunchEntry, ...]
    #: events outside any complete frame (0 for capture-produced traces)
    stray_events: int

    @property
    def launches(self) -> int:
        return len(self.entries)

    @property
    def shardable(self) -> bool:
        """True when the frames cover every event — frame-partitioned
        replay then sees exactly the streaming event sequence."""
        return bool(self.entries) and self.stray_events == 0

    def matches(self, manifest: TraceManifest) -> bool:
        """Is this index bound to the trace with *manifest*?"""
        return (self.trace_version == manifest.version
                and self.trace_total_events == manifest.total_events
                and self.trace_checksum == manifest.checksum)

    def entry(self, n: int) -> LaunchEntry:
        try:
            return self.entries[n]
        except IndexError:
            raise TraceFormatError(
                f"launch {n} out of range (index holds "
                f"{len(self.entries)} launches)")


class IndexBuilder:
    """Accumulates :class:`LaunchEntry` rows while a trace is written
    or scanned.  Feed every event record (in stream order) with its
    absolute offset and encoded bytes; call :meth:`finish` once."""

    def __init__(self):
        self._entries: List[LaunchEntry] = []
        self._stray = 0
        self._frame: Optional[dict] = None

    def observe(self, tag: int, event, offset: int, record: bytes) -> None:
        frame = self._frame
        if tag == TAG_LAUNCH:
            if frame is not None:
                # torn frame (LAUNCH without KEND): its events are stray
                self._stray += frame["events"]
            self._frame = {
                "kernel": event.kernel,
                "launch_index": event.launch_index,
                "grid": tuple(event.grid), "block": tuple(event.block),
                "offset": offset, "crc": crc32(record),
                "events": 1, "instr": 0, "mem": 0, "branch": 0,
            }
            return
        if frame is None:
            self._stray += 1
            return
        frame["crc"] = crc32(record, frame["crc"])
        frame["events"] += 1
        if tag == TAG_INSTR:
            frame["instr"] += 1
        elif tag == TAG_MEM:
            frame["mem"] += 1
        elif tag == TAG_BRANCH:
            frame["branch"] += 1
        if tag == TAG_KEND:
            self._entries.append(LaunchEntry(
                kernel=frame["kernel"],
                launch_index=frame["launch_index"],
                grid=frame["grid"], block=frame["block"],
                offset=frame["offset"],
                length=offset + len(record) - frame["offset"],
                checksum=frame["crc"], events=frame["events"],
                instr=frame["instr"], mem=frame["mem"],
                branch=frame["branch"]))
            self._frame = None

    def finish(self, manifest: TraceManifest) -> TraceIndex:
        if self._frame is not None:
            self._stray += self._frame["events"]
            self._frame = None
        return TraceIndex(
            trace_version=manifest.version,
            trace_total_events=manifest.total_events,
            trace_checksum=manifest.checksum,
            entries=tuple(self._entries), stray_events=self._stray)


# ---------------------------------------------------------------- codec

def encode_index(index: TraceIndex) -> bytes:
    """The full sidecar file bytes for *index*."""
    body = bytearray()
    body += encode_varint(index.trace_version)
    body += encode_varint(index.trace_total_events)
    body += encode_varint(index.trace_checksum)
    names: List[str] = []
    ids = {}
    for entry in index.entries:
        if entry.kernel not in ids:
            ids[entry.kernel] = len(names)
            names.append(entry.kernel)
    body += encode_varint(len(names))
    for name in names:
        raw = name.encode("utf-8")
        body += encode_varint(len(raw))
        body += raw
    entries = index.entries
    body += encode_varint(len(entries))

    def column(values) -> None:
        for value in values:
            body.extend(encode_varint(int(value)))

    column(ids[e.kernel] for e in entries)
    column(e.launch_index for e in entries)
    for axis in range(3):
        column(e.grid[axis] for e in entries)
    for axis in range(3):
        column(e.block[axis] for e in entries)
    prev = 0
    for entry in entries:          # offsets are increasing: plain deltas
        body += encode_varint(entry.offset - prev)
        prev = entry.offset
    column(e.length for e in entries)
    column(e.checksum for e in entries)
    column(e.events for e in entries)
    column(e.instr for e in entries)
    column(e.mem for e in entries)
    column(e.branch for e in entries)
    body += encode_varint(index.stray_events)
    trailer = len(body).to_bytes(4, "little") + INDEX_TRAILER_MAGIC
    return (INDEX_MAGIC + bytes([INDEX_VERSION]) + bytes(body)
            + crc32(bytes(body)).to_bytes(4, "little") + trailer)


def decode_index(data: bytes, name: str = "<index>") -> TraceIndex:
    """Parse sidecar bytes; truncation/corruption raises
    :class:`TraceFormatError`."""
    header = len(INDEX_MAGIC) + 1
    if len(data) < header or data[:len(INDEX_MAGIC)] != INDEX_MAGIC:
        raise TraceFormatError(f"{name} is not a trace index (bad magic)")
    version = data[len(INDEX_MAGIC)]
    if version != INDEX_VERSION:
        raise TraceFormatError(
            f"{name}: unsupported index version {version} (this reader "
            f"speaks version {INDEX_VERSION})")
    if len(data) < header + 4 + INDEX_TRAILER_SIZE:
        raise TraceFormatError(f"{name}: truncated index (torn write?)")
    trailer = data[-INDEX_TRAILER_SIZE:]
    if trailer[4:] != INDEX_TRAILER_MAGIC:
        raise TraceFormatError(
            f"{name}: missing index trailer (torn write?)")
    body_len = int.from_bytes(trailer[:4], "little")
    if header + body_len + 4 + INDEX_TRAILER_SIZE != len(data):
        raise TraceFormatError(
            f"{name}: index length mismatch (torn write?)")
    body = data[header:header + body_len]
    stored_crc = int.from_bytes(
        data[header + body_len:header + body_len + 4], "little")
    if crc32(body) != stored_crc:
        raise TraceFormatError(f"{name}: index checksum mismatch "
                               "(index corrupt)")
    try:
        return _decode_body(body)
    except TraceFormatError as exc:
        raise TraceFormatError(f"{name}: {exc}")


def _decode_body(body: bytes) -> TraceIndex:
    pos = 0
    trace_version, pos = decode_varint(body, pos)
    total_events, pos = decode_varint(body, pos)
    trace_checksum, pos = decode_varint(body, pos)
    n_names, pos = decode_varint(body, pos)
    names = []
    for _ in range(n_names):
        length, pos = decode_varint(body, pos)
        if pos + length > len(body):
            raise TraceFormatError("truncated kernel name table")
        try:
            names.append(body[pos:pos + length].decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise TraceFormatError(f"bad kernel name bytes: {exc}")
        pos += length
    n_rows, pos = decode_varint(body, pos)

    def column():
        nonlocal pos
        values = []
        for _ in range(n_rows):
            value, pos = decode_varint(body, pos)
            values.append(value)
        return values

    name_ids = column()
    launch_indices = column()
    grids = [column(), column(), column()]
    blocks = [column(), column(), column()]
    offset_deltas = column()
    lengths = column()
    checksums = column()
    events = column()
    instr = column()
    mem = column()
    branch = column()
    stray, pos = decode_varint(body, pos)
    if pos != len(body):
        raise TraceFormatError("trailing bytes after index body")
    entries = []
    offset = 0
    for row in range(n_rows):
        if name_ids[row] >= len(names):
            raise TraceFormatError("kernel name id out of range")
        offset += offset_deltas[row]
        entries.append(LaunchEntry(
            kernel=names[name_ids[row]],
            launch_index=launch_indices[row],
            grid=(grids[0][row], grids[1][row], grids[2][row]),
            block=(blocks[0][row], blocks[1][row], blocks[2][row]),
            offset=offset, length=lengths[row],
            checksum=checksums[row], events=events[row],
            instr=instr[row], mem=mem[row], branch=branch[row]))
    return TraceIndex(trace_version=trace_version,
                      trace_total_events=total_events,
                      trace_checksum=trace_checksum,
                      entries=tuple(entries), stray_events=stray)


# ------------------------------------------------------------- sidecars

def write_index(index: TraceIndex, path: str) -> None:
    with open(path, "wb") as handle:
        handle.write(encode_index(index))


def read_index(path: str) -> TraceIndex:
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise TraceFormatError(
            f"cannot open index {path}: {exc.strerror or exc}")
    return decode_index(data, name=path)


def build_index(trace_path: str) -> TraceIndex:
    """Backfill: scan *trace_path* once, tracking absolute offsets.

    Produces exactly the index :class:`~repro.trace.io.TraceWriter`
    would have written at capture time (same bytes under
    :func:`encode_index`).
    """
    from repro.trace.io import TraceReader

    reader = TraceReader(trace_path)
    manifest = reader.manifest()          # validates header + footer
    builder = IndexBuilder()
    with open(trace_path, "rb") as handle:
        handle.seek(_TRACE_HEADER_SIZE)
        data = handle.read()              # event stream + footer
    pos = 0
    from repro.trace.format import EncoderState, decode_event
    state = EncoderState()
    while True:
        start = pos
        tag, pos = decode_varint(data, pos)
        if tag == TAG_END:
            break
        event, pos = decode_event(tag, data, pos, state)
        builder.observe(tag, event, _TRACE_HEADER_SIZE + start,
                        data[start:pos])
    return builder.finish(manifest)


def sidecar_index(trace_path: str) -> Optional[TraceIndex]:
    """The ``.rpti`` sidecar if present and bound to this trace, else
    ``None`` — never scans.  Callers that want an honest "did we have
    an index?" answer (the columnar replay gate, ``trace query``'s
    full-scan reporting) use this instead of :func:`ensure_index`,
    which silently builds one from a full pass over the trace."""
    from repro.trace.io import TraceReader

    sidecar = index_path_for(trace_path)
    if not os.path.exists(sidecar):
        return None
    try:
        index = read_index(sidecar)
        if index.matches(TraceReader(trace_path).manifest()):
            return index
    except TraceFormatError:
        pass                              # stale/torn sidecar
    return None


def ensure_index(trace_path: str, write: bool = False
                 ) -> Optional[TraceIndex]:
    """The sidecar if present and bound to this trace, else a fresh
    scan (written back when *write* is set).  Returns ``None`` only if
    the trace itself is unreadable as a trace."""
    from repro.trace.io import TraceReader

    try:
        manifest = TraceReader(trace_path).manifest()
    except TraceFormatError:
        return None
    sidecar = index_path_for(trace_path)
    if os.path.exists(sidecar):
        try:
            index = read_index(sidecar)
            if index.matches(manifest):
                return index
        except TraceFormatError:
            pass                          # stale/torn sidecar: rebuild
    index = build_index(trace_path)
    if write:
        write_index(index, sidecar)
    return index
