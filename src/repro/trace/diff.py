"""Trace comparison: find where two recorded runs first diverge.

The error-injection use case: record a trace per injection trial, then
``repro trace-diff golden.rptrace trial.rptrace`` pinpoints the first
dynamic event where the fault became architecturally visible — without
re-simulating anything.  Comparison is streaming (two lazy readers,
constant memory) and exact: two events are equal iff every recorded
field is equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import zip_longest
from typing import List, Optional, Tuple

from repro.trace.format import KIND_NAMES, LaunchEvent
from repro.trace.io import TraceReader


def _describe(event) -> str:
    if event is None:
        return "<end of trace>"
    kind = KIND_NAMES[event.tag]
    addr = getattr(event, "ins_addr", None)
    if addr is not None:
        return f"{kind} @0x{addr:x} {event}"
    return f"{kind} {event}"


@dataclass
class TraceDiff:
    """Outcome of comparing two traces."""

    events_a: int
    events_b: int
    #: index (0-based, in event-stream order) of the first differing
    #: event, or None when the traces are identical
    first_divergence: Optional[int] = None
    #: the differing pair at that index (either side may be None when
    #: one trace simply ended first)
    divergent_pair: Tuple[Optional[object], Optional[object]] = (None, None)
    #: kernel frame (name, launch index) containing the divergence
    kernel_frame: Optional[Tuple[str, int]] = None
    #: total number of differing event slots (bounded by *max_deltas*)
    deltas: int = 0
    #: True when the delta count was cut off at *max_deltas*
    deltas_truncated: bool = False

    @property
    def identical(self) -> bool:
        return self.first_divergence is None

    def report(self) -> str:
        if self.identical:
            return (f"traces identical: {self.events_a:,} events, "
                    "0 deltas")
        lines = [f"first divergence at event {self.first_divergence:,}"]
        if self.kernel_frame is not None:
            name, index = self.kernel_frame
            lines[0] += f" (kernel {name!r}, launch {index})"
        a, b = self.divergent_pair
        lines.append(f"  a: {_describe(a)}")
        lines.append(f"  b: {_describe(b)}")
        deltas = f"{self.deltas:,}"
        if self.deltas_truncated:
            deltas += "+"
        lines.append(f"{deltas} differing events "
                     f"({self.events_a:,} vs {self.events_b:,} total)")
        return "\n".join(lines)


def diff_traces(path_a, path_b, max_deltas: int = 100_000) -> TraceDiff:
    """Compare two traces event by event, streaming.

    Counting every delta of two wildly different traces is pointless
    work, so counting stops (and ``deltas_truncated`` is set) after
    *max_deltas* differences; the first-divergence point is exact
    regardless.
    """
    reader_a = TraceReader(path_a)
    reader_b = TraceReader(path_b)
    index = 0
    first: Optional[int] = None
    pair: Tuple[Optional[object], Optional[object]] = (None, None)
    frame: Optional[Tuple[str, int]] = None
    divergence_frame: Optional[Tuple[str, int]] = None
    deltas = 0
    truncated = False
    count_a = count_b = 0
    for event_a, event_b in zip_longest(reader_a.events(),
                                        reader_b.events()):
        if event_a is not None:
            count_a += 1
            if isinstance(event_a, LaunchEvent):
                frame = (event_a.kernel, event_a.launch_index)
        if event_b is not None:
            count_b += 1
        if event_a != event_b:
            if first is None:
                first = index
                pair = (event_a, event_b)
                divergence_frame = frame
            deltas += 1
            if deltas >= max_deltas:
                truncated = True
                break
        index += 1
    if truncated:
        # re-scan for the full totals so the report stays meaningful
        count_a = sum(1 for _ in reader_a.events())
        count_b = sum(1 for _ in reader_b.events())
    return TraceDiff(events_a=count_a, events_b=count_b,
                     first_divergence=first, divergent_pair=pair,
                     kernel_frame=divergence_frame, deltas=deltas,
                     deltas_truncated=truncated)
