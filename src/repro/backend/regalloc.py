"""Linear-scan register allocation: virtual registers → ``R0..R254``,
virtual predicates → ``P0..P6``.

``R1`` is reserved as the ABI stack pointer (the launch machinery
initializes it to the top of the thread's local-memory stack, and SASSI's
injected call sequences adjust it exactly as the paper's Figure 2 shows).

Liveness is computed on the lowered linear code with the same CFG rules as
:mod:`repro.isa.analysis` (including conservative ``SYNC``/``BRK`` resume
edges and no-kill predicated definitions).  An interval per *unit* (a
single virtual register, or an even-aligned pair for 64-bit values) spans
from the first position where the unit is live or defined to the last.
Pairs receive even-aligned physical pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.backend.lowering import LoweredKernel
from repro.backend.virtual import VirtGPR, VirtPred
from repro.isa.instruction import Instruction, MemRef, PredGuard
from repro.isa.opcodes import Opcode
from repro.isa.program import SassKernel
from repro.isa.registers import GPR, NUM_PREDS, PT, Pred


class AllocationError(Exception):
    """Register pressure exceeds the physical register file."""


#: Physical GPR reserved as the stack pointer.
STACK_POINTER = GPR(1)


def _virt_gprs_in(instr: Instruction, operand, written: bool) -> List[int]:
    regs: List[int] = []
    if isinstance(operand, VirtGPR):
        count = max(1, instr.mem_width // 4) if instr.is_memory else 1
        regs.extend(operand.index + i for i in range(count))
    elif isinstance(operand, MemRef) and isinstance(operand.base, VirtGPR):
        base = operand.base.index
        from repro.isa.instruction import MemSpace

        if operand.space in (MemSpace.SHARED, MemSpace.LOCAL):
            regs.append(base)
        else:
            regs.extend((base, base + 1))
    return regs


def virt_uses(instr: Instruction) -> List[int]:
    regs: List[int] = []
    for operand in instr.srcs:
        regs.extend(_virt_gprs_in(instr, operand, written=False))
    return regs


def virt_defs(instr: Instruction) -> List[int]:
    regs: List[int] = []
    for operand in instr.dsts:
        if isinstance(operand, VirtGPR):
            count = max(1, instr.mem_width // 4) if instr.is_mem_read else 1
            regs.extend(operand.index + i for i in range(count))
    return regs


def vpred_uses(instr: Instruction) -> List[int]:
    preds = [p.index for p in instr.srcs if isinstance(p, VirtPred)]
    if isinstance(instr.guard.pred, VirtPred):
        preds.append(instr.guard.pred.index)
    return preds


def vpred_defs(instr: Instruction) -> List[int]:
    return [p.index for p in instr.dsts if isinstance(p, VirtPred)]


def _successors(instructions: Sequence[Instruction],
                labels: Dict[str, int], index: int) -> Tuple[int, ...]:
    from repro.isa.instruction import LabelRef

    instr = instructions[index]
    limit = len(instructions)
    nxt = (index + 1,) if index + 1 < limit else ()

    def target() -> int:
        for operand in instr.srcs:
            if isinstance(operand, LabelRef):
                return labels[operand.name]
        raise ValueError(f"branch without target: {instr!r}")

    if instr.opcode in (Opcode.EXIT, Opcode.RET):
        return nxt if not instr.guard.is_unconditional else ()
    if instr.opcode == Opcode.BRA:
        if instr.guard.is_unconditional:
            return (target(),)
        return tuple(sorted({target(), *nxt}))
    if instr.opcode in (Opcode.SYNC, Opcode.BRK):
        resume: Set[int] = set(nxt)
        for other_index, other in enumerate(instructions):
            if instr.opcode == Opcode.SYNC:
                if other.opcode == Opcode.BRA \
                        and not other.guard.is_unconditional \
                        and other_index + 1 < limit:
                    resume.add(other_index + 1)
            elif other.opcode == Opcode.PBK:
                for operand in other.srcs:
                    if isinstance(operand, LabelRef):
                        resume.add(labels[operand.name])
        return tuple(sorted(resume))
    return nxt


@dataclass
class _Interval:
    unit: int          # root virtual index (even for GPR units)
    start: int
    end: int
    paired: bool = False


def _liveness(instructions: Sequence[Instruction],
              labels: Dict[str, int],
              uses_fn, defs_fn, kills: bool = True) -> List[Set[int]]:
    """Per-instruction live-in sets of virtual indices."""
    count = len(instructions)
    succs = [_successors(instructions, labels, i) for i in range(count)]
    live_in: List[Set[int]] = [set() for _ in range(count)]
    changed = True
    while changed:
        changed = False
        for index in range(count - 1, -1, -1):
            instr = instructions[index]
            out: Set[int] = set()
            for succ in succs[index]:
                out |= live_in[succ]
            defs = set(defs_fn(instr)) if instr.guard.is_unconditional else set()
            new = set(uses_fn(instr)) | (out - defs)
            if new != live_in[index]:
                live_in[index] = new
                changed = True
    return live_in


def _build_intervals(instructions: Sequence[Instruction],
                     live_in: List[Set[int]],
                     defs_fn, uses_fn,
                     unit_of, paired_units: Set[int]) -> List[_Interval]:
    spans: Dict[int, Tuple[int, int]] = {}

    def touch(unit: int, position: int) -> None:
        if unit in spans:
            lo, hi = spans[unit]
            spans[unit] = (min(lo, position), max(hi, position))
        else:
            spans[unit] = (position, position)

    for position, instr in enumerate(instructions):
        for reg in live_in[position]:
            touch(unit_of(reg), position)
        for reg in uses_fn(instr):
            touch(unit_of(reg), position)
        for reg in defs_fn(instr):
            touch(unit_of(reg), position)
    return sorted(
        (_Interval(unit, lo, hi, paired=unit in paired_units)
         for unit, (lo, hi) in spans.items()),
        key=lambda iv: (iv.start, iv.unit),
    )


class _GPRPool:
    """Free pool of physical GPRs supporting aligned-pair allocation."""

    def __init__(self, reserved: Set[int]):
        self._free = [i for i in range(255) if i not in reserved]
        self._free_set = set(self._free)

    def take_single(self) -> int:
        for reg in self._free:
            self._free.remove(reg)
            self._free_set.remove(reg)
            return reg
        raise AllocationError("out of general-purpose registers")

    def take_pair(self) -> int:
        for reg in self._free:
            if reg % 2 == 0 and reg + 1 in self._free_set:
                self._free.remove(reg)
                self._free.remove(reg + 1)
                self._free_set -= {reg, reg + 1}
                return reg
        raise AllocationError("out of aligned register pairs")

    def release(self, reg: int) -> None:
        if reg not in self._free_set:
            self._free_set.add(reg)
            self._free.append(reg)
            self._free.sort()


def allocate(lowered: LoweredKernel) -> Tuple[List[Union[str, Instruction]], int]:
    """Allocate physical registers; returns rewritten items and the
    register footprint (highest GPR index used + 1)."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    for item in lowered.items:
        if isinstance(item, str):
            labels[item] = len(instructions)
        else:
            instructions.append(item)

    gpr_map = _allocate_gprs(instructions, labels, lowered.paired_roots)
    pred_map = _allocate_preds(instructions, labels)

    rewritten: List[Union[str, Instruction]] = []
    cursor = 0
    label_positions: Dict[int, List[str]] = {}
    for label, position in labels.items():
        label_positions.setdefault(position, []).append(label)
    output: List[Union[str, Instruction]] = []
    for position, instr in enumerate(instructions):
        for label in label_positions.get(position, ()):
            output.append(label)
        output.append(_rewrite(instr, gpr_map, pred_map))
    for label in label_positions.get(len(instructions), ()):
        output.append(label)

    max_reg = max(gpr_map.values(), default=0)
    max_reg = max(max_reg, STACK_POINTER.index)
    return output, max_reg + 1


def _allocate_gprs(instructions, labels, paired_roots) -> Dict[int, int]:
    live_in = _liveness(instructions, labels, virt_uses, virt_defs)

    def unit_of(index: int) -> int:
        root = index & ~1
        return root if root in paired_roots else index

    intervals = _build_intervals(instructions, live_in, virt_defs, virt_uses,
                                 unit_of, paired_roots)
    pool = _GPRPool(reserved={STACK_POINTER.index})
    active: List[Tuple[int, _Interval, int]] = []  # (end, interval, phys)
    assignment: Dict[int, int] = {}
    for interval in intervals:
        for end, done, phys in list(active):
            if end < interval.start:
                active.remove((end, done, phys))
                pool.release(phys)
                if done.paired:
                    pool.release(phys + 1)
        phys = pool.take_pair() if interval.paired else pool.take_single()
        assignment[interval.unit] = phys
        active.append((interval.end, interval, phys))

    result: Dict[int, int] = {}
    for unit, phys in assignment.items():
        result[unit] = phys
        if unit in paired_roots:
            result[unit + 1] = phys + 1
    return result


def _allocate_preds(instructions, labels) -> Dict[int, int]:
    live_in = _liveness(instructions, labels, vpred_uses, vpred_defs)
    intervals = _build_intervals(instructions, live_in, vpred_defs,
                                 vpred_uses, lambda i: i, set())
    free = [i for i in range(NUM_PREDS - 1)]
    active: List[Tuple[int, int, int]] = []
    assignment: Dict[int, int] = {}
    for interval in intervals:
        for end, unit, phys in list(active):
            if end < interval.start:
                active.remove((end, unit, phys))
                free.append(phys)
                free.sort()
        if not free:
            raise AllocationError("out of predicate registers")
        phys = free.pop(0)
        assignment[interval.unit] = phys
        active.append((interval.end, interval.unit, phys))
    return assignment


def _map_operand(operand, gpr_map: Dict[int, int], pred_map: Dict[int, int]):
    if isinstance(operand, VirtGPR):
        return GPR(gpr_map[operand.index])
    if isinstance(operand, VirtPred):
        return Pred(pred_map[operand.index])
    if isinstance(operand, MemRef) and isinstance(operand.base, VirtGPR):
        return MemRef(operand.space, GPR(gpr_map[operand.base.index]),
                      operand.offset)
    return operand


def _rewrite(instr: Instruction, gpr_map: Dict[int, int],
             pred_map: Dict[int, int]) -> Instruction:
    dsts = tuple(_map_operand(op, gpr_map, pred_map) for op in instr.dsts)
    srcs = tuple(_map_operand(op, gpr_map, pred_map) for op in instr.srcs)
    guard = instr.guard
    if isinstance(guard.pred, VirtPred):
        guard = PredGuard(Pred(pred_map[guard.pred.index]), guard.negated)
    return replace(instr, dsts=dsts, srcs=srcs, guard=guard)
