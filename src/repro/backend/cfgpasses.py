"""CFG analyses on the IR used by lowering.

The key product is the immediate post-dominator of every block, which is
where a divergent branch's threads reconverge.  Lowering plants ``SSY`` at
the branch and ``SYNC`` at the reconvergence block — unless the
reconvergence point is a loop boundary, in which case the ``PBK``/``BRK``
break-stack mechanism covers reconvergence (see
:mod:`repro.backend.lowering`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.kernelir.ir import KernelIR

#: Virtual exit node label (cannot collide: builder labels are identifiers).
EXIT_NODE = "<exit>"


def postdominators(kernel: KernelIR) -> Dict[str, Optional[str]]:
    """Immediate post-dominator of every block label.

    Returns a map ``label -> ipdom label`` where the ipdom may be
    :data:`EXIT_NODE` for blocks whose paths all leave the kernel, or
    ``None`` for unreachable blocks.
    """
    labels = [b.label for b in kernel.blocks]
    succ: Dict[str, List[str]] = {}
    for block in kernel.blocks:
        targets = list(block.successors())
        succ[block.label] = targets if targets else [EXIT_NODE]

    # Reverse CFG: predecessors in the reversed graph are successors here.
    nodes = labels + [EXIT_NODE]
    rpo = _reverse_postorder_on_reverse_cfg(succ, nodes)
    order = {node: i for i, node in enumerate(rpo)}

    ipdom: Dict[str, Optional[str]] = {node: None for node in nodes}
    ipdom[EXIT_NODE] = EXIT_NODE
    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == EXIT_NODE:
                continue
            candidates = [s for s in succ.get(node, ()) if ipdom[s] is not None]
            if not candidates:
                continue
            new = candidates[0]
            for other in candidates[1:]:
                new = _intersect(new, other, ipdom, order)
            if ipdom[node] != new:
                ipdom[node] = new
                changed = True
    result: Dict[str, Optional[str]] = {}
    for label in labels:
        value = ipdom[label]
        result[label] = value
    return result


def _intersect(a: str, b: str, ipdom: Dict[str, Optional[str]],
               order: Dict[str, int]) -> str:
    while a != b:
        while order.get(a, -1) > order.get(b, -1):
            a = ipdom[a]  # type: ignore[assignment]
        while order.get(b, -1) > order.get(a, -1):
            b = ipdom[b]  # type: ignore[assignment]
    return a


def _reverse_postorder_on_reverse_cfg(succ: Dict[str, List[str]],
                                      nodes: List[str]) -> List[str]:
    """Postorder DFS from the exit over the *reverse* CFG, reversed —
    i.e. a topological-ish order starting at EXIT_NODE."""
    preds: Dict[str, List[str]] = {node: [] for node in nodes}
    for node, targets in succ.items():
        for target in targets:
            preds.setdefault(target, []).append(node)
    seen = set()
    postorder: List[str] = []

    def visit(node: str) -> None:
        stack = [(node, iter(preds.get(node, ())))]
        seen.add(node)
        while stack:
            current, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, iter(preds.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                postorder.append(current)
                stack.pop()

    visit(EXIT_NODE)
    # Unreachable-from-exit nodes (infinite loops) come last, arbitrarily.
    for node in nodes:
        if node not in seen:
            postorder.insert(0, node)
    return list(reversed(postorder))
