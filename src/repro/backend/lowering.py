"""IR → SASS lowering (instruction selection + divergence control).

The lowerer walks blocks in layout order and emits SASS-like instructions
over virtual registers.  Every 32-bit IR value maps to one virtual GPR;
64-bit values map to the aligned virtual pair ``(2*id, 2*id+1)``.

Divergence control (Kepler-style, consumed by the simulator's per-warp
token stack):

* **if/else** — the reconvergence point of a conditional branch is the
  immediate post-dominator of its block.  ``SSY <reconv>`` is emitted just
  before the branch and ``SYNC`` as the first instruction of the
  reconvergence block.
* **loops** — the builder records (header, exit, preheader) per loop.
  ``PBK <exit>`` is emitted in the preheader; the header's exit branch and
  every ``break`` lower to ``BRK``, which parks breaking lanes at the
  break point and scrubs them from intervening stack entries.  No
  ``SSY``/``SYNC`` is emitted when a branch's reconvergence point is a
  loop boundary — the break stack reconverges those lanes.
* **ret inside divergent code** — ``EXIT`` retires lanes; the stack
  unwinds past emptied entries.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.backend.cfgpasses import EXIT_NODE, postdominators
from repro.backend.virtual import VirtGPR, VirtPred
from repro.isa.instruction import (
    ConstRef,
    Imm,
    Instruction,
    LabelRef,
    MemRef,
    MemSpace,
    PredGuard,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import GPR, PT, RZ
from repro.kernelir.ir import (
    AtomOp,
    Block,
    CmpOp,
    Const,
    IRInstr,
    IROp,
    KernelIR,
    Space,
    Value,
    VReg,
)
from repro.kernelir.types import Type


class LoweringError(Exception):
    """An IR construct has no lowering (unsupported type/op combination)."""


_SREG_MAP = {
    "tid.x": "SR_TID.X", "tid.y": "SR_TID.Y", "tid.z": "SR_TID.Z",
    "ctaid.x": "SR_CTAID.X", "ctaid.y": "SR_CTAID.Y", "ctaid.z": "SR_CTAID.Z",
    "ntid.x": "SR_NTID.X", "ntid.y": "SR_NTID.Y", "ntid.z": "SR_NTID.Z",
    "nctaid.x": "SR_NCTAID.X", "nctaid.y": "SR_NCTAID.Y",
    "nctaid.z": "SR_NCTAID.Z",
    "laneid": "SR_LANEID", "warpid": "SR_WARPID",
    "activemask": "SR_ACTIVEMASK", "clock": "SR_CLOCK",
}

_CMP_MOD = {CmpOp.LT: "LT", CmpOp.LE: "LE", CmpOp.GT: "GT",
            CmpOp.GE: "GE", CmpOp.EQ: "EQ", CmpOp.NE: "NE"}

_SPACE_MAP = {
    Space.GLOBAL: (Opcode.LDG, Opcode.STG, MemSpace.GLOBAL),
    Space.SHARED: (Opcode.LDS, Opcode.STS, MemSpace.SHARED),
    Space.LOCAL: (Opcode.LDL, Opcode.STL, MemSpace.LOCAL),
    Space.TEXTURE: (Opcode.TLD, None, MemSpace.TEXTURE),
}

_COMMUTATIVE = {IROp.ADD, IROp.MUL, IROp.AND, IROp.OR, IROp.XOR,
                IROp.MIN, IROp.MAX, IROp.MULWIDE}


def _float_bits(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


@dataclass
class LoweredKernel:
    """Output of lowering: virtual-register SASS plus allocator metadata."""

    items: List[Union[str, Instruction]]   # labels interleaved with code
    paired_roots: Set[int]                 # virtual roots that are 64-bit
    num_virtual: int
    num_vpreds: int


class Lowerer:
    """Lowers one :class:`KernelIR` to virtual-register SASS."""

    def __init__(self, kernel: KernelIR):
        self.kernel = kernel
        self.items: List[Union[str, Instruction]] = []
        self.paired_roots: Set[int] = set()
        self._scratch = 2 * kernel.num_vregs
        self._vpred_scratch = kernel.num_vregs
        self._ipdom = postdominators(kernel)
        self._sync_blocks: Set[str] = set()
        self._loop_by_exit = {loop.exit: loop for loop in kernel.loops}
        self._loop_by_header = {loop.header: loop for loop in kernel.loops}
        self._preheaders = {loop.preheader: loop for loop in kernel.loops}

    # ------------------------------------------------------------ emit

    def emit(self, opcode: Opcode, dsts=(), srcs=(), mods=(),
             guard: PredGuard = PredGuard()) -> None:
        self.items.append(Instruction(opcode=opcode, dsts=tuple(dsts),
                                      srcs=tuple(srcs), mods=tuple(mods),
                                      guard=guard))

    def _label(self, name: str) -> None:
        self.items.append(name)

    # ----------------------------------------------------- reg mapping

    def vreg32(self, reg: VReg) -> VirtGPR:
        return VirtGPR(2 * reg.id)

    def vreg64(self, reg: VReg) -> Tuple[VirtGPR, VirtGPR]:
        root = 2 * reg.id
        self.paired_roots.add(root)
        return VirtGPR(root), VirtGPR(root + 1)

    def vpred(self, reg: VReg) -> VirtPred:
        return VirtPred(reg.id)

    def scratch32(self) -> VirtGPR:
        reg = VirtGPR(self._scratch)
        self._scratch += 2
        return reg

    def scratch64(self) -> Tuple[VirtGPR, VirtGPR]:
        root = self._scratch
        self._scratch += 2
        self.paired_roots.add(root)
        return VirtGPR(root), VirtGPR(root + 1)

    # -------------------------------------------------- operand helpers

    def _imm_of(self, const: Const) -> Imm:
        if const.type.is_float:
            return Imm(_float_bits(float(const.value)), is_float=True)
        value = int(const.value)
        if not -(1 << 31) <= value < (1 << 32):
            raise LoweringError(f"immediate out of range: {value:#x}")
        if value >= (1 << 31):
            value -= 1 << 32
        return Imm(value)

    def materialize(self, const: Const) -> VirtGPR:
        """Load a 32-bit constant into a scratch register."""
        reg = self.scratch32()
        self.emit(Opcode.MOV32I, (reg,), (self._imm_of(const),))
        return reg

    def materialize64(self, const: Const) -> Tuple[VirtGPR, VirtGPR]:
        lo, hi = self.scratch64()
        value = int(const.value)
        self.emit(Opcode.MOV32I, (lo,), (Imm(_signed32(value & 0xFFFFFFFF)),))
        self.emit(Opcode.MOV32I, (hi,), (Imm(_signed32((value >> 32) & 0xFFFFFFFF)),))
        return lo, hi

    def reg_of(self, value: Value) -> VirtGPR:
        """A 32-bit value as a register (materializing constants)."""
        if isinstance(value, VReg):
            if value.type.is_wide:
                raise LoweringError(f"expected 32-bit value, got {value.type}")
            return self.vreg32(value)
        return self.materialize(value)

    def pair_of(self, value: Value) -> Tuple[VirtGPR, VirtGPR]:
        """A 64-bit value as a register pair."""
        if isinstance(value, VReg):
            if not value.type.is_wide:
                raise LoweringError(f"expected 64-bit value, got {value.type}")
            return self.vreg64(value)
        return self.materialize64(value)

    def operand_of(self, value: Value) -> Union[VirtGPR, Imm]:
        """A 32-bit source operand; constants stay immediates."""
        if isinstance(value, Const):
            return self._imm_of(value)
        return self.reg_of(value)

    # --------------------------------------------------------- driver

    def lower(self) -> LoweredKernel:
        for block in self.kernel.blocks:
            self._label(block.label)
            if block.label in self._sync_blocks:
                self.emit(Opcode.SYNC)
            for instr in block.instrs:
                self._lower_instr(block, instr)
        return LoweredKernel(items=self.items,
                             paired_roots=self.paired_roots,
                             num_virtual=self._scratch,
                             num_vpreds=self._vpred_scratch)

    # NOTE: _sync_blocks is filled while lowering earlier blocks; the
    # builder always lays a reconvergence block *after* the branch that
    # targets it, so the marking is always seen in time.  A safety check
    # in _mark_sync enforces this.

    def _mark_sync(self, label: str) -> None:
        emitted = {item for item in self.items if isinstance(item, str)}
        if label in emitted:
            raise LoweringError(
                f"reconvergence block {label!r} precedes its branch")
        self._sync_blocks.add(label)

    # ----------------------------------------------------- instruction

    def _lower_instr(self, block: Block, instr: IRInstr) -> None:
        handler = getattr(self, f"_lower_{instr.op.name.lower()}", None)
        if handler is None:
            raise LoweringError(f"no lowering for {instr.op}")
        handler(block, instr)

    # ---- moves & params

    def _lower_mov(self, block: Block, instr: IRInstr) -> None:
        dst = instr.dst
        src = instr.srcs[0]
        if dst.type is Type.PRED:
            if not isinstance(src, VReg):
                raise LoweringError("predicate moves need a register source")
            self.emit(Opcode.PSETP, (self.vpred(dst), PT),
                      (self.vpred(src), PT), mods=("AND",))
            return
        if dst.type.is_wide:
            if isinstance(src, Const):
                lo, hi = self.vreg64(dst)
                value = int(src.value)
                self.emit(Opcode.MOV32I, (lo,),
                          (Imm(_signed32(value & 0xFFFFFFFF)),))
                self.emit(Opcode.MOV32I, (hi,),
                          (Imm(_signed32((value >> 32) & 0xFFFFFFFF)),))
            else:
                dlo, dhi = self.vreg64(dst)
                slo, shi = self.pair_of(src)
                self.emit(Opcode.MOV, (dlo,), (slo,))
                self.emit(Opcode.MOV, (dhi,), (shi,))
            return
        if isinstance(src, Const):
            self.emit(Opcode.MOV32I, (self.vreg32(dst),), (self._imm_of(src),))
        else:
            self.emit(Opcode.MOV, (self.vreg32(dst),), (self.reg_of(src),))

    def _lower_ld(self, block: Block, instr: IRInstr) -> None:
        if instr.space is Space.CONST:
            offset = int(instr.srcs[0].value)
            if instr.dst.type.is_wide:
                lo, hi = self.vreg64(instr.dst)
                self.emit(Opcode.MOV, (lo,), (ConstRef(0, offset),))
                self.emit(Opcode.MOV, (hi,), (ConstRef(0, offset + 4),))
            else:
                self.emit(Opcode.MOV, (self.vreg32(instr.dst),),
                          (ConstRef(0, offset),))
            return
        load_op, _, mem_space = _SPACE_MAP[instr.space]
        offset = int(instr.srcs[1].value) if len(instr.srcs) > 1 else 0
        base = self._address_base(instr.space, instr.srcs[0])
        if instr.width in (1, 2):
            mods = ("U8",) if instr.width == 1 else ("U16",)
        elif instr.dst.type.is_wide:
            mods = ("64",)
        else:
            mods = ()
        dst = self.vreg64(instr.dst)[0] if instr.dst.type.is_wide \
            else self.vreg32(instr.dst)
        self.emit(load_op, (dst,), (MemRef(mem_space, base, offset),),
                  mods=mods)

    def _lower_st(self, block: Block, instr: IRInstr) -> None:
        space = instr.space
        _, store_op, mem_space = _SPACE_MAP[space]
        if store_op is None:
            raise LoweringError(f"cannot store to {space}")
        pointer, value, offset_const = instr.srcs
        offset = int(offset_const.value)
        base = self._address_base(space, pointer)
        if isinstance(value, VReg) and value.type.is_wide:
            data = self.vreg64(value)[0]
            mods = ("64",)
        else:
            data = self.reg_of(value) if not isinstance(value, Const) \
                else self.materialize(value)
            mods = ()
            if instr.width in (1, 2):
                mods = ("U8",) if instr.width == 1 else ("U16",)
        self.emit(store_op, (), (MemRef(mem_space, base, offset), data),
                  mods=mods)

    def _address_base(self, space: Space, pointer: Value) -> VirtGPR:
        """The base register of a memory operand: the root of a 64-bit
        pair for global/texture, a single 32-bit register otherwise."""
        if space in (Space.GLOBAL, Space.TEXTURE):
            return self.pair_of(pointer)[0]
        if isinstance(pointer, Const):
            return self.materialize(pointer)
        return self.reg_of(pointer)

    def _lower_atom(self, block: Block, instr: IRInstr) -> None:
        opcode = Opcode.ATOM if instr.space is Space.GLOBAL else Opcode.ATOMS
        base = self._address_base(instr.space, instr.srcs[0])
        value = self.reg_of(instr.srcs[1]) if isinstance(instr.srcs[1], VReg) \
            else self.materialize(instr.srcs[1])
        space = MemSpace.GLOBAL if instr.space is Space.GLOBAL \
            else MemSpace.SHARED
        mod = instr.atom.name
        sign = "S32" if instr.type is Type.S32 else "U32"
        self.emit(opcode, (self.vreg32(instr.dst),),
                  (MemRef(space, base, 0), value), mods=(mod, sign))

    # ---- integer / float arithmetic

    def _binary_operands(self, instr: IRInstr):
        lhs, rhs = instr.srcs
        if isinstance(lhs, Const) and isinstance(rhs, VReg) \
                and instr.op in _COMMUTATIVE:
            lhs, rhs = rhs, lhs
        return lhs, rhs

    def _lower_add(self, block: Block, instr: IRInstr) -> None:
        lhs, rhs = self._binary_operands(instr)
        if instr.type.is_float:
            self.emit(Opcode.FADD, (self.vreg32(instr.dst),),
                      (self.reg_of(lhs), self.operand_of(rhs)))
            return
        if instr.type.is_wide:
            self._lower_add64(instr.dst, lhs, rhs)
            return
        self.emit(Opcode.IADD, (self.vreg32(instr.dst),),
                  (self.reg_of(lhs), self.operand_of(rhs)))

    def _lower_add64(self, dst: VReg, lhs: Value, rhs: Value) -> None:
        dlo, dhi = self.vreg64(dst)
        # rhs may be a 64-bit register pair or a constant.
        if isinstance(rhs, Const):
            value = int(rhs.value)
            lo_imm = Imm(_signed32(value & 0xFFFFFFFF))
            hi_imm = Imm(_signed32((value >> 32) & 0xFFFFFFFF))
            llo, lhi = self.pair_of(lhs)
            self.emit(Opcode.IADD, (dlo,), (llo, lo_imm), mods=("CC",))
            self.emit(Opcode.IADD, (dhi,), (lhi, hi_imm), mods=("X",))
            return
        if isinstance(lhs, Const):
            lhs, rhs = rhs, lhs
            self._lower_add64(dst, lhs, rhs)
            return
        llo, lhi = self.pair_of(lhs)
        rlo, rhi = self.pair_of(rhs)
        self.emit(Opcode.IADD, (dlo,), (llo, rlo), mods=("CC",))
        self.emit(Opcode.IADD, (dhi,), (lhi, rhi), mods=("X",))

    def _lower_sub(self, block: Block, instr: IRInstr) -> None:
        lhs, rhs = instr.srcs
        if instr.type.is_float:
            if isinstance(rhs, Const):
                negated = Const(-float(rhs.value), Type.F32)
                self.emit(Opcode.FADD, (self.vreg32(instr.dst),),
                          (self.reg_of(lhs), self._imm_of(negated)))
            else:
                self.emit(Opcode.FADD, (self.vreg32(instr.dst),),
                          (self.reg_of(lhs), self.reg_of(rhs)),
                          mods=("NEGB",))
            return
        if instr.type.is_wide:
            raise LoweringError("64-bit subtract is not supported")
        if isinstance(rhs, Const):
            self.emit(Opcode.IADD, (self.vreg32(instr.dst),),
                      (self.reg_of(lhs), Imm(-int(rhs.value))))
        else:
            self.emit(Opcode.IADD, (self.vreg32(instr.dst),),
                      (self.reg_of(lhs), self.reg_of(rhs)), mods=("NEGB",))

    def _lower_mul(self, block: Block, instr: IRInstr) -> None:
        lhs, rhs = self._binary_operands(instr)
        opcode = Opcode.FMUL if instr.type.is_float else Opcode.IMUL
        if instr.type.is_wide:
            raise LoweringError("use mul.wide for 64-bit products")
        self.emit(opcode, (self.vreg32(instr.dst),),
                  (self.reg_of(lhs), self.operand_of(rhs)))

    def _lower_mulwide(self, block: Block, instr: IRInstr) -> None:
        lhs, rhs = self._binary_operands(instr)
        dlo, _ = self.vreg64(instr.dst)
        self.emit(Opcode.IMUL, (dlo,),
                  (self.reg_of(lhs), self.operand_of(rhs)),
                  mods=("WIDE", "U32"))

    def _lower_mad(self, block: Block, instr: IRInstr) -> None:
        a, b, c = instr.srcs
        if instr.type.is_float:
            self.emit(Opcode.FFMA, (self.vreg32(instr.dst),),
                      (self.reg_of(a), self.operand_of(b),
                       self.operand_of(c)))
        else:
            self.emit(Opcode.IMAD, (self.vreg32(instr.dst),),
                      (self.reg_of(a), self.operand_of(b),
                       self.operand_of(c)))

    def _minmax(self, instr: IRInstr, which: str) -> None:
        lhs, rhs = self._binary_operands(instr)
        if instr.type.is_float:
            self.emit(Opcode.FMNMX, (self.vreg32(instr.dst),),
                      (self.reg_of(lhs), self.operand_of(rhs)), mods=(which,))
        else:
            sign = "S32" if instr.type.is_signed else "U32"
            self.emit(Opcode.IMNMX, (self.vreg32(instr.dst),),
                      (self.reg_of(lhs), self.operand_of(rhs)),
                      mods=(which, sign))

    def _lower_min(self, block: Block, instr: IRInstr) -> None:
        self._minmax(instr, "MIN")

    def _lower_max(self, block: Block, instr: IRInstr) -> None:
        self._minmax(instr, "MAX")

    def _logic(self, instr: IRInstr, which: str) -> None:
        lhs, rhs = self._binary_operands(instr)
        if isinstance(rhs, Const):
            self.emit(Opcode.LOP32I, (self.vreg32(instr.dst),),
                      (self.reg_of(lhs), self._imm_of(rhs)), mods=(which,))
        else:
            self.emit(Opcode.LOP, (self.vreg32(instr.dst),),
                      (self.reg_of(lhs), self.reg_of(rhs)), mods=(which,))

    def _lower_and(self, block: Block, instr: IRInstr) -> None:
        self._logic(instr, "AND")

    def _lower_or(self, block: Block, instr: IRInstr) -> None:
        self._logic(instr, "OR")

    def _lower_xor(self, block: Block, instr: IRInstr) -> None:
        self._logic(instr, "XOR")

    def _lower_not(self, block: Block, instr: IRInstr) -> None:
        self.emit(Opcode.LOP, (self.vreg32(instr.dst),),
                  (RZ, self.reg_of(instr.srcs[0])), mods=("NOT_B",))

    def _lower_shl(self, block: Block, instr: IRInstr) -> None:
        self.emit(Opcode.SHL, (self.vreg32(instr.dst),),
                  (self.reg_of(instr.srcs[0]), self.operand_of(instr.srcs[1])))

    def _lower_shr(self, block: Block, instr: IRInstr) -> None:
        sign = "S32" if instr.type.is_signed else "U32"
        self.emit(Opcode.SHR, (self.vreg32(instr.dst),),
                  (self.reg_of(instr.srcs[0]), self.operand_of(instr.srcs[1])),
                  mods=(sign,))

    def _lower_abs(self, block: Block, instr: IRInstr) -> None:
        if instr.type.is_float:
            self.emit(Opcode.LOP32I, (self.vreg32(instr.dst),),
                      (self.reg_of(instr.srcs[0]), Imm(0x7FFFFFFF)),
                      mods=("AND",))
        else:
            self.emit(Opcode.IABS, (self.vreg32(instr.dst),),
                      (self.reg_of(instr.srcs[0]),))

    def _lower_neg(self, block: Block, instr: IRInstr) -> None:
        if instr.type.is_float:
            self.emit(Opcode.LOP32I, (self.vreg32(instr.dst),),
                      (self.reg_of(instr.srcs[0]), Imm(_signed32(0x80000000))),
                      mods=("XOR",))
        else:
            self.emit(Opcode.IADD, (self.vreg32(instr.dst),),
                      (RZ, self.reg_of(instr.srcs[0])), mods=("NEGB",))

    def _mufu(self, instr: IRInstr, func: str) -> None:
        self.emit(Opcode.MUFU, (self.vreg32(instr.dst),),
                  (self.reg_of(instr.srcs[0]),), mods=(func,))

    def _lower_sqrt(self, block: Block, instr: IRInstr) -> None:
        self._mufu(instr, "SQRT")

    def _lower_rcp(self, block: Block, instr: IRInstr) -> None:
        self._mufu(instr, "RCP")

    def _lower_ex2(self, block: Block, instr: IRInstr) -> None:
        self._mufu(instr, "EX2")

    def _lower_lg2(self, block: Block, instr: IRInstr) -> None:
        self._mufu(instr, "LG2")

    def _lower_sin(self, block: Block, instr: IRInstr) -> None:
        self._mufu(instr, "SIN")

    def _lower_cos(self, block: Block, instr: IRInstr) -> None:
        self._mufu(instr, "COS")

    def _lower_fdiv(self, block: Block, instr: IRInstr) -> None:
        recip = self.scratch32()
        divisor = self.reg_of(instr.srcs[1]) \
            if not isinstance(instr.srcs[1], Const) \
            else self.materialize(instr.srcs[1])
        self.emit(Opcode.MUFU, (recip,), (divisor,), mods=("RCP",))
        self.emit(Opcode.FMUL, (self.vreg32(instr.dst),),
                  (self.reg_of(instr.srcs[0]), recip))

    # ---- predicates / select / convert

    def _lower_setp(self, block: Block, instr: IRInstr) -> None:
        lhs, rhs = instr.srcs
        if isinstance(lhs, Const):
            lhs_reg: Union[VirtGPR, GPR] = self.materialize(lhs)
        else:
            lhs_reg = self.reg_of(lhs)
        cmp_mod = _CMP_MOD[instr.cmp]
        if instr.type.is_float:
            self.emit(Opcode.FSETP, (self.vpred(instr.dst), PT),
                      (lhs_reg, self.operand_of(rhs), PT),
                      mods=(cmp_mod, "AND"))
        else:
            sign = "S32" if instr.type.is_signed else "U32"
            self.emit(Opcode.ISETP, (self.vpred(instr.dst), PT),
                      (lhs_reg, self.operand_of(rhs), PT),
                      mods=(cmp_mod, sign, "AND"))

    def _lower_selp(self, block: Block, instr: IRInstr) -> None:
        pred, a, b = instr.srcs
        if instr.dst.type.is_wide:
            raise LoweringError("64-bit select is not supported")
        a_reg = self.reg_of(a) if not isinstance(a, Const) \
            else self.materialize(a)
        self.emit(Opcode.SEL, (self.vreg32(instr.dst),),
                  (a_reg, self.operand_of(b), self.vpred(pred)))

    def _psetp(self, instr: IRInstr, which: str, srcs) -> None:
        self.emit(Opcode.PSETP, (self.vpred(instr.dst), PT), srcs,
                  mods=(which,))

    def _lower_pand(self, block: Block, instr: IRInstr) -> None:
        self._psetp(instr, "AND", (self.vpred(instr.srcs[0]),
                                   self.vpred(instr.srcs[1])))

    def _lower_por(self, block: Block, instr: IRInstr) -> None:
        self._psetp(instr, "OR", (self.vpred(instr.srcs[0]),
                                  self.vpred(instr.srcs[1])))

    def _lower_pnot(self, block: Block, instr: IRInstr) -> None:
        self._psetp(instr, "XOR", (self.vpred(instr.srcs[0]), PT))

    def _lower_cvt(self, block: Block, instr: IRInstr) -> None:
        src = instr.srcs[0]
        src_type = src.type
        dst_type = instr.dst.type
        if src_type.is_float and dst_type.is_float:
            self.emit(Opcode.MOV, (self.vreg32(instr.dst),),
                      (self.reg_of(src),))
        elif src_type.is_float and dst_type.is_integer:
            sign = "S32" if dst_type.is_signed else "U32"
            self.emit(Opcode.F2I, (self.vreg32(instr.dst),),
                      (self.reg_of(src),), mods=("TRUNC", sign))
        elif src_type.is_integer and dst_type.is_float:
            sign = "S32" if src_type.is_signed else "U32"
            self.emit(Opcode.I2F, (self.vreg32(instr.dst),),
                      (self.reg_of(src),), mods=(sign,))
        elif not src_type.is_wide and dst_type.is_wide:
            lo, hi = self.vreg64(instr.dst)
            source = self.reg_of(src)
            self.emit(Opcode.MOV, (lo,), (source,))
            if src_type.is_signed:
                self.emit(Opcode.SHR, (hi,), (source, Imm(31)), mods=("S32",))
            else:
                self.emit(Opcode.MOV, (hi,), (RZ,))
        elif src_type.is_wide and not dst_type.is_wide:
            self.emit(Opcode.MOV, (self.vreg32(instr.dst),),
                      (self.pair_of(src)[0],))
        else:
            self.emit(Opcode.MOV, (self.vreg32(instr.dst),),
                      (self.reg_of(src),))

    # ---- misc

    def _lower_sreg(self, block: Block, instr: IRInstr) -> None:
        from repro.isa.registers import SpecialReg

        name = _SREG_MAP.get(instr.sreg)
        if name is None:
            raise LoweringError(f"unknown special register {instr.sreg!r}")
        self.emit(Opcode.S2R, (self.vreg32(instr.dst),), (SpecialReg(name),))

    def _lower_bar(self, block: Block, instr: IRInstr) -> None:
        self.emit(Opcode.BAR, (), (Imm(0),))

    def _lower_membar(self, block: Block, instr: IRInstr) -> None:
        self.emit(Opcode.MEMBAR, (), (), mods=("GL",))

    # ---- terminators (divergence control lives here)

    def _enclosing_loop_boundaries(self, block: Block) -> Set[str]:
        labels: Set[str] = set()
        for header in block.loops:
            loop = self._loop_by_header.get(header)
            if loop is not None:
                labels.add(loop.header)
                labels.add(loop.exit)
        return labels

    def _lower_br(self, block: Block, instr: IRInstr) -> None:
        target = instr.targets[0]
        if block.label in self._preheaders:
            loop = self._preheaders[block.label]
            if target == loop.header:
                self.emit(Opcode.PBK, (), (LabelRef(loop.exit),))
                self.emit(Opcode.BRA, (), (LabelRef(target),))
                return
        loop = self._loop_by_exit.get(target)
        if loop is not None and loop.header in block.loops:
            self.emit(Opcode.BRK)  # break: park lanes at the PBK target
            return
        self.emit(Opcode.BRA, (), (LabelRef(target),))

    def _lower_cbr(self, block: Block, instr: IRInstr) -> None:
        pred = self.vpred(instr.srcs[0])
        taken, not_taken = instr.targets
        loop = self._loop_by_header.get(block.label)
        if loop is not None and not_taken == loop.exit:
            # Loop-header test: lanes failing the condition break out.
            self.emit(Opcode.BRK, guard=PredGuard(pred, negated=True))
            self.emit(Opcode.BRA, (), (LabelRef(taken),))
            return
        reconv = self._ipdom.get(block.label)
        boundaries = self._enclosing_loop_boundaries(block)
        if reconv is not None and reconv != EXIT_NODE \
                and reconv not in boundaries:
            self.emit(Opcode.SSY, (), (LabelRef(reconv),))
            self._mark_sync(reconv)
        if self._next_block_label(block) == taken:
            # Fall through into the taken block; failing lanes jump away.
            self.emit(Opcode.BRA, (), (LabelRef(not_taken),),
                      guard=PredGuard(pred, negated=True))
        else:
            self.emit(Opcode.BRA, (), (LabelRef(taken),),
                      guard=PredGuard(pred))
            self.emit(Opcode.BRA, (), (LabelRef(not_taken),))

    def _next_block_label(self, block: Block) -> Optional[str]:
        blocks = self.kernel.blocks
        index = blocks.index(block)
        return blocks[index + 1].label if index + 1 < len(blocks) else None

    def _lower_ret(self, block: Block, instr: IRInstr) -> None:
        self.emit(Opcode.EXIT)


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & (1 << 31) else value


def lower_kernel(kernel: KernelIR) -> LoweredKernel:
    """Lower *kernel* to virtual-register SASS."""
    return Lowerer(kernel).lower()
