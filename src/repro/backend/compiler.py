"""The backend compiler driver — the ``ptxas`` analog.

:func:`ptxas` runs the full pipeline and returns a
:class:`~repro.isa.program.SassKernel`.  The ``final_pass`` hook is where
the SASSI injector plugs in (see :mod:`repro.sassi.inject`); it runs after
all code generation, so instrumentation never perturbs the original
schedule or allocation — the paper's central design point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.backend.lowering import LoweringError, lower_kernel
from repro.backend.peephole import drop_branches_to_next
from repro.backend.regalloc import AllocationError, allocate
from repro.isa.instruction import Instruction
from repro.isa.program import KernelParam, SassKernel
from repro.kernelir.ir import KernelIR
from repro.kernelir.verify import verify_kernel


class CompileError(Exception):
    """Compilation failed (lowering or allocation)."""


@dataclass
class CompileOptions:
    """Options for :func:`ptxas`.

    ``final_pass`` mirrors the paper's SASSI hook: a function from
    :class:`SassKernel` to :class:`SassKernel` run as the very last step.
    ``peephole`` can be disabled to inspect raw lowering output.
    """

    peephole: bool = True
    final_pass: Optional[Callable[[SassKernel], SassKernel]] = None


def _package(kernel_ir: KernelIR,
             items: List[Union[str, Instruction]],
             num_regs: int) -> SassKernel:
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    for item in items:
        if isinstance(item, str):
            labels[item] = len(instructions)
        else:
            instructions.append(item)
    params = tuple(
        KernelParam(p.name, kernel_ir.param_offset(p.name), p.type.bytes)
        for p in kernel_ir.params
    )
    kernel = SassKernel(
        name=kernel_ir.name,
        instructions=tuple(instructions),
        labels=labels,
        params=params,
        num_regs=num_regs,
    )
    kernel.validate()
    return kernel


def ptxas(kernel_ir: KernelIR,
          options: Optional[CompileOptions] = None) -> SassKernel:
    """Compile IR to a SASS kernel.

    Raises :class:`CompileError` on lowering/allocation failures.
    """
    options = options or CompileOptions()
    verify_kernel(kernel_ir)
    try:
        lowered = lower_kernel(kernel_ir)
        if options.peephole:
            lowered.items = drop_branches_to_next(lowered.items)
        items, num_regs = allocate(lowered)
    except (LoweringError, AllocationError) as exc:
        raise CompileError(f"{kernel_ir.name}: {exc}") from exc
    kernel = _package(kernel_ir, items, num_regs)
    if options.final_pass is not None:
        kernel = options.final_pass(kernel)
        kernel.validate()
    return kernel
