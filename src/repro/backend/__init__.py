"""The backend compiler (the ``ptxas`` analog).

Pipeline (see :func:`repro.backend.compiler.ptxas`):

1. verify the IR;
2. lower IR to SASS-like instructions over *virtual* registers, inserting
   the divergence-control instructions (``SSY``/``SYNC`` at if-reconvergence
   points computed by immediate-post-dominator analysis, ``PBK``/``BRK``
   for loop exits and breaks);
3. peephole (drop branches to the next instruction);
4. linear-scan register allocation onto ``R0..R254`` (reserving ``R1`` as
   the ABI stack pointer) and ``P0..P6``;
5. package a :class:`~repro.isa.program.SassKernel`.

A caller-supplied *final pass* runs last — this is where SASSI's injector
plugs in, mirroring the paper's design where instrumentation is the final
pass of the production backend and therefore does not disturb earlier code
generation.
"""

from repro.backend.compiler import CompileError, CompileOptions, ptxas

__all__ = ["CompileError", "CompileOptions", "ptxas"]
