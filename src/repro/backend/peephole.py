"""Tiny peephole cleanups on lowered code.

Currently: drop unconditional ``BRA`` instructions whose target is the
immediately following instruction (the builder's structured layout makes
those common: fall-through then-branches, loop-body entries).
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.isa.instruction import Instruction, LabelRef
from repro.isa.opcodes import Opcode


def drop_branches_to_next(items: List[Union[str, Instruction]]
                          ) -> List[Union[str, Instruction]]:
    """Remove ``BRA L`` when ``L`` labels the next instruction."""
    changed = True
    current = items
    while changed:
        changed = False
        result: List[Union[str, Instruction]] = []
        for position, item in enumerate(current):
            if isinstance(item, Instruction) \
                    and item.opcode is Opcode.BRA \
                    and item.guard.is_unconditional:
                target = next(op for op in item.srcs
                              if isinstance(op, LabelRef)).name
                # Does the target label appear before any instruction
                # between here and the next instruction?
                upcoming = current[position + 1:]
                labels_before_next_instr = []
                for follower in upcoming:
                    if isinstance(follower, str):
                        labels_before_next_instr.append(follower)
                    else:
                        break
                if target in labels_before_next_instr:
                    changed = True
                    continue
            result.append(item)
        current = result
    return current
