"""Virtual register operands used between lowering and allocation.

Lowered code uses :class:`VirtGPR`/:class:`VirtPred` wherever final code
uses :class:`~repro.isa.registers.GPR`/``Pred``.  64-bit values occupy the
virtual pair ``(root, root+1)``; the set of paired roots travels alongside
the code so the allocator can assign aligned physical pairs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class VirtGPR:
    """A virtual 32-bit general-purpose register."""

    index: int

    @property
    def is_zero(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"V{self.index}"


@dataclass(frozen=True, order=True)
class VirtPred:
    """A virtual predicate register."""

    index: int

    @property
    def is_true(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"VP{self.index}"
