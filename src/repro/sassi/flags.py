"""``ptxas``-style command-line flags for SASSI.

The paper: "As a practical consideration, the where and the what to
instrument are specified via ptxas command-line arguments."  This module
parses the same flavour of flag strings::

    spec = spec_from_flags(
        "-sassi-inst-before=memory,branches "
        "-sassi-before-args=mem-info,cond-branch-info")
"""

from __future__ import annotations

import shlex
from typing import Iterable, Union

from repro.sassi.spec import InstClass, InstrumentationSpec, What

_CLASSES = {c.value: c for c in InstClass}
_WHATS = {w.value: w for w in What}


class FlagError(ValueError):
    """An unrecognized SASSI flag or value."""


def _parse_classes(value: str) -> frozenset:
    classes = set()
    for token in filter(None, value.split(",")):
        if token not in _CLASSES:
            raise FlagError(
                f"unknown instruction class {token!r} "
                f"(choose from {sorted(_CLASSES)})")
        classes.add(_CLASSES[token])
    return frozenset(classes)


def _parse_whats(value: str) -> frozenset:
    whats = set()
    for token in filter(None, value.split(",")):
        if token not in _WHATS:
            raise FlagError(
                f"unknown argument kind {token!r} "
                f"(choose from {sorted(_WHATS)})")
        whats.add(_WHATS[token])
    return frozenset(whats)


def spec_from_flags(flags: Union[str, Iterable[str]]) -> InstrumentationSpec:
    """Build an :class:`InstrumentationSpec` from flag text."""
    if isinstance(flags, str):
        flags = shlex.split(flags)
    kwargs = {}
    for flag in flags:
        flag = flag.lstrip("-")
        key, _, value = flag.partition("=")
        if key == "sassi-inst-before":
            kwargs["before"] = _parse_classes(value)
        elif key == "sassi-inst-after":
            kwargs["after"] = _parse_classes(value)
        elif key in ("sassi-before-args", "sassi-after-args", "sassi-args"):
            kwargs["what"] = kwargs.get("what", frozenset()) \
                | _parse_whats(value)
        elif key == "sassi-before-handler":
            kwargs["before_handler"] = value
        elif key == "sassi-after-handler":
            kwargs["after_handler"] = value
        elif key == "sassi-writeback-regs":
            kwargs["writeback_registers"] = True
        elif key == "sassi-skip-redundant-spills":
            kwargs["skip_redundant_spills"] = True
        else:
            raise FlagError(f"unknown SASSI flag {key!r}")
    return InstrumentationSpec(**kwargs)
