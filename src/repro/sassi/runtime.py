"""Runtime-adaptable instrumentation: toggle and sample compiled sites.

The PR 5 site plans froze a spec into compiled call sequences; this
module makes those sites cheap to control *after* compilation, without
ever touching the SASS (so the compile cache stays warm):

* :class:`ActiveSiteMask` — an immutable enable/disable set over stable
  site ids (the injector's original-instruction index, recovered from
  the ``bp.id`` constant each :class:`~repro.sassi.abi.SiteSequencePlan`
  bakes into its frame template).  Patching the mask on a controller is
  a pure-Python pointer swap; the plans and the cached kernels are
  untouched.
* :class:`SamplingPolicy` and friends — every-Nth deterministic
  sampling, seeded per-warp / per-CTA sampling, and a
  :class:`TimeBudget` throttle whose initial rate is calibrated from a
  telemetry :class:`~repro.telemetry.attribution.AttributionReport`.
* :class:`AdaptiveController` — installed on a device (``launch()``'s
  executors pick it up), it gates every compiled site firing: weight 0
  skips the whole injected sequence, weight N > 1 fires it with
  ``sample_rate = N`` so handler counters stay unbiased estimators.
* :func:`respec_campaign` — the mid-run re-spec pattern: a campaign
  flips a :class:`~repro.sassi.spec.SpecDelta` halfway through its
  trials; because specs are content-addressed, the compile cache is
  exercised with deltas (each spec compiles once per process) rather
  than full recompiles, and site numbering is invariant across specs.

Skipped firings do not vanish: the executor accounts them under the
``sassi.sampled_skipped`` telemetry counter, which the overhead
attribution report folds back in so its instruction buckets still sum
exactly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.sassi.spec import SpecDelta

_M64 = (1 << 64) - 1

#: site-count campaigns default to instrumenting every instruction
DEFAULT_RESPEC_FLAGS = "-sassi-inst-before=all"


def _splitmix64(x: int) -> int:
    """One splitmix64 step — the deterministic hash behind seeded
    per-warp/per-CTA selection (never Python's randomized ``hash``)."""
    x = (x + 0x9E3779B97F4A7C15) & _M64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return (z ^ (z >> 31)) & _M64


def _mix(seed: int, *values: int) -> int:
    h = _splitmix64(seed & _M64)
    for value in values:
        h = _splitmix64(h ^ (value & _M64))
    return h


class ActiveSiteMask:
    """An immutable set of *disabled* site ids (everything else fires).

    Value semantics make the algebra easy to reason about (and to
    property-test): ``enable``/``disable`` return new masks, masks
    compare and hash by their disabled set, and
    ``mask.enable(s).disable(s)`` round-trips back to ``mask.disable(s)``
    regardless of history.
    """

    __slots__ = ("_disabled",)

    def __init__(self, disabled: Iterable[int] = ()):
        self._disabled: FrozenSet[int] = frozenset(int(s) for s in disabled)

    @property
    def disabled(self) -> FrozenSet[int]:
        return self._disabled

    def enabled(self, site_id: int) -> bool:
        return site_id not in self._disabled

    def enable(self, site_ids: Iterable[int]) -> "ActiveSiteMask":
        return ActiveSiteMask(self._disabled - frozenset(
            int(s) for s in site_ids))

    def disable(self, site_ids: Iterable[int]) -> "ActiveSiteMask":
        return ActiveSiteMask(self._disabled | frozenset(
            int(s) for s in site_ids))

    def __eq__(self, other) -> bool:
        return isinstance(other, ActiveSiteMask) \
            and self._disabled == other._disabled

    def __hash__(self) -> int:
        return hash(self._disabled)

    def __repr__(self) -> str:
        if not self._disabled:
            return "ActiveSiteMask(all enabled)"
        return f"ActiveSiteMask(disabled={sorted(self._disabled)})"


#: the default mask: every site enabled
ALL_SITES = ActiveSiteMask()


class SamplingPolicy:
    """Base policy: every firing fires exactly (weight 1)."""

    #: True when the executor should time each firing and feed
    #: :meth:`observe_fire` (only the throttle needs this).
    wants_timing = False

    def begin_launch(self, kernel) -> None:
        """Called at each kernel launch (state carries across launches
        by default — campaign-level policies want that)."""

    def weight(self, site_key: int, warp, cta) -> int:
        """The sampling weight of this firing: 0 skips the site, N >= 1
        fires it standing in for N firings."""
        return 1

    def observe_fire(self, seconds: float) -> None:
        """Wall-clock feedback for one fired site (timing policies)."""


class EveryNth(SamplingPolicy):
    """Deterministic 1/N sampling: per site, firing ``k`` fires iff
    ``k % n == phase`` — fully reproducible, no seed involved."""

    def __init__(self, n: int, phase: int = 0):
        if n < 1:
            raise ValueError(f"sampling period must be >= 1, got {n}")
        self.n = int(n)
        self.phase = int(phase) % self.n
        self._counts: Dict[int, int] = {}

    def weight(self, site_key: int, warp, cta) -> int:
        count = self._counts.get(site_key, 0)
        self._counts[site_key] = count + 1
        return self.n if count % self.n == self.phase else 0

    def __repr__(self) -> str:
        return f"EveryNth(n={self.n}, phase={self.phase})"


class PerWarp(SamplingPolicy):
    """Seeded 1/N warp sampling: a warp is either fully instrumented
    (every site firing in it fires, weight N) or fully dark.  Selection
    hashes ``(seed, ctaid, warp_id)`` with splitmix64, so it is
    deterministic for a given seed and uniform across warps.

    ``phase`` selects which of the N hash-residue classes fires; the N
    phases partition the warps exactly, so averaging estimates over all
    phases recovers the exact count identically (the estimator's
    full-rate limit — what the statistical suite asserts)."""

    def __init__(self, n: int, seed: int = 0, phase: int = 0):
        if n < 1:
            raise ValueError(f"sampling period must be >= 1, got {n}")
        self.n = int(n)
        self.seed = int(seed)
        self.phase = int(phase) % self.n

    def weight(self, site_key: int, warp, cta) -> int:
        if self.n == 1:
            return 1
        cx, cy, cz = warp.ctaid
        selected = (_mix(self.seed, cx, cy, cz, warp.warp_id) % self.n
                    == self.phase)
        return self.n if selected else 0

    def __repr__(self) -> str:
        return f"PerWarp(n={self.n}, seed={self.seed}, phase={self.phase})"


class PerCTA(SamplingPolicy):
    """Seeded 1/N CTA sampling: whole thread blocks are selected.

    As with :class:`PerWarp`, ``phase`` picks a hash-residue class and
    the N phases partition the CTAs exactly."""

    def __init__(self, n: int, seed: int = 0, phase: int = 0):
        if n < 1:
            raise ValueError(f"sampling period must be >= 1, got {n}")
        self.n = int(n)
        self.seed = int(seed)
        self.phase = int(phase) % self.n

    def weight(self, site_key: int, warp, cta) -> int:
        if self.n == 1:
            return 1
        cx, cy, cz = cta.ctaid
        selected = _mix(self.seed, cx, cy, cz) % self.n == self.phase
        return self.n if selected else 0

    def __repr__(self) -> str:
        return f"PerCTA(n={self.n}, seed={self.seed}, phase={self.phase})"


class TimeBudget(SamplingPolicy):
    """Throttle instrumentation to a wall-clock budget.

    Fires every ``period``-th firing (weight = period, so counters stay
    scaled estimates) and adapts the period multiplicatively: once the
    measured handler time crosses the budget the period doubles per
    decision until instrumentation is effectively dark (the budget is a
    hard ceiling — fidelity of the estimates is sacrificed, by design;
    use :class:`EveryNth`/:class:`PerWarp` when unbiased estimates
    matter more than the wall clock).  Under half the budget the period
    leans back in (÷2 per observation window).  :meth:`calibrate` seeds
    the initial period from an overhead-attribution report — the
    telemetry feedback signal: if the full-rate instrumentation
    overhead cost X seconds and the budget is B, start at 1/ceil(X/B).
    """

    wants_timing = True

    def __init__(self, budget_ms: float, window: int = 64,
                 min_period: int = 1, max_period: int = 4096):
        if budget_ms <= 0:
            raise ValueError(f"budget must be positive, got {budget_ms}")
        self.budget_s = budget_ms / 1000.0
        self.window = max(1, int(window))
        self.min_period = max(1, int(min_period))
        self.max_period = max(self.min_period, int(max_period))
        self.period = self.min_period
        self.spent = 0.0
        self.fired = 0
        self._count = 0
        self._anchor = 0
        self._window_fires = 0

    def calibrate(self, report) -> int:
        """Seed the period from an
        :class:`~repro.telemetry.attribution.AttributionReport`."""
        overhead = sum(seconds for bucket, seconds
                       in report.wall_buckets.items()
                       if bucket != "baseline")
        period = 1
        if overhead > self.budget_s:
            period = int(overhead / self.budget_s) + 1
        self.period = min(max(period, self.min_period), self.max_period)
        return self.period

    def weight(self, site_key: int, warp, cta) -> int:
        count = self._count
        self._count = count + 1
        if self.spent >= self.budget_s and self.period < self.max_period:
            # over budget: double the period per decision (skipping this
            # one) until the backoff ceiling; re-anchor so the new
            # cadence starts cleanly at the next decision
            self.period = min(self.period * 2, self.max_period)
            self._anchor = count + 1
            return 0
        return self.period \
            if (count - self._anchor) % self.period == 0 else 0

    def observe_fire(self, seconds: float) -> None:
        self.spent += seconds
        self.fired += 1
        self._window_fires += 1
        if self._window_fires < self.window:
            return
        self._window_fires = 0
        if self.spent < self.budget_s / 2 and self.period > self.min_period:
            self.period = max(self.period // 2, self.min_period)

    def __repr__(self) -> str:
        return (f"TimeBudget(budget_ms={self.budget_s * 1000:g}, "
                f"period={self.period}, spent={self.spent:.4f}s)")


def parse_sampling(text: str) -> Optional[SamplingPolicy]:
    """Parse a ``--sample`` flag value.

    Grammar: ``nth:N[,PHASE]`` | ``warp:N[,SEED]`` | ``cta:N[,SEED]``
    | ``none``.  Raises ``ValueError`` on anything else.
    """
    text = text.strip().lower()
    if text in ("", "none", "off", "1", "1/1"):
        return None
    kind, sep, rest = text.partition(":")
    if not sep:
        raise ValueError(
            f"bad --sample value {text!r} (want kind:N, e.g. nth:16)")
    parts = rest.split(",")
    try:
        numbers = [int(p, 0) for p in parts]
    except ValueError:
        raise ValueError(f"bad --sample numbers in {text!r}") from None
    if not 1 <= len(numbers) <= 2:
        raise ValueError(f"bad --sample value {text!r}")
    n = numbers[0]
    extra = numbers[1] if len(numbers) == 2 else 0
    if kind == "nth":
        return EveryNth(n, phase=extra)
    if kind == "warp":
        return PerWarp(n, seed=extra)
    if kind == "cta":
        return PerCTA(n, seed=extra)
    raise ValueError(f"unknown --sample kind {kind!r} "
                     "(want nth, warp, or cta)")


class AdaptiveController:
    """Gates every compiled site firing on a device.

    Install with :meth:`install`; every executor the device launches
    picks it up (``Executor.run`` re-reads ``device.adaptive``).  The
    controller combines an :class:`ActiveSiteMask` (which sites may fire
    at all) with a :class:`SamplingPolicy` (how often an enabled site
    fires), counts fired/skipped/weighted firings per site, and applies
    scheduled mask patches mid-kernel — at the next site boundary, since
    ``decide`` runs exactly at superblock/plan boundaries.

    Only plan-compiled sites are gated: an injected sequence the plan
    compiler could not match stays on the per-instruction path and
    always fires (a documented limitation, not a correctness hazard —
    sampling is an optimization, never a semantic change).
    """

    def __init__(self, mask: ActiveSiteMask = ALL_SITES,
                 sampling: Optional[SamplingPolicy] = None):
        self.mask = mask
        self.sampling = sampling if sampling is not None else SamplingPolicy()
        #: bumped on every mask/sampling change (plan caches, debugging)
        self.generation = 0
        self.total_firings = 0
        self.fired: Counter = Counter()
        self.skipped: Counter = Counter()
        #: per-site sum of applied weights — the unbiased estimate of
        #: the exact firing count
        self.weighted: Counter = Counter()
        #: (due_at_total_firings, enable, disable), sorted by due time
        self._scheduled: List[Tuple[int, tuple, tuple]] = []

    # ----------------------------------------------------- installation

    def install(self, device) -> "AdaptiveController":
        device.adaptive = self
        return self

    def uninstall(self, device) -> None:
        if getattr(device, "adaptive", None) is self:
            device.adaptive = None

    # --------------------------------------------------------- toggling

    def toggle(self, enable: Iterable[int] = (),
               disable: Iterable[int] = ()) -> ActiveSiteMask:
        """Patch the active-site mask in place (never the SASS)."""
        self.mask = self.mask.enable(enable).disable(disable)
        self.generation += 1
        return self.mask

    def schedule_toggle(self, after_firings: int,
                        enable: Iterable[int] = (),
                        disable: Iterable[int] = ()) -> None:
        """Apply a mask patch once ``after_firings`` total site firings
        have been decided — the mid-kernel re-spec hook (takes effect at
        the next site boundary after the threshold)."""
        entry = (self.total_firings + max(0, int(after_firings)),
                 tuple(enable), tuple(disable))
        self._scheduled.append(entry)
        self._scheduled.sort(key=lambda e: e[0])

    def set_sampling(self, sampling: Optional[SamplingPolicy]) -> None:
        self.sampling = sampling if sampling is not None else SamplingPolicy()
        self.generation += 1

    # -------------------------------------------------- executor hooks

    @property
    def wants_timing(self) -> bool:
        return self.sampling.wants_timing

    def begin_launch(self, kernel) -> None:
        self.sampling.begin_launch(kernel)

    def observe_fire(self, seconds: float) -> None:
        self.sampling.observe_fire(seconds)

    @staticmethod
    def site_key(plan) -> int:
        """The stable id a plan is gated by.  Plans that carried no
        recoverable ``bp.id`` constant fall back to a key derived from
        their position (negative, so it can never collide with a real
        site id)."""
        site_id = plan.site_id
        return site_id if site_id is not None else -plan.start - 1

    def decide(self, plan, warp, cta) -> int:
        """The executor's gate: 0 skips the site, N fires it at rate N."""
        self.total_firings += 1
        if self._scheduled \
                and self._scheduled[0][0] <= self.total_firings:
            due, enable, disable = self._scheduled.pop(0)
            self.toggle(enable=enable, disable=disable)
        key = plan.site_id
        if key is None:
            key = -plan.start - 1
        if key not in self.mask.disabled:
            weight = self.sampling.weight(key, warp, cta)
        else:
            weight = 0
        if weight:
            self.fired[key] += 1
            self.weighted[key] += weight
        else:
            self.skipped[key] += 1
        return weight

    # ---------------------------------------------------------- report

    def estimates(self) -> Dict[int, int]:
        """Per-site unbiased estimates of the exact firing counts."""
        return dict(self.weighted)

    def summary(self) -> Dict[str, int]:
        return {
            "total_firings": self.total_firings,
            "fired": sum(self.fired.values()),
            "skipped": sum(self.skipped.values()),
            "estimated_firings": sum(self.weighted.values()),
        }


# --------------------------------------------------------------------
# mid-run re-spec campaigns
# --------------------------------------------------------------------

#: per-process compile cache for re-spec campaigns: base spec and
#: delta-applied spec each compile at most once per worker, so a
#: re-spec costs one incremental compile, never a recompile storm.
_RESPEC_CACHE = None


def _respec_cache():
    global _RESPEC_CACHE
    if _RESPEC_CACHE is None:
        from repro.campaign.compile_cache import CompileCache

        _RESPEC_CACHE = CompileCache()
    return _RESPEC_CACHE


class SiteCountProfiler:
    """Minimal handler counting firings per stable site id.

    Uses ``bp.GetID()`` (the frame's baked site id) and scales by the
    context's ``sample_rate``, so its counts are directly comparable
    across exact, sampled, and re-specced runs.
    """

    def __init__(self, device):
        from repro.sassi.handlers import SassiRuntime

        self.device = device
        self.counts: Counter = Counter()
        self.runtime = SassiRuntime(device)
        self.runtime.register_before_handler(self.handler)

    def handler(self, ctx) -> None:
        self.counts[int(ctx.bp.GetID())] += ctx.sample_rate


@dataclass
class RespecTrialResult:
    """One trial's observation (picklable; workers return these)."""

    trial: int
    respecced: bool
    counts: Dict[int, int]
    site_ids: Tuple[int, ...]
    cache_hits: int
    cache_misses: int


@dataclass
class RespecResult:
    """A full re-spec campaign: merged counts and the invariants."""

    workload: str
    trials: int
    switch_at: int
    merged_counts: Dict[int, int] = field(default_factory=dict)
    base_site_ids: Tuple[int, ...] = ()
    respec_site_ids: Tuple[int, ...] = ()
    compile_misses: int = 0
    compile_hits: int = 0

    def common_site_ids(self) -> Tuple[int, ...]:
        """Sites instrumented under both specs — by the PR 3 invariant
        they carry the same ids before and after the re-spec."""
        common = set(self.base_site_ids) & set(self.respec_site_ids)
        return tuple(sorted(common))


def _respec_trial(task) -> RespecTrialResult:
    """One campaign trial (module-level: picklable for ``--jobs N``)."""
    from repro.campaign.compile_cache import cached_sassi_compile
    from repro.sassi.flags import spec_from_flags
    from repro.sim import Device
    from repro.workloads import make

    name, flags, delta, trial = task
    workload = make(name)
    device = Device()
    profiler = SiteCountProfiler(device)
    spec = spec_from_flags(flags)
    respecced = delta is not None
    if respecced:
        spec = delta.apply(spec)
    cache = _respec_cache()
    hits0, misses0 = cache.stats.hits, cache.stats.misses
    kernel = cached_sassi_compile(profiler.runtime, workload.build_ir(),
                                  spec, cache=cache)
    workload.execute(device, kernel)
    report = profiler.runtime.reports[-1]
    site_ids = tuple(sorted(set(report.before_site_ids)
                            | set(report.after_site_ids)))
    return RespecTrialResult(
        trial=trial,
        respecced=respecced,
        counts=dict(profiler.counts),
        site_ids=site_ids,
        cache_hits=cache.stats.hits - hits0,
        cache_misses=cache.stats.misses - misses0,
    )


def respec_campaign(workload: str,
                    flags: str = DEFAULT_RESPEC_FLAGS,
                    delta: Optional[SpecDelta] = None,
                    trials: int = 8,
                    switch_at: Optional[int] = None,
                    jobs: int = 1) -> RespecResult:
    """Run *trials* trials of the site-count profiler over *workload*;
    from trial *switch_at* on, the spec delta is applied (a running
    campaign picking up a re-spec).  Merging is order-independent
    (plain counter addition over task-ordered results), so serial and
    ``jobs=N`` runs produce identical :class:`RespecResult`\\ s.
    """
    from repro.campaign.engine import run_tasks

    if delta is None:
        delta = SpecDelta()
    if switch_at is None:
        switch_at = trials // 2
    tasks = [(workload, flags, delta if index >= switch_at else None, index)
             for index in range(trials)]
    results = run_tasks(_respec_trial, tasks, jobs=jobs)

    merged: Counter = Counter()
    base_ids: Tuple[int, ...] = ()
    respec_ids: Tuple[int, ...] = ()
    hits = misses = 0
    for result in results:
        merged.update(result.counts)
        hits += result.cache_hits
        misses += result.cache_misses
        if result.respecced:
            respec_ids = result.site_ids
        else:
            base_ids = result.site_ids
    return RespecResult(
        workload=workload,
        trials=trials,
        switch_at=switch_at,
        merged_counts=dict(sorted(merged.items())),
        base_site_ids=base_ids,
        respec_site_ids=respec_ids,
        compile_hits=hits,
        compile_misses=misses,
    )
