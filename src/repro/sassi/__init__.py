"""SASSI — the paper's contribution: selective SASS-level instrumentation.

The pieces mirror the paper's Section 3:

* :mod:`repro.sassi.spec` — *where* to instrument (before/after × opcode
  class) and *what* to marshal to the handler (memory info, conditional-
  branch info, register info).
* :mod:`repro.sassi.flags` — the ``ptxas`` command-line flag syntax for
  the above (``-sassi-inst-before=memory,branches ...``).
* :mod:`repro.sassi.params` — the parameter objects (byte layouts in
  thread-local memory + accessor views): ``SASSIBeforeParams``,
  ``SASSIMemoryParams``, ``SASSICondBranchParams``, ``SASSIRegisterParams``.
* :mod:`repro.sassi.abi` — generation of the ABI-compliant call sequence
  (stack allocation, live-register/predicate/carry spills, parameter
  marshaling, the ``JCAL``, restores) — the paper's Figure 2.
* :mod:`repro.sassi.inject` — the instrumentation pass, run as the final
  backend pass.
* :mod:`repro.sassi.handlers` — the handler runtime: a registry binding
  handler names to Python callables executed at the ``JCAL`` (warp-level
  or lock-step thread-level), with the intrinsics the paper's handlers
  use (``__ballot``, ``__popc``, ``__ffs``, ``__shfl``, ``atomicAdd``...).
* :mod:`repro.sassi.cupti` — launch/exit callbacks and device↔host
  counter marshaling (paper Section 3.3).
* :mod:`repro.sassi.runtime` — runtime-adaptable instrumentation:
  active-site masks, sampling policies, the adaptive controller, and
  mid-run re-spec campaigns (no recompilation involved).
"""

from repro.sassi.spec import (
    InstClass,
    InstrumentationSpec,
    SpecDelta,
    What,
    Where,
)
from repro.sassi.flags import spec_from_flags
from repro.sassi.handlers import SassiRuntime, ThreadHandlerError
from repro.sassi.inject import instrument_kernel

__all__ = [
    "InstClass",
    "InstrumentationSpec",
    "SpecDelta",
    "What",
    "Where",
    "spec_from_flags",
    "SassiRuntime",
    "ThreadHandlerError",
    "instrument_kernel",
]
