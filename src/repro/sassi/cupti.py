"""CUPTI analog: kernel launch/exit callbacks + counter marshaling.

The paper (Section 3.3): "we use CUPTI to initialize counters on kernel
launch and copy counters off the device on kernel exits ...
``cudaMemcpy`` serializes kernel invocations, preventing race conditions
on the counters."  This module provides the same protocol:

* :class:`CuptiSubscription` — subscribe callables to launch/exit events;
* :class:`CounterBuffer` — a device-resident counter array zeroed at
  launch and snapshotted (and optionally host-aggregated) at exit;
* :class:`DeviceHashTable` — an open-addressed device-memory hash table
  keyed by instruction address, the structure behind the paper's
  per-branch statistics (Figure 4's ``find()``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.device import Device
from repro.sim.executor import KernelStats


class CuptiSubscription:
    """Launch/exit callback registry bound to one device."""

    def __init__(self, device: Device):
        self.device = device
        self._on_launch: List[Callable] = []
        self._on_exit: List[Callable] = []
        device.on_kernel_launch(self._launch)
        device.on_kernel_exit(self._exit)

    def on_kernel_launch(self, fn: Callable) -> None:
        self._on_launch.append(fn)

    def on_kernel_exit(self, fn: Callable) -> None:
        self._on_exit.append(fn)

    def _launch(self, device, kernel, grid, block) -> None:
        for fn in self._on_launch:
            fn(device, kernel, grid, block)

    def _exit(self, device, kernel, stats: KernelStats) -> None:
        for fn in self._on_exit:
            fn(device, kernel, stats)


@dataclass
class KernelRecord:
    """One kernel invocation's marshalled counters."""

    kernel: str
    invocation: int
    counters: np.ndarray


class CounterBuffer:
    """A device-side counter array with CUPTI-style marshaling.

    On every kernel launch the buffer is zeroed with ``cudaMemcpy``
    semantics; on exit it is copied to the host, recorded per invocation,
    and accumulated into ``totals``.
    """

    def __init__(self, subscription: CuptiSubscription, count: int,
                 dtype=np.uint64, per_kernel: bool = True):
        self.device = subscription.device
        self.count = count
        self.dtype = np.dtype(dtype)
        self.device_ptr = self.device.alloc(count * self.dtype.itemsize)
        self.totals = np.zeros(count, dtype=self.dtype)
        self.records: List[KernelRecord] = []
        self._per_kernel = per_kernel
        self._invocations = 0
        subscription.on_kernel_launch(self._zero)
        subscription.on_kernel_exit(self._collect)

    def _zero(self, device, kernel, grid, block) -> None:
        if self._per_kernel:
            device.memset(self.device_ptr, 0,
                          self.count * self.dtype.itemsize)

    def _collect(self, device, kernel, stats) -> None:
        snapshot = device.read_array(self.device_ptr, self.count, self.dtype)
        self.records.append(KernelRecord(kernel.name, self._invocations,
                                         snapshot))
        self._invocations += 1
        if self._per_kernel:
            self.totals += snapshot

    def element_ptr(self, index: int) -> int:
        return self.device_ptr + index * self.dtype.itemsize

    def final_totals(self) -> np.ndarray:
        """Whole-program totals (aggregated if per-kernel, else the
        current device contents)."""
        if self._per_kernel:
            return self.totals.copy()
        return self.device.read_array(self.device_ptr, self.count,
                                      self.dtype)


class DeviceHashTable:
    """Open-addressed hash table in device global memory.

    Entry layout: ``key (8 bytes) | counters[num_counters] (8 bytes
    each)``.  Lookup inserts on miss (the Figure 4 handler's "create a
    new entry if one does not exist").  Handlers update counters through
    context atomics so all traffic goes through simulated device memory.
    """

    def __init__(self, device: Device, capacity: int = 1024,
                 num_counters: int = 5):
        self.device = device
        self.capacity = capacity
        self.num_counters = num_counters
        self.entry_bytes = 8 * (1 + num_counters)
        self.device_ptr = device.alloc(capacity * self.entry_bytes)
        device.memset(self.device_ptr, 0, capacity * self.entry_bytes)

    def clear(self) -> None:
        self.device.memset(self.device_ptr, 0,
                           self.capacity * self.entry_bytes)

    def _entry_ptr(self, slot: int) -> int:
        return self.device_ptr + slot * self.entry_bytes

    def find(self, ctx, key: int) -> int:
        """Device address of the counter block for *key* (insert on
        miss).  *ctx* supplies device-memory access."""
        key = int(key) | (1 << 63)  # tag so key 0 != empty
        slot = (key * 0x9E3779B97F4A7C15 >> 32) % self.capacity
        for probe in range(self.capacity):
            entry = self._entry_ptr((slot + probe) % self.capacity)
            stored = ctx.read_device(entry, 8)
            if stored == key:
                return entry + 8
            if stored == 0:
                ctx.write_device(entry, key, 8)
                return entry + 8
        raise RuntimeError("device hash table is full")

    def counter_ptr(self, entry_counters: int, index: int) -> int:
        return entry_counters + 8 * index

    def items(self) -> List[Tuple[int, np.ndarray]]:
        """Host-side drain: (key, counters) for every occupied entry."""
        raw = self.device.read_array(self.device_ptr,
                                     self.capacity * (1 + self.num_counters),
                                     np.uint64).reshape(
                                         self.capacity, 1 + self.num_counters)
        result = []
        for row in raw:
            if row[0]:
                key = int(row[0]) & ~(1 << 63)
                result.append((key, row[1:].copy()))
        return result
