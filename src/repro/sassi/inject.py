"""The SASSI instrumentation pass.

Runs as the backend's *final pass* (paper Section 3.1): the original
instructions are not modified, reordered, or re-allocated — the pass only
interleaves ABI call sequences at the selected sites.  Liveness analysis
on the final SASS decides what each site must spill (Figure 2's "the
compiler knows exactly which registers to spill").

The pass also:

* places a kernel label's instrumentation *before* the labelled
  instruction, so branch targets execute their site's instrumentation;
* patches ``insOffset`` fields and branch-target offsets to post-injection
  byte offsets once the final layout is known;
* implements the ``skip_redundant_spills`` ablation (Section 9.1): within
  a basic block, a register already spilled at an earlier site and not
  redefined since is not re-spilled.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.analysis import compute_liveness
from repro.isa.encoding import EncodingError, encode_instruction
from repro.isa.instruction import Imm, Instruction, LabelRef
from repro.isa.opcodes import Opcode
from repro.isa.program import INSTRUCTION_BYTES, SassKernel
from repro.sassi.abi import (
    CALLER_SAVED,
    PATCH_TARGET_BASE,
    SiteRequest,
    build_call_sequence,
    frame_parts,
)
from repro.sassi.spec import InstrumentationSpec, What, Where


@dataclass
class InjectionReport:
    """What the pass did (useful for tests and the overhead study)."""

    kernel: str = ""
    before_sites: int = 0
    after_sites: int = 0
    injected_instructions: int = 0
    max_frame_bytes: int = 0
    spills_emitted: int = 0
    spills_skipped: int = 0
    #: stable site ids, in emission order (the original instruction index
    #: of each site — the cross-spec numbering invariant re-spec relies on)
    before_site_ids: List[int] = field(default_factory=list)
    after_site_ids: List[int] = field(default_factory=list)


def instrument_kernel(
    kernel: SassKernel,
    spec: InstrumentationSpec,
    resolve_handler,
    fn_addr: Optional[int] = None,
    report: Optional[InjectionReport] = None,
) -> SassKernel:
    """Instrument *kernel* per *spec*.

    ``resolve_handler(name) -> int`` supplies trampoline addresses (the
    linker's job).  ``fn_addr`` is the kernel's load address if already
    known (stored into every site's ``fnAddr`` field).
    """
    if report is None:
        report = InjectionReport()
    report.kernel = kernel.name
    liveness = compute_liveness(kernel)
    label_ids = {name: index for index, name in
                 enumerate(sorted(kernel.labels))}
    fn_addr = fn_addr if fn_addr is not None else kernel.base_address

    label_at: Dict[int, List[str]] = {}
    for name, index in kernel.labels.items():
        label_at.setdefault(index, []).append(name)
    block_leaders = _block_leaders(kernel)

    new_instructions: List[Instruction] = []
    new_labels: Dict[str, int] = {}
    #: original index -> index of the original instruction in the new list
    position_of: Dict[int, int] = {}
    spilled_valid: Set[int] = set()

    before_addr = resolve_handler(spec.before_handler) if spec.before else 0
    after_addr = resolve_handler(spec.after_handler) if spec.after else 0

    for index, instr in enumerate(kernel.instructions):
        if index in block_leaders:
            spilled_valid.clear()
        for name in label_at.get(index, ()):
            new_labels[name] = len(new_instructions)

        if spec.instruments_before(instr):
            seq = _site_sequence(kernel, spec, instr, index, Where.BEFORE,
                                 liveness.gpr_in[index], before_addr,
                                 fn_addr, label_ids, spilled_valid, report)
            report.before_sites += 1
            report.before_site_ids.append(index)
            new_instructions.extend(seq)

        position_of[index] = len(new_instructions)
        new_instructions.append(instr)
        for reg in instr.gpr_defs():
            spilled_valid.discard(reg.index)
        if instr.is_control_xfer or instr.opcode is Opcode.JCAL:
            spilled_valid.clear()

        if spec.instruments_after(instr):
            seq = _site_sequence(kernel, spec, instr, index, Where.AFTER,
                                 liveness.gpr_out[index], after_addr,
                                 fn_addr, label_ids, spilled_valid, report)
            report.after_sites += 1
            report.after_site_ids.append(index)
            new_instructions.extend(seq)

    for name, index in kernel.labels.items():
        if index >= len(kernel.instructions):
            new_labels[name] = len(new_instructions)

    patched = _patch_offsets(new_instructions, position_of)
    report.injected_instructions = len(patched) - len(kernel.instructions)
    return replace(
        kernel,
        instructions=tuple(patched),
        labels=new_labels,
        num_regs=max(kernel.num_regs, 8),
        frame_bytes=max(kernel.frame_bytes, report.max_frame_bytes),
    )


def _block_leaders(kernel: SassKernel) -> Set[int]:
    leaders: Set[int] = {0}
    leaders.update(kernel.labels.values())
    for index, instr in enumerate(kernel.instructions):
        if instr.is_control_xfer:
            leaders.add(index + 1)
    return leaders


def _site_sequence(kernel, spec, instr, index, where, live, handler_addr,
                   fn_addr, label_ids, spilled_valid: Set[int],
                   report: InjectionReport) -> List[Instruction]:
    try:
        encoding_low = encode_instruction(instr, label_ids)[0] & 0xFFFFFFFF
    except EncodingError:
        encoding_low = instr.opcode.value
    target_index: Optional[int] = None
    if instr.is_control_xfer:
        for operand in instr.srcs:
            if isinstance(operand, LabelRef):
                target_index = kernel.label_target(operand.name)
    already = frozenset(spilled_valid) if spec.skip_redundant_spills \
        else frozenset()
    request = SiteRequest(
        instr=instr,
        site_id=index,
        where=where,
        fn_addr=fn_addr,
        encoding_low=encoding_low,
        live_gprs=tuple(sorted(live)),
        handler_addr=handler_addr,
        spec=spec,
        original_target_index=target_index,
        already_spilled=already,
    )
    seq = build_call_sequence(request)
    layout, _, _, _ = frame_parts(spec, instr, where)
    report.max_frame_bytes = max(report.max_frame_bytes, layout[3])
    spill_set = {r for r in live if r in CALLER_SAVED}
    report.spills_emitted += len(spill_set - set(already))
    report.spills_skipped += len(spill_set & set(already))
    if spec.skip_redundant_spills:
        spilled_valid |= spill_set
    return seq


def _patch_offsets(instructions: List[Instruction],
                   position_of: Dict[int, int]) -> List[Instruction]:
    """Rewrite PATCH_TARGET_BASE immediates to final byte offsets.

    ``PATCH_TARGET_BASE - 1`` means "the offset of the next original
    instruction after this point" (the site's own insOffset);
    ``PATCH_TARGET_BASE + k`` means "the final offset of original
    instruction k" (branch-target offsets).
    """
    new_index_of = position_of
    result: List[Instruction] = []
    for position, instr in enumerate(instructions):
        patched = instr
        new_srcs = None
        for slot, operand in enumerate(instr.srcs):
            if isinstance(operand, Imm) \
                    and PATCH_TARGET_BASE - 2 <= operand.value \
                    < PATCH_TARGET_BASE + 0x800000:
                if operand.value == PATCH_TARGET_BASE - 1:
                    target = _next_original(position, instructions)
                elif operand.value == PATCH_TARGET_BASE - 2:
                    target = _prev_original(position, instructions)
                else:
                    target = new_index_of.get(
                        operand.value - PATCH_TARGET_BASE, 0)
                new_value = target * INSTRUCTION_BYTES
                srcs = list(patched.srcs if new_srcs is None else new_srcs)
                srcs[slot] = Imm(new_value)
                new_srcs = srcs
        if new_srcs is not None:
            patched = replace(patched, srcs=tuple(new_srcs))
        result.append(patched)
    return result


def _next_original(position: int, instructions: List[Instruction]) -> int:
    for candidate in range(position, len(instructions)):
        if instructions[candidate].tag != "sassi":
            return candidate
    return position


def _prev_original(position: int, instructions: List[Instruction]) -> int:
    for candidate in range(position, -1, -1):
        if instructions[candidate].tag != "sassi":
            return candidate
    return position
