"""ABI-compliant call-sequence generation (the paper's Figure 2).

For each instrumentation site the injector emits, in order:

1. stack allocation (``IADD R1, R1, -frame``);
2. spills of live caller-saved GPRs into ``bp.GPRSpill`` (slot = register
   number), the predicate file via ``P2R``/``STL``, and the carry flag
   (read with ``IADD.X R2, RZ, RZ``);
3. initialization of the ``SASSIBeforeParams`` fields (site id, fnAddr,
   insOffset, insEncoding, per-thread ``instrWillExecute`` computed with
   the guarded ``@P IADD R4, RZ, 0x1 / @!P IADD R4, RZ, 0x0`` pair exactly
   as in Figure 2);
4. marshaling of the requested extra parameter objects (memory address
   pair + properties/width/domain; branch direction; destination-register
   numbers and values);
5. the generic-pointer arguments: ``LOP.OR R4, R1, c[0x0][0x24]`` /
   ``IADD R5, RZ, 0x0`` for ``bp`` and the same plus ``+0x60`` in
   ``R6/R7`` for the extra object, per the compute ABI;
6. ``JCAL <handler>``;
7. restores (predicates, carry, spilled GPRs, optional register
   write-back) and stack release.

Every emitted instruction carries ``tag="sassi"`` so it is never itself
instrumented and so the simulator can attribute overhead precisely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.isa.instruction import (
    ConstRef,
    Imm,
    Instruction,
    MemRef,
    MemSpace,
    PredGuard,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import STACK_BASE_OFFSET
from repro.isa.registers import GPR, PT, RZ, Pred
from repro.sassi import params as P
from repro.sassi.spec import InstrumentationSpec, What, Where
from repro.sim.memory import SHARED_BASE

#: Caller-saved registers a ≤16-register handler may clobber (R1 is the
#: stack pointer and is callee-preserved by construction).
CALLER_SAVED = frozenset(r for r in range(16) if r != 1)

#: Branch-target offsets are patched after the whole kernel is rebuilt;
#: until then they are encoded as PATCH_TARGET_BASE + original index.
PATCH_TARGET_BASE = 0x7E000000


@dataclass(frozen=True)
class SiteRequest:
    """Everything the sequence generator needs for one site."""

    instr: Instruction
    site_id: int
    where: Where
    fn_addr: int
    encoding_low: int
    live_gprs: Tuple[int, ...]        # live register numbers at the site
    handler_addr: int
    spec: InstrumentationSpec
    original_target_index: Optional[int] = None  # for branch sites
    already_spilled: frozenset = frozenset()


def _sassi(opcode, dsts=(), srcs=(), mods=(), guard=PredGuard()):
    return Instruction(opcode=opcode, dsts=tuple(dsts), srcs=tuple(srcs),
                       mods=tuple(mods), guard=guard, tag="sassi")


def _stl(offset: int, reg: GPR, wide: bool = False) -> Instruction:
    mods = ("64",) if wide else ()
    return _sassi(Opcode.STL, (),
                  (MemRef(MemSpace.LOCAL, GPR(1), offset), reg), mods)


def _ldl(reg: GPR, offset: int) -> Instruction:
    return _sassi(Opcode.LDL, (reg,),
                  (MemRef(MemSpace.LOCAL, GPR(1), offset),))


def _mov_imm(reg: GPR, value: int) -> Instruction:
    value &= 0xFFFFFFFF
    if value >= 1 << 31:
        value -= 1 << 32
    if -(1 << 19) < value < (1 << 19):
        return _sassi(Opcode.IADD, (reg,), (RZ, Imm(value)))
    return _sassi(Opcode.MOV32I, (reg,), (Imm(value),))


def memory_properties(instr: Instruction) -> int:
    bits = 0
    if instr.is_mem_read:
        bits |= P.PROP_IS_LOAD
    if instr.is_mem_write:
        bits |= P.PROP_IS_STORE
    if instr.is_atomic:
        bits |= P.PROP_IS_ATOMIC
    return bits


def frame_parts(spec: InstrumentationSpec, instr: Instruction, where: Where):
    """Which extra parameter objects this site marshals, and the frame."""
    with_memory = What.MEMORY in spec.what and instr.is_memory \
        and instr.mem_ref is not None
    with_branch = What.COND_BRANCH in spec.what and instr.is_cond_control_xfer
    with_regs = What.REGISTERS in spec.what and (
        bool(instr.gpr_defs()) or where is Where.AFTER)
    return P.frame_layout(with_memory, with_branch, with_regs), \
        with_memory, with_branch, with_regs


def _site_registers(instr: Instruction, with_memory: bool,
                    with_regs: bool) -> frozenset:
    """Registers whose *original* values the marshaling code must read."""
    regs = set()
    if with_regs:
        regs.update(_dst_regs(instr))
    if with_memory and instr.mem_ref is not None \
            and not instr.mem_ref.base.is_zero:
        base = instr.mem_ref.base.index
        regs.add(base)
        if instr.mem_ref.space in (MemSpace.GLOBAL, MemSpace.TEXTURE,
                                   MemSpace.GENERIC):
            regs.add(base + 1)
    return frozenset(regs)


def _pick_scratch(forbidden: frozenset, preferred: Sequence[int]) -> int:
    for reg in preferred:
        if reg not in forbidden:
            return reg
    raise AssertionError("no scratch register available")


def build_call_sequence(request: SiteRequest) -> List[Instruction]:
    """The full injected sequence for one site.

    Ordering constraint: everything that reads *original* architectural
    state (register-value captures, the memory-address pair, predicate
    and carry spills, the guard-dependent fields) is emitted before the
    scratch registers it would clobber are reused, and the carry flag is
    saved before the address computation's ``IADD.CC`` destroys it.
    """
    spec = request.spec
    instr = request.instr
    (memory_at, branch_at, regs_at, frame), with_memory, with_branch, \
        with_regs = frame_parts(spec, instr, request.where)

    site_regs = _site_registers(instr, with_memory, with_regs)
    pred_scratch = GPR(_pick_scratch(site_regs, (3, 0, 2, 9, 11, 13, 15)))
    cc_scratch = GPR(_pick_scratch(site_regs | {pred_scratch.index},
                                   (2, 0, 3, 9, 11, 13, 15)))

    seq: List[Instruction] = []
    emit = seq.append

    # (1) stack allocation
    emit(_sassi(Opcode.IADD, (GPR(1),), (GPR(1), Imm(-frame))))

    # (2) spills of live caller-saved registers
    spill_set = sorted(r for r in request.live_gprs if r in CALLER_SAVED)
    stored = [r for r in spill_set if r not in request.already_spilled]
    for reg in stored:
        emit(_stl(P.BP_GPR_SPILL + 4 * reg, GPR(reg)))

    # (2b) capture destination-register values while still intact
    if with_regs:
        for index, reg in enumerate(_dst_regs(instr)):
            emit(_stl(regs_at + P.RP_VALUES + 4 * index, GPR(reg)))

    # (2c) predicate and carry spills (carry before any IADD.CC below)
    emit(_sassi(Opcode.P2R, (pred_scratch,), (Imm(0x7F),)))
    emit(_stl(P.BP_PR_SPILL, pred_scratch))
    emit(_sassi(Opcode.IADD, (cc_scratch,), (RZ, RZ), mods=("X",)))
    emit(_stl(P.BP_CC_SPILL, cc_scratch))

    # (2d) the memory operand's effective address (may use IADD.CC)
    if with_memory:
        _emit_memory_address(seq, instr, memory_at)

    # (3) SASSIBeforeParams fields
    emit(_mov_imm(GPR(4), request.site_id))
    emit(_stl(P.BP_ID, GPR(4)))
    emit(_mov_imm(GPR(5), request.fn_addr))
    emit(_stl(P.BP_FN_ADDR, GPR(5)))
    emit(_mov_imm(GPR(4), 0))          # insOffset patched by the injector
    seq[-1] = _offset_placeholder(seq[-1], request.where)
    emit(_stl(P.BP_INS_OFFSET, GPR(4)))
    emit(_mov_imm(GPR(5), request.encoding_low))
    emit(_stl(P.BP_INS_ENCODING, GPR(5)))
    _emit_guard_flag(seq, instr.guard, GPR(4))
    emit(_stl(P.BP_WILL_EXECUTE, GPR(4)))

    # (4) remaining extra-parameter fields (immediates only)
    if with_memory:
        _emit_memory_static_fields(seq, instr, memory_at)
    if with_branch:
        _emit_branch_params(seq, instr, branch_at, request)
    if with_regs:
        _emit_register_metadata(seq, instr, regs_at)

    # (5) argument pointers per the ABI
    emit(_sassi(Opcode.LOP, (GPR(4),),
                (GPR(1), ConstRef(0, STACK_BASE_OFFSET)), mods=("OR",)))
    emit(_sassi(Opcode.IADD, (GPR(5),), (RZ, Imm(0))))
    if with_memory or with_branch or with_regs:
        emit(_sassi(Opcode.LOP, (GPR(6),),
                    (GPR(1), ConstRef(0, STACK_BASE_OFFSET)), mods=("OR",)))
        emit(_sassi(Opcode.IADD, (GPR(6),), (GPR(6), Imm(P.BP_SIZE))))
        emit(_sassi(Opcode.IADD, (GPR(7),), (RZ, Imm(0))))

    # (6) the call
    emit(_sassi(Opcode.JCAL, (), (Imm(request.handler_addr),)))

    # (7) restores
    emit(_ldl(GPR(3), P.BP_PR_SPILL))
    emit(_sassi(Opcode.R2P, (), (GPR(3), Imm(0x7F))))
    emit(_ldl(GPR(2), P.BP_CC_SPILL))
    emit(_sassi(Opcode.IADD, (RZ,), (GPR(2), Imm(-1)), mods=("CC",)))
    for reg in reversed(spill_set):
        emit(_ldl(GPR(reg), P.BP_GPR_SPILL + 4 * reg))
    if with_regs and spec.writeback_registers \
            and request.where is Where.AFTER:
        for index, reg in enumerate(_dst_regs(instr)):
            emit(_ldl(GPR(reg), P.RP_VALUES + regs_at + 4 * index))
    emit(_sassi(Opcode.IADD, (GPR(1),), (GPR(1), Imm(frame))))
    return seq


def _offset_placeholder(instruction: Instruction,
                        where: Where) -> Instruction:
    """Mark the insOffset immediate for post-assembly patching.

    ``PATCH_TARGET_BASE - 1`` resolves to the next original instruction
    (before-sites); ``- 2`` to the previous one (after-sites).
    """
    from dataclasses import replace

    sentinel = PATCH_TARGET_BASE - (1 if where is Where.BEFORE else 2)
    return replace(instruction, srcs=(RZ, Imm(sentinel)))


def _emit_guard_flag(seq: List[Instruction], guard: PredGuard,
                     reg: GPR) -> None:
    """``reg = 1`` iff the original instruction's guard passes — the
    Figure 2 ``@P0 IADD R4, RZ, 0x1 / @!P0 IADD R4, RZ, 0x0`` pair."""
    if guard.is_unconditional:
        seq.append(_sassi(Opcode.IADD, (reg,), (RZ, Imm(1))))
        return
    seq.append(_sassi(Opcode.IADD, (reg,), (RZ, Imm(1)),
                      guard=PredGuard(guard.pred, guard.negated)))
    seq.append(_sassi(Opcode.IADD, (reg,), (RZ, Imm(0)),
                      guard=PredGuard(guard.pred, not guard.negated)))


def _emit_memory_address(seq: List[Instruction], instr: Instruction,
                         base: int) -> None:
    """Compute the effective address into R6/R7 and store it (the
    Figure 2 ``IADD R6.CC, R10, 0x0 / IADD.X R7, R11, RZ / STL.64``)."""
    ref = instr.mem_ref
    emit = seq.append
    if ref.base.is_zero:
        emit(_mov_imm(GPR(6), ref.offset))
        emit(_sassi(Opcode.IADD, (GPR(7),), (RZ, Imm(0))))
    elif ref.space in (MemSpace.GLOBAL, MemSpace.TEXTURE, MemSpace.GENERIC):
        emit(_sassi(Opcode.IADD, (GPR(6),),
                    (GPR(ref.base.index), Imm(ref.offset)), mods=("CC",)))
        emit(_sassi(Opcode.IADD, (GPR(7),),
                    (GPR(ref.base.index + 1), RZ), mods=("X",)))
    elif ref.space is MemSpace.SHARED:
        emit(_sassi(Opcode.IADD, (GPR(6),),
                    (GPR(ref.base.index), Imm(ref.offset))))
        emit(_sassi(Opcode.LOP32I, (GPR(6),),
                    (GPR(6), Imm(SHARED_BASE)), mods=("OR",)))
        emit(_sassi(Opcode.IADD, (GPR(7),), (RZ, Imm(0))))
    else:  # LOCAL / CONST: form the generic local-window address
        emit(_sassi(Opcode.IADD, (GPR(6),),
                    (GPR(ref.base.index), Imm(ref.offset))))
        emit(_sassi(Opcode.LOP, (GPR(6),),
                    (GPR(6), ConstRef(0, STACK_BASE_OFFSET)), mods=("OR",)))
        emit(_sassi(Opcode.IADD, (GPR(7),), (RZ, Imm(0))))
    emit(_stl(base + P.MP_ADDRESS, GPR(6), wide=True))


def _emit_memory_static_fields(seq: List[Instruction], instr: Instruction,
                               base: int) -> None:
    emit = seq.append
    emit(_mov_imm(GPR(6), memory_properties(instr)))
    emit(_stl(base + P.MP_PROPERTIES, GPR(6)))
    emit(_mov_imm(GPR(6), instr.mem_width))
    emit(_stl(base + P.MP_WIDTH, GPR(6)))
    space = instr.mem_space or MemSpace.GENERIC
    emit(_mov_imm(GPR(6), space.value))
    emit(_stl(base + P.MP_DOMAIN, GPR(6)))


def _emit_branch_params(seq: List[Instruction], instr: Instruction,
                        base: int, request: SiteRequest) -> None:
    emit = seq.append
    _emit_guard_flag(seq, instr.guard, GPR(6))
    emit(_stl(base + P.BRP_DIRECTION, GPR(6)))
    if request.original_target_index is not None:
        emit(_mov_imm(GPR(6),
                      PATCH_TARGET_BASE + request.original_target_index))
    else:
        emit(_mov_imm(GPR(6), 0xFFFFFFFF))
    emit(_stl(base + P.BRP_TAKEN_OFFSET, GPR(6)))
    flags = P.BRP_FLAG_IS_BREAK if instr.opcode is Opcode.BRK else 0
    emit(_mov_imm(GPR(6), flags))
    emit(_stl(base + P.BRP_FLAGS, GPR(6)))


def _dst_regs(instr: Instruction) -> List[int]:
    regs = [r.index for r in instr.gpr_defs()]
    return regs[:P.MAX_REG_DSTS]


def _emit_register_metadata(seq: List[Instruction], instr: Instruction,
                            base: int) -> None:
    """Destination count and register numbers (the values themselves were
    captured earlier, before any scratch register was clobbered)."""
    emit = seq.append
    dsts = _dst_regs(instr)
    emit(_mov_imm(GPR(6), len(dsts)))
    emit(_stl(base + P.RP_NUM_DSTS, GPR(6)))
    for index, reg in enumerate(dsts):
        emit(_mov_imm(GPR(6), reg))
        emit(_stl(base + P.RP_REG_NUMS + 4 * index, GPR(6)))
