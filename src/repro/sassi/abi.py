"""ABI-compliant call-sequence generation (the paper's Figure 2).

For each instrumentation site the injector emits, in order:

1. stack allocation (``IADD R1, R1, -frame``);
2. spills of live caller-saved GPRs into ``bp.GPRSpill`` (slot = register
   number), the predicate file via ``P2R``/``STL``, and the carry flag
   (read with ``IADD.X R2, RZ, RZ``);
3. initialization of the ``SASSIBeforeParams`` fields (site id, fnAddr,
   insOffset, insEncoding, per-thread ``instrWillExecute`` computed with
   the guarded ``@P IADD R4, RZ, 0x1 / @!P IADD R4, RZ, 0x0`` pair exactly
   as in Figure 2);
4. marshaling of the requested extra parameter objects (memory address
   pair + properties/width/domain; branch direction; destination-register
   numbers and values);
5. the generic-pointer arguments: ``LOP.OR R4, R1, c[0x0][0x24]`` /
   ``IADD R5, RZ, 0x0`` for ``bp`` and the same plus ``+0x60`` in
   ``R6/R7`` for the extra object, per the compute ABI;
6. ``JCAL <handler>``;
7. restores (predicates, carry, spilled GPRs, optional register
   write-back) and stack release.

Every emitted instruction carries ``tag="sassi"`` so it is never itself
instrumented and so the simulator can attribute overhead precisely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.isa.instruction import (
    ConstRef,
    Imm,
    Instruction,
    MemRef,
    MemSpace,
    PredGuard,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import STACK_BASE_OFFSET
from repro.isa.registers import GPR, PT, RZ, Pred
from repro.sassi import params as P
from repro.sassi.spec import InstrumentationSpec, What, Where
from repro.sim.costmodel import block_issue_cycles
from repro.sim.memory import SHARED_BASE
from repro.telemetry.classify import SAVE_RESTORE_KEYS, block_dispatch_counts

#: Caller-saved registers a ≤16-register handler may clobber (R1 is the
#: stack pointer and is callee-preserved by construction).
CALLER_SAVED = frozenset(r for r in range(16) if r != 1)

#: Branch-target offsets are patched after the whole kernel is rebuilt;
#: until then they are encoded as PATCH_TARGET_BASE + original index.
PATCH_TARGET_BASE = 0x7E000000


@dataclass(frozen=True)
class SiteRequest:
    """Everything the sequence generator needs for one site."""

    instr: Instruction
    site_id: int
    where: Where
    fn_addr: int
    encoding_low: int
    live_gprs: Tuple[int, ...]        # live register numbers at the site
    handler_addr: int
    spec: InstrumentationSpec
    original_target_index: Optional[int] = None  # for branch sites
    already_spilled: frozenset = frozenset()


def _sassi(opcode, dsts=(), srcs=(), mods=(), guard=PredGuard()):
    return Instruction(opcode=opcode, dsts=tuple(dsts), srcs=tuple(srcs),
                       mods=tuple(mods), guard=guard, tag="sassi")


def _stl(offset: int, reg: GPR, wide: bool = False) -> Instruction:
    mods = ("64",) if wide else ()
    return _sassi(Opcode.STL, (),
                  (MemRef(MemSpace.LOCAL, GPR(1), offset), reg), mods)


def _ldl(reg: GPR, offset: int) -> Instruction:
    return _sassi(Opcode.LDL, (reg,),
                  (MemRef(MemSpace.LOCAL, GPR(1), offset),))


def _mov_imm(reg: GPR, value: int) -> Instruction:
    value &= 0xFFFFFFFF
    if value >= 1 << 31:
        value -= 1 << 32
    if -(1 << 19) < value < (1 << 19):
        return _sassi(Opcode.IADD, (reg,), (RZ, Imm(value)))
    return _sassi(Opcode.MOV32I, (reg,), (Imm(value),))


def memory_properties(instr: Instruction) -> int:
    bits = 0
    if instr.is_mem_read:
        bits |= P.PROP_IS_LOAD
    if instr.is_mem_write:
        bits |= P.PROP_IS_STORE
    if instr.is_atomic:
        bits |= P.PROP_IS_ATOMIC
    return bits


def frame_parts(spec: InstrumentationSpec, instr: Instruction, where: Where):
    """Which extra parameter objects this site marshals, and the frame."""
    with_memory = What.MEMORY in spec.what and instr.is_memory \
        and instr.mem_ref is not None
    with_branch = What.COND_BRANCH in spec.what and instr.is_cond_control_xfer
    with_regs = What.REGISTERS in spec.what and (
        bool(instr.gpr_defs()) or where is Where.AFTER)
    return P.frame_layout(with_memory, with_branch, with_regs), \
        with_memory, with_branch, with_regs


def _site_registers(instr: Instruction, with_memory: bool,
                    with_regs: bool) -> frozenset:
    """Registers whose *original* values the marshaling code must read."""
    regs = set()
    if with_regs:
        regs.update(_dst_regs(instr))
    if with_memory and instr.mem_ref is not None \
            and not instr.mem_ref.base.is_zero:
        base = instr.mem_ref.base.index
        regs.add(base)
        if instr.mem_ref.space in (MemSpace.GLOBAL, MemSpace.TEXTURE,
                                   MemSpace.GENERIC):
            regs.add(base + 1)
    return frozenset(regs)


def _pick_scratch(forbidden: frozenset, preferred: Sequence[int]) -> int:
    for reg in preferred:
        if reg not in forbidden:
            return reg
    raise AssertionError("no scratch register available")


def build_call_sequence(request: SiteRequest) -> List[Instruction]:
    """The full injected sequence for one site.

    Ordering constraint: everything that reads *original* architectural
    state (register-value captures, the memory-address pair, predicate
    and carry spills, the guard-dependent fields) is emitted before the
    scratch registers it would clobber are reused, and the carry flag is
    saved before the address computation's ``IADD.CC`` destroys it.
    """
    spec = request.spec
    instr = request.instr
    (memory_at, branch_at, regs_at, frame), with_memory, with_branch, \
        with_regs = frame_parts(spec, instr, request.where)

    site_regs = _site_registers(instr, with_memory, with_regs)
    pred_scratch = GPR(_pick_scratch(site_regs, (3, 0, 2, 9, 11, 13, 15)))
    cc_scratch = GPR(_pick_scratch(site_regs | {pred_scratch.index},
                                   (2, 0, 3, 9, 11, 13, 15)))

    seq: List[Instruction] = []
    emit = seq.append

    # (1) stack allocation
    emit(_sassi(Opcode.IADD, (GPR(1),), (GPR(1), Imm(-frame))))

    # (2) spills of live caller-saved registers
    spill_set = sorted(r for r in request.live_gprs if r in CALLER_SAVED)
    stored = [r for r in spill_set if r not in request.already_spilled]
    for reg in stored:
        emit(_stl(P.BP_GPR_SPILL + 4 * reg, GPR(reg)))

    # (2b) capture destination-register values while still intact
    if with_regs:
        for index, reg in enumerate(_dst_regs(instr)):
            emit(_stl(regs_at + P.RP_VALUES + 4 * index, GPR(reg)))

    # (2c) predicate and carry spills (carry before any IADD.CC below)
    emit(_sassi(Opcode.P2R, (pred_scratch,), (Imm(0x7F),)))
    emit(_stl(P.BP_PR_SPILL, pred_scratch))
    emit(_sassi(Opcode.IADD, (cc_scratch,), (RZ, RZ), mods=("X",)))
    emit(_stl(P.BP_CC_SPILL, cc_scratch))

    # (2d) the memory operand's effective address (may use IADD.CC)
    if with_memory:
        _emit_memory_address(seq, instr, memory_at)

    # (3) SASSIBeforeParams fields
    emit(_mov_imm(GPR(4), request.site_id))
    emit(_stl(P.BP_ID, GPR(4)))
    emit(_mov_imm(GPR(5), request.fn_addr))
    emit(_stl(P.BP_FN_ADDR, GPR(5)))
    emit(_mov_imm(GPR(4), 0))          # insOffset patched by the injector
    seq[-1] = _offset_placeholder(seq[-1], request.where)
    emit(_stl(P.BP_INS_OFFSET, GPR(4)))
    emit(_mov_imm(GPR(5), request.encoding_low))
    emit(_stl(P.BP_INS_ENCODING, GPR(5)))
    _emit_guard_flag(seq, instr.guard, GPR(4))
    emit(_stl(P.BP_WILL_EXECUTE, GPR(4)))

    # (4) remaining extra-parameter fields (immediates only)
    if with_memory:
        _emit_memory_static_fields(seq, instr, memory_at)
    if with_branch:
        _emit_branch_params(seq, instr, branch_at, request)
    if with_regs:
        _emit_register_metadata(seq, instr, regs_at)

    # (5) argument pointers per the ABI
    emit(_sassi(Opcode.LOP, (GPR(4),),
                (GPR(1), ConstRef(0, STACK_BASE_OFFSET)), mods=("OR",)))
    emit(_sassi(Opcode.IADD, (GPR(5),), (RZ, Imm(0))))
    if with_memory or with_branch or with_regs:
        emit(_sassi(Opcode.LOP, (GPR(6),),
                    (GPR(1), ConstRef(0, STACK_BASE_OFFSET)), mods=("OR",)))
        emit(_sassi(Opcode.IADD, (GPR(6),), (GPR(6), Imm(P.BP_SIZE))))
        emit(_sassi(Opcode.IADD, (GPR(7),), (RZ, Imm(0))))

    # (6) the call
    emit(_sassi(Opcode.JCAL, (), (Imm(request.handler_addr),)))

    # (7) restores
    emit(_ldl(GPR(3), P.BP_PR_SPILL))
    emit(_sassi(Opcode.R2P, (), (GPR(3), Imm(0x7F))))
    emit(_ldl(GPR(2), P.BP_CC_SPILL))
    emit(_sassi(Opcode.IADD, (RZ,), (GPR(2), Imm(-1)), mods=("CC",)))
    for reg in reversed(spill_set):
        emit(_ldl(GPR(reg), P.BP_GPR_SPILL + 4 * reg))
    if with_regs and spec.writeback_registers \
            and request.where is Where.AFTER:
        for index, reg in enumerate(_dst_regs(instr)):
            emit(_ldl(GPR(reg), P.RP_VALUES + regs_at + 4 * index))
    emit(_sassi(Opcode.IADD, (GPR(1),), (GPR(1), Imm(frame))))
    return seq


def _offset_placeholder(instruction: Instruction,
                        where: Where) -> Instruction:
    """Mark the insOffset immediate for post-assembly patching.

    ``PATCH_TARGET_BASE - 1`` resolves to the next original instruction
    (before-sites); ``- 2`` to the previous one (after-sites).
    """
    from dataclasses import replace

    sentinel = PATCH_TARGET_BASE - (1 if where is Where.BEFORE else 2)
    return replace(instruction, srcs=(RZ, Imm(sentinel)))


def _emit_guard_flag(seq: List[Instruction], guard: PredGuard,
                     reg: GPR) -> None:
    """``reg = 1`` iff the original instruction's guard passes — the
    Figure 2 ``@P0 IADD R4, RZ, 0x1 / @!P0 IADD R4, RZ, 0x0`` pair."""
    if guard.is_unconditional:
        seq.append(_sassi(Opcode.IADD, (reg,), (RZ, Imm(1))))
        return
    seq.append(_sassi(Opcode.IADD, (reg,), (RZ, Imm(1)),
                      guard=PredGuard(guard.pred, guard.negated)))
    seq.append(_sassi(Opcode.IADD, (reg,), (RZ, Imm(0)),
                      guard=PredGuard(guard.pred, not guard.negated)))


def _emit_memory_address(seq: List[Instruction], instr: Instruction,
                         base: int) -> None:
    """Compute the effective address into R6/R7 and store it (the
    Figure 2 ``IADD R6.CC, R10, 0x0 / IADD.X R7, R11, RZ / STL.64``)."""
    ref = instr.mem_ref
    emit = seq.append
    if ref.base.is_zero:
        emit(_mov_imm(GPR(6), ref.offset))
        emit(_sassi(Opcode.IADD, (GPR(7),), (RZ, Imm(0))))
    elif ref.space in (MemSpace.GLOBAL, MemSpace.TEXTURE, MemSpace.GENERIC):
        emit(_sassi(Opcode.IADD, (GPR(6),),
                    (GPR(ref.base.index), Imm(ref.offset)), mods=("CC",)))
        emit(_sassi(Opcode.IADD, (GPR(7),),
                    (GPR(ref.base.index + 1), RZ), mods=("X",)))
    elif ref.space is MemSpace.SHARED:
        emit(_sassi(Opcode.IADD, (GPR(6),),
                    (GPR(ref.base.index), Imm(ref.offset))))
        emit(_sassi(Opcode.LOP32I, (GPR(6),),
                    (GPR(6), Imm(SHARED_BASE)), mods=("OR",)))
        emit(_sassi(Opcode.IADD, (GPR(7),), (RZ, Imm(0))))
    else:  # LOCAL / CONST: form the generic local-window address
        emit(_sassi(Opcode.IADD, (GPR(6),),
                    (GPR(ref.base.index), Imm(ref.offset))))
        emit(_sassi(Opcode.LOP, (GPR(6),),
                    (GPR(6), ConstRef(0, STACK_BASE_OFFSET)), mods=("OR",)))
        emit(_sassi(Opcode.IADD, (GPR(7),), (RZ, Imm(0))))
    emit(_stl(base + P.MP_ADDRESS, GPR(6), wide=True))


def _emit_memory_static_fields(seq: List[Instruction], instr: Instruction,
                               base: int) -> None:
    emit = seq.append
    emit(_mov_imm(GPR(6), memory_properties(instr)))
    emit(_stl(base + P.MP_PROPERTIES, GPR(6)))
    emit(_mov_imm(GPR(6), instr.mem_width))
    emit(_stl(base + P.MP_WIDTH, GPR(6)))
    space = instr.mem_space or MemSpace.GENERIC
    emit(_mov_imm(GPR(6), space.value))
    emit(_stl(base + P.MP_DOMAIN, GPR(6)))


def _emit_branch_params(seq: List[Instruction], instr: Instruction,
                        base: int, request: SiteRequest) -> None:
    emit = seq.append
    _emit_guard_flag(seq, instr.guard, GPR(6))
    emit(_stl(base + P.BRP_DIRECTION, GPR(6)))
    if request.original_target_index is not None:
        emit(_mov_imm(GPR(6),
                      PATCH_TARGET_BASE + request.original_target_index))
    else:
        emit(_mov_imm(GPR(6), 0xFFFFFFFF))
    emit(_stl(base + P.BRP_TAKEN_OFFSET, GPR(6)))
    flags = P.BRP_FLAG_IS_BREAK if instr.opcode is Opcode.BRK else 0
    emit(_mov_imm(GPR(6), flags))
    emit(_stl(base + P.BRP_FLAGS, GPR(6)))


def _dst_regs(instr: Instruction) -> List[int]:
    regs = [r.index for r in instr.gpr_defs()]
    return regs[:P.MAX_REG_DSTS]


def _emit_register_metadata(seq: List[Instruction], instr: Instruction,
                            base: int) -> None:
    """Destination count and register numbers (the values themselves were
    captured earlier, before any scratch register was clobbered)."""
    emit = seq.append
    dsts = _dst_regs(instr)
    emit(_mov_imm(GPR(6), len(dsts)))
    emit(_stl(base + P.RP_NUM_DSTS, GPR(6)))
    for index, reg in enumerate(dsts):
        emit(_mov_imm(GPR(6), reg))
        emit(_stl(base + P.RP_REG_NUMS + 4 * index, GPR(6)))


# ---------------------------------------------------------------------
# batched site execution: one array-op replay of a whole call sequence
# ---------------------------------------------------------------------
#
# The injected sequences above are rigid by construction: straight-line
# spills, immediate field initializers, one address computation, one
# JCAL, and the mirrored restores.  ``compile_site_plan`` pattern-matches
# a decoded instruction run back into that shape at decode time and
# precomputes everything a per-instruction interpreter would rediscover
# on every dynamic execution: the frame image's static bytes, the byte
# columns every STL touches (one fancy-index scatter instead of ~20
# ``Memory.write`` loops), the fill columns of the restores (one gather),
# and the per-site stats/telemetry cost splits (spill / fill /
# save_restore / param_marshal — identical to per-record
# ``sassi_key`` classification, which tests enforce).
#
# Anything that does not match — predicated original sites beyond the
# Figure 2 guard-flag pair, exotic register indices, out-of-frame stack
# pointers at run time — falls back to the per-instruction path, which
# stays authoritative.


def _gpr_index(operand) -> Optional[int]:
    """Register index of a non-RZ GPR operand (None otherwise)."""
    if isinstance(operand, GPR) and not operand.is_zero:
        return operand.index
    return None


def _is_rz(operand) -> bool:
    return isinstance(operand, GPR) and operand.is_zero


def _local_ref(operand) -> Optional[MemRef]:
    """The ``[R1 + offset]`` local reference of an injected STL/LDL."""
    if isinstance(operand, MemRef) and operand.space is MemSpace.LOCAL \
            and isinstance(operand.base, GPR) and not operand.base.is_zero \
            and operand.base.index == 1 and operand.offset >= 0:
        return operand
    return None


class SiteSequencePlan:
    """One instrumentation site's call sequence, compiled to array ops.

    ``execute`` replays the whole sequence for the active lanes with a
    handful of vectorized operations and invokes the handler binding
    exactly as ``JCAL`` would.  It returns the number of
    ``divergence.partial_dispatch`` telemetry increments the per-record
    path would have made (guard-flag pairs at predicated sites), or
    ``None`` when a run-time precondition fails and the caller must
    fall back to per-instruction execution *before any state changed*.
    """

    __slots__ = ("start", "records", "frame", "jcal_addr", "jcal_index",
                 "ops", "post_ops", "template", "store_cols", "fill_cols",
                 "max_touch", "max_reg", "length", "n_pairs",
                 "thread_weight", "opcode_counts", "issue_cycles",
                 "telemetry_counts", "n_fills", "site_id")

    def __init__(self, start, records, frame, jcal_addr, jcal_index, ops,
                 post_ops, template, store_cols, fill_cols, max_reg,
                 n_pairs, site_id=None):
        self.start = start
        #: the injector's stable site id (the original instruction index,
        #: recovered from the ``bp.id`` constant baked into the frame
        #: template); None when the sequence carried no recognizable id.
        self.site_id = site_id
        self.records = records
        self.frame = frame
        self.jcal_addr = jcal_addr
        self.jcal_index = jcal_index
        self.ops = ops
        self.post_ops = post_ops
        self.template = template
        self.store_cols = store_cols
        self.fill_cols = fill_cols
        self.n_fills = fill_cols.size // 4
        touch = [int(store_cols.max()) + 1] if store_cols.size else [0]
        if fill_cols.size:
            touch.append(int(fill_cols.max()) + 1)
        self.max_touch = max(touch)
        self.max_reg = max_reg
        self.length = len(records)
        self.n_pairs = n_pairs
        # --- once-per-site cost accounting (stats + telemetry) -------
        # A guard-flag pair's two complementary records together touch
        # each active lane exactly once, so per-thread counts collapse
        # to (length - n_pairs) * active_lanes.
        self.thread_weight = self.length - n_pairs
        counts: dict = {}
        for dec in records:
            counts[dec.opcode] = counts.get(dec.opcode, 0) + 1
        self.opcode_counts = counts
        self.issue_cycles = block_issue_cycles(dec.opcode for dec in records)
        self.telemetry_counts = block_dispatch_counts(records)

    def sassi_cost_split(self) -> dict:
        """The site's injected-overhead split by telemetry bucket."""
        return {key: value for key, value in self.telemetry_counts.items()
                if key.startswith("sassi.")}

    @property
    def save_restore_instructions(self) -> int:
        return sum(self.telemetry_counts.get(key, 0)
                   for key in SAVE_RESTORE_KEYS)

    # ----------------------------------------------------------- replay

    def execute(self, ex, warp, cta, g, g_idx, counter) -> Optional[int]:
        n = g_idx.size
        if n == 0 or self.max_reg >= warp.num_regs \
                or self.jcal_addr not in ex.device.handler_bindings:
            return None
        regs = warp.regs
        r1 = regs[1][g_idx]
        sp = r1.astype(np.int64) - self.frame
        block = cta.local_block()
        if int(sp.min()) < 0 or int(sp.max()) + self.max_touch > block.shape[1]:
            return None
        tids = warp.lane_thread_ids[g_idx]
        # the opening IADD already lowered R1 as far as the rest of the
        # sequence is concerned
        env: dict = {1: (r1 - np.uint32(self.frame))}
        cc = None
        cc_dirty = False
        partial = 0
        payload = np.empty((n, self.template.size), dtype=np.uint8)
        payload[:] = self.template

        def read(reg):
            value = env.get(reg)
            if value is None:
                return regs[reg][g_idx]
            return value

        for op in self.ops:
            kind = op[0]
            if kind == "st":
                _, pos, src = op
                payload[:, pos:pos + 4] = _le_bytes4(read(src), n)
            elif kind == "st64":
                _, pos, lo = op
                payload[:, pos:pos + 4] = _le_bytes4(read(lo), n)
                payload[:, pos + 4:pos + 8] = _le_bytes4(read(lo + 1), n)
            elif kind == "add":
                _, dst, src, imm = op
                env[dst] = read(src) + np.uint32(imm)
            elif kind == "imm":
                _, dst, value = op
                env[dst] = np.uint32(value)
            elif kind == "addcc":
                _, dst, src, imm = op
                a = read(src) if src is not None \
                    else np.zeros(n, dtype=np.uint32)
                result = a + np.uint32(imm)
                cc = result < a
                cc_dirty = True
                if dst is not None:
                    env[dst] = result
            elif kind == "addx":
                _, dst, src = op
                a = read(src) if src is not None \
                    else np.zeros(n, dtype=np.uint32)
                if cc is None:
                    cc = warp.carry[g_idx]
                env[dst] = a + cc.astype(np.uint32)
            elif kind == "guard":
                _, dst, pred_index, negated, v_pass, v_fail = op
                row = warp.preds[pred_index][g_idx]
                if negated:
                    row = ~row
                passing = int(np.count_nonzero(row))
                if passing < n:
                    partial += 1
                if passing > 0:
                    partial += 1
                env[dst] = np.where(row, np.uint32(v_pass),
                                    np.uint32(v_fail))
            elif kind == "p2r":
                _, dst, maskval = op
                packed = np.zeros(n, dtype=np.uint32)
                preds = warp.preds
                for index in range(7):
                    packed |= preds[index][g_idx].astype(np.uint32) \
                        << np.uint32(index)
                env[dst] = packed & np.uint32(maskval)
            elif kind == "orc":
                _, dst, src, cref = op
                env[dst] = read(src) | ex._read(warp, cref)
            else:  # "ori"
                _, dst, src, imm = op
                env[dst] = read(src) | np.uint32(imm)

        # one scatter writes the whole frame image for every lane
        block[tids[:, None], sp[:, None] + self.store_cols[None, :]] = payload
        # architectural state at the call: R1 moved, argument regs live
        for reg, value in env.items():
            regs[reg][g_idx] = value
        if cc_dirty:
            warp.carry[g_idx] = cc

        ex.stats.handler_calls += 1
        warp.pc = self.jcal_index
        ex.device.handler_bindings[self.jcal_addr](ex, warp, cta, g)

        # restores: gather every fill slot back in one pass (the handler
        # may have rewritten the frame — SetRegValue / write-back)
        if self.fill_cols.size:
            raw = block[tids[:, None], sp[:, None] + self.fill_cols[None, :]]
            filled = np.ascontiguousarray(raw).view(np.uint32)
        for op in self.post_ops:
            kind = op[0]
            if kind == "fill":
                _, reg, slot = op
                regs[reg][g_idx] = filled[:, slot]
            elif kind == "r2p":
                _, src, maskval = op
                value = regs[src][g_idx]
                for index in range(7):
                    if maskval & (1 << index):
                        warp.preds[index][g_idx] = \
                            ((value >> np.uint32(index)) & 1).astype(bool)
            else:  # "ccres": IADD RZ, Rcc, -1 (CC) — carry = value != 0
                warp.carry[g_idx] = regs[op[1]][g_idx] != 0
        regs[1][g_idx] = r1
        warp.pc = self.start + self.length
        return partial


def _le_bytes4(value, n: int):
    """A uint32 row (or scalar) as little-endian bytes, broadcastable to
    a ``(n, 4)`` payload segment."""
    if isinstance(value, np.ndarray):
        return np.ascontiguousarray(value, dtype="<u4") \
            .view(np.uint8).reshape(n, 4)
    return np.frombuffer(np.uint32(value).tobytes(), dtype=np.uint8)


def compile_site_plan(records, start: int, handler_base: int):
    """Compile the injected run beginning at ``records[start]`` into a
    :class:`SiteSequencePlan`, or return None when the run does not
    match the shapes :func:`build_call_sequence` emits (the caller then
    leaves those records on the per-instruction path)."""
    limit = len(records)
    first = records[start]
    frame = _frame_alloc(first)
    if frame is None:
        return None

    ops: list = []
    post_ops: list = []
    template = bytearray()
    store_cols: List[int] = []
    covered: Set[int] = set()
    fill_cols: List[int] = []
    consts: dict = {}
    max_reg = 1
    n_pairs = 0
    jcal_addr = None
    jcal_index = None
    site_id = None
    index = start + 1

    def track(reg):
        nonlocal max_reg
        if reg is not None and reg > max_reg:
            max_reg = reg

    def add_store(offset, width):
        nonlocal template, store_cols
        span = range(offset, offset + width)
        if covered.intersection(span) or offset + width > frame:
            return None
        covered.update(span)
        pos = len(store_cols)
        store_cols.extend(span)
        template.extend(b"\x00" * width)
        return pos

    while index < limit:
        dec = records[index]
        if dec.tag != "sassi":
            return None
        opcode = dec.opcode
        if jcal_index is None:
            # ---------------- pre-call: spills, fields, arguments ----
            if not dec.uncond:
                pair = _match_guard_pair(records, index, limit)
                if pair is None:
                    return None
                dst, pred_index, negated, v_pass, v_fail = pair
                track(dst)
                consts.pop(dst, None)
                ops.append(("guard", dst, pred_index, negated,
                            v_pass, v_fail))
                n_pairs += 1
                index += 2
                continue
            if opcode is Opcode.JCAL:
                target = dec.srcs[0] if dec.srcs else None
                if not isinstance(target, Imm):
                    return None
                address = target.value & 0xFFFFFFFF
                if address < handler_base:
                    return None
                jcal_addr = address
                jcal_index = index
                index += 1
                continue
            if opcode is Opcode.STL:
                ref = _local_ref(dec.srcs[0]) if dec.srcs else None
                data = _gpr_index(dec.srcs[1]) if len(dec.srcs) > 1 else None
                wide = "64" in dec.mods
                if ref is None or data is None \
                        or (dec.mods and dec.mods != ("64",)):
                    return None
                track(data + 1 if wide else data)
                width = 8 if wide else 4
                pos = add_store(ref.offset, width)
                if pos is None:
                    return None
                if not wide and data in consts:
                    template[pos:pos + 4] = \
                        int(consts[data]).to_bytes(4, "little")
                    if ref.offset == P.BP_ID:
                        site_id = consts[data]
                elif wide and data in consts and data + 1 in consts:
                    template[pos:pos + 4] = \
                        int(consts[data]).to_bytes(4, "little")
                    template[pos + 4:pos + 8] = \
                        int(consts[data + 1]).to_bytes(4, "little")
                elif wide:
                    ops.append(("st64", pos, data))
                else:
                    ops.append(("st", pos, data))
            elif opcode in (Opcode.IADD, Opcode.IADD32I):
                op = _match_iadd(dec, consts, track)
                if op is None:
                    return None
                if op[0] != "nop":
                    ops.append(op)
            elif opcode is Opcode.MOV32I:
                dst = _gpr_index(dec.dsts[0]) if dec.dsts else None
                value = dec.srcs[0] if dec.srcs else None
                if dst is None or not isinstance(value, Imm) or dec.mods:
                    return None
                track(dst)
                consts[dst] = value.value & 0xFFFFFFFF
                ops.append(("imm", dst, consts[dst]))
            elif opcode is Opcode.P2R:
                dst = _gpr_index(dec.dsts[0]) if dec.dsts else None
                maskop = dec.srcs[-1] if dec.srcs else None
                if dst is None or not isinstance(maskop, Imm) or dec.mods:
                    return None
                track(dst)
                consts.pop(dst, None)
                ops.append(("p2r", dst, maskop.value & 0xFFFFFFFF))
            elif opcode in (Opcode.LOP, Opcode.LOP32I):
                if dec.mods != ("OR",) or len(dec.srcs) != 2 or not dec.dsts:
                    return None
                dst = _gpr_index(dec.dsts[0])
                src = _gpr_index(dec.srcs[0])
                other = dec.srcs[1]
                if dst is None or src is None or src in consts:
                    return None
                track(dst)
                track(src)
                consts.pop(dst, None)
                if isinstance(other, ConstRef):
                    ops.append(("orc", dst, src, other))
                elif isinstance(other, Imm):
                    ops.append(("ori", dst, src, other.value & 0xFFFFFFFF))
                else:
                    return None
            else:
                return None
        else:
            # ---------------- post-call: restores, stack release -----
            if not dec.uncond:
                return None
            if opcode is Opcode.LDL:
                dst = _gpr_index(dec.dsts[0]) if dec.dsts else None
                ref = _local_ref(dec.srcs[0]) if dec.srcs else None
                if dst is None or ref is None or dec.mods \
                        or ref.offset + 4 > frame:
                    return None
                track(dst)
                slot = len(fill_cols) // 4
                fill_cols.extend(range(ref.offset, ref.offset + 4))
                post_ops.append(("fill", dst, slot))
            elif opcode is Opcode.R2P:
                src = _gpr_index(dec.srcs[0]) if dec.srcs else None
                maskop = dec.srcs[1] if len(dec.srcs) > 1 else None
                if src is None or not isinstance(maskop, Imm) or dec.mods:
                    return None
                track(src)
                post_ops.append(("r2p", src, maskop.value & 0xFFFFFFFF))
            elif opcode in (Opcode.IADD, Opcode.IADD32I):
                dst = dec.dsts[0] if dec.dsts else None
                a = dec.srcs[0] if dec.srcs else None
                b = dec.srcs[1] if len(dec.srcs) > 1 else None
                if dec.mods == ("CC",) and _is_rz(dst) \
                        and _gpr_index(a) is not None \
                        and isinstance(b, Imm) and b.value == -1:
                    track(a.index)
                    post_ops.append(("ccres", a.index))
                elif not dec.mods and isinstance(dst, GPR) \
                        and not dst.is_zero and dst.index == 1 \
                        and _gpr_index(a) == 1 and isinstance(b, Imm) \
                        and b.value == frame:
                    # stack release: the sequence is complete
                    plan_records = records[start:index + 1]
                    if any(not rec.sassi for rec in plan_records):
                        return None
                    return SiteSequencePlan(
                        start, plan_records, frame, jcal_addr,
                        jcal_index, ops, post_ops,
                        np.frombuffer(bytes(template), dtype=np.uint8),
                        np.asarray(store_cols, dtype=np.int64),
                        np.asarray(fill_cols, dtype=np.int64),
                        max_reg, n_pairs, site_id)
                else:
                    return None
            else:
                return None
        index += 1
    return None


def _frame_alloc(dec) -> Optional[int]:
    """The frame size of an opening ``IADD R1, R1, -frame`` (or None)."""
    if dec.tag != "sassi" or not dec.uncond or dec.mods \
            or dec.opcode not in (Opcode.IADD, Opcode.IADD32I):
        return None
    dst = dec.dsts[0] if dec.dsts else None
    a = dec.srcs[0] if dec.srcs else None
    b = dec.srcs[1] if len(dec.srcs) > 1 else None
    if isinstance(dst, GPR) and not dst.is_zero and dst.index == 1 \
            and _gpr_index(a) == 1 and isinstance(b, Imm) and b.value < 0:
        return -b.value
    return None


def _match_guard_pair(records, index: int, limit: int):
    """The Figure 2 ``@P IADD Rd, RZ, 1 / @!P IADD Rd, RZ, 0`` pair."""
    if index + 1 >= limit:
        return None
    first, second = records[index], records[index + 1]
    for dec in (first, second):
        if dec.tag != "sassi" or dec.mods \
                or dec.opcode not in (Opcode.IADD, Opcode.IADD32I) \
                or not dec.dsts or _gpr_index(dec.dsts[0]) is None \
                or len(dec.srcs) != 2 or not _is_rz(dec.srcs[0]) \
                or not isinstance(dec.srcs[1], Imm):
            return None
    dst = first.dsts[0].index
    if second.dsts[0].index != dst:
        return None
    if first.pred_index != second.pred_index \
            or first.negated == second.negated or first.pred_index == 7:
        return None
    return (dst, first.pred_index, first.negated,
            first.srcs[1].value & 0xFFFFFFFF,
            second.srcs[1].value & 0xFFFFFFFF)


def _match_iadd(dec, consts: dict, track):
    """Compile one pre-call IADD form (see :func:`build_call_sequence`).

    Returns an op tuple, ``("nop",)`` for a fully folded constant, or
    None when the form is not one the injector emits.
    """
    dst_op = dec.dsts[0] if dec.dsts else None
    a = dec.srcs[0] if dec.srcs else None
    b = dec.srcs[1] if len(dec.srcs) > 1 else None
    dst = _gpr_index(dst_op)
    mods = dec.mods
    if mods == ("X",):
        # IADD.X d, a, RZ — consume the carry produced just above (or
        # the architectural carry for the save-side RZ,RZ read)
        if not _is_rz(b) or dst is None:
            return None
        src = _gpr_index(a)
        if src is None and not _is_rz(a):
            return None
        if src is not None and src in consts:
            return None
        track(dst)
        track(src)
        consts.pop(dst, None)
        return ("addx", dst, src)
    if mods == ("CC",):
        if not isinstance(b, Imm):
            return None
        src = _gpr_index(a)
        if src is None and not _is_rz(a):
            return None
        if src is not None and src in consts:
            return None
        if dst is None and not _is_rz(dst_op):
            return None
        track(dst)
        track(src)
        if dst is not None:
            consts.pop(dst, None)
        return ("addcc", dst, src, b.value & 0xFFFFFFFF)
    if mods:
        return None
    if dst is None or dst == 1 or not isinstance(b, Imm):
        return None
    track(dst)
    if _is_rz(a):
        consts[dst] = b.value & 0xFFFFFFFF
        return ("imm", dst, consts[dst])
    src = _gpr_index(a)
    if src is None:
        return None
    track(src)
    if src in consts:
        consts[dst] = (consts[src] + b.value) & 0xFFFFFFFF
        return ("imm", dst, consts[dst])
    consts.pop(dst, None)
    return ("add", dst, src, b.value & 0xFFFFFFFF)
