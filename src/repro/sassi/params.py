"""Parameter objects passed to instrumentation handlers.

The injected call sequence stack-allocates these objects in thread-local
memory and passes generic pointers to them per the ABI (paper Figure 2).
This module defines the byte layouts (shared with :mod:`repro.sassi.abi`,
which emits the stores) and accessor *views* used by handlers at run
time — the views read the very bytes the injected ``STL`` instructions
wrote into simulated local memory.

Layouts (byte offsets within the stack frame):

``SASSIBeforeParams`` / ``SASSIAfterParams`` (0x60 bytes at frame+0x00)::

    0x00  id               int32   site index within the kernel
    0x04  instrWillExecute int32   1 iff the guard passes for this thread
    0x08  fnAddr           int32   kernel base address
    0x0c  insOffset        int32   byte offset of the instrumented
                                   instruction within the kernel
    0x10  PRSpill          int32   spilled predicate file
    0x14  CCSpill          int32   spilled carry flag
    0x18  GPRSpill[16]     int32[] caller-saved register spill slots
    0x58  insEncoding      int32   low word of the instruction encoding

``SASSIMemoryParams`` (0x18 bytes at frame+0x60) — address, properties
(read/write/atomic/volatile bits), width in bytes, domain (memory space).

``SASSICondBranchParams`` (0x10 bytes at frame+0x60) — per-thread branch
direction, taken-target offset, flags.

``SASSIRegisterParams`` (0x28 bytes; at frame+0x60, after the memory
params when both are marshaled at +0x78) — destination-register count,
register numbers, and per-thread values (writable for error injection).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.isa.instruction import MemSpace
from repro.isa.opcodes import Opcode, OpClass, OPCODE_CLASSES
from repro.sim.warp import WARP_SIZE

# ---- SASSIBeforeParams/AfterParams layout ----
BP_ID = 0x00
BP_WILL_EXECUTE = 0x04
BP_FN_ADDR = 0x08
BP_INS_OFFSET = 0x0C
BP_PR_SPILL = 0x10
BP_CC_SPILL = 0x14
BP_GPR_SPILL = 0x18          # 16 slots, 4 bytes each
BP_INS_ENCODING = 0x58
BP_SIZE = 0x60
NUM_SPILL_SLOTS = 16

# ---- SASSIMemoryParams ----
MP_ADDRESS = 0x00            # int64
MP_PROPERTIES = 0x08
MP_WIDTH = 0x0C
MP_DOMAIN = 0x10
MP_SIZE = 0x18

PROP_IS_LOAD = 1 << 0
PROP_IS_STORE = 1 << 1
PROP_IS_ATOMIC = 1 << 2
PROP_IS_UNIFORM = 1 << 3
PROP_IS_VOLATILE = 1 << 4

# ---- SASSICondBranchParams ----
BRP_DIRECTION = 0x00
BRP_TAKEN_OFFSET = 0x04
BRP_FLAGS = 0x08
BRP_SIZE = 0x10

BRP_FLAG_IS_BREAK = 1 << 0   # the branch is a BRK (loop exit)

# ---- SASSIRegisterParams ----
MAX_REG_DSTS = 4
RP_NUM_DSTS = 0x00
RP_REG_NUMS = 0x04           # MAX_REG_DSTS slots
RP_VALUES = 0x14             # MAX_REG_DSTS slots
RP_SIZE = 0x28


def frame_layout(with_memory: bool, with_branch: bool, with_regs: bool):
    """Byte offsets of each parameter object within the frame and the
    total (16-aligned) frame size.  Matches Figure 2's 0x80 frame for
    before+memory instrumentation."""
    offset = BP_SIZE
    memory_at = branch_at = regs_at = None
    if with_memory:
        memory_at = offset
        offset += MP_SIZE
    if with_branch:
        branch_at = offset
        offset += BRP_SIZE
    if with_regs:
        regs_at = offset
        offset += RP_SIZE
    frame = (offset + 0xF) & ~0xF
    return memory_at, branch_at, regs_at, frame


class _View:
    """Base accessor over per-lane objects in simulated local memory.

    Row reads are served with one fancy-index gather over the CTA's
    local byte block (all active lanes at once) and memoized for the
    view's lifetime — a handler that asks for the same field twice pays
    once.  ``vectorized=False`` keeps the original per-lane
    ``Memory.read`` loop as the bit-exact differential reference; the
    gather also falls back to it whenever an access would leave the
    backed local window, so faults carry the per-lane address.
    """

    def __init__(self, executor, warp, cta, mask: np.ndarray, base: int,
                 lanes: Optional[np.ndarray] = None,
                 vectorized: bool = True):
        self._executor = executor
        self._warp = warp
        self._cta = cta
        self.mask = mask
        self._base = base
        if lanes is None:
            lanes = np.nonzero(mask)[0]
        self._lane_idx = lanes
        self._lanes_list: Optional[List[int]] = None
        self._vectorized = vectorized
        self._row_cache: dict = {}

    @property
    def _lanes(self) -> List[int]:
        if self._lanes_list is None:
            self._lanes_list = [int(l) for l in self._lane_idx]
        return self._lanes_list

    def _mem(self, lane: int):
        tid = int(self._warp.lane_thread_ids[lane])
        return self._cta.local_mem(tid)

    def _read_lane(self, lane: int, offset: int, width: int = 4) -> int:
        return self._mem(lane).read(self._base + offset, width)

    def _write_lane(self, lane: int, offset: int, value: int,
                    width: int = 4) -> None:
        self._row_cache.clear()
        self._mem(lane).write(self._base + offset, width, value)

    def _read_static(self, offset: int, width: int = 4) -> int:
        if self._lane_idx.size == 0:
            return 0
        key = (offset, width)
        value = self._row_cache.get(key)
        if value is None:
            value = self._read_lane(int(self._lane_idx[0]), offset, width)
            self._row_cache[key] = value
        return value

    def _read_row(self, offset: int, width: int = 4,
                  dtype=np.int64) -> np.ndarray:
        key = (offset, width, np.dtype(dtype).str)
        row = self._row_cache.get(key)
        if row is None:
            row = self._read_row_uncached(offset, width, dtype)
            self._row_cache[key] = row
        # handlers may mutate what they get back; the cache keeps its own
        return row.copy()

    def _read_row_uncached(self, offset: int, width: int,
                           dtype) -> np.ndarray:
        row = np.zeros(WARP_SIZE, dtype=dtype)
        idx = self._lane_idx
        if idx.size == 0:
            return row
        start = self._base + offset
        block = self._cta.local_block()
        if not self._vectorized or start < 0 \
                or start + width > block.shape[1]:
            for lane in self._lanes:
                row[lane] = self._read_lane(lane, offset, width)
            return row
        tids = self._warp.lane_thread_ids[idx]
        cols = start + np.arange(width, dtype=np.int64)
        raw = np.ascontiguousarray(block[tids[:, None], cols[None, :]])
        if width == 4:
            words = raw.view("<u4")[:, 0]
        elif width == 8:
            words = raw.view("<u8")[:, 0]
        else:
            words = np.zeros(idx.size, dtype=np.uint64)
            for byte in range(width):
                words |= raw[:, byte].astype(np.uint64) \
                    << np.uint64(8 * byte)
        row[idx] = words.astype(dtype, copy=False)
        return row


class SASSIBeforeParams(_View):
    """Accessor matching the paper's Figure 2(b) C++ class."""

    def GetID(self) -> int:
        return self._read_static(BP_ID)

    def GetFnAddr(self) -> int:
        return self._read_static(BP_FN_ADDR)

    def GetInsOffset(self) -> int:
        return self._read_static(BP_INS_OFFSET)

    def GetInsAddr(self) -> int:
        return self.GetFnAddr() + self.GetInsOffset()

    def GetInsEncoding(self) -> int:
        return self._read_static(BP_INS_ENCODING)

    def GetInstrWillExecute(self) -> np.ndarray:
        """Per-lane booleans (guard outcome of the instrumented
        instruction)."""
        return self._read_row(BP_WILL_EXECUTE).astype(bool)

    def GetOpcode(self) -> Opcode:
        return Opcode(self.GetInsEncoding() & 0x1FF)

    def _classes(self) -> OpClass:
        return OPCODE_CLASSES[self.GetOpcode()]

    def IsMem(self) -> bool:
        return bool(self._classes() & OpClass.MEMORY)

    def IsMemRead(self) -> bool:
        return bool(self._classes() & OpClass.MEM_READ)

    def IsMemWrite(self) -> bool:
        return bool(self._classes() & OpClass.MEM_WRITE)

    def IsSpillOrFill(self) -> bool:
        return self.GetOpcode() in (Opcode.LDL, Opcode.STL)

    def IsSurfaceMemory(self) -> bool:
        return False

    def IsControlXfer(self) -> bool:
        return bool(self._classes() & OpClass.CONTROL)

    def IsCondControlXfer(self) -> bool:
        # guard bits live in the encoding: pred index != 7 or negated
        encoding = self.GetInsEncoding()
        pred = (encoding >> 9) & 0x7
        negated = bool((encoding >> 12) & 1)
        return self.IsControlXfer() and (pred != 7 or negated)

    def IsSync(self) -> bool:
        return bool(self._classes() & OpClass.SYNC)

    def IsNumeric(self) -> bool:
        return bool(self._classes() & OpClass.NUMERIC)

    def IsTexture(self) -> bool:
        return bool(self._classes() & OpClass.TEXTURE)

    # convenience beyond the paper: the compile-time Instruction object
    # (SASSI §9.4, "exploiting compile-time information").  The runtime
    # pre-seeds ``_instruction`` from its per-site cache so repeated
    # invocations skip the program scan entirely.
    def GetInstruction(self):
        cached = self.__dict__.get("_instruction", False)
        if cached is not False:
            return cached
        result = None
        program = self._executor.device.program
        for kernel in program.kernels.values():
            if kernel.base_address == self.GetFnAddr():
                result = kernel.instructions[
                    kernel.index_of_pc(self.GetInsAddr())]
                break
        self._instruction = result
        return result


class SASSIAfterParams(SASSIBeforeParams):
    """After-site accessor (same layout as the before params)."""


class SASSIMemoryParams(_View):
    """Accessor matching the paper's Figure 2(c) C++ class."""

    def GetAddress(self) -> np.ndarray:
        """Per-lane effective addresses (uint64)."""
        return self._read_row(MP_ADDRESS, width=8, dtype=np.uint64)

    def _properties(self) -> int:
        return self._read_static(MP_PROPERTIES)

    def IsLoad(self) -> bool:
        return bool(self._properties() & PROP_IS_LOAD)

    def IsStore(self) -> bool:
        return bool(self._properties() & PROP_IS_STORE)

    def IsAtomic(self) -> bool:
        return bool(self._properties() & PROP_IS_ATOMIC)

    def IsUniform(self) -> bool:
        return bool(self._properties() & PROP_IS_UNIFORM)

    def IsVolatile(self) -> bool:
        return bool(self._properties() & PROP_IS_VOLATILE)

    def GetWidth(self) -> int:
        return self._read_static(MP_WIDTH)

    def GetDomain(self) -> MemSpace:
        return MemSpace(self._read_static(MP_DOMAIN))


class SASSICondBranchParams(_View):
    """Conditional-branch info for Case Study I's handler."""

    def GetDirection(self) -> np.ndarray:
        """Per-lane booleans: will this thread take the branch?"""
        return self._read_row(BRP_DIRECTION).astype(bool)

    def GetTakenOffset(self) -> int:
        return self._read_static(BRP_TAKEN_OFFSET)

    def IsLoopBreak(self) -> bool:
        return bool(self._read_static(BRP_FLAGS) & BRP_FLAG_IS_BREAK)


class SASSIRegisterParams(_View):
    """Destination-register info for value profiling / error injection."""

    def GetNumGPRDsts(self) -> int:
        return self._read_static(RP_NUM_DSTS)

    def GetGPRDst(self, index: int) -> int:
        """Register *number* of destination *index* (the paper's
        SASSIGPRRegInfo collapses to the register number here)."""
        return self._read_static(RP_REG_NUMS + 4 * index)

    GetRegNum = GetGPRDst

    def GetRegValue(self, index: int) -> np.ndarray:
        """Per-lane value written to destination *index* (uint32)."""
        return self._read_row(RP_VALUES + 4 * index,
                              dtype=np.int64).astype(np.uint32)

    def SetRegValue(self, index: int, lane: int, value: int) -> None:
        """Overwrite the value for one lane; with
        ``writeback_registers`` the injected sequence reloads it into the
        architectural register after the handler returns — the paper's
        error-injection mechanism."""
        self._write_lane(lane, RP_VALUES + 4 * index,
                         int(value) & 0xFFFFFFFF)
