"""Instrumentation specification: *where* and *what*.

The paper (Section 3.1/3.2): "Currently SASSI supports inserting
instrumentation before any and all SASS instructions.  Certain classes of
instructions can be targeted: control transfer instructions, memory
operations, call instructions, instructions that read registers, and
instructions that write registers.  SASSI also supports inserting
instrumentation after all instructions other than branches and jumps."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


class Where(enum.Enum):
    BEFORE = "before"
    AFTER = "after"


class InstClass(enum.Enum):
    """Site-selection classes (the *where* menu)."""

    ALL = "all"
    MEMORY = "memory"
    BRANCHES = "branches"          # conditional control transfers
    CONTROL = "control"            # any control transfer
    CALLS = "calls"
    REG_READS = "reg-reads"
    REG_WRITES = "reg-writes"

    def matches(self, instr: Instruction) -> bool:
        if self is InstClass.ALL:
            return True
        if self is InstClass.MEMORY:
            return instr.is_memory
        if self is InstClass.BRANCHES:
            return instr.is_cond_control_xfer
        if self is InstClass.CONTROL:
            return instr.is_control_xfer
        if self is InstClass.CALLS:
            return instr.is_call
        if self is InstClass.REG_READS:
            return bool(instr.gpr_uses())
        if self is InstClass.REG_WRITES:
            return bool(instr.gpr_defs()) or bool(instr.pred_defs())
        raise AssertionError(self)


class What(enum.Enum):
    """Extra parameter objects to marshal (the *what* menu)."""

    MEMORY = "mem-info"
    COND_BRANCH = "cond-branch-info"
    REGISTERS = "reg-info"


@dataclass(frozen=True)
class InstrumentationSpec:
    """A full instrumentation request.

    * ``before``/``after`` — instruction classes to instrument at each
      position (empty set = don't instrument there).
    * ``what`` — which extra parameter objects to build and pass.
    * ``before_handler``/``after_handler`` — handler symbol names the
      injected ``JCAL`` targets (resolved by the device "linker").
    * ``writeback_registers`` — after the after-handler returns, reload
      destination-register values from the register parameter object
      (lets handlers modify architectural state: the error-injection
      study's requirement).
    * ``skip_redundant_spills`` — the Section 9.1 optimization ablation:
      skip re-spilling registers already spilled at an earlier site of
      the same basic block and not redefined since.
    """

    before: FrozenSet[InstClass] = frozenset()
    after: FrozenSet[InstClass] = frozenset()
    what: FrozenSet[What] = frozenset()
    before_handler: str = "sassi_before_handler"
    after_handler: str = "sassi_after_handler"
    writeback_registers: bool = False
    skip_redundant_spills: bool = False
    #: maximum registers the handler may use (the -maxrregcount cap the
    #: paper imposes; the runtime enforces it on registered handlers).
    handler_register_cap: int = 16

    def instruments_before(self, instr: Instruction) -> bool:
        if instr.tag == "sassi":
            return False
        return any(c.matches(instr) for c in self.before)

    def instruments_after(self, instr: Instruction) -> bool:
        if instr.tag == "sassi":
            return False
        # "after all instructions other than branches and jumps"
        if instr.is_control_xfer:
            return False
        if instr.opcode in (Opcode.SSY, Opcode.PBK, Opcode.NOP, Opcode.BPT):
            return False
        return any(c.matches(instr) for c in self.after)


@dataclass(frozen=True)
class SpecDelta:
    """An incremental edit to an :class:`InstrumentationSpec`.

    A campaign that re-specs mid-run ships a delta rather than a whole
    new spec: ``apply`` produces the edited spec, and because the result
    is content-addressed the same way as any other spec, the compile
    cache is exercised with deltas (hit on the re-specced kernel the
    second time it is seen) instead of treating every re-spec as a brand
    new compilation universe.  Removals are applied after additions, so
    a class named in both is removed.
    """

    before_add: FrozenSet[InstClass] = frozenset()
    before_remove: FrozenSet[InstClass] = frozenset()
    after_add: FrozenSet[InstClass] = frozenset()
    after_remove: FrozenSet[InstClass] = frozenset()
    what_add: FrozenSet[What] = frozenset()
    what_remove: FrozenSet[What] = frozenset()

    def apply(self, spec: InstrumentationSpec) -> InstrumentationSpec:
        from dataclasses import replace

        return replace(
            spec,
            before=(spec.before | self.before_add) - self.before_remove,
            after=(spec.after | self.after_add) - self.after_remove,
            what=(spec.what | self.what_add) - self.what_remove,
        )
