"""Handler runtime: registration, trampoline construction, contexts.

A handler is registered under a symbol name (``sassi_before_handler`` by
default) with the runtime, which plays ``nvlink``'s role: it assigns the
symbol a trampoline address on the device, and the injected ``JCAL``
transfers control there.  Two authoring styles are supported:

* **warp handlers** (``kind="warp"``) receive one :class:`SASSIContext`
  per site with warp-wide parameter views and mask-level intrinsics —
  the fast path used by the case-study library;
* **thread handlers** (``kind="thread"``) are generator functions run
  per active lane in lock step by :mod:`repro.sassi.threadsimt`, with
  ``__ballot``/``__shfl``-style intrinsics — the faithful transliteration
  of the paper's CUDA handlers.

The runtime enforces the paper's 16-register handler cap (the
``-maxrregcount`` constraint of Section 3.2) and, after every handler
call, *poisons* the caller-saved registers of the calling lanes: any
under-spilling by the injector is then caught immediately by tests
rather than silently tolerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.backend import CompileOptions, ptxas
from repro.isa.program import SassKernel
from repro.sassi import params as P
from repro.sassi.abi import CALLER_SAVED, frame_parts
from repro.sassi.inject import InjectionReport, instrument_kernel
from repro.sassi.params import (
    SASSIAfterParams,
    SASSIBeforeParams,
    SASSICondBranchParams,
    SASSIMemoryParams,
    SASSIRegisterParams,
)
from repro.sassi.spec import InstrumentationSpec, What, Where
from repro.sassi.threadsimt import ThreadHandlerError, run_warp_handler
from repro.sim.memory import GLOBAL_BASE, LOCAL_BASE
from repro.sim.warp import mask_to_u32
from repro.telemetry.collector import TELEMETRY, span as telemetry_span

POISON = 0xDEADBEEF


class HandlerRegistrationError(Exception):
    """Bad handler registration (unknown kind, register cap exceeded)."""


@dataclass
class _Registration:
    name: str
    fn: Callable
    kind: str
    registers: int


class SASSIContext:
    """Warp-level view of one instrumentation site.

    Attributes:

    * ``bp``/``ap`` — the before/after parameter view.
    * ``mp``/``brp``/``rp`` — extra parameter views (``None`` when the
      spec did not marshal them).
    * ``mask`` — boolean lane mask of threads at the site.
    * intrinsics — ``ballot``, ``all_``, ``any_``, ``shfl``, ``popc``,
      ``ffs``, ``leader`` plus device-memory atomics.
    """

    def __init__(self, executor, warp, cta, mask, bp, mp=None, brp=None,
                 rp=None, where: Where = Where.BEFORE, lanes=None,
                 vectorized: bool = True):
        self.executor = executor
        self.device = executor.device
        self.warp = warp
        self.cta = cta
        self.mask = mask
        self.where = where
        self.bp = bp
        self.ap = bp if where is Where.AFTER else None
        self.mp = mp
        self.brp = brp
        self.rp = rp
        if lanes is None:
            lanes = np.nonzero(mask)[0]
        #: active-lane indices at the site (ndarray, ascending)
        self.lanes_idx = lanes
        #: number of active lanes at the site
        self.num_active = int(lanes.size)
        self._vectorized = vectorized
        self._lanes_list = None
        #: sampling weight of this firing (1 = exact).  When the site is
        #: sampled at rate 1/N the executor sets this to N; handlers
        #: multiply additive counter increments by it so their device
        #: buffers hold unbiased estimates of the exact counts.
        self.sample_rate = getattr(executor, "_sample_rate", 1)

    # ---- warp intrinsics over the site mask ----

    def ballot(self, values) -> int:
        """``__ballot`` over the active lanes at the site."""
        values = np.asarray(values)
        if not self._vectorized:
            # per-lane reference loop (the differential baseline the
            # packed path must bit-match; see the hypothesis suite)
            result = 0
            for lane in np.nonzero(self.mask)[0]:
                if values[lane] if values.shape else values:
                    result |= 1 << int(lane)
            return result
        if values.shape:
            voting = self.mask & (values != 0)
        elif values:
            voting = self.mask
        else:
            voting = np.zeros_like(self.mask)
        return mask_to_u32(voting)

    def active_mask(self) -> int:
        if not self._vectorized:
            return self.ballot(np.ones(len(self.mask), dtype=bool))
        return mask_to_u32(self.mask)

    def all_(self, values) -> bool:
        values = np.asarray(values)
        if values.shape:
            return bool(values[self.lanes_idx].all())
        return bool(values.all())

    def any_(self, values) -> bool:
        values = np.asarray(values)
        if values.shape:
            return bool(values[self.lanes_idx].any())
        return bool(values.any())

    def shfl(self, values, src_lane: int):
        return np.asarray(values)[src_lane]

    def leader(self) -> int:
        """The first active lane (the ``__ffs(__ballot(1))-1`` idiom)."""
        idx = self.lanes_idx
        return int(idx[0]) if idx.size else -1

    def lanes(self):
        if self._lanes_list is None:
            self._lanes_list = [int(l) for l in self.lanes_idx]
        return list(self._lanes_list)

    # ---- device-memory access (handler-side atomics & loads) ----

    def _offset(self, address: int, width: int) -> int:
        offset = int(address) - GLOBAL_BASE
        return offset

    def atomic_add(self, address: int, value: int, width: int = 8) -> int:
        return self.device_atomic(address, value, width, "add")

    def atomic_and(self, address: int, value: int, width: int = 4) -> int:
        return self.device_atomic(address, value, width, "and")

    def atomic_or(self, address: int, value: int, width: int = 4) -> int:
        return self.device_atomic(address, value, width, "or")

    def device_atomic(self, address: int, value: int, width: int,
                      op: str) -> int:
        mem = self.device.global_mem
        offset = self._offset(address, width)
        old = mem.read(offset, width)
        if op == "add":
            new = old + int(value)
        elif op == "and":
            new = old & int(value)
        elif op == "or":
            new = old | int(value)
        elif op == "exch":
            new = int(value)
        elif op == "min":
            new = min(old, int(value))
        elif op == "max":
            new = max(old, int(value))
        else:
            raise ValueError(f"unknown atomic op {op!r}")
        mem.write(offset, width, new & ((1 << (8 * width)) - 1))
        return old

    def read_device(self, address: int, width: int = 4) -> int:
        return self.device.global_mem.read(self._offset(address, width),
                                           width)

    def write_device(self, address: int, value: int, width: int = 4) -> None:
        self.device.global_mem.write(self._offset(address, width), width,
                                     int(value))


class SASSIThreadContext:
    """Per-lane view handed to thread-level handlers."""

    def __init__(self, warp_ctx: SASSIContext, lane: int):
        self._ctx = warp_ctx
        self.lane_id = lane
        self.sample_rate = warp_ctx.sample_rate
        self.thread_idx = int(warp_ctx.warp.lane_thread_ids[lane])
        self.bp = _LaneView(warp_ctx.bp, lane)
        self.ap = _LaneView(warp_ctx.bp, lane) \
            if warp_ctx.where is Where.AFTER else None
        self.mp = _LaneView(warp_ctx.mp, lane) if warp_ctx.mp else None
        self.brp = _LaneView(warp_ctx.brp, lane) if warp_ctx.brp else None
        self.rp = _LaneView(warp_ctx.rp, lane) if warp_ctx.rp else None


class _LaneView:
    """Scalarizes a warp-level parameter view for one lane: any method
    returning a per-lane row returns this lane's element instead."""

    def __init__(self, view, lane: int):
        self._view = view
        self._lane = lane

    def __getattr__(self, name):
        method = getattr(self._view, name)

        def scalarized(*args, **kwargs):
            result = method(*args, **kwargs)
            if isinstance(result, np.ndarray) and result.shape:
                return result[self._lane].item()
            return result

        return scalarized


class SassiRuntime:
    """Registers handlers and produces the compiler's final pass."""

    def __init__(self, device, poison_caller_saved: bool = True,
                 vectorize_contexts: bool = True):
        self.device = device
        self.poison_caller_saved = poison_caller_saved
        #: serve context/param reads with warp-wide gathers; False keeps
        #: the per-lane scalar paths (the differential reference)
        self.vectorize_contexts = vectorize_contexts
        self._registrations: Dict[str, _Registration] = {}
        self._spec: Optional[InstrumentationSpec] = None
        self.reports: List[InjectionReport] = []
        #: (fn_addr, ins_offset, where) -> site decode: the Instruction
        #: object and the frame layout, resolved once per site instead
        #: of per invocation (cleared when a new spec is instrumented)
        self._site_cache: dict = {}
        self._poison_rows: dict = {}

    # ---------------------------------------------------- registration

    def register_handler(self, name: str, fn: Callable, kind: str = "warp",
                         registers: int = 16,
                         where: Optional[Where] = None) -> None:
        """Register *fn* under handler symbol *name*.

        ``kind`` is ``"warp"`` or ``"thread"``; *registers* declares the
        handler's register footprint (checked against the spec's cap at
        instrumentation time, mirroring ``-maxrregcount=16``).  ``where``
        selects the parameter-view flavour (before/after); by default it
        is inferred from the symbol name, matching the paper's
        ``sassi_before_handler``/``sassi_after_handler`` convention.
        """
        if kind not in ("warp", "thread"):
            raise HandlerRegistrationError(f"unknown handler kind {kind!r}")
        if where is None:
            where = Where.AFTER if "after" in name else Where.BEFORE
        registration = _Registration(name, fn, kind, registers)
        self._registrations[name] = registration
        address = self.device.program.add_handler_symbol(name)
        self.device.handler_bindings[address] = self._make_binding(
            registration, where)

    def register_before_handler(self, fn: Callable, kind: str = "warp",
                                registers: int = 16,
                                name: str = "sassi_before_handler") -> None:
        self.register_handler(name, fn, kind, registers)

    def register_after_handler(self, fn: Callable, kind: str = "warp",
                               registers: int = 16,
                               name: str = "sassi_after_handler") -> None:
        self.register_handler(name, fn, kind, registers)

    # -------------------------------------------------- instrumentation

    def instrument(self, spec: InstrumentationSpec) -> Callable:
        """A ``final_pass`` for :func:`repro.backend.ptxas`."""
        for handler_name in (spec.before_handler if spec.before else None,
                             spec.after_handler if spec.after else None):
            if handler_name is None:
                continue
            registration = self._registrations.get(handler_name)
            if registration is not None \
                    and registration.registers > spec.handler_register_cap:
                raise HandlerRegistrationError(
                    f"handler {handler_name!r} declares "
                    f"{registration.registers} registers; the cap is "
                    f"{spec.handler_register_cap} (recompile the handler "
                    f"with -maxrregcount={spec.handler_register_cap})")
        self._spec = spec
        self._site_cache.clear()

        def final_pass(kernel: SassKernel) -> SassKernel:
            report = InjectionReport()
            fn_addr = self.device.program.preassign_base(kernel.name)
            with telemetry_span("inject", kernel=kernel.name):
                instrumented = instrument_kernel(
                    kernel, spec, self.device.program.add_handler_symbol,
                    fn_addr=fn_addr, report=report)
            self.reports.append(report)
            return instrumented

        return final_pass

    def compile(self, kernel_ir, spec: Optional[InstrumentationSpec] = None,
                cache=None) -> SassKernel:
        """``ptxas`` convenience: compile with SASSI as the final pass.

        Pass a :class:`repro.campaign.CompileCache` as *cache* to memoize
        the result content-addressed on (IR, spec); identical requests
        then skip the backend entirely (the campaign layer's contract).
        """
        if cache is not None:
            from repro.campaign.compile_cache import (cached_ptxas,
                                                      cached_sassi_compile)

            if spec is None:
                return cached_ptxas(kernel_ir, cache=cache)
            return cached_sassi_compile(self, kernel_ir, spec, cache=cache)
        options = CompileOptions(
            final_pass=self.instrument(spec) if spec else None)
        with telemetry_span("compile", kernel=kernel_ir.name):
            return ptxas(kernel_ir, options)

    def adopt_cached_compile(self, spec: InstrumentationSpec,
                             report: InjectionReport) -> None:
        """Account for a compile served from cache: run the same
        registration validation, activate *spec* for handler contexts,
        and record the injection report exactly as a real compile
        would."""
        self.instrument(spec)
        self.reports.append(report)

    # ------------------------------------------------------ trampoline

    def _make_binding(self, registration: _Registration, where: Where):
        def invoke(ctx):
            if registration.kind == "warp":
                registration.fn(ctx)
                return

            def make_gen(lane):
                return registration.fn(SASSIThreadContext(ctx, lane))

            def atomic(address, value, width, op):
                return ctx.device_atomic(address, value, width, op)

            run_warp_handler(ctx.lanes(), make_gen, atomic)

        invocations_key = f"handler.invocations.{registration.name}"

        def binding(executor, warp, cta, mask):
            ctx = self._build_context(executor, warp, cta, mask, where)
            telemetry = TELEMETRY
            if telemetry.enabled:
                telemetry.incr(invocations_key)
                start = telemetry.clock()
                try:
                    invoke(ctx)
                finally:
                    telemetry.add_time("handler_body_seconds",
                                       telemetry.clock() - start)
            else:
                invoke(ctx)
            if self.poison_caller_saved:
                self._poison(warp, mask)

        return binding

    def _build_context(self, executor, warp, cta, mask,
                       where: Where) -> SASSIContext:
        lanes = np.nonzero(mask)[0]
        lane0 = int(lanes[0])
        pointer = int(warp.regs[4, lane0]) \
            | (int(warp.regs[5, lane0]) << 32)
        base = pointer - LOCAL_BASE
        vec = self.vectorize_contexts
        view_cls = SASSIAfterParams if where is Where.AFTER \
            else SASSIBeforeParams
        shared_mask = mask.copy()
        bp = view_cls(executor, warp, cta, shared_mask, base,
                      lanes=lanes, vectorized=vec)
        site_key = (bp.GetFnAddr(), bp.GetInsOffset(), where)
        site = self._site_cache.get(site_key)
        if site is None:
            spec = self._spec or InstrumentationSpec()
            instr = bp.GetInstruction()
            if instr is not None and spec.what:
                (memory_at, branch_at, regs_at, _), wm, wb, wr = \
                    frame_parts(spec, instr, where)
            else:
                memory_at = branch_at = regs_at = None
                wm = wb = wr = False
            site = (instr, memory_at, branch_at, regs_at, wm, wb, wr)
            self._site_cache[site_key] = site
        instr, memory_at, branch_at, regs_at, wm, wb, wr = site
        bp._instruction = instr
        mp = brp = rp = None
        if wm:
            mp = SASSIMemoryParams(executor, warp, cta, shared_mask,
                                   base + memory_at, lanes=lanes,
                                   vectorized=vec)
        if wb:
            brp = SASSICondBranchParams(executor, warp, cta, shared_mask,
                                        base + branch_at, lanes=lanes,
                                        vectorized=vec)
        if wr:
            rp = SASSIRegisterParams(executor, warp, cta, shared_mask,
                                     base + regs_at, lanes=lanes,
                                     vectorized=vec)
        return SASSIContext(executor, warp, cta, shared_mask, bp,
                            mp=mp, brp=brp, rp=rp, where=where,
                            lanes=lanes, vectorized=vec)

    def _poison(self, warp, mask) -> None:
        rows = self._poison_rows.get(warp.num_regs)
        if rows is None:
            rows = np.asarray(
                [reg for reg in sorted(CALLER_SAVED)
                 if reg < warp.num_regs], dtype=np.int64)
            self._poison_rows[warp.num_regs] = rows
        if rows.size:
            warp.regs[np.ix_(rows, mask)] = POISON
