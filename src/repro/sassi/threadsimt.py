"""Lock-step execution engine for *thread-level* handlers.

The paper's handlers are CUDA ``__device__`` functions: every active
thread of the warp runs the handler, and warp-wide intrinsics
(``__ballot``, ``__shfl``, ``__all``) synchronize across lanes.  The
thread-level handler API reproduces that model with Python generators:
the handler is written per-thread and *yields* intrinsic requests; the
engine advances all lanes in lock step, services each warp-wide
intrinsic across the lanes that issued it, and sends the results back.

Example (the ballot idiom from the paper's Figure 4)::

    def handler(t):                       # t: SASSIThreadContext
        direction = t.brp.GetDirection()
        active = yield Ballot(1)
        taken = yield Ballot(direction)
        if t.lane_id == ffs(active) - 1:  # first active lane writes
            yield AtomicAdd(counter_ptr, 1)

A lane that ``return``s early becomes inactive (as in CUDA); later
ballots see only the remaining lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional


class ThreadHandlerError(Exception):
    """Lanes fell out of lock step (yielded different intrinsics)."""


@dataclass(frozen=True)
class Ballot:
    """``__ballot(predicate)``: a mask of lanes whose value is truthy."""

    value: Any


@dataclass(frozen=True)
class All:
    """``__all(predicate)``: 1 iff every participating lane is truthy."""

    value: Any


@dataclass(frozen=True)
class Any_:
    """``__any(predicate)``."""

    value: Any


@dataclass(frozen=True)
class Shfl:
    """``__shfl(value, src_lane)``: read *value* from another lane."""

    value: Any
    src_lane: int


@dataclass(frozen=True)
class AtomicAdd:
    """``atomicAdd`` on device global memory (width 4 or 8 bytes)."""

    address: int
    value: int
    width: int = 8


@dataclass(frozen=True)
class AtomicAnd:
    address: int
    value: int
    width: int = 4


@dataclass(frozen=True)
class AtomicOr:
    address: int
    value: int
    width: int = 4


def ffs(mask: int) -> int:
    """CUDA ``__ffs``: 1-based index of the least-significant set bit."""
    if mask == 0:
        return 0
    return (mask & -mask).bit_length()


def popc(mask: int) -> int:
    """CUDA ``__popc``."""
    return bin(mask & 0xFFFFFFFF).count("1")


def run_warp_handler(lanes: List[int],
                     make_gen: Callable[[int], Generator],
                     atomic: Callable[[int, int, int, str], int]) -> None:
    """Run one generator per lane in lock step.

    *atomic(address, value, width, op)* performs the device-memory
    read-modify-write and returns the old value.
    """
    gens: Dict[int, Generator] = {}
    pending: Dict[int, Any] = {}
    for lane in lanes:
        gens[lane] = make_gen(lane)
        pending[lane] = None

    live = list(lanes)
    inbox: Dict[int, Any] = {lane: None for lane in live}
    while live:
        requests: Dict[int, Any] = {}
        finished: List[int] = []
        for lane in live:
            try:
                requests[lane] = gens[lane].send(inbox[lane])
            except StopIteration:
                finished.append(lane)
        for lane in finished:
            live.remove(lane)
            requests.pop(lane, None)
        if not live:
            break
        kinds = {type(r) for r in requests.values()}
        if len(kinds) != 1:
            raise ThreadHandlerError(
                f"lanes diverged inside a thread handler: {kinds}")
        kind = kinds.pop()
        inbox = _service(kind, requests, atomic)
        for lane in live:
            inbox.setdefault(lane, None)


def _service(kind, requests: Dict[int, Any],
             atomic) -> Dict[int, Any]:
    if kind in (Ballot, All, Any_):
        mask = 0
        for lane, req in requests.items():
            if req.value:
                mask |= 1 << lane
        if kind is Ballot:
            return {lane: mask for lane in requests}
        if kind is All:
            value = 1 if all(bool(r.value) for r in requests.values()) else 0
            return {lane: value for lane in requests}
        value = 1 if mask else 0
        return {lane: value for lane in requests}
    if kind is Shfl:
        values = {lane: req.value for lane, req in requests.items()}
        out = {}
        for lane, req in requests.items():
            out[lane] = values.get(req.src_lane, req.value)
        return out
    if kind is AtomicAdd:
        return {lane: atomic(req.address, req.value, req.width, "add")
                for lane, req in requests.items()}
    if kind is AtomicAnd:
        return {lane: atomic(req.address, req.value, req.width, "and")
                for lane, req in requests.items()}
    if kind is AtomicOr:
        return {lane: atomic(req.address, req.value, req.width, "or")
                for lane, req in requests.items()}
    raise ThreadHandlerError(f"unknown intrinsic request: {kind}")
