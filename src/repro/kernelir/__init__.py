"""PTX-like intermediate representation and kernel-authoring front-end.

This package plays the role of PTX + CUDA in the paper's toolchain: workloads
are authored against :class:`~repro.kernelir.builder.KernelBuilder` (the
"CUDA" of this repo), which produces a typed virtual-register IR.  The
backend (:mod:`repro.backend`) lowers the IR to the SASS-like ISA.

* :mod:`repro.kernelir.types` — the scalar type system.
* :mod:`repro.kernelir.ir` — ops, virtual registers, blocks, kernels.
* :mod:`repro.kernelir.builder` — structured control-flow builder.
* :mod:`repro.kernelir.ptxtext` — PTX-style text emitter and parser.
* :mod:`repro.kernelir.verify` — the IR verifier.
"""

from repro.kernelir.types import Type
from repro.kernelir.ir import (
    Block,
    CmpOp,
    IRInstr,
    IROp,
    KernelIR,
    ParamDecl,
    VReg,
)
from repro.kernelir.builder import KernelBuilder
from repro.kernelir.verify import IRVerificationError, verify_kernel

__all__ = [
    "Type",
    "Block",
    "CmpOp",
    "IRInstr",
    "IROp",
    "KernelIR",
    "ParamDecl",
    "VReg",
    "KernelBuilder",
    "IRVerificationError",
    "verify_kernel",
]
