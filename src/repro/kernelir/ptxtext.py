"""PTX-style textual form of the IR.

The toolchain mirrors NVIDIA's: the front-end (KernelBuilder) produces IR,
which can be serialized to a PTX-like text form, shipped around, parsed
back, and fed to the backend compiler.  ``emit_ptx``/``parse_ptx``
round-trip exactly (tested property-style over generated kernels).

Syntax example::

    .visible .entry vecadd (.param .u32 n, .param .u64 a)
    {
    entry:
        ld.const.u32   %r0, [0x140];
        mov.u32        %r1, %tid.x;
        setp.lt.u32    %p2, %r1, %r0;
        cbra           %p2, then_1, merge_2;
    then_1:
        ...
        bra            merge_2;
    merge_2:
        ret;
    }
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.kernelir.ir import (
    AtomOp,
    Block,
    CmpOp,
    Const,
    IRInstr,
    IROp,
    KernelIR,
    LoopInfo,
    ParamDecl,
    Space,
    Value,
    VReg,
)
from repro.kernelir.types import Type


def _format_value(value: Value) -> str:
    if isinstance(value, VReg):
        return repr(value)
    if isinstance(value, Const):
        if value.type.is_float:
            return f"0F{_float_bits(float(value.value)):08x}"
        return str(value.value)
    raise TypeError(f"not a value: {value!r}")


def _float_bits(value: float) -> int:
    import struct

    return struct.unpack("<I", struct.pack("<f", value))[0]


def _bits_float(bits: int) -> float:
    import struct

    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


def _mnemonic(instr: IRInstr) -> str:
    parts = [instr.op.value]
    if instr.space is not None:
        parts.append(instr.space.value)
    if instr.atom is not None:
        parts.append(instr.atom.value)
    if instr.cmp is not None:
        parts.append(instr.cmp.value)
    if instr.type is not None:
        parts.append(instr.type.value)
    return ".".join(parts)


def emit_instr(instr: IRInstr) -> str:
    operands: List[str] = []
    if instr.dst is not None:
        operands.append(repr(instr.dst))
    if instr.op is IROp.SREG:
        operands.append(f"%{instr.sreg}")
    for src in instr.srcs:
        operands.append(_format_value(src))
    operands.extend(instr.targets)
    text = _mnemonic(instr)
    if operands:
        text += " " + ", ".join(operands)
    return text + ";"


def emit_ptx(kernel: KernelIR) -> str:
    """Serialize *kernel* to PTX-like text."""
    params = ", ".join(f".param .{p.type.value} {p.name}" for p in kernel.params)
    lines = [f".visible .entry {kernel.name} ({params})"]
    if kernel.shared_bytes:
        lines.append(f".shared .align 8 .b8 __smem[{kernel.shared_bytes}];")
    for loop in kernel.loops:
        lines.append(f".loop {loop.header} {loop.exit} {loop.preheader}")
    lines.append("{")
    for block in kernel.blocks:
        annotation = f"  .in {' '.join(block.loops)}" if block.loops else ""
        lines.append(f"{block.label}:{annotation}")
        for instr in block.instrs:
            lines.append(f"    {emit_instr(instr)}")
    lines.append("}")
    return "\n".join(lines) + "\n"


_VREG_RE = re.compile(r"^%[rpf](\d+)$")
_SREG_RE = re.compile(r"^%(tid|ctaid|ntid|nctaid)\.([xyz])$|^%(laneid|warpid|clock|activemask)$")
_ENTRY_RE = re.compile(r"^\.visible \.entry (\w+) \((.*)\)$")
_SHARED_RE = re.compile(r"^\.shared .* \.b8 __smem\[(\d+)\];$")

_SPACES = {s.value: s for s in Space}
_ATOMS = {a.value: a for a in AtomOp}
_CMPS = {c.value: c for c in CmpOp}
_TYPES = {t.value: t for t in Type}

#: mnemonic stems sorted longest-first so 'mul.wide' wins over 'mul'.
_OP_STEMS = sorted(((op.value, op) for op in IROp),
                   key=lambda pair: -len(pair[0]))


def _parse_mnemonic(text: str) -> Tuple[IROp, Dict[str, object]]:
    for stem, op in _OP_STEMS:
        if text == stem or text.startswith(stem + "."):
            attrs: Dict[str, object] = {}
            rest = text[len(stem):].lstrip(".")
            for token in (rest.split(".") if rest else []):
                if token in _SPACES:
                    attrs["space"] = _SPACES[token]
                elif token in _ATOMS and op is IROp.ATOM:
                    attrs["atom"] = _ATOMS[token]
                elif token in _CMPS:
                    attrs["cmp"] = _CMPS[token]
                elif token in _TYPES:
                    attrs["type"] = _TYPES[token]
                else:
                    raise ValueError(f"bad mnemonic token {token!r} in {text!r}")
            return op, attrs
    raise ValueError(f"unknown mnemonic: {text!r}")


def _parse_value(token: str, vregs: Dict[int, VReg],
                 type_hint: Optional[Type]) -> Value:
    match = _VREG_RE.match(token)
    if match:
        reg_id = int(match.group(1))
        if reg_id not in vregs:
            raise ValueError(f"use of unknown vreg {token}")
        return vregs[reg_id]
    if token.startswith("0F"):
        return Const(_bits_float(int(token[2:], 16)), Type.F32)
    value = int(token, 0)
    return Const(value, type_hint or Type.S32)


def parse_ptx(text: str) -> KernelIR:
    """Parse PTX-like text back into a :class:`KernelIR`."""
    name: Optional[str] = None
    params: List[ParamDecl] = []
    shared_bytes = 0
    blocks: List[Block] = []
    loops: List[LoopInfo] = []
    current: Optional[Block] = None
    vregs: Dict[int, VReg] = {}

    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line or line in "{}":
            continue
        entry = _ENTRY_RE.match(line)
        if entry:
            name = entry.group(1)
            for decl in filter(None, (d.strip() for d in entry.group(2).split(","))):
                parts = decl.split()
                params.append(ParamDecl(parts[2], Type.from_name(parts[1][1:])))
            continue
        shared = _SHARED_RE.match(line)
        if shared:
            shared_bytes = int(shared.group(1))
            continue
        if line.startswith(".loop "):
            parts = line.split()
            loops.append(LoopInfo(parts[1], parts[2], parts[3]))
            continue
        label_match = re.match(r"^(\w+):(?:\s+\.in\s+(.*))?$", line)
        if label_match:
            members = tuple(label_match.group(2).split()) \
                if label_match.group(2) else ()
            current = Block(label_match.group(1), loops=members)
            blocks.append(current)
            continue
        if current is None:
            raise ValueError(f"instruction outside block: {line!r}")
        current.instrs.append(_parse_instr(line.rstrip(";"), vregs))

    if name is None:
        raise ValueError("missing .entry")
    kernel = KernelIR(name=name, params=tuple(params), blocks=blocks,
                      shared_bytes=shared_bytes,
                      num_vregs=max(vregs) + 1 if vregs else 0,
                      loops=loops)
    return kernel


def _parse_instr(line: str, vregs: Dict[int, VReg]) -> IRInstr:
    mnemonic, _, operand_text = line.partition(" ")
    op, attrs = _parse_mnemonic(mnemonic)
    tokens = [t.strip() for t in operand_text.split(",") if t.strip()]
    type_ = attrs.get("type")

    dst: Optional[VReg] = None
    sreg: Optional[str] = None
    srcs: List[Value] = []
    targets: List[str] = []

    produces = op not in (IROp.ST, IROp.BAR, IROp.MEMBAR, IROp.BR,
                          IROp.CBR, IROp.RET)
    position = 0
    if produces and tokens:
        match = _VREG_RE.match(tokens[0])
        if not match:
            raise ValueError(f"expected destination vreg in {line!r}")
        reg_id = int(match.group(1))
        dst_type = Type.PRED if op in (IROp.SETP, IROp.PAND, IROp.POR,
                                       IROp.PNOT) else (type_ or Type.S32)
        dst = vregs.setdefault(reg_id, VReg(reg_id, dst_type))
        position = 1
    value_tokens = []
    for token in tokens[position:]:
        if _SREG_RE.match(token):
            sreg = token[1:]
        elif re.match(r"^%[rpf]\d+$", token) or re.match(r"^-?\d", token) \
                or token.startswith("0F") or token.startswith(("0x", "-0x")):
            value_tokens.append(token)
        else:
            targets.append(token)
    for index, token in enumerate(value_tokens):
        hint = type_
        if op is IROp.CBR and index == 0:
            hint = Type.PRED
        # The trailing operand of LD/ST is a byte offset, not data; a
        # lone LD operand is a constant-bank offset (parameter load).
        if op in (IROp.LD, IROp.ST) and index == len(value_tokens) - 1:
            hint = Type.S32
        srcs.append(_parse_value(token, vregs, hint))
    return IRInstr(op, dst=dst, srcs=tuple(srcs), type=type_,
                   cmp=attrs.get("cmp"), space=attrs.get("space"),
                   atom=attrs.get("atom"), sreg=sreg,
                   targets=tuple(targets))
