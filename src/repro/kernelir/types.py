"""Scalar type system of the PTX-like IR.

Types mirror PTX's fundamental types.  Pointers are 64-bit unsigned
integers (``Type.U64``); 64-bit values occupy aligned register pairs after
lowering, as on the target ISA.
"""

from __future__ import annotations

import enum


class Type(enum.Enum):
    """A PTX-style scalar type."""

    S32 = "s32"
    U32 = "u32"
    F32 = "f32"
    S64 = "s64"
    U64 = "u64"
    PRED = "pred"

    @property
    def bits(self) -> int:
        if self is Type.PRED:
            return 1
        return 64 if self in (Type.S64, Type.U64) else 32

    @property
    def bytes(self) -> int:
        return max(1, self.bits // 8)

    @property
    def is_signed(self) -> bool:
        return self in (Type.S32, Type.S64)

    @property
    def is_float(self) -> bool:
        return self is Type.F32

    @property
    def is_integer(self) -> bool:
        return self in (Type.S32, Type.U32, Type.S64, Type.U64)

    @property
    def is_wide(self) -> bool:
        return self.bits == 64

    @classmethod
    def from_name(cls, name: str) -> "Type":
        for member in cls:
            if member.value == name:
                return member
        raise ValueError(f"unknown type: {name!r}")

    def __repr__(self) -> str:
        return f".{self.value}"


#: Alias used for pointer-typed values throughout the workloads.
PTR = Type.U64
