"""The PTX-like IR: virtual registers, ops, blocks, kernels.

The IR is a conventional three-address, block-structured representation.
It is deliberately *not* SSA: a virtual register may be reassigned, which
lets the structured front-end express loop induction variables directly;
the backend's liveness analysis handles multiply-assigned registers.

Every instruction carries its result type; memory ops carry a space and a
width; comparisons carry a :class:`CmpOp`.  Terminators (``BR``/``CBR``/
``RET``) end each block.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.kernelir.types import Type


class IROp(enum.Enum):
    """IR operation kinds (roughly the PTX instruction menu we need)."""

    MOV = "mov"
    # integer
    ADD = "add"
    SUB = "sub"
    MUL = "mul"          # low 32 bits
    MULWIDE = "mul.wide" # u32 x u32 -> u64
    MAD = "mad"
    MIN = "min"
    MAX = "max"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    ABS = "abs"
    # float (f32)
    FDIV = "div.approx"
    SQRT = "sqrt.approx"
    RCP = "rcp.approx"
    EX2 = "ex2.approx"
    LG2 = "lg2.approx"
    SIN = "sin.approx"
    COS = "cos.approx"
    FMA = "fma"
    NEG = "neg"
    # predicates / comparisons
    SETP = "setp"
    SELP = "selp"
    PAND = "and.pred"
    POR = "or.pred"
    PNOT = "not.pred"
    # conversions
    CVT = "cvt"
    # memory
    LD = "ld"
    ST = "st"
    ATOM = "atom"
    # misc
    SREG = "sreg"        # read a special register
    BAR = "bar.sync"
    MEMBAR = "membar"
    # terminators
    BR = "bra"
    CBR = "cbra"
    RET = "ret"


class CmpOp(enum.Enum):
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"


#: Memory spaces at the IR level (mapped onto ISA spaces by lowering).
class Space(enum.Enum):
    GLOBAL = "global"
    SHARED = "shared"
    LOCAL = "local"
    CONST = "const"
    TEXTURE = "tex"


class AtomOp(enum.Enum):
    ADD = "add"
    AND = "and"
    OR = "or"
    XOR = "xor"
    MIN = "min"
    MAX = "max"
    EXCH = "exch"
    CAS = "cas"


@dataclass(frozen=True)
class VReg:
    """A typed virtual register ``%r<id>``."""

    id: int
    type: Type

    def __repr__(self) -> str:
        prefix = {"pred": "%p", "f32": "%f"}.get(self.type.value, "%r")
        return f"{prefix}{self.id}"


@dataclass(frozen=True)
class Const:
    """A typed immediate value."""

    value: Union[int, float]
    type: Type

    def __repr__(self) -> str:
        return repr(self.value)


Value = Union[VReg, Const]


@dataclass
class IRInstr:
    """One IR instruction."""

    op: IROp
    dst: Optional[VReg] = None
    srcs: Tuple[Value, ...] = ()
    type: Optional[Type] = None          # operation type (PTX-style suffix)
    cmp: Optional[CmpOp] = None          # for SETP
    space: Optional[Space] = None        # for LD/ST/ATOM
    atom: Optional[AtomOp] = None        # for ATOM
    sreg: Optional[str] = None           # for SREG, e.g. "tid.x"
    targets: Tuple[str, ...] = ()        # for BR (1) / CBR (2: taken, not)
    width: Optional[int] = None          # bytes, for LD/ST when != type size

    @property
    def is_terminator(self) -> bool:
        return self.op in (IROp.BR, IROp.CBR, IROp.RET)

    def __repr__(self) -> str:
        parts = [self.op.value]
        if self.space:
            parts[0] += f".{self.space.value}"
        if self.atom:
            parts[0] += f".{self.atom.value}"
        if self.cmp:
            parts[0] += f".{self.cmp.value}"
        if self.type:
            parts[0] += f".{self.type.value}"
        operands: List[str] = []
        if self.dst is not None:
            operands.append(repr(self.dst))
        operands.extend(repr(s) for s in self.srcs)
        if self.sreg:
            operands.append(f"%{self.sreg}")
        operands.extend(self.targets)
        return parts[0] + " " + ", ".join(operands)


@dataclass
class Block:
    """A basic block: label, straight-line body, trailing terminator.

    ``loops`` names the headers of the loops enclosing this block,
    outermost first; the backend uses it to turn branches to a loop's exit
    into ``BRK`` (break-stack) instructions.
    """

    label: str
    instrs: List[IRInstr] = field(default_factory=list)
    loops: Tuple[str, ...] = ()

    @property
    def terminator(self) -> Optional[IRInstr]:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    def successors(self) -> Tuple[str, ...]:
        term = self.terminator
        if term is None or term.op is IROp.RET:
            return ()
        return term.targets


@dataclass(frozen=True)
class ParamDecl:
    """A kernel parameter declaration."""

    name: str
    type: Type


@dataclass(frozen=True)
class LoopInfo:
    """Structured-loop metadata recorded by the builder.

    * ``header`` — the condition block (the loop's entry test).
    * ``exit`` — the block control reaches when the loop finishes; the
      backend makes it the ``PBK`` (pre-break) target.
    * ``preheader`` — the block whose terminating branch first enters the
      header; ``PBK`` is inserted there.
    """

    header: str
    exit: str
    preheader: str


@dataclass
class KernelIR:
    """A kernel: parameters, blocks in layout order, shared-memory size."""

    name: str
    params: Tuple[ParamDecl, ...]
    blocks: List[Block] = field(default_factory=list)
    shared_bytes: int = 0
    num_vregs: int = 0
    loops: List[LoopInfo] = field(default_factory=list)

    @property
    def entry(self) -> Block:
        return self.blocks[0]

    def block(self, label: str) -> Block:
        for candidate in self.blocks:
            if candidate.label == label:
                return candidate
        raise KeyError(f"kernel {self.name!r} has no block {label!r}")

    def param(self, name: str) -> ParamDecl:
        for param in self.params:
            if param.name == name:
                return param
        raise KeyError(f"kernel {self.name!r} has no param {name!r}")

    def param_offset(self, name: str) -> int:
        """Constant-bank byte offset of a parameter (0x140-based layout,
        8-byte slots for 64-bit params, 4-byte otherwise, naturally
        aligned)."""
        from repro.isa.program import PARAM_BASE_OFFSET

        offset = PARAM_BASE_OFFSET
        for param in self.params:
            size = param.type.bytes
            offset = (offset + size - 1) & ~(size - 1)
            if param.name == name:
                return offset
            offset += size
        raise KeyError(f"kernel {self.name!r} has no param {name!r}")

    def all_instrs(self):
        for block in self.blocks:
            yield from block.instrs
