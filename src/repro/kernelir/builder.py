"""Structured kernel-authoring front-end (the "CUDA" of this repo).

:class:`KernelBuilder` exposes arithmetic, memory, and special-register
helpers plus structured control flow (``if_``/``while_``/``for_range`` with
``break_``/``continue_``), and produces a verified :class:`KernelIR`.

Example (vector add)::

    b = KernelBuilder("vecadd", [("n", Type.U32), ("a", PTR),
                                 ("b", PTR), ("out", PTR)])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        x = b.load_f32(b.gep(b.param("a"), i, 4))
        y = b.load_f32(b.gep(b.param("b"), i, 4))
        b.store(b.gep(b.param("out"), i, 4), b.fadd(x, y))
    kernel_ir = b.finish()

All parameters are preloaded in the entry block so that parameter values
dominate every use.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.kernelir.ir import (
    AtomOp,
    Block,
    CmpOp,
    Const,
    IRInstr,
    IROp,
    KernelIR,
    ParamDecl,
    Space,
    Value,
    VReg,
)
from repro.kernelir.types import PTR, Type

Number = Union[int, float]
ValueLike = Union[Value, Number]


class BuildError(Exception):
    """Raised on misuse of the builder (type errors, stray control flow)."""


class _IfCtx:
    """Context manager for ``if_`` (with optional ``else_``)."""

    def __init__(self, builder: "KernelBuilder", cbr: IRInstr, merge: str):
        self._builder = builder
        self._cbr = cbr
        self._merge = merge
        self._then_done = False
        self._else_used = False

    def __enter__(self) -> "_IfCtx":
        then_label = self._cbr.targets[0]
        self._builder._start_block(then_label)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._builder._terminate(IRInstr(IROp.BR, targets=(self._merge,)))
            self._builder._start_block(self._merge)
            self._then_done = True

    def else_(self) -> "_ElseCtx":
        if not self._then_done:
            raise BuildError("else_() before the then-branch closed")
        if self._else_used:
            raise BuildError("else_() used twice")
        self._else_used = True
        return _ElseCtx(self._builder, self._cbr, self._merge)


class _ElseCtx:
    def __init__(self, builder: "KernelBuilder", cbr: IRInstr, merge: str):
        self._builder = builder
        self._cbr = cbr
        self._merge = merge

    def __enter__(self) -> "_ElseCtx":
        builder = self._builder
        merge_block = builder._kernel.block(self._merge)
        if merge_block.instrs:
            raise BuildError("else_() must immediately follow the if-block")
        builder._kernel.blocks.remove(merge_block)
        else_label = builder._fresh_label("else")
        self._cbr.targets = (self._cbr.targets[0], else_label)
        builder._current = None
        builder._start_block(else_label)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._builder._terminate(IRInstr(IROp.BR, targets=(self._merge,)))
            self._builder._start_block(self._merge)


class _LoopCtx:
    """Context manager for ``while_`` / ``for_range`` loops.

    The loop is pushed onto the builder's loop stack by ``while_``/
    ``for_range`` themselves (so that the header and body blocks are
    recorded as loop members); ``__enter__`` only hands back the induction
    variable.
    """

    def __init__(self, builder: "KernelBuilder", header: str, exit_label: str,
                 induction: Optional[VReg] = None,
                 step: Optional[Callable[[], None]] = None):
        self._builder = builder
        self.header = header
        self.exit_label = exit_label
        self.induction = induction
        self.step = step

    def __enter__(self):
        if not self._builder._loops or self._builder._loops[-1] is not self:
            raise BuildError("loop context entered out of order")
        return self.induction if self.induction is not None else self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return
        builder = self._builder
        if builder._loops[-1] is not self:
            raise BuildError("mismatched loop nesting")
        if self.step is not None:
            self.step()
        builder._terminate(IRInstr(IROp.BR, targets=(self.header,)))
        builder._loops.pop()
        builder._start_block(self.exit_label)


class KernelBuilder:
    """Builds a :class:`KernelIR` with structured control flow."""

    def __init__(self, name: str, params: Sequence[Tuple[str, Type]],
                 shared_bytes: int = 0):
        self._kernel = KernelIR(
            name=name,
            params=tuple(ParamDecl(n, t) for n, t in params),
            shared_bytes=shared_bytes,
        )
        self._counter = 0
        self._label_counter = 0
        self._loops: List[_LoopCtx] = []
        self._current: Optional[Block] = None
        self._param_values: Dict[str, VReg] = {}
        self._finished = False
        self._start_block("entry")
        for param in self._kernel.params:
            reg = self._new_vreg(param.type)
            offset = self._kernel.param_offset(param.name)
            self._emit(IRInstr(IROp.LD, dst=reg, space=Space.CONST,
                               srcs=(Const(offset, Type.U32),),
                               type=param.type))
            self._param_values[param.name] = reg

    # ------------------------------------------------------------ plumbing

    def _new_vreg(self, type_: Type) -> VReg:
        reg = VReg(self._counter, type_)
        self._counter += 1
        self._kernel.num_vregs = self._counter
        return reg

    def _fresh_label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def _start_block(self, label: str) -> Block:
        block = Block(label, loops=tuple(ctx.header for ctx in self._loops))
        self._kernel.blocks.append(block)
        self._current = block
        return block

    def _emit(self, instr: IRInstr) -> Optional[VReg]:
        if self._finished:
            raise BuildError("builder already finished")
        if self._current is None or self._current.terminator is not None:
            # Code after break_/continue_/ret in the same suite is
            # unreachable; keep it in a dead block so builds never fail.
            self._start_block(self._fresh_label("dead"))
        self._current.instrs.append(instr)
        return instr.dst

    def _terminate(self, instr: IRInstr) -> None:
        if self._current is not None and self._current.terminator is None:
            self._current.instrs.append(instr)
        self._current = None

    def _as_value(self, value: ValueLike, type_hint: Optional[Type] = None) -> Value:
        if isinstance(value, (VReg, Const)):
            return value
        if isinstance(value, bool):
            raise BuildError("use predicates, not Python bools")
        if isinstance(value, int):
            return Const(value, type_hint or Type.S32)
        if isinstance(value, float):
            if type_hint is not None and not type_hint.is_float:
                raise BuildError(f"float literal {value} for {type_hint}")
            return Const(value, Type.F32)
        raise BuildError(f"not a value: {value!r}")

    def _common_type(self, a: Value, b: Value) -> Type:
        if isinstance(a, VReg):
            return a.type
        if isinstance(b, VReg):
            return b.type
        return a.type

    def _binary(self, op: IROp, a: ValueLike, b: ValueLike,
                type_: Optional[Type] = None) -> VReg:
        lhs = self._as_value(a)
        rhs = self._as_value(b, type_hint=lhs.type if isinstance(lhs, VReg) else None)
        if isinstance(lhs, Const) and isinstance(rhs, VReg):
            lhs = self._as_value(a, type_hint=rhs.type)
        result_type = type_ or self._common_type(lhs, rhs)
        dst = self._new_vreg(result_type)
        self._emit(IRInstr(op, dst=dst, srcs=(lhs, rhs), type=result_type))
        return dst

    # ------------------------------------------------------- leaf values

    def param(self, name: str) -> VReg:
        """The preloaded value of a kernel parameter."""
        try:
            return self._param_values[name]
        except KeyError:
            raise BuildError(f"no such param: {name!r}") from None

    def const(self, value: Number, type_: Type = Type.S32) -> Const:
        return Const(value, type_)

    def _sreg(self, name: str) -> VReg:
        dst = self._new_vreg(Type.U32)
        self._emit(IRInstr(IROp.SREG, dst=dst, sreg=name, type=Type.U32))
        return dst

    def tid_x(self) -> VReg:
        return self._sreg("tid.x")

    def tid_y(self) -> VReg:
        return self._sreg("tid.y")

    def ctaid_x(self) -> VReg:
        return self._sreg("ctaid.x")

    def ctaid_y(self) -> VReg:
        return self._sreg("ctaid.y")

    def ntid_x(self) -> VReg:
        return self._sreg("ntid.x")

    def ntid_y(self) -> VReg:
        return self._sreg("ntid.y")

    def nctaid_x(self) -> VReg:
        return self._sreg("nctaid.x")

    def laneid(self) -> VReg:
        return self._sreg("laneid")

    def global_index_x(self) -> VReg:
        """``ctaid.x * ntid.x + tid.x`` — the canonical 1-D thread index."""
        return self.mad(self.ctaid_x(), self.ntid_x(), self.tid_x())

    # ------------------------------------------------------- arithmetic

    def add(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._binary(IROp.ADD, a, b)

    def sub(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._binary(IROp.SUB, a, b)

    def mul(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._binary(IROp.MUL, a, b)

    def mul_wide(self, a: ValueLike, b: ValueLike) -> VReg:
        """u32 × u32 → u64 (for address arithmetic)."""
        lhs = self._as_value(a, Type.U32)
        rhs = self._as_value(b, Type.U32)
        dst = self._new_vreg(Type.U64)
        self._emit(IRInstr(IROp.MULWIDE, dst=dst, srcs=(lhs, rhs), type=Type.U64))
        return dst

    def mad(self, a: ValueLike, b: ValueLike, c: ValueLike) -> VReg:
        lhs = self._as_value(a)
        mid = self._as_value(b)
        addend = self._as_value(c)
        result_type = self._common_type(lhs, mid)
        dst = self._new_vreg(result_type)
        self._emit(IRInstr(IROp.MAD, dst=dst, srcs=(lhs, mid, addend),
                           type=result_type))
        return dst

    def fma(self, a: ValueLike, b: ValueLike, c: ValueLike) -> VReg:
        return self.mad(self._as_value(a, Type.F32), self._as_value(b, Type.F32),
                        self._as_value(c, Type.F32))

    def min_(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._binary(IROp.MIN, a, b)

    def max_(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._binary(IROp.MAX, a, b)

    def and_(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._binary(IROp.AND, a, b)

    def or_(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._binary(IROp.OR, a, b)

    def xor(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._binary(IROp.XOR, a, b)

    def not_(self, a: ValueLike) -> VReg:
        value = self._as_value(a)
        dst = self._new_vreg(value.type)
        self._emit(IRInstr(IROp.NOT, dst=dst, srcs=(value,), type=value.type))
        return dst

    def shl(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._binary(IROp.SHL, a, b)

    def shr(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._binary(IROp.SHR, a, b)

    def abs_(self, a: ValueLike) -> VReg:
        value = self._as_value(a)
        dst = self._new_vreg(value.type)
        self._emit(IRInstr(IROp.ABS, dst=dst, srcs=(value,), type=value.type))
        return dst

    # float conveniences (same ops, float types)
    def fadd(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._binary(IROp.ADD, self._as_value(a, Type.F32),
                            self._as_value(b, Type.F32))

    def fsub(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._binary(IROp.SUB, self._as_value(a, Type.F32),
                            self._as_value(b, Type.F32))

    def fmul(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._binary(IROp.MUL, self._as_value(a, Type.F32),
                            self._as_value(b, Type.F32))

    def fdiv(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._binary(IROp.FDIV, self._as_value(a, Type.F32),
                            self._as_value(b, Type.F32))

    def _unary_f(self, op: IROp, a: ValueLike) -> VReg:
        value = self._as_value(a, Type.F32)
        dst = self._new_vreg(Type.F32)
        self._emit(IRInstr(op, dst=dst, srcs=(value,), type=Type.F32))
        return dst

    def sqrt(self, a: ValueLike) -> VReg:
        return self._unary_f(IROp.SQRT, a)

    def rcp(self, a: ValueLike) -> VReg:
        return self._unary_f(IROp.RCP, a)

    def exp2(self, a: ValueLike) -> VReg:
        return self._unary_f(IROp.EX2, a)

    def log2(self, a: ValueLike) -> VReg:
        return self._unary_f(IROp.LG2, a)

    def sin(self, a: ValueLike) -> VReg:
        return self._unary_f(IROp.SIN, a)

    def cos(self, a: ValueLike) -> VReg:
        return self._unary_f(IROp.COS, a)

    def fneg(self, a: ValueLike) -> VReg:
        return self._unary_f(IROp.NEG, a)

    # --------------------------------------------------- preds / select

    def _cmp(self, cmp: CmpOp, a: ValueLike, b: ValueLike) -> VReg:
        lhs = self._as_value(a)
        rhs = self._as_value(b, type_hint=lhs.type if isinstance(lhs, VReg) else None)
        if isinstance(lhs, Const) and isinstance(rhs, VReg):
            lhs = self._as_value(a, type_hint=rhs.type)
        dst = self._new_vreg(Type.PRED)
        self._emit(IRInstr(IROp.SETP, dst=dst, srcs=(lhs, rhs), cmp=cmp,
                           type=self._common_type(lhs, rhs)))
        return dst

    def lt(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._cmp(CmpOp.LT, a, b)

    def le(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._cmp(CmpOp.LE, a, b)

    def gt(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._cmp(CmpOp.GT, a, b)

    def ge(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._cmp(CmpOp.GE, a, b)

    def eq(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._cmp(CmpOp.EQ, a, b)

    def ne(self, a: ValueLike, b: ValueLike) -> VReg:
        return self._cmp(CmpOp.NE, a, b)

    def select(self, pred: VReg, a: ValueLike, b: ValueLike) -> VReg:
        lhs = self._as_value(a)
        rhs = self._as_value(b, type_hint=lhs.type if isinstance(lhs, VReg) else None)
        dst = self._new_vreg(self._common_type(lhs, rhs))
        self._emit(IRInstr(IROp.SELP, dst=dst, srcs=(pred, lhs, rhs),
                           type=dst.type))
        return dst

    def pand(self, a: VReg, b: VReg) -> VReg:
        dst = self._new_vreg(Type.PRED)
        self._emit(IRInstr(IROp.PAND, dst=dst, srcs=(a, b), type=Type.PRED))
        return dst

    def por(self, a: VReg, b: VReg) -> VReg:
        dst = self._new_vreg(Type.PRED)
        self._emit(IRInstr(IROp.POR, dst=dst, srcs=(a, b), type=Type.PRED))
        return dst

    def pnot(self, a: VReg) -> VReg:
        dst = self._new_vreg(Type.PRED)
        self._emit(IRInstr(IROp.PNOT, dst=dst, srcs=(a,), type=Type.PRED))
        return dst

    def cvt(self, value: ValueLike, to_type: Type) -> VReg:
        src = self._as_value(value)
        dst = self._new_vreg(to_type)
        self._emit(IRInstr(IROp.CVT, dst=dst, srcs=(src,), type=to_type))
        return dst

    # ----------------------------------------------------------- memory

    def gep(self, base: ValueLike, index: ValueLike, scale: int) -> VReg:
        """``base + index * scale`` with a widening multiply (byte math)."""
        offset = self.mul_wide(index, Const(scale, Type.U32))
        return self._binary(IROp.ADD, self._as_value(base, PTR), offset,
                            type_=PTR)

    def load(self, ptr: ValueLike, type_: Type, space: Space = Space.GLOBAL,
             offset: int = 0, width: Optional[int] = None) -> VReg:
        """Load *type_* from memory; *width* of 1 or 2 requests a
        narrow (zero-extended) byte/halfword access."""
        dst = self._new_vreg(type_)
        self._emit(IRInstr(IROp.LD, dst=dst,
                           srcs=(self._as_value(ptr), Const(offset, Type.S32)),
                           space=space, type=type_, width=width))
        return dst

    def load_u8(self, ptr: ValueLike, space: Space = Space.GLOBAL,
                offset: int = 0) -> VReg:
        return self.load(ptr, Type.U32, space, offset, width=1)

    def load_f32(self, ptr: ValueLike, space: Space = Space.GLOBAL,
                 offset: int = 0) -> VReg:
        return self.load(ptr, Type.F32, space, offset)

    def load_s32(self, ptr: ValueLike, space: Space = Space.GLOBAL,
                 offset: int = 0) -> VReg:
        return self.load(ptr, Type.S32, space, offset)

    def load_u32(self, ptr: ValueLike, space: Space = Space.GLOBAL,
                 offset: int = 0) -> VReg:
        return self.load(ptr, Type.U32, space, offset)

    def store(self, ptr: ValueLike, value: ValueLike,
              space: Space = Space.GLOBAL, offset: int = 0,
              width: Optional[int] = None) -> None:
        stored = self._as_value(value)
        self._emit(IRInstr(IROp.ST,
                           srcs=(self._as_value(ptr), stored,
                                 Const(offset, Type.S32)),
                           space=space, width=width, type=stored.type
                           if isinstance(stored, VReg) else stored.type))

    def atom(self, op: AtomOp, ptr: ValueLike, value: ValueLike,
             space: Space = Space.GLOBAL, type_: Type = Type.U32) -> VReg:
        dst = self._new_vreg(type_)
        self._emit(IRInstr(IROp.ATOM, dst=dst, atom=op,
                           srcs=(self._as_value(ptr),
                                 self._as_value(value, type_)),
                           space=space, type=type_))
        return dst

    def atomic_add(self, ptr: ValueLike, value: ValueLike,
                   space: Space = Space.GLOBAL, type_: Type = Type.U32) -> VReg:
        return self.atom(AtomOp.ADD, ptr, value, space, type_)

    def shared_array(self, size_bytes: int, align: int = 8) -> Const:
        """Reserve *size_bytes* of CTA-shared memory; returns the base
        offset as a u32 constant usable as a shared-space pointer."""
        base = (self._kernel.shared_bytes + align - 1) & ~(align - 1)
        self._kernel.shared_bytes = base + size_bytes
        return Const(base, Type.U32)

    def shared_ptr(self, base: Const, index: ValueLike, scale: int) -> VReg:
        """``base + index*scale`` in the 32-bit shared address space."""
        return self.mad(self._as_value(index, Type.U32),
                        Const(scale, Type.U32), base)

    def barrier(self) -> None:
        self._emit(IRInstr(IROp.BAR))

    # ------------------------------------------------------- variables

    def var(self, init: ValueLike, type_: Optional[Type] = None) -> VReg:
        """A mutable variable initialized to *init* (use with assign)."""
        value = self._as_value(init, type_)
        var_type = type_ or value.type
        dst = self._new_vreg(var_type)
        self._emit(IRInstr(IROp.MOV, dst=dst, srcs=(value,), type=var_type))
        return dst

    def assign(self, var: VReg, value: ValueLike) -> None:
        src = self._as_value(value, var.type)
        src_type = src.type if isinstance(src, VReg) else var.type
        if src_type != var.type:
            raise BuildError(f"assign type mismatch: {var.type} <- {src_type}")
        self._emit(IRInstr(IROp.MOV, dst=var, srcs=(src,), type=var.type))

    # ---------------------------------------------------- control flow

    def if_(self, cond: VReg) -> _IfCtx:
        if cond.type is not Type.PRED:
            raise BuildError("if_ needs a predicate")
        then_label = self._fresh_label("then")
        merge_label = self._fresh_label("merge")
        cbr = IRInstr(IROp.CBR, srcs=(cond,), targets=(then_label, merge_label))
        self._terminate(cbr)
        return _IfCtx(self, cbr, merge_label)

    def _open_loop(self, header: str, body: str, exit_label: str,
                   cond_fn: Callable[[], VReg],
                   induction: Optional[VReg] = None,
                   step: Optional[Callable[[], None]] = None) -> _LoopCtx:
        from repro.kernelir.ir import LoopInfo

        if self._current is None or self._current.terminator is not None:
            self._start_block(self._fresh_label("preheader"))
        preheader = self._current.label
        self._kernel.loops.append(LoopInfo(header, exit_label, preheader))
        ctx = _LoopCtx(self, header, exit_label, induction=induction,
                       step=step)
        self._loops.append(ctx)
        self._terminate(IRInstr(IROp.BR, targets=(header,)))
        self._start_block(header)
        cond = cond_fn()
        if cond.type is not Type.PRED:
            raise BuildError("loop condition must be a predicate")
        self._terminate(IRInstr(IROp.CBR, srcs=(cond,),
                                targets=(body, exit_label)))
        self._start_block(body)
        return ctx

    def while_(self, cond_fn: Callable[[], VReg]) -> _LoopCtx:
        header = self._fresh_label("loop")
        body = self._fresh_label("body")
        exit_label = self._fresh_label("endloop")
        return self._open_loop(header, body, exit_label, cond_fn)

    def for_range(self, start: ValueLike, stop: ValueLike,
                  step: int = 1, type_: Type = Type.S32) -> _LoopCtx:
        """``for i in range(start, stop, step)`` — yields the induction
        variable when entered with ``with``."""
        induction = self.var(self._as_value(start, type_), type_)
        stop_value = self._as_value(stop, type_)
        header = self._fresh_label("for")
        body = self._fresh_label("forbody")
        exit_label = self._fresh_label("endfor")

        def cond_fn() -> VReg:
            return self.lt(induction, stop_value) if step > 0 \
                else self.gt(induction, stop_value)

        def step_fn() -> None:
            self.assign(induction, self.add(induction, step))

        return self._open_loop(header, body, exit_label, cond_fn,
                               induction=induction, step=step_fn)

    def break_(self) -> None:
        if not self._loops:
            raise BuildError("break_ outside a loop")
        self._terminate(IRInstr(IROp.BR, targets=(self._loops[-1].exit_label,)))

    def continue_(self) -> None:
        if not self._loops:
            raise BuildError("continue_ outside a loop")
        loop = self._loops[-1]
        if loop.step is not None:
            loop.step()
        self._terminate(IRInstr(IROp.BR, targets=(loop.header,)))

    def ret(self) -> None:
        self._terminate(IRInstr(IROp.RET))

    # ------------------------------------------------------------ seal

    def finish(self) -> KernelIR:
        """Seal and verify the kernel."""
        from repro.kernelir.verify import verify_kernel

        if self._current is not None and self._current.terminator is None:
            self._terminate(IRInstr(IROp.RET))
        self._finished = True
        # Drop empty blocks nothing branches to (unreachable residue of
        # break_/continue_); keep referenced-but-empty merge blocks.
        referenced = {t for b in self._kernel.blocks for t in b.successors()}
        self._kernel.blocks = [
            b for b in self._kernel.blocks
            if b.instrs or b.label in referenced or b is self._kernel.blocks[0]
        ]
        for block in self._kernel.blocks:
            if block.terminator is None:
                block.instrs.append(IRInstr(IROp.RET))
        verify_kernel(self._kernel)
        return self._kernel
