"""IR verifier: structural and type invariants checked after building
and again before lowering.

Checks (each raising :class:`IRVerificationError`):

* unique block labels; every branch target exists;
* every block ends in exactly one terminator, with none mid-block;
* instruction arity and operand typing (SETP sources agree, CBR takes a
  predicate, MAD/SELP arity, LD/ST pointer types, shared pointers are u32);
* definitions dominate uses along every CFG path (a use-before-def scan
  over the CFG, treating parameters as defined at entry).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.kernelir.ir import (
    Block,
    Const,
    IRInstr,
    IROp,
    KernelIR,
    Space,
    VReg,
)
from repro.kernelir.types import Type


class IRVerificationError(Exception):
    """The kernel IR violates a structural or typing invariant."""


_ARITY = {
    IROp.MOV: 1, IROp.ADD: 2, IROp.SUB: 2, IROp.MUL: 2, IROp.MULWIDE: 2,
    IROp.MAD: 3, IROp.MIN: 2, IROp.MAX: 2, IROp.AND: 2, IROp.OR: 2,
    IROp.XOR: 2, IROp.NOT: 1, IROp.SHL: 2, IROp.SHR: 2, IROp.ABS: 1,
    IROp.FDIV: 2, IROp.SQRT: 1, IROp.RCP: 1, IROp.EX2: 1, IROp.LG2: 1,
    IROp.SIN: 1, IROp.COS: 1, IROp.NEG: 1,
    IROp.SETP: 2, IROp.SELP: 3, IROp.PAND: 2, IROp.POR: 2, IROp.PNOT: 1,
    IROp.CVT: 1, IROp.LD: 2, IROp.ST: 3, IROp.ATOM: 2,
    IROp.SREG: 0, IROp.BAR: 0, IROp.MEMBAR: 0,
    IROp.BR: 0, IROp.CBR: 1, IROp.RET: 0,
}


def _fail(kernel: KernelIR, block: Block, instr: IRInstr, message: str) -> None:
    raise IRVerificationError(
        f"{kernel.name}/{block.label}: {instr!r}: {message}"
    )


def verify_kernel(kernel: KernelIR) -> None:
    """Verify *kernel*; raises :class:`IRVerificationError` on violation."""
    if not kernel.blocks:
        raise IRVerificationError(f"{kernel.name}: no blocks")
    labels = [b.label for b in kernel.blocks]
    if len(set(labels)) != len(labels):
        raise IRVerificationError(f"{kernel.name}: duplicate block labels")
    label_set = set(labels)

    for block in kernel.blocks:
        if block.terminator is None:
            raise IRVerificationError(
                f"{kernel.name}/{block.label}: missing terminator")
        for position, instr in enumerate(block.instrs):
            if instr.is_terminator and position != len(block.instrs) - 1:
                _fail(kernel, block, instr, "terminator mid-block")
            expected = _ARITY.get(instr.op)
            if instr.op is IROp.LD:
                # const-space parameter loads carry only an offset operand.
                if len(instr.srcs) not in (1, 2):
                    _fail(kernel, block, instr,
                          f"arity {len(instr.srcs)}, expected 1 or 2")
            elif expected is not None and len(instr.srcs) != expected:
                _fail(kernel, block, instr,
                      f"arity {len(instr.srcs)}, expected {expected}")
            for target in instr.targets:
                if target not in label_set:
                    _fail(kernel, block, instr, f"unknown target {target!r}")
            _check_types(kernel, block, instr)

    _check_defs_dominate_uses(kernel)


def _check_types(kernel: KernelIR, block: Block, instr: IRInstr) -> None:
    def type_of(value) -> Type:
        return value.type

    if instr.op is IROp.CBR and type_of(instr.srcs[0]) is not Type.PRED:
        _fail(kernel, block, instr, "CBR needs a predicate")
    if instr.op is IROp.SETP:
        lhs, rhs = instr.srcs
        if isinstance(lhs, VReg) and isinstance(rhs, VReg) and lhs.type != rhs.type:
            _fail(kernel, block, instr,
                  f"SETP operand types differ: {lhs.type} vs {rhs.type}")
        if instr.dst is None or instr.dst.type is not Type.PRED:
            _fail(kernel, block, instr, "SETP must define a predicate")
    if instr.op is IROp.SELP and type_of(instr.srcs[0]) is not Type.PRED:
        _fail(kernel, block, instr, "SELP selector must be a predicate")
    if instr.op in (IROp.PAND, IROp.POR, IROp.PNOT):
        for src in instr.srcs:
            if type_of(src) is not Type.PRED:
                _fail(kernel, block, instr, "predicate op on non-predicate")
    if instr.op in (IROp.LD, IROp.ST):
        pointer = instr.srcs[0]
        if instr.space in (Space.GLOBAL, Space.TEXTURE):
            if type_of(pointer) not in (Type.U64, Type.S64):
                _fail(kernel, block, instr, "global pointer must be 64-bit")
        elif instr.space in (Space.SHARED, Space.LOCAL):
            if type_of(pointer) not in (Type.U32, Type.S32):
                _fail(kernel, block, instr,
                      f"{instr.space.value} pointer must be 32-bit")
    if instr.op is IROp.ATOM:
        pointer = instr.srcs[0]
        if instr.space is Space.GLOBAL and type_of(pointer) not in (
                Type.U64, Type.S64):
            _fail(kernel, block, instr, "global atomic pointer must be 64-bit")
        if instr.space is Space.SHARED and type_of(pointer) not in (
                Type.U32, Type.S32):
            _fail(kernel, block, instr, "shared atomic pointer must be 32-bit")
    if instr.op is IROp.MULWIDE:
        if instr.dst is None or not instr.dst.type.is_wide:
            _fail(kernel, block, instr, "mul.wide must produce a 64-bit value")


def _check_defs_dominate_uses(kernel: KernelIR) -> None:
    """Forward may-reach analysis: at every use, the register must be
    defined on *all* incoming paths."""
    blocks: Dict[str, Block] = {b.label: b for b in kernel.blocks}
    preds: Dict[str, List[str]] = {b.label: [] for b in kernel.blocks}
    for block in kernel.blocks:
        for succ in block.successors():
            preds[succ].append(block.label)

    all_regs: Set[VReg] = set()
    for instr in kernel.all_instrs():
        if instr.dst is not None:
            all_regs.add(instr.dst)

    # defined-at-entry sets, initialized to "everything" (top) except entry.
    entry = kernel.blocks[0].label
    defined_in: Dict[str, Set[VReg]] = {
        b.label: set(all_regs) for b in kernel.blocks
    }
    defined_in[entry] = set()

    changed = True
    while changed:
        changed = False
        for block in kernel.blocks:
            if block.label == entry:
                incoming: Set[VReg] = set()
            elif preds[block.label]:
                incoming = set(all_regs)
                for pred in preds[block.label]:
                    incoming &= _defined_out(blocks[pred], defined_in[pred])
            else:
                incoming = set()  # unreachable block: be strict
            if incoming != defined_in[block.label]:
                defined_in[block.label] = incoming
                changed = True

    for block in kernel.blocks:
        defined = set(defined_in[block.label])
        reachable = block.label == entry or bool(preds[block.label])
        for instr in block.instrs:
            if reachable:
                for src in instr.srcs:
                    if isinstance(src, VReg) and src not in defined:
                        _fail(kernel, block, instr,
                              f"{src!r} may be used before definition")
            if instr.dst is not None:
                defined.add(instr.dst)


def _defined_out(block: Block, defined_in: Set[VReg]) -> Set[VReg]:
    result = set(defined_in)
    for instr in block.instrs:
        if instr.dst is not None:
            result.add(instr.dst)
    return result
