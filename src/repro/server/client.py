"""Synchronous client for the profiling service's NDJSON protocol.

One TCP connection per operation (the server closes after each
response), blocking sockets, no dependencies — usable from tests, the
``repro submit`` CLI, and plain scripts.  :meth:`ServerClient.
submit_and_wait` is the high-level call: it retries 429 admission
rejections with the server's ``retry_after`` hint, then streams events
until the terminal one and returns the full result record.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Iterator, List, Optional


class ServerError(RuntimeError):
    """The server answered, but with an error this client can't retry."""


class AdmissionRejected(ServerError):
    """A 429: the queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


class JobFailed(ServerError):
    """The job ran and ended in ``failed`` (or was cancelled)."""

    def __init__(self, message: str, event: Dict[str, Any]):
        super().__init__(message)
        self.event = event


class ServerClient:
    def __init__(self, host: str, port: int, tenant: str = "default",
                 share_cache: bool = False, timeout: float = 120.0):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.share_cache = share_cache
        self.timeout = timeout

    # ---------------------------------------------------------- wire

    def _connect(self) -> socket.socket:
        return socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)

    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._connect() as sock:
            sock.sendall(json.dumps(request).encode() + b"\n")
            with sock.makefile("rb") as stream:
                line = stream.readline()
        if not line:
            raise ServerError("server closed the connection mid-reply")
        return json.loads(line)

    def _stream(self, request: Dict[str, Any]
                ) -> Iterator[Dict[str, Any]]:
        with self._connect() as sock:
            sock.sendall(json.dumps(request).encode() + b"\n")
            with sock.makefile("rb") as stream:
                for line in stream:
                    if line.strip():
                        yield json.loads(line)

    @staticmethod
    def _checked(response: Dict[str, Any]) -> Dict[str, Any]:
        if response.get("ok"):
            return response
        if response.get("status") == 429:
            raise AdmissionRejected(
                response.get("message", "queue full"),
                float(response.get("retry_after", 0.1)))
        raise ServerError(response.get("message")
                          or response.get("error", "server error"))

    # ----------------------------------------------------- operations

    def ping(self) -> Dict[str, Any]:
        return self._checked(self._roundtrip({"op": "ping"}))

    def stats(self) -> Dict[str, Any]:
        return self._checked(self._roundtrip({"op": "stats"}))

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._checked(self._roundtrip({"op": "status",
                                              "job_id": job_id}))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._checked(self._roundtrip({"op": "cancel",
                                              "job_id": job_id}))

    def shutdown(self) -> Dict[str, Any]:
        return self._checked(self._roundtrip({"op": "shutdown"}))

    def submit(self, kind: str, payload: Optional[Dict[str, Any]] = None,
               **payload_kwargs: Any) -> str:
        """Submit one job; returns its id.  Raises
        :class:`AdmissionRejected` on a 429 (no implicit retry here)."""
        job = {"kind": kind,
               "payload": {**(payload or {}), **payload_kwargs},
               "tenant": self.tenant,
               "share_cache": self.share_cache}
        response = self._checked(self._roundtrip({"op": "submit",
                                                  "job": job}))
        return response["job_id"]

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream a job's events through the terminal one."""
        for event in self._stream({"op": "result", "job_id": job_id}):
            if event.get("ok") is False:
                raise ServerError(event.get("error", "server error"))
            yield event

    def wait(self, job_id: str) -> Dict[str, Any]:
        """Block until the job finishes; returns the result record.

        Raises :class:`JobFailed` when the terminal event is ``failed``
        or ``cancelled``.
        """
        terminal = None
        for event in self.events(job_id):
            if event.get("event") in ("result", "failed", "cancelled"):
                terminal = event
        if terminal is None:
            raise ServerError(f"job {job_id} stream ended without a "
                              "terminal event")
        if terminal["event"] != "result":
            raise JobFailed(
                f"job {job_id} {terminal['event']}: "
                f"{terminal.get('error', '')}", terminal)
        return terminal

    def submit_and_wait(self, kind: str,
                        payload: Optional[Dict[str, Any]] = None,
                        max_retries: int = 20,
                        **payload_kwargs: Any) -> Dict[str, Any]:
        """Submit with 429 backoff (honouring ``retry_after``), then
        wait for the result record."""
        for attempt in range(max_retries + 1):
            try:
                job_id = self.submit(kind, payload, **payload_kwargs)
                break
            except AdmissionRejected as exc:
                if attempt == max_retries:
                    raise
                time.sleep(exc.retry_after)
        return self.wait(job_id)

    def collect(self, job_id: str) -> List[Dict[str, Any]]:
        """All events for a finished (or finishing) job, materialized."""
        return list(self.events(job_id))
