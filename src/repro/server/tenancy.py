"""Per-tenant compile-cache namespaces.

The content-addressed compile cache (:mod:`repro.campaign.compile_cache`)
keys entries on what determines the compiled SASS — but a multi-tenant
server must not let one tenant's compiles serve another's lookups unless
both opted in: a tenant may be iterating on a private kernel, and cache
timing side-channels (hit vs. miss) would otherwise leak whether someone
else already compiled the same IR.

:class:`NamespacedCache` layers a namespace prefix over any base
:class:`~repro.campaign.compile_cache.CompileCache`: every key is
rewritten to ``ns=<namespace>|<key>`` before it reaches the base cache,
so two tenants compiling identical IR get *separate* entries, while
tenants that opt into the shared namespace (``share_cache=True`` on a
job) deduplicate against each other.  The base cache's disk layer keeps
working unchanged — disk filenames hash the namespaced key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.campaign.compile_cache import CacheStats, CompileCache, get_cache

#: Tenant id used when a request names none.
DEFAULT_TENANT = "default"

#: The opt-in namespace shared by every tenant that sets
#: ``share_cache=True`` — identical IR deduplicates across them.
SHARED_NAMESPACE = "shared"


def tenant_namespace(tenant: Optional[str],
                     share_cache: bool = False) -> str:
    """The cache namespace for one job's compiles."""
    if share_cache:
        return SHARED_NAMESPACE
    return f"tenant:{tenant or DEFAULT_TENANT}"


@dataclass
class NamespacedCache:
    """A view of *base* whose keys live under ``ns=<namespace>|``.

    Duck-types the :class:`CompileCache` surface the compile helpers use
    (``lookup``/``store``/``clear``/``len``), so it drops into
    ``cached_ptxas(..., cache=...)`` and ``runtime.compile(..., cache=
    ...)`` unchanged.  ``stats`` counts this namespace's traffic only;
    the base cache's own stats keep counting everything.
    """

    base: CompileCache
    namespace: str
    stats: CacheStats = field(default_factory=CacheStats)

    def _key(self, key: str) -> str:
        return f"ns={self.namespace}|{key}"

    def lookup(self, key: str):
        entry = self.base.lookup(self._key(key))
        if entry is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return entry

    def store(self, key: str, kernel, report=None) -> None:
        self.base.store(self._key(key), kernel, report)

    def clear(self) -> None:
        """Drop this namespace's in-memory entries (only)."""
        prefix = self._key("")
        for key in [k for k in self.base._mem if k.startswith(prefix)]:
            del self.base._mem[key]
        self.stats = CacheStats()

    def __len__(self) -> int:
        prefix = self._key("")
        return sum(1 for k in self.base._mem if k.startswith(prefix))


def namespaced_cache(namespace: str,
                     base: Optional[CompileCache] = None) -> NamespacedCache:
    """A namespace view over *base* (default: the process-wide cache).

    Worker processes call this per task with the namespace shipped in
    the task tuple; the underlying process-wide cache (and its optional
    ``REPRO_CACHE_DIR`` disk layer) is shared across namespaces, so
    storage is pooled while visibility is partitioned.
    """
    return NamespacedCache(base=base if base is not None else get_cache(),
                           namespace=namespace)
