"""Job kinds for the profiling service — and their determinism contract.

Every downstream capability is a *job kind* on one queue: campaign runs
(``campaign``), trace capture (``capture``), replay analyses including
``timing`` (``replay``), paper studies (``study``), and a tiny
``bench`` kind used to load-test the serving layer itself.

A job expands into engine-style picklable task tuples
(:func:`job_tasks`), a module-level runner executes one task in a
worker process (:func:`run_job_task`), and :func:`merge_pieces` folds
the pieces **in task order** with order-independent operations — the
same design rules that make ``repro.campaign`` campaigns bit-identical
between serial and ``--jobs N`` runs.  Consequently a job's *canonical
result bytes* (:func:`canonical_result_bytes`) are identical whether it
ran locally (:func:`run_job_local`), on a 1-worker server shard, or
fanned across many workers; the differential suite pins that down.

Two deliberate exclusions keep the bytes stable:

* per-worker warm-up (a campaign worker's golden run + event-count
  profile) happens *before* the task's telemetry mark, so counter
  totals do not depend on how many workers the pool happened to touch;
* ``compile_cache.*`` counters are filtered out of the canonical
  result (:func:`deterministic_counters`) — cache locality is a
  scheduling detail, not a result.  The full, unfiltered counters are
  still shipped in the record's ``telemetry`` block for observability.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.engine import merge_kernel_stats, run_tasks
from repro.server.tenancy import DEFAULT_TENANT, namespaced_cache, \
    tenant_namespace
from repro.sim.executor import KernelStats
from repro.telemetry.collector import TELEMETRY

#: every job kind the queue accepts
JOB_KINDS = ("campaign", "capture", "replay", "study", "bench")

#: counter prefixes excluded from canonical result bytes (worker-local
#: cache warmth varies with pool size; everything else must not)
VOLATILE_COUNTER_PREFIXES = ("compile_cache.",)


class JobError(ValueError):
    """A request the service rejects up front (bad kind, unknown
    workload, malformed payload) — the 400, not the 429."""


@dataclass(frozen=True)
class JobSpec:
    """One validated job: what to run, for whom, against which cache."""

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    tenant: str = DEFAULT_TENANT
    share_cache: bool = False

    @property
    def cache_namespace(self) -> str:
        return tenant_namespace(self.tenant, self.share_cache)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "payload": dict(self.payload),
                "tenant": self.tenant, "share_cache": self.share_cache}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "JobSpec":
        if not isinstance(raw, dict):
            raise JobError("job must be an object")
        payload = raw.get("payload", {})
        if not isinstance(payload, dict):
            raise JobError("job payload must be an object")
        tenant = raw.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            raise JobError("tenant must be a non-empty string")
        return cls(kind=str(raw.get("kind", "")), payload=dict(payload),
                   tenant=tenant,
                   share_cache=bool(raw.get("share_cache", False)))


# ------------------------------------------------------------ validation

def _known_workload(name: Any) -> str:
    from repro.workloads import all_names

    if not isinstance(name, str) or not name:
        raise JobError("payload needs a 'workload' name")
    if name not in all_names():
        raise JobError(f"unknown workload {name!r}")
    return name


def _registered_analyses() -> Dict[str, Any]:
    # importing the timing module registers the "timing" analysis
    import repro.trace.timing  # noqa: F401
    from repro.trace.replay import ANALYSES

    return ANALYSES


def _study_registry() -> Dict[str, Tuple[str, str]]:
    from repro.cli import _STUDIES

    return _STUDIES


def validate_job(spec: JobSpec) -> JobSpec:
    """Check *spec* and return a copy with payload defaults filled in.

    Raises :class:`JobError` with a user-facing message on anything the
    queue should refuse before admission.
    """
    if spec.kind not in JOB_KINDS:
        raise JobError(f"unknown job kind {spec.kind!r} "
                       f"(choose from {', '.join(JOB_KINDS)})")
    payload = dict(spec.payload)
    if spec.kind == "campaign":
        payload["workload"] = _known_workload(payload.get("workload"))
        injections = payload.get("injections", 8)
        if not isinstance(injections, int) or injections < 1:
            raise JobError("injections must be an integer >= 1")
        payload["injections"] = injections
        payload["seed"] = int(payload.get("seed", 2015))
        payload["use_cache"] = bool(payload.get("use_cache", True))
    elif spec.kind == "capture":
        payload["workload"] = _known_workload(payload.get("workload"))
        payload["all_spaces"] = bool(payload.get("all_spaces", False))
    elif spec.kind == "replay":
        trace = payload.get("trace")
        artifact = payload.get("artifact")
        if bool(trace) == bool(artifact):
            raise JobError("replay needs exactly one of 'trace' (a "
                           "server-side path) or 'artifact' (a capture "
                           "job's id)")
        analyses = payload.get("analyses") or ["cachesim", "divergence",
                                               "memdiv", "opcodes"]
        if isinstance(analyses, str):
            analyses = [a.strip() for a in analyses.split(",") if a.strip()]
        registry = _registered_analyses()
        for name in analyses:
            if name not in registry:
                raise JobError(f"unknown analysis {name!r} (choose from "
                               f"{', '.join(sorted(registry))})")
        payload["analyses"] = list(analyses)
        policy = payload.get("policy", "gto")
        if policy not in ("gto", "lrr"):
            raise JobError("policy must be 'gto' or 'lrr'")
        payload["policy"] = policy
    elif spec.kind == "study":
        which = payload.get("which")
        registry = _study_registry()
        if which not in registry:
            raise JobError(f"unknown study {which!r} (choose from "
                           f"{', '.join(sorted(registry))})")
    elif spec.kind == "bench":
        spin_ms = payload.get("spin_ms", 10)
        if not isinstance(spin_ms, (int, float)) or spin_ms < 0:
            raise JobError("spin_ms must be a number >= 0")
        payload["spin_ms"] = float(spin_ms)
        payload["tag"] = str(payload.get("tag", ""))
    return replace(spec, payload=payload)


# ------------------------------------------------------- task expansion

def _replay_specs(payload: Dict[str, Any]) -> tuple:
    """The payload's analyses as picklable ``(name, kwargs)`` specs
    (the :func:`repro.trace.replay.replay_sharded` currency)."""
    policy = payload["policy"]
    return tuple((name, {"policy": policy} if name == "timing" else {})
                 for name in payload["analyses"])


def _replay_shard_index(path: str, specs: tuple):
    """The trace's launch index when the job can shard by launch frame
    (frame-indexed trace, every requested analysis mergeable);
    ``None`` sends the job down the per-analysis streaming path."""
    from repro.trace.index import ensure_index
    from repro.trace.replay import make_analysis

    _registered_analyses()
    try:
        if not all(make_analysis(name, **kwargs).mergeable
                   for name, kwargs in specs):
            return None
    except KeyError:
        return None
    index = ensure_index(path)
    if index is None or not index.shardable:
        return None
    return index


def job_tasks(spec: JobSpec, artifact_dir: Optional[str] = None,
              job_id: str = "local") -> List[tuple]:
    """Expand a validated *spec* into picklable task tuples.

    Campaign jobs shard one task per trial.  Replay jobs shard one task
    per kernel-launch frame when the trace is frame-indexed and every
    requested analysis is mergeable (the common case — all workers feed
    all analyses over disjoint frame slices), falling back to one task
    per analysis otherwise.  Capture/study/bench are single-task (the
    trace writer and the study renderers are inherently sequential).
    """
    payload = spec.payload
    ns = spec.cache_namespace
    if spec.kind == "campaign":
        return [("campaign-trial", payload["workload"], payload["seed"],
                 k, ns, payload["use_cache"])
                for k in range(payload["injections"])]
    if spec.kind == "capture":
        directory = artifact_dir or tempfile.gettempdir()
        safe = "".join(c if c.isalnum() or c in "-_." else "_"
                       for c in payload["workload"])
        path = os.path.join(directory, f"{job_id}-{safe}.rptrace")
        return [("capture", payload["workload"], path,
                 payload["all_spaces"], ns)]
    if spec.kind == "replay":
        path = payload.get("trace")
        if not path:
            raise JobError(f"replay artifact {payload.get('artifact')!r} "
                           "was not resolved to a trace path")
        specs = _replay_specs(payload)
        index = _replay_shard_index(path, specs)
        if index is not None:
            # one task per launch frame: the same jobs-invariant
            # partition replay_sharded uses, so shard merges are
            # byte-identical to the streaming pass at any worker count
            return [("replay-shard", path, entry, specs)
                    for entry in index.entries]
        return [("replay", path, name, payload["policy"])
                for name in payload["analyses"]]
    if spec.kind == "study":
        return [("study", payload["which"])]
    if spec.kind == "bench":
        return [("bench", payload["spin_ms"], payload["tag"])]
    raise JobError(f"unknown job kind {spec.kind!r}")


# ------------------------------------------------------------- runners
#
# Each runner handles one task tuple inside a worker process.  The
# campaign runner keeps a per-process memo (golden run + event-count
# profile per workload/namespace) exactly like the error-injection
# worker trampoline; the warm-up runs in the PREPARER, before the
# telemetry mark, so job counter totals are pool-size-invariant.

class _StatsCollector:
    """Collects each trial's per-launch KernelStats via the device's
    kernel-exit callback."""

    def __init__(self):
        self.parts: List[KernelStats] = []

    def attach(self, device) -> None:
        device.on_kernel_exit(self._on_exit)

    def _on_exit(self, device, kernel, stats) -> None:
        self.parts.append(stats)


_WORKER_CAMPAIGNS: Dict[tuple, tuple] = {}


def _worker_campaign(workload_name: str, ns: str, use_cache: bool):
    from repro.handlers.error_injection import ErrorInjectionCampaign
    from repro.workloads import make

    key = (workload_name, ns, use_cache)
    entry = _WORKER_CAMPAIGNS.get(key)
    if entry is None:
        collector = _StatsCollector()
        campaign = ErrorInjectionCampaign(
            make(workload_name), workload_name=workload_name,
            use_cache=use_cache,
            cache=namespaced_cache(ns) if use_cache else None,
            on_device=collector.attach)
        campaign.golden_run()
        campaign.profile()
        entry = _WORKER_CAMPAIGNS[key] = (campaign, collector)
    return entry


def _prepare_campaign_trial(task) -> None:
    _, workload_name, _seed, _index, ns, use_cache = task
    _worker_campaign(workload_name, ns, use_cache)


def _run_campaign_trial(task) -> Dict[str, Any]:
    _, workload_name, seed, index, ns, use_cache = task
    campaign, collector = _worker_campaign(workload_name, ns, use_cache)
    campaign.seed = seed
    collector.parts.clear()
    record = campaign.trial(index)
    stats = merge_kernel_stats(collector.parts, kernel=workload_name)
    return {
        "record": {
            "trial": index,
            "target_event": record.target_event,
            "outcome": record.outcome.value,
            "flipped_bit": record.flipped_bit,
            "description": record.description,
        },
        "stats": stats,
    }


def _run_capture(task) -> Dict[str, Any]:
    from repro.trace.capture import capture_workload

    _, workload_name, path, all_spaces, ns = task
    manifest, verified, wall = capture_workload(
        workload_name, path, cache=namespaced_cache(ns),
        global_only=not all_spaces)
    return {
        "path": path,
        "wall": wall,
        "verified": bool(verified),
        "total_events": manifest.total_events,
        "kind_counts": {str(k): int(v)
                        for k, v in manifest.kind_counts().items()},
        "checksum": manifest.checksum,
        "version": manifest.version,
    }


def _run_replay(task) -> Dict[str, Any]:
    from repro.trace.io import TraceReader
    from repro.trace.replay import make_analysis, replay
    from repro.trace.timing import TimingAnalysis

    _, path, name, policy = task
    if name == "timing":
        analysis = TimingAnalysis(policy=policy)
    else:
        analysis = make_analysis(name)
    replay(TraceReader(path), [analysis])
    return {"analysis": name, "report": analysis.report(),
            "data": analysis.result()}


def _run_replay_shard(task) -> Dict[str, Any]:
    from repro.trace.replay import _replay_shard

    _registered_analyses()
    _, path, entry, specs = task
    return {"shard": _replay_shard((path, entry, specs))}


def _run_study(task) -> Dict[str, Any]:
    import importlib

    _, which = task
    module_name, fn_name = _study_registry()[which]
    module = importlib.import_module(module_name)
    text = getattr(module, fn_name)(jobs=1, use_cache=True)
    return {"which": which, "text": str(text)}


def _run_bench(task) -> Dict[str, Any]:
    _, spin_ms, tag = task
    if spin_ms:
        time.sleep(spin_ms / 1000.0)
    return {"tag": tag, "spin_ms": spin_ms}


_PREPARERS = {"campaign-trial": _prepare_campaign_trial}
_RUNNERS = {
    "campaign-trial": _run_campaign_trial,
    "capture": _run_capture,
    "replay": _run_replay,
    "replay-shard": _run_replay_shard,
    "study": _run_study,
    "bench": _run_bench,
}


def run_job_task(task: tuple) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Execute one task; returns ``(piece, telemetry_delta)``.

    Per-job telemetry scoping: the task's counter/timer deltas are
    captured between a mark and the task's end, per-worker warm-up runs
    before the mark, and spans the task created at root level are
    dropped again (a long-lived pool must not accumulate them).
    """
    prepare = _PREPARERS.get(task[0])
    if prepare is not None:
        prepare(task)
    telem = TELEMETRY
    was_enabled = telem.enabled
    telem.enable()
    mark = telem.mark()
    try:
        piece = _RUNNERS[task[0]](task)
    finally:
        snapshot = telem.delta_since(mark)
        del telem.roots[mark.root_count:]
        if not was_enabled:
            telem.disable()
    return piece, {"counters": dict(snapshot.counters),
                   "timers": dict(snapshot.timers)}


# -------------------------------------------------------------- merging

def _stats_dict(stats: KernelStats) -> Dict[str, Any]:
    return {
        "kernel": stats.kernel,
        "warp_instructions": stats.warp_instructions,
        "thread_instructions": stats.thread_instructions,
        "sassi_warp_instructions": stats.sassi_warp_instructions,
        "sassi_thread_instructions": stats.sassi_thread_instructions,
        "opcode_counts": {getattr(k, "name", str(k)): int(v)
                          for k, v in sorted(
                              stats.opcode_counts.items(),
                              key=lambda kv: getattr(kv[0], "name",
                                                     str(kv[0])))},
        "global_mem_instructions": stats.global_mem_instructions,
        "global_transactions": stats.global_transactions,
        "handler_calls": stats.handler_calls,
        "barriers": stats.barriers,
        "cycles": stats.cycles,
        "max_stack_depth": stats.max_stack_depth,
    }


def merge_task_telemetry(parts) -> Tuple[Dict[str, int], Dict[str, float]]:
    """Order-independent sum of per-task counter/timer deltas."""
    counters: Dict[str, int] = {}
    timers: Dict[str, float] = {}
    for part in parts:
        for key, value in part["counters"].items():
            counters[key] = counters.get(key, 0) + value
        for key, value in part["timers"].items():
            timers[key] = timers.get(key, 0.0) + value
    return counters, timers


def deterministic_counters(counters: Dict[str, int]) -> Dict[str, int]:
    """Counters that belong in canonical result bytes (see module doc)."""
    return {key: value for key, value in counters.items()
            if not key.startswith(VOLATILE_COUNTER_PREFIXES)}


def merge_pieces(spec: JobSpec, pieces: List[Dict[str, Any]]
                 ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Fold task pieces (in task order) into ``(result, extra)``.

    ``result`` is the deterministic payload covered by
    :func:`canonical_result_bytes`; ``extra`` carries volatile
    companions (artifact paths, wall times) that live beside it in the
    final record.
    """
    payload = spec.payload
    if spec.kind == "campaign":
        from collections import Counter

        records = [p["record"] for p in pieces]
        stats = merge_kernel_stats([p["stats"] for p in pieces],
                                   kernel=payload["workload"])
        outcomes = Counter(r["outcome"] for r in records)
        result = {
            "workload": payload["workload"],
            "injections": payload["injections"],
            "seed": payload["seed"],
            "outcomes": {k: outcomes[k] for k in sorted(outcomes)},
            "records": records,
            "kernel_stats": _stats_dict(stats),
        }
        return result, {}
    if spec.kind == "capture":
        piece = pieces[0]
        result = {
            "workload": payload["workload"],
            "verified": piece["verified"],
            "total_events": piece["total_events"],
            "kind_counts": piece["kind_counts"],
            "checksum": piece["checksum"],
            "version": piece["version"],
        }
        return result, {"artifact_path": piece["path"],
                        "capture_wall_seconds": round(piece["wall"], 6)}
    if spec.kind == "replay":
        if pieces and "shard" in pieces[0]:
            from repro.trace.replay import make_analysis

            _registered_analyses()
            specs = _replay_specs(payload)
            analyses = [make_analysis(name, **kwargs)
                        for name, kwargs in specs]
            for piece in pieces:            # launch order == task order
                for analysis, part in zip(analyses, piece["shard"]):
                    analysis.merge(part)
            entries = [{"analysis": name, "report": analysis.report(),
                        "data": analysis.result()}
                       for (name, _), analysis in zip(specs, analyses)]
        else:
            entries = list(pieces)
        result = {
            "policy": payload["policy"],
            "analyses": entries,
        }
        return result, {}
    if spec.kind == "study":
        return dict(pieces[0]), {}
    if spec.kind == "bench":
        return dict(pieces[0]), {}
    raise JobError(f"unknown job kind {spec.kind!r}")


def finish_record(spec: JobSpec, job_id: str, pieces, telemetry_parts,
                  wall: float) -> Dict[str, Any]:
    """Assemble the final (JSON-serializable) result record."""
    from repro.telemetry.manifest import run_manifest

    result, extra = merge_pieces(spec, pieces)
    counters, timers = merge_task_telemetry(telemetry_parts)
    result["counters"] = deterministic_counters(counters)
    record = {
        "event": "result",
        "job_id": job_id,
        "kind": spec.kind,
        "tenant": spec.tenant,
        "state": "done",
        "result": result,
        "telemetry": {"counters": counters,
                      "timers": {k: round(v, 6)
                                 for k, v in timers.items()}},
        "wall_seconds": round(wall, 6),
        "manifest": run_manifest(
            seed=spec.payload.get("seed"),
            extra={"job_kind": spec.kind, "tenant": spec.tenant,
                   "cache_namespace": spec.cache_namespace}),
    }
    record.update(extra)
    return record


def canonical_result_bytes(record: Dict[str, Any]) -> bytes:
    """The byte-identity surface of a finished job.

    Covers ``record["result"]`` only — job ids, manifests, wall times,
    and artifact paths are provenance, not results.
    """
    import json

    return json.dumps(record["result"], sort_keys=True,
                      separators=(",", ":")).encode()


def run_job_local(job, jobs: int = 1, artifact_dir: Optional[str] = None,
                  job_id: str = "local") -> Dict[str, Any]:
    """Run one job in this process's campaign engine (no server).

    This is the reference the sharded server is held byte-identical to:
    ``canonical_result_bytes(run_job_local(job))`` equals the server's,
    at any worker count.
    """
    spec = validate_job(job if isinstance(job, JobSpec)
                        else JobSpec.from_dict(job))
    tasks = job_tasks(spec, artifact_dir=artifact_dir, job_id=job_id)
    start = time.perf_counter()
    out = run_tasks(run_job_task, tasks, jobs=jobs)
    wall = time.perf_counter() - start
    pieces = [piece for piece, _ in out]
    telemetry_parts = [part for _, part in out]
    return finish_record(spec, job_id, pieces, telemetry_parts, wall)
