"""Profiling-as-a-service: the async multi-tenant campaign server.

``repro serve`` runs a long-lived asyncio service; campaign runs, trace
capture, replay analyses (including timing), studies, and bench jobs
all travel one sharded queue into process pools, with per-tenant
compile-cache namespaces and bounded-queue admission control.  Merged
job results are byte-identical to a local :func:`run_job_local` run at
any worker count — see :mod:`repro.server.jobs` for the contract.
"""

from repro.server.jobs import (
    JOB_KINDS,
    JobError,
    JobSpec,
    canonical_result_bytes,
    run_job_local,
    validate_job,
)
from repro.server.tenancy import (
    DEFAULT_TENANT,
    SHARED_NAMESPACE,
    NamespacedCache,
    namespaced_cache,
    tenant_namespace,
)

__all__ = [
    "JOB_KINDS",
    "JobError",
    "JobSpec",
    "canonical_result_bytes",
    "run_job_local",
    "validate_job",
    "DEFAULT_TENANT",
    "SHARED_NAMESPACE",
    "NamespacedCache",
    "namespaced_cache",
    "tenant_namespace",
]
