"""The sharded, bounded work queue behind the profiling service.

Admission control lives here, not in the protocol layer: each shard
holds at most ``depth`` queued jobs, a submission goes to the
least-loaded shard (round-robin on ties, so equal-load placement is
deterministic), and when every shard is full :meth:`ShardedQueue.
try_submit` raises :class:`AdmissionError` carrying a ``retry_after``
hint — the service turns that into a 429-style wire response.  The
bound counts *queued* jobs only; a job being executed has left its
shard, which is what makes "a queue of depth N rejects exactly the
(N+k)-th..(N+k)-th submissions" testable.

The queue is plain synchronous data (deques + counters).  The asyncio
service owns all access from its event loop; worker pools never touch
it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, List, Optional


class AdmissionError(RuntimeError):
    """Every shard is at capacity; come back in ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float = 0.1):
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class ShardStats:
    """Lifetime accounting for one shard."""

    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0

    def to_dict(self) -> dict:
        return {"submitted": self.submitted, "rejected": self.rejected,
                "completed": self.completed, "failed": self.failed,
                "cancelled": self.cancelled}


@dataclass
class ShardedQueue:
    """``shards`` bounded FIFO lanes with least-loaded placement."""

    shards: int = 1
    depth: int = 8
    _lanes: List[deque] = field(default_factory=list)
    _stats: List[ShardStats] = field(default_factory=list)
    _next_tiebreak: int = 0

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.depth < 1:
            raise ValueError("queue depth must be >= 1")
        self._lanes = [deque() for _ in range(self.shards)]
        self._stats = [ShardStats() for _ in range(self.shards)]

    def try_submit(self, item: Any,
                   retry_after: float = 0.1) -> int:
        """Place *item*; returns the shard index or raises
        :class:`AdmissionError` when all lanes are full."""
        # least-loaded shard, round-robin among equally loaded ones so
        # a stream of submissions at equal load spreads deterministically
        order = [(len(self._lanes[i]),
                  (i - self._next_tiebreak) % self.shards, i)
                 for i in range(self.shards)]
        order.sort()
        load, _, shard = order[0]
        if load >= self.depth:
            self._stats[shard].rejected += 1
            raise AdmissionError(
                f"all {self.shards} shard(s) at depth {self.depth}",
                retry_after=retry_after)
        self._lanes[shard].append(item)
        self._stats[shard].submitted += 1
        self._next_tiebreak = (shard + 1) % self.shards
        return shard

    def pop(self, shard: int) -> Optional[Any]:
        """Next queued item for *shard*, or ``None`` when idle."""
        lane = self._lanes[shard]
        return lane.popleft() if lane else None

    def queued(self, shard: Optional[int] = None) -> int:
        if shard is None:
            return sum(len(lane) for lane in self._lanes)
        return len(self._lanes[shard])

    def note_completed(self, shard: int) -> None:
        self._stats[shard].completed += 1

    def note_failed(self, shard: int) -> None:
        self._stats[shard].failed += 1

    def note_cancelled(self, shard: int) -> None:
        self._stats[shard].cancelled += 1

    def remove(self, shard: int, item: Any) -> bool:
        """Withdraw a still-queued item (queued-state cancellation)."""
        try:
            self._lanes[shard].remove(item)
        except ValueError:
            return False
        return True

    def stats(self) -> dict:
        totals = ShardStats()
        for stats in self._stats:
            totals.submitted += stats.submitted
            totals.rejected += stats.rejected
            totals.completed += stats.completed
            totals.failed += stats.failed
            totals.cancelled += stats.cancelled
        return {
            "shards": self.shards,
            "depth": self.depth,
            "queued": self.queued(),
            "per_shard": [s.to_dict() for s in self._stats],
            **totals.to_dict(),
        }
