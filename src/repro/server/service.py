"""The asyncio profiling service: one queue, many shards, NDJSON wire.

Layout::

    client ──TCP──▶ asyncio protocol ──▶ ShardedQueue ──▶ shard drains
                                                   │
                                  ProcessPoolExecutor per shard
                                  (run_job_task per task tuple)

One long-lived asyncio loop owns admission, scheduling, and delivery;
each shard drains its lane sequentially into its own
:class:`~concurrent.futures.ProcessPoolExecutor` of ``workers``
processes (a job's tasks fan across the pool; the *next* job stays
queued until the current one finishes, which keeps the bounded-queue
semantics exact).  Task results are awaited **in task order** and
merged with the same order-independent fold as a local run, so a job's
canonical result bytes do not depend on shard count or worker count —
the differential suite holds the server to ``run_job_local`` byte for
byte.

Wire protocol: newline-delimited JSON over TCP.  The client sends one
request object per connection; the server answers with one response
object, except ``op=result`` which streams progress/telemetry events
(one JSON object per line) and ends with a terminal ``result`` /
``failed`` / ``cancelled`` event.  Admission rejections are shaped
like HTTP 429s: ``{"ok": false, "status": 429, "error": "queue_full",
"retry_after": <seconds>}`` where ``retry_after`` tracks an EMA of
recent job walls.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.server.jobs import JobError, JobSpec, finish_record, \
    job_tasks, run_job_task, validate_job
from repro.server.queue import AdmissionError, ShardedQueue

PROTOCOL_VERSION = 1

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED, CANCELLED = \
    "queued", "running", "done", "failed", "cancelled"
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


@dataclass
class ServerConfig:
    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; read it off server.address
    shards: int = 1
    workers: int = 1
    queue_depth: int = 8
    artifact_dir: Optional[str] = None


@dataclass
class JobRecord:
    """Server-side state for one submitted job."""

    id: str
    spec: JobSpec
    shard: int
    state: str = QUEUED
    events: List[Dict[str, Any]] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    cancel_requested: bool = False
    changed: Optional[asyncio.Condition] = None

    async def emit(self, event: Dict[str, Any]) -> None:
        async with self.changed:
            self.events.append(event)
            self.changed.notify_all()

    def status(self) -> Dict[str, Any]:
        return {"job_id": self.id, "kind": self.spec.kind,
                "tenant": self.spec.tenant, "shard": self.shard,
                "state": self.state}


class ProfilingServer:
    """The service object; drive it from an asyncio loop via
    :meth:`start` / :meth:`wait_closed`, or from sync code through
    :func:`start_in_thread`."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.queue = ShardedQueue(shards=self.config.shards,
                                  depth=self.config.queue_depth)
        self.jobs: Dict[str, JobRecord] = {}
        self.artifacts: Dict[str, str] = {}  # capture job id -> trace path
        self._counter = 0
        self._pools: List[ProcessPoolExecutor] = []
        self._wakes: List[asyncio.Event] = []
        self._drains: List[asyncio.Task] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._closing = False
        self._shutdown = asyncio.Event()
        self._wall_ema: Optional[float] = None
        self.address: Optional[tuple] = None
        self._artifact_dir = self.config.artifact_dir \
            or tempfile.mkdtemp(prefix="repro-server-")

    # ------------------------------------------------------- lifecycle

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        # the service process is multi-threaded (event loop thread,
        # client handlers, start_in_thread callers), so worker pools
        # must not plain-fork: a forked child inheriting a lock held by
        # another thread wedges the whole shard.  forkserver forks from
        # a clean single-threaded helper; fall back to spawn.
        try:
            context = multiprocessing.get_context("forkserver")
        except ValueError:
            context = multiprocessing.get_context("spawn")
        for shard in range(self.config.shards):
            self._pools.append(
                ProcessPoolExecutor(max_workers=self.config.workers,
                                    mp_context=context))
            self._wakes.append(asyncio.Event())
            self._drains.append(
                loop.create_task(self._drain(shard),
                                 name=f"repro-shard-{shard}"))
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]

    def request_shutdown(self) -> None:
        self._closing = True
        self._shutdown.set()
        for wake in self._wakes:
            wake.set()

    async def wait_closed(self) -> None:
        await self._shutdown.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._drains:
            task.cancel()
        await asyncio.gather(*self._drains, return_exceptions=True)
        for pool in self._pools:
            # wait=True joins the pool's plumbing threads; skipping that
            # races them against interpreter teardown (spurious EBADF)
            pool.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------ scheduling

    def _retry_after(self) -> float:
        return round(max(0.05, self._wall_ema or 0.1), 3)

    def submit(self, spec: JobSpec) -> JobRecord:
        """Validate + admit one job; raises JobError or AdmissionError."""
        if self._closing:
            raise AdmissionError("server is shutting down",
                                 retry_after=self._retry_after())
        spec = validate_job(spec)
        self._resolve_artifact(spec)
        self._counter += 1
        job_id = f"j{self._counter:04d}"
        record = JobRecord(id=job_id, spec=spec, shard=-1,
                           changed=asyncio.Condition())
        record.shard = self.queue.try_submit(
            record, retry_after=self._retry_after())
        self.jobs[job_id] = record
        self._wakes[record.shard].set()
        return record

    def _resolve_artifact(self, spec: JobSpec) -> None:
        """Rewrite a replay job's ``artifact`` id to the stored path."""
        if spec.kind != "replay":
            return
        artifact = spec.payload.get("artifact")
        if not artifact:
            return
        path = self.artifacts.get(artifact)
        if path is None:
            raise JobError(f"unknown artifact {artifact!r} "
                           "(expecting a finished capture job's id)")
        spec.payload.pop("artifact")
        spec.payload["trace"] = path

    async def _drain(self, shard: int) -> None:
        wake = self._wakes[shard]
        while not self._closing:
            record = self.queue.pop(shard)
            if record is None:
                wake.clear()
                await wake.wait()
                continue
            await self._execute(shard, record)

    async def _execute(self, shard: int, record: JobRecord) -> None:
        loop = asyncio.get_running_loop()
        pool = self._pools[shard]
        record.state = RUNNING
        await record.emit({"event": "running", "job_id": record.id,
                           "shard": shard})
        start = time.perf_counter()
        try:
            tasks = job_tasks(record.spec,
                              artifact_dir=self._artifact_dir,
                              job_id=record.id)
            futures = [loop.run_in_executor(pool, run_job_task, task)
                       for task in tasks]
            pieces, telemetry_parts = [], []
            for index, future in enumerate(futures):
                if record.cancel_requested:
                    for pending in futures[index:]:
                        pending.cancel()
                    await self._finish(record, shard, CANCELLED,
                                       {"event": "cancelled",
                                        "job_id": record.id})
                    return
                piece, telem = await future
                pieces.append(piece)
                telemetry_parts.append(telem)
                await record.emit({"event": "progress",
                                   "job_id": record.id,
                                   "task": index, "of": len(tasks),
                                   "counters": telem["counters"]})
            wall = time.perf_counter() - start
            result = finish_record(record.spec, record.id, pieces,
                                   telemetry_parts, wall)
            if record.spec.kind == "capture":
                self.artifacts[record.id] = result["artifact_path"]
            record.result = result
            self._wall_ema = wall if self._wall_ema is None \
                else 0.7 * self._wall_ema + 0.3 * wall
            await self._finish(record, shard, DONE, result)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # worker crashes included
            await self._finish(record, shard, FAILED,
                               {"event": "failed", "job_id": record.id,
                                "error": f"{type(exc).__name__}: {exc}"})

    async def _finish(self, record: JobRecord, shard: int, state: str,
                      event: Dict[str, Any]) -> None:
        record.state = state
        if state == DONE:
            self.queue.note_completed(shard)
        elif state == FAILED:
            self.queue.note_failed(shard)
        else:
            self.queue.note_cancelled(shard)
        await record.emit(event)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        record = self.jobs.get(job_id)
        if record is None:
            return {"ok": False, "error": f"unknown job {job_id!r}"}
        if record.state in TERMINAL_STATES:
            return {"ok": True, "state": record.state,
                    "note": "already finished"}
        record.cancel_requested = True
        if record.state == QUEUED \
                and self.queue.remove(record.shard, record):
            # never started; settle it here so waiters wake up
            asyncio.get_running_loop().create_task(
                self._finish(record, record.shard, CANCELLED,
                             {"event": "cancelled",
                              "job_id": record.id}))
        return {"ok": True, "state": record.state}

    # ---------------------------------------------------------- wire

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                await self._send(writer, {"ok": False,
                                          "error": f"bad json: {exc}"})
                return
            await self._dispatch(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    payload: Dict[str, Any]) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()

    async def _dispatch(self, request: Dict[str, Any],
                        writer: asyncio.StreamWriter) -> None:
        op = request.get("op")
        if op == "ping":
            await self._send(writer, {"ok": True, "pong": True,
                                      "version": PROTOCOL_VERSION})
        elif op == "submit":
            await self._op_submit(request, writer)
        elif op == "status":
            record = self.jobs.get(request.get("job_id", ""))
            if record is None:
                await self._send(writer, {"ok": False,
                                          "error": "unknown job"})
            else:
                await self._send(writer, {"ok": True,
                                          **record.status()})
        elif op == "result":
            await self._op_result(request, writer)
        elif op == "cancel":
            await self._send(
                writer, self.cancel(request.get("job_id", "")))
        elif op == "stats":
            await self._send(writer, {"ok": True,
                                      "queue": self.queue.stats(),
                                      "jobs": len(self.jobs),
                                      "artifacts": len(self.artifacts)})
        elif op == "shutdown":
            await self._send(writer, {"ok": True, "stopping": True})
            self.request_shutdown()
        else:
            await self._send(writer,
                             {"ok": False, "error": f"unknown op {op!r}"})

    async def _op_submit(self, request: Dict[str, Any],
                         writer: asyncio.StreamWriter) -> None:
        try:
            record = self.submit(JobSpec.from_dict(
                request.get("job", {})))
        except AdmissionError as exc:
            await self._send(writer, {
                "ok": False, "status": 429, "error": "queue_full",
                "message": str(exc), "retry_after": exc.retry_after})
            return
        except JobError as exc:
            await self._send(writer, {"ok": False, "status": 400,
                                      "error": "bad_job",
                                      "message": str(exc)})
            return
        await self._send(writer, {"ok": True, "status": 202,
                                  **record.status()})

    async def _op_result(self, request: Dict[str, Any],
                         writer: asyncio.StreamWriter) -> None:
        """Stream a job's events (NDJSON) through its terminal event."""
        record = self.jobs.get(request.get("job_id", ""))
        if record is None:
            await self._send(writer, {"ok": False,
                                      "error": "unknown job"})
            return
        sent = 0
        while True:
            async with record.changed:
                while sent >= len(record.events) \
                        and record.state not in TERMINAL_STATES:
                    await record.changed.wait()
                pending = record.events[sent:]
                sent += len(pending)
                finished = record.state in TERMINAL_STATES \
                    and sent >= len(record.events)
            for event in pending:
                await self._send(writer, event)
            if finished:
                return


@dataclass
class ServerHandle:
    """A server running on a daemon thread (for tests and the CLI
    client's own integration checks)."""

    server: ProfilingServer
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop

    @property
    def address(self) -> tuple:
        return self.server.address

    def stop(self, timeout: float = 10.0) -> None:
        self.loop.call_soon_threadsafe(self.server.request_shutdown)
        self.thread.join(timeout=timeout)


def start_in_thread(config: Optional[ServerConfig] = None,
                    timeout: float = 30.0) -> ServerHandle:
    """Start a :class:`ProfilingServer` on a background thread and
    block until it is accepting connections."""
    server = ProfilingServer(config)
    started = threading.Event()
    box: Dict[str, Any] = {}

    async def _main() -> None:
        await server.start()
        box["loop"] = asyncio.get_running_loop()
        started.set()
        await server.wait_closed()

    def _run() -> None:
        try:
            asyncio.run(_main())
        except Exception as exc:  # surface startup failures to the waiter
            box["error"] = exc
            started.set()

    thread = threading.Thread(target=_run, name="repro-server",
                              daemon=True)
    thread.start()
    if not started.wait(timeout):
        raise RuntimeError("server did not start in time")
    if "error" in box:
        raise box["error"]
    return ServerHandle(server=server, thread=thread, loop=box["loop"])


async def serve(config: Optional[ServerConfig] = None,
                announce=None) -> None:
    """Run the service until a ``shutdown`` request (the ``repro
    serve`` entry point)."""
    server = ProfilingServer(config)
    await server.start()
    if announce is not None:
        announce(server.address)
    await server.wait_closed()


def ensure_artifact_dir(path: Optional[str]) -> Optional[str]:
    if path:
        os.makedirs(path, exist_ok=True)
    return path
