"""Control-flow and liveness analysis on SASS kernels.

The SASSI injector needs, at every instrumentation site, the set of live
general-purpose and predicate registers: those are what the ABI-compliant
call sequence must spill and restore (paper Figure 2, steps 2 and 8).

Liveness here is *per-lane* liveness.  In the SIMT model a handler call
only reads/writes registers of lanes active at the site, and an active
lane's future register uses are exactly the uses along its dynamic control
path.  The CFG therefore includes the dynamic edges taken by the
divergence-stack ``SYNC`` instruction (a lane executing ``SYNC`` may resume
at the fall-through of any divergent branch), and predicated definitions do
not kill (guard-false lanes keep the old value along the same path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.isa.instruction import Instruction, LabelRef
from repro.isa.opcodes import Opcode
from repro.isa.program import SassKernel
from repro.isa.registers import GPR, NUM_PREDS, Pred


def successors(kernel: SassKernel, index: int) -> Tuple[int, ...]:
    """Static successor instruction indices of the instruction at *index*.

    ``EXIT`` and ``RET`` have none; calls fall through (the callee returns);
    ``SYNC`` may resume at the fall-through of any divergent branch in the
    kernel (a sound over-approximation of the divergence stack).
    """
    instr = kernel.instructions[index]
    limit = len(kernel.instructions)
    next_index = index + 1

    def fallthrough() -> Tuple[int, ...]:
        return (next_index,) if next_index < limit else ()

    if instr.opcode in (Opcode.EXIT, Opcode.RET):
        return ()
    if instr.opcode == Opcode.BRA:
        target = kernel.resolve_target(_branch_target(instr))
        if instr.guard.is_unconditional:
            return (target,)
        return tuple({target, *fallthrough()})
    if instr.opcode == Opcode.SYNC:
        resume: Set[int] = set(fallthrough())
        for other_index, other in enumerate(kernel.instructions):
            if (other.opcode == Opcode.BRA
                    and not other.guard.is_unconditional
                    and other_index + 1 < limit):
                resume.add(other_index + 1)
        return tuple(sorted(resume))
    if instr.opcode == Opcode.BRK:
        # Breaking lanes resume at a PBK target; guard-false lanes fall
        # through.  Conservatively include every PBK target in the kernel.
        resume = set(fallthrough())
        for other in kernel.instructions:
            if other.opcode == Opcode.PBK:
                resume.add(kernel.resolve_target(_branch_target(other)))
        return tuple(sorted(resume))
    return fallthrough()


def _branch_target(instr: Instruction) -> LabelRef:
    for operand in instr.srcs:
        if isinstance(operand, LabelRef):
            return operand
    raise ValueError(f"branch without label target: {instr!r}")


@dataclass
class LivenessResult:
    """Per-instruction live-in/live-out register sets."""

    gpr_in: List[FrozenSet[int]]
    gpr_out: List[FrozenSet[int]]
    pred_in: List[FrozenSet[int]]
    pred_out: List[FrozenSet[int]]

    def live_gprs_at(self, index: int) -> Tuple[GPR, ...]:
        """GPRs live *across* the site before instruction *index* — i.e.
        live-in of the instruction (what a call inserted there must
        preserve)."""
        return tuple(GPR(i) for i in sorted(self.gpr_in[index]))

    def live_preds_at(self, index: int) -> Tuple[Pred, ...]:
        return tuple(Pred(i) for i in sorted(self.pred_in[index]))

    def live_gprs_after(self, index: int) -> Tuple[GPR, ...]:
        return tuple(GPR(i) for i in sorted(self.gpr_out[index]))

    def live_preds_after(self, index: int) -> Tuple[Pred, ...]:
        return tuple(Pred(i) for i in sorted(self.pred_out[index]))


def _uses_defs(instr: Instruction) -> Tuple[Set[int], Set[int], Set[int], Set[int]]:
    gpr_uses = {r.index for r in instr.gpr_uses()}
    pred_uses = {p.index for p in instr.pred_uses()}
    if instr.opcode == Opcode.P2R:
        pred_uses.update(range(NUM_PREDS - 1))  # reads the predicate file
    gpr_defs: Set[int] = set()
    pred_defs: Set[int] = set()
    # Predicated definitions do not kill: guard-false lanes keep the value.
    if instr.guard.is_unconditional:
        gpr_defs = {r.index for r in instr.gpr_defs()}
        pred_defs = {p.index for p in instr.pred_defs()}
        # R2P writes predicates under an immediate mask; conservatively
        # treat it as defining nothing (no kill) but it produces all preds.
    return gpr_uses, gpr_defs, pred_uses, pred_defs


def compute_liveness(kernel: SassKernel) -> LivenessResult:
    """Backward may-analysis over the kernel's instruction-level CFG."""
    count = len(kernel.instructions)
    succs = [successors(kernel, i) for i in range(count)]
    use_def = [_uses_defs(instr) for instr in kernel.instructions]

    gpr_in: List[Set[int]] = [set() for _ in range(count)]
    pred_in: List[Set[int]] = [set() for _ in range(count)]
    changed = True
    while changed:
        changed = False
        for index in range(count - 1, -1, -1):
            gpr_uses, gpr_defs, pred_uses, pred_defs = use_def[index]
            gout: Set[int] = set()
            pout: Set[int] = set()
            for succ in succs[index]:
                gout |= gpr_in[succ]
                pout |= pred_in[succ]
            gin = gpr_uses | (gout - gpr_defs)
            pin = pred_uses | (pout - pred_defs)
            if gin != gpr_in[index] or pin != pred_in[index]:
                gpr_in[index] = gin
                pred_in[index] = pin
                changed = True

    gpr_out: List[FrozenSet[int]] = []
    pred_out: List[FrozenSet[int]] = []
    for index in range(count):
        gout: Set[int] = set()
        pout: Set[int] = set()
        for succ in succs[index]:
            gout |= gpr_in[succ]
            pout |= pred_in[succ]
        gpr_out.append(frozenset(gout))
        pred_out.append(frozenset(pout))
    return LivenessResult(
        gpr_in=[frozenset(s) for s in gpr_in],
        gpr_out=gpr_out,
        pred_in=[frozenset(s) for s in pred_in],
        pred_out=pred_out,
    )


@dataclass
class BasicBlock:
    """A maximal straight-line region ``[start, end)`` of the kernel."""

    start: int
    end: int
    succ: Tuple[int, ...] = ()

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.end


def basic_blocks(kernel: SassKernel) -> List[BasicBlock]:
    """Partition the kernel into basic blocks (by leader analysis)."""
    count = len(kernel.instructions)
    if count == 0:
        return []
    leaders: Set[int] = {0}
    for index, instr in enumerate(kernel.instructions):
        if instr.is_control_xfer or instr.opcode == Opcode.SSY:
            if index + 1 < count:
                leaders.add(index + 1)
            for target in successors(kernel, index):
                leaders.add(target)
    ordered = sorted(leaders)
    blocks: List[BasicBlock] = []
    starts: Dict[int, int] = {}
    for position, start in enumerate(ordered):
        end = ordered[position + 1] if position + 1 < len(ordered) else count
        starts[start] = len(blocks)
        blocks.append(BasicBlock(start=start, end=end))
    for block in blocks:
        if block.end == block.start:
            continue
        last = block.end - 1
        block.succ = tuple(sorted({starts[s] for s in successors(kernel, last)
                                   if s in starts}))
    return blocks
