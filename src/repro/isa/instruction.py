"""Instruction and operand model of the SASS-like ISA.

An :class:`Instruction` is a frozen value: opcode, destination operands,
source operands, a predicate guard, and a tuple of dotted modifiers, e.g.::

    @!P0 LDG.64 R4, [R8+0x10] ;

is ``Instruction(Opcode.LDG, dsts=(GPR(4),), srcs=(MemRef(GLOBAL, GPR(8),
0x10),), guard=PredGuard(Pred(0), negated=True), mods=("64",))``.

Memory widths are carried as modifiers (``U8``/``S8``/``U16``/``S16``/
``32``/``64``/``128``); the default width is 32 bits.  64- and 128-bit
accesses read/write aligned register pairs/quads rooted at the named
register, as on Kepler.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union

from repro.isa.opcodes import Opcode, OpClass, classes_of
from repro.isa.registers import GPR, PT, Pred, SpecialReg


class MemSpace(enum.Enum):
    """Memory spaces addressable by memory instructions."""

    GENERIC = 0
    GLOBAL = 1
    SHARED = 2
    LOCAL = 3
    CONST = 4
    TEXTURE = 5


#: The memory space implied by each memory opcode (generic LD/ST dispatch
#: by address range at execution time).
OPCODE_SPACE = {
    Opcode.LD: MemSpace.GENERIC,
    Opcode.ST: MemSpace.GENERIC,
    Opcode.LDG: MemSpace.GLOBAL,
    Opcode.STG: MemSpace.GLOBAL,
    Opcode.LDS: MemSpace.SHARED,
    Opcode.STS: MemSpace.SHARED,
    Opcode.LDL: MemSpace.LOCAL,
    Opcode.STL: MemSpace.LOCAL,
    Opcode.LDC: MemSpace.CONST,
    Opcode.ATOM: MemSpace.GLOBAL,
    Opcode.ATOMS: MemSpace.SHARED,
    Opcode.RED: MemSpace.GLOBAL,
    Opcode.TLD: MemSpace.TEXTURE,
}


@dataclass(frozen=True)
class Imm:
    """An immediate operand.

    Floating-point immediates are stored bit-cast to their 32-bit pattern;
    the ``is_float`` flag only affects textual formatting.
    """

    value: int
    is_float: bool = False

    def __repr__(self) -> str:
        if self.is_float:
            import struct

            return repr(struct.unpack("<f", struct.pack("<I", self.value & 0xFFFFFFFF))[0])
        if -16 < self.value < 16:
            return str(self.value)
        sign = "-" if self.value < 0 else ""
        return f"{sign}0x{abs(self.value):x}"


@dataclass(frozen=True)
class ConstRef:
    """A constant-bank reference ``c[bank][offset]``.

    Bank 0 holds the kernel parameters and launch configuration, as on real
    hardware.  Offsets are in bytes.
    """

    bank: int
    offset: int

    def __repr__(self) -> str:
        return f"c[0x{self.bank:x}][0x{self.offset:x}]"


@dataclass(frozen=True)
class MemRef:
    """A memory operand ``[Rbase+offset]``.

    The base register names the root of a 64-bit register pair holding the
    address (``base`` may be ``RZ`` for absolute addressing).  Shared and
    local references use 32-bit offsets within their space, in which case
    only the root register is read.
    """

    space: MemSpace
    base: GPR
    offset: int = 0

    def __repr__(self) -> str:
        if self.offset:
            sign = "+" if self.offset >= 0 else "-"
            return f"[{self.base}{sign}0x{abs(self.offset):x}]"
        return f"[{self.base}]"


@dataclass(frozen=True)
class LabelRef:
    """A branch/call target by label name (resolved by the assembler)."""

    name: str

    def __repr__(self) -> str:
        return f"`({self.name})"


Operand = Union[GPR, Pred, Imm, ConstRef, MemRef, LabelRef, SpecialReg]


@dataclass(frozen=True)
class PredGuard:
    """The ``@[!]Pn`` guard carried by every instruction."""

    pred: Pred = PT
    negated: bool = False

    @property
    def is_unconditional(self) -> bool:
        return self.pred.is_true and not self.negated

    def __repr__(self) -> str:
        bang = "!" if self.negated else ""
        return f"@{bang}{self.pred}"


#: Byte width implied by width modifiers.
_WIDTH_BYTES = {"U8": 1, "S8": 1, "U16": 2, "S16": 2, "32": 4, "64": 8, "128": 16}


@dataclass(frozen=True)
class Instruction:
    """A single SASS-like instruction."""

    opcode: Opcode
    dsts: Tuple[Operand, ...] = ()
    srcs: Tuple[Operand, ...] = ()
    guard: PredGuard = PredGuard()
    mods: Tuple[str, ...] = ()
    #: Provenance tag; the SASSI injector marks its code ``"sassi"`` so that
    #: instrumentation is never itself instrumented.
    tag: Optional[str] = None

    # ---- class queries (the SASSIBeforeParams menu, Figure 2b) ----

    @property
    def op_classes(self) -> OpClass:
        return classes_of(self.opcode)

    @property
    def is_memory(self) -> bool:
        return bool(self.op_classes & OpClass.MEMORY)

    @property
    def is_mem_read(self) -> bool:
        return bool(self.op_classes & OpClass.MEM_READ)

    @property
    def is_mem_write(self) -> bool:
        return bool(self.op_classes & OpClass.MEM_WRITE)

    @property
    def is_atomic(self) -> bool:
        return bool(self.op_classes & OpClass.ATOMIC)

    @property
    def is_control_xfer(self) -> bool:
        return bool(self.op_classes & OpClass.CONTROL)

    @property
    def is_cond_control_xfer(self) -> bool:
        return self.is_control_xfer and not self.guard.is_unconditional

    @property
    def is_call(self) -> bool:
        return bool(self.op_classes & OpClass.CALL)

    @property
    def is_sync(self) -> bool:
        return bool(self.op_classes & OpClass.SYNC)

    @property
    def is_numeric(self) -> bool:
        return bool(self.op_classes & OpClass.NUMERIC)

    @property
    def is_texture(self) -> bool:
        return bool(self.op_classes & OpClass.TEXTURE)

    @property
    def is_spill_or_fill(self) -> bool:
        """True for accesses to the thread-local stack (LDL/STL)."""
        return self.opcode in (Opcode.LDL, Opcode.STL)

    @property
    def mem_space(self) -> Optional[MemSpace]:
        return OPCODE_SPACE.get(self.opcode)

    @property
    def mem_width(self) -> int:
        """Access width in bytes for memory instructions (default 4)."""
        for mod in self.mods:
            if mod in _WIDTH_BYTES:
                return _WIDTH_BYTES[mod]
        return 4

    @property
    def mem_ref(self) -> Optional[MemRef]:
        for operand in (*self.srcs, *self.dsts):
            if isinstance(operand, MemRef):
                return operand
        return None

    # ---- register def/use sets (used by liveness and the injector) ----

    def _regs_in_operand(self, operand: Operand, written: bool) -> Tuple[GPR, ...]:
        if isinstance(operand, GPR):
            if operand.is_zero:
                return ()
            # Only memory *data* operands widen into pairs/quads; all
            # arithmetic in this ISA is 32-bit.
            count = max(1, self.mem_width // 4) if self.is_memory else 1
            return tuple(GPR(operand.index + i) for i in range(count))
        if isinstance(operand, MemRef):
            base = operand.base
            if base.is_zero:
                return ()
            if operand.space in (MemSpace.SHARED, MemSpace.LOCAL):
                return (base,)
            return (base, GPR(base.index + 1))
        return ()

    def gpr_uses(self) -> Tuple[GPR, ...]:
        """GPRs read by this instruction (address pairs and wide stores
        included), excluding ``RZ``."""
        regs: list[GPR] = []
        for operand in self.srcs:
            regs.extend(self._regs_in_operand(operand, written=False))
        # Stores read their data operand, which textually sits in srcs
        # already for this ISA (see asmtext) -- nothing extra to do.
        return tuple(r for r in regs if not r.is_zero)

    def gpr_defs(self) -> Tuple[GPR, ...]:
        """GPRs written by this instruction, excluding ``RZ``."""
        regs: list[GPR] = []
        for operand in self.dsts:
            if isinstance(operand, GPR):
                if operand.is_zero:
                    continue
                if self.is_mem_read:
                    count = max(1, self.mem_width // 4)
                elif "WIDE" in self.mods:
                    count = 2  # widening multiply writes a pair
                else:
                    count = 1
                regs.extend(GPR(operand.index + i) for i in range(count))
        return tuple(regs)

    def pred_uses(self) -> Tuple[Pred, ...]:
        preds = [p for p in self.srcs if isinstance(p, Pred) and not p.is_true]
        if not self.guard.is_unconditional:
            preds.append(self.guard.pred)
        return tuple(preds)

    def pred_defs(self) -> Tuple[Pred, ...]:
        return tuple(p for p in self.dsts if isinstance(p, Pred) and not p.is_true)

    # ---- convenience ----

    def with_guard(self, guard: PredGuard) -> "Instruction":
        return replace(self, guard=guard)

    def with_tag(self, tag: str) -> "Instruction":
        return replace(self, tag=tag)

    def __repr__(self) -> str:
        from repro.isa.asmtext import format_instruction

        return format_instruction(self)
