"""Opcode set and instruction-class predicates.

The class flags mirror the categories that the paper's
``SASSIBeforeParams`` object can answer queries about (Figure 2b):
memory, control transfer, synchronization, numeric, texture, and so on.
SASSI's *where* specification ("instrument before all memory operations",
"before conditional control transfers", ...) selects sites by these classes.
"""

from __future__ import annotations

import enum


class OpClass(enum.Flag):
    """Semantic classes an opcode may belong to (an opcode can be in many)."""

    NONE = 0
    MEMORY = enum.auto()
    MEM_READ = enum.auto()
    MEM_WRITE = enum.auto()
    CONTROL = enum.auto()        # any control transfer
    CALL = enum.auto()
    SYNC = enum.auto()           # barriers and membar
    NUMERIC = enum.auto()        # produces an arithmetic result
    FLOAT = enum.auto()
    INTEGER = enum.auto()
    TEXTURE = enum.auto()
    ATOMIC = enum.auto()
    PREDICATE_OUT = enum.auto()  # writes a predicate register
    WARP = enum.auto()           # warp-wide communication (VOTE/SHFL)
    MOVE = enum.auto()
    CONVERT = enum.auto()
    NOP_LIKE = enum.auto()


class Opcode(enum.Enum):
    """All opcodes of the SASS-like ISA.

    The value is a stable small integer used by the binary encoding.
    """

    # Moves / selections / special registers
    MOV = 0
    MOV32I = 1
    SEL = 2
    S2R = 3
    P2R = 4
    R2P = 5
    PSETP = 6

    # Integer arithmetic and logic
    IADD = 10
    IADD32I = 11
    IMUL = 12
    IMAD = 13
    ISCADD = 14
    ISETP = 15
    IMNMX = 16
    LOP = 17          # .AND / .OR / .XOR / .PASS_B (modifier selects)
    LOP32I = 18
    SHL = 19
    SHR = 20
    POPC = 21
    FLO = 22
    BFE = 23
    BFI = 24
    IABS = 25

    # Floating point (fp32)
    FADD = 30
    FMUL = 31
    FFMA = 32
    FSETP = 33
    FMNMX = 34
    MUFU = 35         # .RCP / .SQRT / .RSQ / .LG2 / .EX2 / .SIN / .COS
    F2I = 36
    I2F = 37
    F2F = 38

    # Memory
    LD = 50           # generic load
    ST = 51           # generic store
    LDG = 52          # global load
    STG = 53          # global store
    LDS = 54          # shared load
    STS = 55          # shared store
    LDL = 56          # local (per-thread) load
    STL = 57          # local store
    LDC = 58          # constant-bank load
    ATOM = 59         # global atomic (modifier: ADD/AND/OR/XOR/MIN/MAX/EXCH/CAS)
    ATOMS = 60        # shared atomic
    RED = 61          # reduction (atomic without return)
    TLD = 62          # texture load (modelled as a cached read-only fetch)
    MEMBAR = 63

    # Control flow
    BRA = 70
    JCAL = 71         # absolute call (the SASSI handler call in Figure 2)
    CAL = 72          # relative call
    RET = 73
    EXIT = 74
    SSY = 75          # push reconvergence point
    SYNC = 76         # pop reconvergence point (NOP.S in real SASS)
    BAR = 77          # CTA barrier
    BPT = 78          # breakpoint/trap
    NOP = 79
    PBK = 80          # push break point (loop exit) onto divergence stack
    BRK = 81          # break: park active threads at the break point

    # Warp-wide
    VOTE = 85         # .BALLOT / .ALL / .ANY
    SHFL = 86         # .IDX / .UP / .DOWN / .BFLY


_MEM_RW = OpClass.MEMORY
_I = OpClass.NUMERIC | OpClass.INTEGER
_F = OpClass.NUMERIC | OpClass.FLOAT

#: Class flags for every opcode.
OPCODE_CLASSES: dict[Opcode, OpClass] = {
    Opcode.MOV: OpClass.MOVE,
    Opcode.MOV32I: OpClass.MOVE,
    Opcode.SEL: OpClass.MOVE,
    Opcode.S2R: OpClass.MOVE,
    Opcode.P2R: OpClass.MOVE,
    Opcode.R2P: OpClass.MOVE | OpClass.PREDICATE_OUT,
    Opcode.PSETP: OpClass.PREDICATE_OUT,
    Opcode.IADD: _I,
    Opcode.IADD32I: _I,
    Opcode.IMUL: _I,
    Opcode.IMAD: _I,
    Opcode.ISCADD: _I,
    Opcode.ISETP: _I | OpClass.PREDICATE_OUT,
    Opcode.IMNMX: _I,
    Opcode.LOP: _I,
    Opcode.LOP32I: _I,
    Opcode.SHL: _I,
    Opcode.SHR: _I,
    Opcode.POPC: _I,
    Opcode.FLO: _I,
    Opcode.BFE: _I,
    Opcode.BFI: _I,
    Opcode.IABS: _I,
    Opcode.FADD: _F,
    Opcode.FMUL: _F,
    Opcode.FFMA: _F,
    Opcode.FSETP: _F | OpClass.PREDICATE_OUT,
    Opcode.FMNMX: _F,
    Opcode.MUFU: _F,
    Opcode.F2I: OpClass.CONVERT | _I,
    Opcode.I2F: OpClass.CONVERT | _F,
    Opcode.F2F: OpClass.CONVERT | _F,
    Opcode.LD: _MEM_RW | OpClass.MEM_READ,
    Opcode.ST: _MEM_RW | OpClass.MEM_WRITE,
    Opcode.LDG: _MEM_RW | OpClass.MEM_READ,
    Opcode.STG: _MEM_RW | OpClass.MEM_WRITE,
    Opcode.LDS: _MEM_RW | OpClass.MEM_READ,
    Opcode.STS: _MEM_RW | OpClass.MEM_WRITE,
    Opcode.LDL: _MEM_RW | OpClass.MEM_READ,
    Opcode.STL: _MEM_RW | OpClass.MEM_WRITE,
    Opcode.LDC: _MEM_RW | OpClass.MEM_READ,
    Opcode.ATOM: _MEM_RW | OpClass.MEM_READ | OpClass.MEM_WRITE | OpClass.ATOMIC,
    Opcode.ATOMS: _MEM_RW | OpClass.MEM_READ | OpClass.MEM_WRITE | OpClass.ATOMIC,
    Opcode.RED: _MEM_RW | OpClass.MEM_WRITE | OpClass.ATOMIC,
    Opcode.TLD: _MEM_RW | OpClass.MEM_READ | OpClass.TEXTURE,
    Opcode.MEMBAR: OpClass.SYNC,
    Opcode.BRA: OpClass.CONTROL,
    Opcode.JCAL: OpClass.CONTROL | OpClass.CALL,
    Opcode.CAL: OpClass.CONTROL | OpClass.CALL,
    Opcode.RET: OpClass.CONTROL,
    Opcode.EXIT: OpClass.CONTROL,
    Opcode.SSY: OpClass.NOP_LIKE,
    Opcode.SYNC: OpClass.CONTROL,
    Opcode.BAR: OpClass.SYNC,
    Opcode.BPT: OpClass.NOP_LIKE,
    Opcode.NOP: OpClass.NOP_LIKE,
    Opcode.PBK: OpClass.NOP_LIKE,
    Opcode.BRK: OpClass.CONTROL,
    Opcode.VOTE: OpClass.WARP,
    Opcode.SHFL: OpClass.WARP,
}


def classes_of(opcode: Opcode) -> OpClass:
    """Class flags for *opcode*."""
    return OPCODE_CLASSES[opcode]


def opcode_from_value(value: int) -> Opcode:
    """Inverse of ``Opcode.value`` (raises ``ValueError`` on bad values)."""
    return Opcode(value)


#: Modifier vocabulary, used by both the text parser and the encoder.  Order
#: matters: a modifier's encoding index is its position in this tuple.
MODIFIERS = (
    # widths
    "U8", "S8", "U16", "S16", "32", "64", "128",
    # comparisons
    "LT", "LE", "GT", "GE", "EQ", "NE",
    # signedness / logic selectors
    "U32", "S32", "AND", "OR", "XOR", "PASS_B", "NOT_B",
    # MUFU functions
    "RCP", "SQRT", "RSQ", "LG2", "EX2", "SIN", "COS",
    # atomics
    "ADD", "MIN", "MAX", "EXCH", "CAS", "INC", "DEC",
    # votes / shuffles
    "BALLOT", "ALL", "ANY", "IDX", "UP", "DOWN", "BFLY",
    # misc
    "LZ", "HI", "LO", "X", "CC", "S", "E", "SYS", "GL", "CTA",
    "NEGB", "WIDE",
    # float rounding / saturation
    "RN", "RZI", "FLOOR", "CEIL", "TRUNC", "SAT", "FTZ",
    # min/max selector used by IMNMX/FMNMX (predicate chooses) - none extra
)

_MODIFIER_INDEX = {name: i for i, name in enumerate(MODIFIERS)}


def modifier_index(name: str) -> int:
    """Encoding index of a modifier name."""
    try:
        return _MODIFIER_INDEX[name]
    except KeyError:
        raise ValueError(f"unknown modifier: {name!r}") from None


def modifier_from_index(index: int) -> str:
    return MODIFIERS[index]
