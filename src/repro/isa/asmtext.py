"""Assembly text formatting and parsing for the SASS-like ISA.

The textual syntax follows NVIDIA's ``cuobjdump``/``nvdisasm`` conventions::

    @!P0 LDG.64 R4, [R8+0x10] ;
         ISETP.LT.AND P1, PT, R5, c[0x0][0x148], PT ;
         SSY `(RECONV_0) ;

``format_instruction``/``parse_instruction`` round-trip exactly, which the
property-based tests rely on.  ``parse_kernel`` reads a whole ``.kernel``
block with labels into a :class:`~repro.isa.program.SassKernel`.
"""

from __future__ import annotations

import re
import struct
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import (
    ConstRef,
    Imm,
    Instruction,
    LabelRef,
    MemRef,
    MemSpace,
    OPCODE_SPACE,
    Operand,
    PredGuard,
)
from repro.isa.opcodes import MODIFIERS, Opcode
from repro.isa.registers import GPR, PT, Pred, RZ_INDEX, SpecialReg


def _format_operand(operand: Operand) -> str:
    if isinstance(operand, Imm) and operand.is_float:
        value = struct.unpack("<f", struct.pack("<I", operand.value & 0xFFFFFFFF))[0]
        return f"{value!r}f"
    return repr(operand)


def format_instruction(instr: Instruction) -> str:
    """Render *instr* in nvdisasm-like syntax (no trailing semicolon)."""
    parts: List[str] = []
    if not instr.guard.is_unconditional:
        parts.append(repr(instr.guard))
    mnemonic = instr.opcode.name
    if instr.mods:
        mnemonic += "." + ".".join(instr.mods)
    parts.append(mnemonic)
    operands = [*instr.dsts, *instr.srcs]
    if operands:
        parts.append(", ".join(_format_operand(op) for op in operands))
    return " ".join(parts)


_GPR_RE = re.compile(r"^R(\d+)$")
_PRED_RE = re.compile(r"^P(\d+)$")
_CONST_RE = re.compile(r"^c\[(0x[0-9a-fA-F]+|\d+)\]\[(0x[0-9a-fA-F]+|\d+)\]$")
_MEM_RE = re.compile(r"^\[(RZ|R\d+)(?:([+-])(0x[0-9a-fA-F]+|\d+))?\]$")
_LABEL_RE = re.compile(r"^`\((\w+)\)$")
_FLOAT_RE = re.compile(r"^[-+]?(\d+\.\d*|\.\d+|\d+(\.\d*)?[eE][-+]?\d+|inf|nan)f?$")


def _parse_int(text: str) -> int:
    sign = 1
    if text.startswith(("-", "+")):
        sign = -1 if text[0] == "-" else 1
        text = text[1:]
    return sign * int(text, 16 if text.startswith("0x") else 10)


def _parse_operand(text: str, space: Optional[MemSpace]) -> Operand:
    text = text.strip()
    if text == "RZ":
        return GPR(RZ_INDEX)
    if text == "PT":
        return PT
    match = _GPR_RE.match(text)
    if match:
        return GPR(int(match.group(1)))
    match = _PRED_RE.match(text)
    if match:
        return Pred(int(match.group(1)))
    if text.startswith("SR_"):
        return SpecialReg(text)
    match = _CONST_RE.match(text)
    if match:
        return ConstRef(_parse_int(match.group(1)), _parse_int(match.group(2)))
    match = _MEM_RE.match(text)
    if match:
        base = GPR(RZ_INDEX) if match.group(1) == "RZ" else GPR(int(match.group(1)[1:]))
        offset = 0
        if match.group(3):
            offset = _parse_int(match.group(3))
            if match.group(2) == "-":
                offset = -offset
        return MemRef(space or MemSpace.GENERIC, base, offset)
    match = _LABEL_RE.match(text)
    if match:
        return LabelRef(match.group(1))
    if _FLOAT_RE.match(text):
        raw = text[:-1] if text.endswith("f") else text
        bits = struct.unpack("<I", struct.pack("<f", float(raw)))[0]
        return Imm(bits, is_float=True)
    return Imm(_parse_int(text))


#: How many leading operands of each opcode are destinations.  Everything
#: not listed has 1 destination if it produces a value, else 0; the table
#: pins the exceptions.
_NUM_DSTS: Dict[Opcode, int] = {
    Opcode.ST: 0, Opcode.STG: 0, Opcode.STS: 0, Opcode.STL: 0, Opcode.RED: 0,
    Opcode.BRA: 0, Opcode.JCAL: 0, Opcode.CAL: 0, Opcode.RET: 0,
    Opcode.EXIT: 0, Opcode.SSY: 0, Opcode.SYNC: 0, Opcode.BAR: 0,
    Opcode.NOP: 0, Opcode.BPT: 0, Opcode.MEMBAR: 0,
    Opcode.PBK: 0, Opcode.BRK: 0,
    Opcode.ISETP: 2,   # P<dst>, P<combine-dst> (we model 2nd as dst too)
    Opcode.FSETP: 2,
    Opcode.PSETP: 2,
    Opcode.R2P: 0,     # writes predicate file as a side effect
    Opcode.ATOM: 1, Opcode.ATOMS: 1,
}


def _num_dsts(opcode: Opcode) -> int:
    return _NUM_DSTS.get(opcode, 1)


def _split_operands(text: str) -> List[str]:
    """Split an operand list on commas not inside brackets."""
    parts: List[str] = []
    depth = 0
    current = []
    for char in text:
        if char in "[(":
            depth += 1
        elif char in "])":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def parse_instruction(text: str) -> Instruction:
    """Parse one instruction from nvdisasm-like text."""
    text = text.strip().rstrip(";").strip()
    guard = PredGuard()
    if text.startswith("@"):
        guard_text, _, text = text.partition(" ")
        negated = guard_text.startswith("@!")
        name = guard_text[2:] if negated else guard_text[1:]
        pred = PT if name == "PT" else Pred(int(name[1:]))
        guard = PredGuard(pred, negated)
        text = text.strip()
    mnemonic, _, operand_text = text.partition(" ")
    opcode_name, *mods = mnemonic.split(".")
    try:
        opcode = Opcode[opcode_name]
    except KeyError:
        raise ValueError(f"unknown opcode: {opcode_name!r}") from None
    for mod in mods:
        if mod not in MODIFIERS:
            raise ValueError(f"unknown modifier {mod!r} on {opcode_name}")
    space = OPCODE_SPACE.get(opcode)
    operands = [_parse_operand(part, space) for part in _split_operands(operand_text)]
    num_dsts = _num_dsts(opcode)
    return Instruction(
        opcode=opcode,
        dsts=tuple(operands[:num_dsts]),
        srcs=tuple(operands[num_dsts:]),
        guard=guard,
        mods=tuple(mods),
    )


def parse_kernel(text: str):
    """Parse a ``.kernel`` block into a :class:`SassKernel`.

    Syntax::

        .kernel vecadd
        .param n 0x140 4
        .param out 0x148 8
        LOOP:
            ... ;
            @P0 BRA `(LOOP) ;
            EXIT ;
    """
    from repro.isa.program import KernelParam, SassKernel

    name = None
    params: List[KernelParam] = []
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        if line.startswith(".kernel"):
            name = line.split()[1]
            continue
        if line.startswith(".param"):
            _, pname, offset, size = line.split()
            params.append(KernelParam(pname, _parse_int(offset), _parse_int(size)))
            continue
        if line.endswith(":") and re.match(r"^\w+:$", line):
            labels[line[:-1]] = len(instructions)
            continue
        instructions.append(parse_instruction(line))
    if name is None:
        raise ValueError("missing .kernel directive")
    return SassKernel(name=name, instructions=tuple(instructions),
                      labels=labels, params=tuple(params))


def format_kernel(kernel) -> str:
    """Inverse of :func:`parse_kernel`."""
    lines = [f".kernel {kernel.name}"]
    for param in kernel.params:
        lines.append(f".param {param.name} 0x{param.offset:x} {param.size}")
    label_at: Dict[int, List[str]] = {}
    for label, index in kernel.labels.items():
        label_at.setdefault(index, []).append(label)
    for index, instr in enumerate(kernel.instructions):
        for label in sorted(label_at.get(index, ())):
            lines.append(f"{label}:")
        lines.append(f"        {format_instruction(instr)} ;")
    for label in sorted(label_at.get(len(kernel.instructions), ())):
        lines.append(f"{label}:")
    return "\n".join(lines) + "\n"
