"""Binary encoding of the SASS-like ISA.

Each instruction encodes into a fixed 128-bit word pair.  Word 0 carries the
opcode, predicate guard, up to three dotted modifiers, and a 3-bit *kind*
descriptor for each of up to six operand slots (two destinations, four
sources).  Word 1 (plus spare bits of word 0) is a variable-layout payload
area written by a bit packer: registers take 8 bits, predicates 3,
constant-bank references 18, memory references 29, immediates 33, and label
references 20 (as indices into a label table supplied by the caller).

The format is intentionally simple — its job is to make "the instruction's
encoding" a real artifact (the injected parameter object in the paper's
Figure 2 stores ``insEncoding``) and to give the test suite an exact
round-trip target.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import (
    ConstRef,
    Imm,
    Instruction,
    LabelRef,
    MemRef,
    MemSpace,
    Operand,
    PredGuard,
)
from repro.isa.opcodes import Opcode, modifier_from_index, modifier_index
from repro.isa.registers import GPR, Pred, SpecialReg

_KIND_ABSENT = 0
_KIND_GPR = 1
_KIND_PRED = 2
_KIND_IMM = 3
_KIND_CONST = 4
_KIND_MEM = 5
_KIND_LABEL = 6
_KIND_SREG = 7

_MAX_DSTS = 2
_MAX_SRCS = 4


class EncodingError(ValueError):
    """Raised when an instruction does not fit the 128-bit format."""


class _BitWriter:
    def __init__(self) -> None:
        self.value = 0
        self.position = 0

    def write(self, value: int, bits: int) -> None:
        if value < 0 or value >= (1 << bits):
            raise EncodingError(f"value {value} does not fit in {bits} bits")
        self.value |= value << self.position
        self.position += bits


class _BitReader:
    def __init__(self, value: int) -> None:
        self.value = value
        self.position = 0

    def read(self, bits: int) -> int:
        result = (self.value >> self.position) & ((1 << bits) - 1)
        self.position += bits
        return result


def _operand_kind(operand: Operand) -> int:
    if isinstance(operand, GPR):
        return _KIND_GPR
    if isinstance(operand, Pred):
        return _KIND_PRED
    if isinstance(operand, Imm):
        return _KIND_IMM
    if isinstance(operand, ConstRef):
        return _KIND_CONST
    if isinstance(operand, MemRef):
        return _KIND_MEM
    if isinstance(operand, LabelRef):
        return _KIND_LABEL
    if isinstance(operand, SpecialReg):
        return _KIND_SREG
    raise EncodingError(f"unencodable operand: {operand!r}")


def _write_payload(writer: _BitWriter, operand: Operand,
                   label_ids: Dict[str, int]) -> None:
    if isinstance(operand, GPR):
        writer.write(operand.index, 8)
    elif isinstance(operand, Pred):
        writer.write(operand.index, 3)
    elif isinstance(operand, Imm):
        writer.write(operand.value & 0xFFFFFFFF, 32)
        writer.write(1 if operand.is_float else 0, 1)
    elif isinstance(operand, ConstRef):
        if not 0 <= operand.offset < (1 << 16):
            raise EncodingError(f"const offset too large: {operand.offset:#x}")
        writer.write(operand.bank, 2)
        writer.write(operand.offset, 16)
    elif isinstance(operand, MemRef):
        if not -(1 << 17) <= operand.offset < (1 << 17):
            raise EncodingError(f"memory offset too large: {operand.offset:#x}")
        writer.write(operand.space.value, 3)
        writer.write(operand.base.index, 8)
        writer.write(operand.offset & ((1 << 18) - 1), 18)
    elif isinstance(operand, LabelRef):
        if operand.name not in label_ids:
            raise EncodingError(f"label {operand.name!r} not in label table")
        writer.write(label_ids[operand.name], 20)
    elif isinstance(operand, SpecialReg):
        writer.write(operand.encoding_index, 5)
    else:  # pragma: no cover - guarded by _operand_kind
        raise EncodingError(f"unencodable operand: {operand!r}")


def _read_payload(reader: _BitReader, kind: int,
                  label_names: Dict[int, str]) -> Operand:
    if kind == _KIND_GPR:
        return GPR(reader.read(8))
    if kind == _KIND_PRED:
        return Pred(reader.read(3))
    if kind == _KIND_IMM:
        raw = reader.read(32)
        is_float = bool(reader.read(1))
        value = raw - (1 << 32) if raw & (1 << 31) and not is_float else raw
        return Imm(value, is_float=is_float)
    if kind == _KIND_CONST:
        bank = reader.read(2)
        return ConstRef(bank, reader.read(16))
    if kind == _KIND_MEM:
        space = MemSpace(reader.read(3))
        base = GPR(reader.read(8))
        raw = reader.read(18)
        offset = raw - (1 << 18) if raw & (1 << 17) else raw
        return MemRef(space, base, offset)
    if kind == _KIND_LABEL:
        return LabelRef(label_names[reader.read(20)])
    if kind == _KIND_SREG:
        return SpecialReg.from_index(reader.read(5))
    raise EncodingError(f"bad operand kind: {kind}")


def encode_instruction(
    instr: Instruction,
    label_ids: Optional[Dict[str, int]] = None,
) -> Tuple[int, int]:
    """Encode *instr* into a ``(word0, word1)`` pair of 64-bit integers.

    *label_ids* maps label names to small integers; required only when the
    instruction references labels.
    """
    label_ids = label_ids or {}
    if len(instr.dsts) > _MAX_DSTS:
        raise EncodingError(f"too many destinations: {len(instr.dsts)}")
    if len(instr.srcs) > _MAX_SRCS:
        raise EncodingError(f"too many sources: {len(instr.srcs)}")
    if len(instr.mods) > 3:
        raise EncodingError(f"too many modifiers: {instr.mods}")

    head = _BitWriter()
    head.write(instr.opcode.value, 9)
    head.write(instr.guard.pred.index, 3)
    head.write(1 if instr.guard.negated else 0, 1)
    head.write(len(instr.mods), 2)
    for mod in instr.mods:
        head.write(modifier_index(mod), 6)
    for _ in range(3 - len(instr.mods)):
        head.write(0, 6)
    head.write(len(instr.dsts), 2)
    head.write(len(instr.srcs), 3)
    for slot in range(_MAX_DSTS + _MAX_SRCS):
        operands = (*instr.dsts, *instr.srcs)
        kind = _operand_kind(operands[slot]) if slot < len(operands) else _KIND_ABSENT
        head.write(kind, 3)
    if head.position > 64:  # pragma: no cover - layout is static
        raise EncodingError("header overflow")

    body = _BitWriter()
    for operand in (*instr.dsts, *instr.srcs):
        _write_payload(body, operand, label_ids)
    if body.position > 64:
        raise EncodingError(f"operand payload does not fit: {instr!r}")
    return head.value, body.value


def decode_instruction(
    words: Tuple[int, int],
    label_names: Optional[Dict[int, str]] = None,
) -> Instruction:
    """Inverse of :func:`encode_instruction`."""
    label_names = label_names or {}
    head = _BitReader(words[0])
    opcode = Opcode(head.read(9))
    pred = Pred(head.read(3))
    negated = bool(head.read(1))
    num_mods = head.read(2)
    mod_indices = [head.read(6) for _ in range(3)]
    mods = tuple(modifier_from_index(mod_indices[i]) for i in range(num_mods))
    num_dsts = head.read(2)
    num_srcs = head.read(3)
    kinds = [head.read(3) for _ in range(_MAX_DSTS + _MAX_SRCS)]

    body = _BitReader(words[1])
    operands: List[Operand] = []
    for slot in range(num_dsts + num_srcs):
        operands.append(_read_payload(body, kinds[slot], label_names))
    return Instruction(
        opcode=opcode,
        dsts=tuple(operands[:num_dsts]),
        srcs=tuple(operands[num_dsts:]),
        guard=PredGuard(pred, negated),
        mods=mods,
    )
