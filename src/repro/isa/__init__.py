"""SASS-like instruction set architecture.

This package defines the native ISA of the simulated GPU: a register file
with 255 general-purpose registers plus the always-zero ``RZ``, seven
predicate registers plus the always-true ``PT``, a 4-bit condition code,
predication on every instruction, and an opcode set closely modelled on
NVIDIA's Kepler-era SASS (the target of the SASSI paper).

The public surface:

* :mod:`repro.isa.registers` -- register name spaces and special registers.
* :mod:`repro.isa.opcodes` -- the opcode enumeration and class predicates
  (``is_memory``, ``is_control_xfer``, ...) mirroring the queries of
  ``SASSIBeforeParams`` in the paper's Figure 2(b).
* :mod:`repro.isa.instruction` -- the :class:`Instruction` model and operand
  kinds.
* :mod:`repro.isa.encoding` -- a 128-bit binary encoding with exact
  encode/decode round-tripping.
* :mod:`repro.isa.asmtext` -- assembly text printing and parsing.
* :mod:`repro.isa.program` -- :class:`SassKernel` / :class:`SassProgram`
  containers with labels and a symbol table.
* :mod:`repro.isa.analysis` -- CFG construction and live-register dataflow
  used by the SASSI injector to decide what to spill.
"""

from repro.isa.registers import (
    RZ,
    PT,
    GPR,
    Pred,
    SpecialReg,
    SREG_NAMES,
)
from repro.isa.opcodes import Opcode, OpClass
from repro.isa.instruction import (
    Instruction,
    Imm,
    ConstRef,
    MemRef,
    LabelRef,
    PredGuard,
    MemSpace,
)
from repro.isa.program import SassKernel, SassProgram, KernelParam
from repro.isa.asmtext import format_instruction, parse_instruction, parse_kernel
from repro.isa.encoding import encode_instruction, decode_instruction

__all__ = [
    "RZ",
    "PT",
    "GPR",
    "Pred",
    "SpecialReg",
    "SREG_NAMES",
    "Opcode",
    "OpClass",
    "Instruction",
    "Imm",
    "ConstRef",
    "MemRef",
    "LabelRef",
    "PredGuard",
    "MemSpace",
    "SassKernel",
    "SassProgram",
    "KernelParam",
    "format_instruction",
    "parse_instruction",
    "parse_kernel",
    "encode_instruction",
    "decode_instruction",
]
