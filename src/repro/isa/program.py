"""Program containers: :class:`SassKernel` and :class:`SassProgram`.

A kernel is a flat tuple of instructions plus a label table mapping names to
instruction indices.  PCs in this ISA are instruction indices scaled by 8
(each instruction notionally occupies 8 bytes), so tools that report
"instruction addresses" (such as the SASSI branch profiler's hash table
keyed by ``GetInsAddr()``) see realistic-looking byte addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction, LabelRef

#: Byte size of one encoded instruction (PC stride).
INSTRUCTION_BYTES = 8

#: Constant-bank-0 offset where kernel parameters begin (as on Kepler,
#: where params start at c[0x0][0x140]).
PARAM_BASE_OFFSET = 0x140

#: Constant-bank-0 offset holding the 32-bit local-memory (stack) base for
#: the current thread.  The Figure 2 sequence reads it as c[0x0][0x24].
STACK_BASE_OFFSET = 0x24


@dataclass(frozen=True)
class KernelParam:
    """A kernel parameter: name, constant-bank byte offset, and size."""

    name: str
    offset: int
    size: int


@dataclass(frozen=True)
class SassKernel:
    """A compiled kernel: instructions, labels, parameters, frame size."""

    name: str
    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int] = field(default_factory=dict)
    params: Tuple[KernelParam, ...] = ()
    #: Bytes of per-thread local memory the kernel itself uses (spills).
    frame_bytes: int = 0
    #: Highest GPR index used + 1 (register footprint reported to launch).
    num_regs: int = 16
    #: Base byte address assigned when placed into a program image.
    base_address: int = 0

    def label_target(self, name: str) -> int:
        """Instruction index of a label."""
        try:
            return self.labels[name]
        except KeyError:
            raise KeyError(f"kernel {self.name!r} has no label {name!r}") from None

    def resolve_target(self, ref: LabelRef) -> int:
        return self.label_target(ref.name)

    def pc_of(self, index: int) -> int:
        """Byte address of the instruction at *index*."""
        return self.base_address + index * INSTRUCTION_BYTES

    def index_of_pc(self, pc: int) -> int:
        offset = pc - self.base_address
        if offset % INSTRUCTION_BYTES:
            raise ValueError(f"misaligned PC 0x{pc:x}")
        return offset // INSTRUCTION_BYTES

    def param_offset(self, name: str) -> int:
        for param in self.params:
            if param.name == name:
                return param.offset
        raise KeyError(f"kernel {self.name!r} has no param {name!r}")

    def with_instructions(
        self,
        instructions: Tuple[Instruction, ...],
        labels: Optional[Dict[str, int]] = None,
    ) -> "SassKernel":
        return replace(
            self,
            instructions=instructions,
            labels=self.labels if labels is None else labels,
        )

    def validate(self) -> None:
        """Check that every label target and label reference is in range."""
        limit = len(self.instructions)
        for label, index in self.labels.items():
            if not 0 <= index <= limit:
                raise ValueError(f"label {label!r} out of range: {index}")
        for position, instr in enumerate(self.instructions):
            for operand in (*instr.srcs, *instr.dsts):
                if isinstance(operand, LabelRef) and operand.name not in self.labels:
                    raise ValueError(
                        f"[{position}] {instr}: undefined label {operand.name!r}"
                    )

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class SassProgram:
    """A linked image: kernels laid out in one address space plus symbols.

    Handler symbols registered by the "linker" (:mod:`repro.sassi.handlers`)
    get addresses in a reserved high range so that ``JCAL`` targets are
    recognizable as trampoline entries by the executor.
    """

    kernels: Dict[str, SassKernel] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    _next_base: int = 0x1000
    _preassigned: Dict[str, int] = field(default_factory=dict)
    #: Addresses at/above this value are native-handler trampolines.
    HANDLER_BASE = 0x7F000000
    #: Address space reserved per kernel when bases are preassigned.
    KERNEL_SLOT = 0x100000

    def preassign_base(self, name: str) -> int:
        """Reserve a load address for *name* before it is compiled.

        SASSI's injector runs at compile time but stores the kernel's
        load address (``fnAddr``) into every parameter object; reserving
        the address first keeps those fields accurate.
        """
        if name in self._preassigned:
            return self._preassigned[name]
        if name in self.symbols:
            return self.symbols[name]
        base = self._next_base
        self._next_base += self.KERNEL_SLOT
        self._preassigned[name] = base
        return base

    def add_kernel(self, kernel: SassKernel) -> SassKernel:
        if kernel.name in self._preassigned:
            base = self._preassigned.pop(kernel.name)
        else:
            base = self._next_base
            self._next_base += max(
                (len(kernel) * INSTRUCTION_BYTES + 0xFF) & ~0xFF, 0x100)
        placed = replace(kernel, base_address=base)
        placed.validate()
        self.kernels[kernel.name] = placed
        self.symbols[kernel.name] = placed.base_address
        return placed

    def add_handler_symbol(self, name: str) -> int:
        """Assign (or return) the trampoline address for a handler name."""
        if name in self.symbols:
            return self.symbols[name]
        address = self.HANDLER_BASE + 0x100 * sum(
            1 for a in self.symbols.values() if a >= self.HANDLER_BASE
        )
        self.symbols[name] = address
        return address

    def symbol_name(self, address: int) -> Optional[str]:
        for name, addr in self.symbols.items():
            if addr == address:
                return name
        return None
