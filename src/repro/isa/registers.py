"""Register name spaces of the SASS-like ISA.

The machine has 255 allocatable 32-bit general-purpose registers ``R0..R254``
and the architectural zero register ``RZ`` (index 255) which reads as zero
and discards writes.  64-bit quantities (addresses, wide loads) occupy an
aligned even/odd register pair ``(Rn, Rn+1)``, exactly as on Kepler.

Predicate registers ``P0..P6`` hold one bit per thread; ``PT`` (index 7) is
the constant-true predicate.  Every instruction carries a predicate guard
``@[!]Pn`` (defaulting to ``@PT``).

Special (read-only) registers are read with the ``S2R`` instruction and
expose the thread/CTA coordinates, lane id, and active mask.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of architectural GPRs including RZ.
NUM_GPRS = 256
#: Index of the zero register.
RZ_INDEX = 255
#: Number of predicate registers including PT.
NUM_PREDS = 8
#: Index of the constant-true predicate.
PT_INDEX = 7


@dataclass(frozen=True, order=True)
class GPR:
    """A general-purpose register operand, ``R<index>`` or ``RZ``."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_GPRS:
            raise ValueError(f"GPR index out of range: {self.index}")

    @property
    def is_zero(self) -> bool:
        return self.index == RZ_INDEX

    @property
    def pair(self) -> "GPR":
        """The odd half of the 64-bit pair rooted at this register."""
        if self.index % 2 != 0:
            raise ValueError(f"64-bit pair must be rooted at an even register, got R{self.index}")
        return GPR(self.index + 1)

    def __repr__(self) -> str:
        return "RZ" if self.is_zero else f"R{self.index}"


@dataclass(frozen=True, order=True)
class Pred:
    """A predicate register operand, ``P<index>`` or ``PT``."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_PREDS:
            raise ValueError(f"predicate index out of range: {self.index}")

    @property
    def is_true(self) -> bool:
        return self.index == PT_INDEX

    def __repr__(self) -> str:
        return "PT" if self.is_true else f"P{self.index}"


#: The zero register.
RZ = GPR(RZ_INDEX)
#: The constant-true predicate.
PT = Pred(PT_INDEX)

#: Names accepted by ``S2R`` in source order; the executor maps each to a
#: per-lane value at run time.
SREG_NAMES = (
    "SR_TID.X",
    "SR_TID.Y",
    "SR_TID.Z",
    "SR_CTAID.X",
    "SR_CTAID.Y",
    "SR_CTAID.Z",
    "SR_NTID.X",
    "SR_NTID.Y",
    "SR_NTID.Z",
    "SR_NCTAID.X",
    "SR_NCTAID.Y",
    "SR_NCTAID.Z",
    "SR_LANEID",
    "SR_WARPID",
    "SR_ACTIVEMASK",
    "SR_CLOCK",
)


@dataclass(frozen=True)
class SpecialReg:
    """A special-register source operand for ``S2R``."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in SREG_NAMES:
            raise ValueError(f"unknown special register: {self.name}")

    @property
    def encoding_index(self) -> int:
        return SREG_NAMES.index(self.name)

    @classmethod
    def from_index(cls, index: int) -> "SpecialReg":
        return cls(SREG_NAMES[index])

    def __repr__(self) -> str:
        return self.name
