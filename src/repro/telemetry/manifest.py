"""Run manifests: the provenance block attached to campaign artifacts.

A manifest records everything needed to re-run (or distrust) a result:
the campaign seed, the instrumentation-spec fingerprint, the repository
revision, and the interpreter/library versions.  Exporters embed it in
every trace file and ``run-all`` writes it next to its artifact.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, Optional

MANIFEST_SCHEMA = 1


def git_revision(path: Optional[str] = None) -> Optional[str]:
    """The repository's HEAD commit, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=path or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def run_manifest(seed: Optional[int] = None,
                 spec_fingerprint: Optional[str] = None,
                 extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build the provenance dict for one run."""
    import numpy as np

    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "created_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "numpy": np.__version__,
        "git_rev": git_revision(),
        "argv": list(sys.argv),
        "pid": os.getpid(),
    }
    if seed is not None:
        manifest["seed"] = int(seed)
    if spec_fingerprint is not None:
        manifest["spec_fingerprint"] = spec_fingerprint
    if extra:
        manifest.update(extra)
    return manifest
