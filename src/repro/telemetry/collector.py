"""The telemetry collector: spans, counters, timers, cross-process merge.

One process-wide :class:`Telemetry` instance (``TELEMETRY``) holds

* ``counters`` — monotonically increasing integer metrics, cheap enough
  for the executor's dispatch loop (one ``enabled`` branch when off);
* ``timers`` — float second accumulators (handler-body wall time);
* a stack of open :class:`Span` nodes and the list of finished root
  spans (``roots``).

Everything is disabled by default: with ``enabled`` False the dispatch
hook is a single attribute test and :func:`span` yields without
allocating.  Campaign workers (see :mod:`repro.campaign.engine`) capture
a :func:`Telemetry.mark` before each task and ship the
:func:`Telemetry.delta_since` back to the parent, which merges it with
:func:`Telemetry.merge_snapshot` — counter totals are therefore
identical between serial and ``--jobs N`` runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class Span:
    """One finished (or open) region of the run.

    ``t0``/``t1`` are ``time.perf_counter`` readings — comparable within
    one process only; exporters normalize per root tree.  ``counters``
    and ``timers`` hold the *deltas* accrued while the span was open
    (children included).
    """

    name: str
    t0: float
    t1: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    timers: Dict[str, float] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def wall(self) -> float:
        return max(self.t1 - self.t0, 0.0)

    def self_wall(self) -> float:
        return max(self.wall - sum(c.wall for c in self.children), 0.0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall": self.wall,
            "meta": dict(self.meta),
            "counters": dict(self.counters),
            "timers": dict(self.timers),
            "children": [c.to_dict() for c in self.children],
        }

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def _dict_delta(now: Dict, then: Dict) -> Dict:
    """Per-key difference ``now - then`` (keys with zero delta dropped)."""
    delta = {}
    for key, value in now.items():
        change = value - then.get(key, 0)
        if change:
            delta[key] = change
    return delta


@dataclass
class Mark:
    """A point-in-time bookmark used to compute per-task deltas."""

    counters: Dict[str, int]
    timers: Dict[str, float]
    root_count: int


@dataclass
class Snapshot:
    """A picklable telemetry delta (what a worker ships home)."""

    counters: Dict[str, int] = field(default_factory=dict)
    timers: Dict[str, float] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)


class Telemetry:
    """Process-wide telemetry state."""

    def __init__(self, clock=time.perf_counter):
        self.enabled: bool = False
        self.clock = clock
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -------------------------------------------------------- lifecycle

    def enable(self, reset: bool = False) -> None:
        if reset:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.counters = {}
        self.timers = {}
        self.roots = []
        self._stack = []

    # --------------------------------------------------------- counters

    def incr(self, name: str, amount: int = 1) -> None:
        counters = self.counters
        counters[name] = counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        timers = self.timers
        timers[name] = timers.get(name, 0.0) + seconds

    def record_dispatch(self, dec, lanes: int, active_lanes: int) -> None:
        """Hot-loop hook: one call per warp instruction when enabled.

        *dec* is the executor's predecoded record, which carries
        ``opclass_key`` (``"instr.<class>"``) and, for injected
        instructions, ``sassi_key`` (``"sassi.<bucket>"``) — both
        resolved once per kernel at decode time.
        """
        counters = self.counters
        key = dec.opclass_key
        counters[key] = counters.get(key, 0) + 1
        if lanes < active_lanes:
            counters["divergence.partial_dispatch"] = \
                counters.get("divergence.partial_dispatch", 0) + 1
        key = dec.sassi_key
        if key is not None:
            counters[key] = counters.get(key, 0) + 1

    def record_block(self, counts: Dict[str, int]) -> None:
        """Hot-loop hook: fold one fused superblock's predecoded
        dispatch-counter deltas in a single pass.

        *counts* aggregates ``opclass_key``/``sassi_key`` over the
        block's records (see
        :func:`repro.telemetry.classify.block_dispatch_counts`).  Blocks
        are only fused when every instruction is unconditional, so no
        ``divergence.partial_dispatch`` increment can arise — totals are
        exactly what per-instruction :meth:`record_dispatch` calls would
        have produced.
        """
        counters = self.counters
        for key, value in counts.items():
            counters[key] = counters.get(key, 0) + value

    # ------------------------------------------------------------ spans

    def push(self, name: str, meta: Optional[Dict[str, Any]] = None) -> Span:
        node = Span(name=name, t0=self.clock(), meta=meta or {})
        node.counters = dict(self.counters)   # mark; replaced on pop
        node.timers = dict(self.timers)
        self._stack.append(node)
        return node

    def pop(self, node: Span) -> Span:
        node.t1 = self.clock()
        node.counters = _dict_delta(self.counters, node.counters)
        node.timers = _dict_delta(self.timers, node.timers)
        while self._stack and self._stack[-1] is not node:
            self._stack.pop()          # tolerate mismatched exits
        if self._stack:
            self._stack.pop()
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        return node

    # ---------------------------------------------------- worker merges

    def mark(self) -> Mark:
        return Mark(counters=dict(self.counters), timers=dict(self.timers),
                    root_count=len(self.roots))

    def delta_since(self, mark: Mark) -> Snapshot:
        return Snapshot(
            counters=_dict_delta(self.counters, mark.counters),
            timers=_dict_delta(self.timers, mark.timers),
            spans=self.roots[mark.root_count:],
        )

    def merge_snapshot(self, snapshot: Snapshot) -> None:
        """Fold a worker's delta into this process (order-independent
        for counters/timers; spans append in call order)."""
        for key, value in snapshot.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value
        for key, value in snapshot.timers.items():
            self.timers[key] = self.timers.get(key, 0.0) + value
        sink = self._stack[-1].children if self._stack else self.roots
        sink.extend(snapshot.spans)


#: The process-wide collector.
TELEMETRY = Telemetry()


@contextmanager
def span(name: str, **meta):
    """Open a telemetry span (no-op when telemetry is disabled)."""
    telem = TELEMETRY
    if not telem.enabled:
        yield None
        return
    node = telem.push(name, meta)
    try:
        yield node
    finally:
        telem.pop(node)


@contextmanager
def timed(name: str):
    """Accumulate the block's wall time into ``timers[name]``."""
    telem = TELEMETRY
    if not telem.enabled:
        yield
        return
    start = telem.clock()
    try:
        yield
    finally:
        telem.add_time(name, telem.clock() - start)
