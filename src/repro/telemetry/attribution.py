"""Overhead attribution: where instrumented wall-clock actually goes.

A live reproduction of the paper's Section 6 breakdown: instrumented
runtime decomposes into

* ``baseline`` — the application's own instructions;
* ``save_restore`` — the injected ABI traffic (frame management,
  register/predicate/carry spills and fills, the handler call);
* ``param_marshal`` — building the SASSI parameter objects;
* ``handler_body`` — the handler functions themselves (measured
  directly: the runtime times every handler invocation).

``handler_body`` is measured wall time; the remaining wall time is
attributed proportionally to the *dynamic* warp-instruction counts of
the other three buckets (the executor's per-dispatch telemetry
counters).  The buckets therefore sum to the instrumented wall-clock
exactly, and the instruction counts cross-check against
:mod:`repro.studies.overhead`'s ``I`` ratios and the executor's
``KernelStats`` ground truth.

When sites are sampled (:mod:`repro.sassi.runtime`), skipped firings
execute no injected instructions and consume no wall time — but they
must not vanish from the accounting, or the I-ratio cross-check would
silently under-report.  They appear as the ``sampled_skipped`` bucket:
zero wall seconds, and an instruction count equal to the injected
instructions that *would* have executed, so

    executed sassi.* instructions + sampled_skipped
        == the full-rate run's sassi.* instructions

holds exactly for deterministic sampling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.telemetry.classify import SAVE_RESTORE_KEYS
from repro.telemetry.collector import TELEMETRY, span

BUCKETS = ("baseline", "save_restore", "param_marshal", "handler_body",
           "sampled_skipped")


@dataclass
class AttributionReport:
    """One workload/case decomposition."""

    workload: str
    case: str
    baseline_wall: float
    instrumented_wall: float
    #: seconds per bucket; sums to ``instrumented_wall``
    wall_buckets: Dict[str, float] = field(default_factory=dict)
    #: dynamic warp-instruction counts per instruction-level bucket
    instruction_buckets: Dict[str, int] = field(default_factory=dict)

    @property
    def slowdown(self) -> float:
        return self.instrumented_wall / max(self.baseline_wall, 1e-9)

    @property
    def instruction_ratio(self) -> float:
        base = self.instruction_buckets.get("baseline", 0)
        total = sum(self.instruction_buckets.values())
        return total / max(base, 1)

    def render(self) -> str:
        lines = [f"overhead attribution: {self.workload} [{self.case}]",
                 f"  baseline wall      {self.baseline_wall:9.4f}s",
                 f"  instrumented wall  {self.instrumented_wall:9.4f}s "
                 f"({self.slowdown:.2f}x)"]
        for bucket in BUCKETS:
            wall = self.wall_buckets.get(bucket, 0.0)
            share = wall / max(self.instrumented_wall, 1e-9)
            instrs = self.instruction_buckets.get(bucket)
            suffix = f"  ({instrs:,} warp instrs)" if instrs else ""
            lines.append(f"    {bucket:<14} {wall:9.4f}s  "
                         f"{100 * share:5.1f}%{suffix}")
        return "\n".join(lines)


def split_wall(instrumented_wall: float,
               handler_body_seconds: float,
               counters: Dict[str, int],
               baseline_instructions: int) -> Dict[str, float]:
    """Decompose *instrumented_wall* into the four buckets.

    ``handler_body`` is taken as measured; the remainder is split in
    proportion to dynamic warp-instruction counts.
    """
    handler_body = min(max(handler_body_seconds, 0.0), instrumented_wall)
    remaining = instrumented_wall - handler_body
    save_restore = sum(counters.get(k, 0) for k in SAVE_RESTORE_KEYS)
    marshal = counters.get("sassi.param_marshal", 0)
    weights = {"baseline": max(baseline_instructions, 0),
               "save_restore": save_restore,
               "param_marshal": marshal}
    total = sum(weights.values())
    if total <= 0:
        weights = {"baseline": 1, "save_restore": 0, "param_marshal": 0}
        total = 1
    buckets = {name: remaining * weight / total
               for name, weight in weights.items()}
    buckets["handler_body"] = handler_body
    # skipped sampled firings executed nothing: zero wall by definition
    # (they exist so the instruction-level accounting still sums)
    buckets["sampled_skipped"] = 0.0
    return buckets


def attribute_workload(name: str, case: str = "memory",
                       use_cache: bool = False,
                       controller=None) -> AttributionReport:
    """Run *name* uninstrumented and instrumented (per the overhead
    study's *case* configuration) and attribute the difference.

    Pass an :class:`~repro.sassi.runtime.AdaptiveController` as
    *controller* to attribute a toggled/sampled run; skipped firings
    show up in the ``sampled_skipped`` bucket."""
    from repro.backend import ptxas
    from repro.sim import Device
    from repro.studies.overhead import _handler_for
    from repro.workloads import make

    telemetry = TELEMETRY
    was_enabled = telemetry.enabled

    workload = make(name)
    device = Device()
    kernel = ptxas(workload.build_ir())
    start = time.perf_counter()
    workload.execute(device, kernel)
    baseline_wall = time.perf_counter() - start

    telemetry.enable()
    mark = telemetry.mark()
    instrumented_device = Device()
    if controller is not None:
        controller.install(instrumented_device)
    profiler = _handler_for(case, instrumented_device)
    with span("attribution", workload=name, case=case):
        with span("compile"):
            instrumented = profiler.compile(workload.build_ir())
        with span("execute"):
            start = time.perf_counter()
            workload.execute(instrumented_device, instrumented)
            instrumented_wall = time.perf_counter() - start
    delta = telemetry.delta_since(mark)
    if not was_enabled:
        telemetry.disable()

    trace = workload.last_trace
    baseline_instructions = sum(stats.baseline_warp_instructions
                                for stats in trace.launches)
    handler_body = delta.timers.get("handler_body_seconds", 0.0)
    wall_buckets = split_wall(instrumented_wall, handler_body,
                              delta.counters, baseline_instructions)
    save_restore = sum(delta.counters.get(k, 0) for k in SAVE_RESTORE_KEYS)
    report = AttributionReport(
        workload=name, case=case,
        baseline_wall=baseline_wall,
        instrumented_wall=instrumented_wall,
        wall_buckets=wall_buckets,
        instruction_buckets={
            "baseline": baseline_instructions,
            "save_restore": save_restore,
            "param_marshal": delta.counters.get("sassi.param_marshal", 0),
            "sampled_skipped": delta.counters.get("sassi.sampled_skipped",
                                                  0),
        },
    )
    return report


def cross_check_instruction_ratio(report: AttributionReport,
                                  observed_ratio: float) -> float:
    """Relative difference between the attribution's instruction ratio
    and an independently measured one (``studies.overhead``'s ``I``)."""
    predicted = report.instruction_ratio
    return abs(predicted - observed_ratio) / max(observed_ratio, 1e-9)
