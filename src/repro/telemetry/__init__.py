"""Zero-dependency observability: spans, hot-loop counters, exporters.

Quick start::

    from repro import telemetry as T

    T.TELEMETRY.enable(reset=True)
    with T.span("run", workload="vectoradd"):
        ...
    print(T.render_summary())
    T.write_chrome_trace("out.json")       # open in chrome://tracing

Everything is off by default; with telemetry disabled the executor's
dispatch loop pays one attribute test per warp instruction and
:func:`span` yields immediately.
"""

from repro.telemetry.collector import (
    Mark,
    Snapshot,
    Span,
    TELEMETRY,
    Telemetry,
    span,
    timed,
)
from repro.telemetry.classify import (
    OPCLASS_KEY,
    SAVE_RESTORE_KEYS,
    primary_class_name,
    sassi_key,
)
from repro.telemetry.export import (
    chrome_trace,
    jsonl_events,
    render_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.manifest import git_revision, run_manifest
from repro.telemetry.attribution import (
    AttributionReport,
    BUCKETS,
    attribute_workload,
    cross_check_instruction_ratio,
    split_wall,
)

__all__ = [
    "Mark", "Snapshot", "Span", "TELEMETRY", "Telemetry", "span", "timed",
    "OPCLASS_KEY", "SAVE_RESTORE_KEYS", "primary_class_name", "sassi_key",
    "chrome_trace", "jsonl_events", "render_summary", "write_chrome_trace",
    "write_jsonl", "git_revision", "run_manifest",
    "AttributionReport", "BUCKETS", "attribute_workload",
    "cross_check_instruction_ratio", "split_wall",
]
