"""Telemetry exporters: Chrome ``trace_event`` JSON, JSONL, plain text.

The Chrome format targets ``chrome://tracing`` / Perfetto: every span
becomes a complete ("X") event; counter totals ride along as counter
("C") events and the run manifest as trace-level ``metadata``.  Span
timestamps from different processes are not comparable (each worker has
its own ``perf_counter`` base), so every root tree is normalized to its
own start and given its own ``tid`` lane.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.telemetry.collector import Span, Telemetry, TELEMETRY
from repro.telemetry.manifest import run_manifest


def _span_events(root: Span, tid: int, pid: int = 1) -> List[Dict[str, Any]]:
    base = root.t0
    events: List[Dict[str, Any]] = []
    for node in root.walk():
        args: Dict[str, Any] = dict(node.meta)
        if node.counters:
            args["counters"] = dict(node.counters)
        if node.timers:
            args["timers"] = dict(node.timers)
        events.append({
            "name": node.name,
            "ph": "X",
            "ts": round((node.t0 - base) * 1e6, 3),
            "dur": round(node.wall * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "cat": "repro",
            "args": args,
        })
    return events


def chrome_trace(telemetry: Optional[Telemetry] = None,
                 manifest: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The full ``trace_event`` document as a JSON-serializable dict."""
    telemetry = telemetry or TELEMETRY
    events: List[Dict[str, Any]] = []
    for tid, root in enumerate(telemetry.roots):
        events.extend(_span_events(root, tid))
    if telemetry.counters:
        events.append({
            "name": "counters", "ph": "C", "ts": 0, "pid": 1, "tid": 0,
            "args": {k: int(v) for k, v in sorted(telemetry.counters.items())},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": manifest if manifest is not None else run_manifest(),
    }


def write_chrome_trace(path: str, telemetry: Optional[Telemetry] = None,
                       manifest: Optional[Dict[str, Any]] = None) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(telemetry, manifest), handle, indent=1)
        handle.write("\n")


def jsonl_events(telemetry: Optional[Telemetry] = None,
                 manifest: Optional[Dict[str, Any]] = None
                 ) -> List[Dict[str, Any]]:
    """Flat event stream: one manifest record, one record per span
    (depth-first), one per counter, one per timer."""
    telemetry = telemetry or TELEMETRY
    events: List[Dict[str, Any]] = [
        {"type": "manifest",
         **(manifest if manifest is not None else run_manifest())}]
    for tid, root in enumerate(telemetry.roots):
        base = root.t0
        for node in root.walk():
            events.append({
                "type": "span", "name": node.name, "tree": tid,
                "ts": node.t0 - base, "wall": node.wall,
                "meta": dict(node.meta), "counters": dict(node.counters),
                "timers": dict(node.timers),
            })
    for key, value in sorted(telemetry.counters.items()):
        events.append({"type": "counter", "name": key, "value": int(value)})
    for key, value in sorted(telemetry.timers.items()):
        events.append({"type": "timer", "name": key, "seconds": value})
    return events


def write_jsonl(path: str, telemetry: Optional[Telemetry] = None,
                manifest: Optional[Dict[str, Any]] = None) -> None:
    with open(path, "w") as handle:
        for event in jsonl_events(telemetry, manifest):
            handle.write(json.dumps(event) + "\n")


def render_summary(telemetry: Optional[Telemetry] = None) -> str:
    """Plain-text digest: span aggregates then counter/timer tables.

    Counter lines are ``<name>  <value>`` — stable and parseable (the
    telemetry tests and the CLI's ``--metrics`` output rely on it).
    """
    telemetry = telemetry or TELEMETRY
    lines: List[str] = []

    totals: Dict[str, List[float]] = {}
    for root in telemetry.roots:
        for node in root.walk():
            entry = totals.setdefault(node.name, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += node.wall
            entry[2] += node.self_wall()
    if totals:
        lines.append("spans (count / total s / self s):")
        width = max(len(name) for name in totals)
        for name in sorted(totals, key=lambda n: -totals[n][1]):
            count, wall, self_wall = totals[name]
            lines.append(f"  {name:<{width}}  {int(count):>6}  "
                         f"{wall:>9.4f}  {self_wall:>9.4f}")
    if telemetry.counters:
        lines.append("counters:")
        width = max(len(name) for name in telemetry.counters)
        for name in sorted(telemetry.counters):
            lines.append(f"  {name:<{width}}  "
                         f"{int(telemetry.counters[name]):>12}")
    if telemetry.timers:
        lines.append("timers (s):")
        width = max(len(name) for name in telemetry.timers)
        for name in sorted(telemetry.timers):
            lines.append(f"  {name:<{width}}  "
                         f"{telemetry.timers[name]:>12.4f}")
    if not lines:
        return "telemetry: no data recorded (was it enabled?)"
    return "\n".join(lines)
