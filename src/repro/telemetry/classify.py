"""Static classification feeding the dispatch-loop counters.

Two per-instruction keys are resolved once per kernel (in the executor's
decode cache) so the hot loop only does dictionary increments:

* ``opclass_key`` — ``"instr.<class>"`` where ``<class>`` is the
  instruction's primary semantic class (memory, control, float, ...);
* ``sassi_key`` — for injected (``tag == "sassi"``) instructions, which
  overhead bucket the instruction belongs to: ``spill`` / ``fill`` (the
  ABI save/restore traffic), ``save_restore`` (frame management,
  predicate/carry bookkeeping, the handler call itself) or
  ``param_marshal`` (building the SASSI parameter objects).  These are
  the dynamic inputs to the Figure-10-style overhead attribution in
  :mod:`repro.telemetry.attribution`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.isa.instruction import MemRef
from repro.isa.opcodes import OpClass, Opcode, OPCODE_CLASSES

#: (flag, name) precedence for the primary class of an opcode.
_PRIMARY = (
    (OpClass.ATOMIC, "atomic"),
    (OpClass.MEMORY, "memory"),
    (OpClass.CALL, "call"),
    (OpClass.CONTROL, "control"),
    (OpClass.SYNC, "sync"),
    (OpClass.WARP, "warp"),
    (OpClass.CONVERT, "convert"),
    (OpClass.FLOAT, "float"),
    (OpClass.INTEGER, "integer"),
    (OpClass.PREDICATE_OUT, "predicate"),
    (OpClass.MOVE, "move"),
    (OpClass.NOP_LIKE, "nop"),
)


def primary_class_name(opcode: Opcode) -> str:
    """The single class bucket an opcode is counted under."""
    flags = OPCODE_CLASSES[opcode]
    for flag, name in _PRIMARY:
        if flags & flag:
            return name
    return "other"


#: Opcode -> ``"instr.<class>"`` (precomputed for the decode cache).
OPCLASS_KEY = {opcode: f"instr.{primary_class_name(opcode)}"
               for opcode in Opcode}


def sassi_key(instr) -> Optional[str]:
    """The overhead bucket of one injected instruction (None when the
    instruction is not SASSI-injected).

    Classification rests on the ABI layout of :mod:`repro.sassi.abi`:
    spills/restores target the ``SASSIBeforeParams`` spill slots, every
    injected ``LDL`` is a restore/write-back fill, and frame management
    touches R1 — everything else the injector emits is parameter
    marshaling.
    """
    if instr.tag != "sassi":
        return None
    from repro.sassi import params as P

    opcode = instr.opcode
    if opcode is Opcode.JCAL:
        return "sassi.save_restore"        # the call is ABI bookkeeping
    if opcode is Opcode.LDL:
        return "sassi.fill"
    if opcode is Opcode.STL:
        ref = next((s for s in instr.srcs if isinstance(s, MemRef)), None)
        if ref is not None and _is_spill_slot(ref.offset, P):
            return "sassi.spill"
        return "sassi.param_marshal"
    if opcode in (Opcode.P2R, Opcode.R2P):
        return "sassi.save_restore"        # predicate-file save/restore
    if opcode is Opcode.IADD:
        dsts = instr.dsts
        if dsts and getattr(dsts[0], "index", None) == 1:
            return "sassi.save_restore"    # frame alloc/release on R1
        if "X" in instr.mods or "CC" in instr.mods:
            # carry-flag read (IADD.X RZ,RZ) / restore (IADD.CC -1)...
            # unless it is the 64-bit effective-address computation,
            # which reads a base register pair for SASSIMemoryParams.
            srcs = instr.srcs
            if all(getattr(s, "is_zero", False) or not hasattr(s, "index")
                   for s in srcs):
                return "sassi.save_restore"
            if dsts and getattr(dsts[0], "is_zero", False):
                return "sassi.save_restore"
    return "sassi.param_marshal"


def _is_spill_slot(offset: int, P) -> bool:
    if offset in (P.BP_PR_SPILL, P.BP_CC_SPILL):
        return True
    return P.BP_GPR_SPILL <= offset \
        < P.BP_GPR_SPILL + 4 * P.NUM_SPILL_SLOTS


def block_dispatch_counts(records) -> Dict[str, int]:
    """Aggregate the dispatch-counter keys of a fused superblock.

    Resolved once at decode time so the executor's fast path folds one
    small dict per block instead of touching the counters once per
    instruction.  Input records carry ``opclass_key``/``sassi_key``
    (the executor's ``_Decoded`` shape).
    """
    counts: Dict[str, int] = {}
    for dec in records:
        key = dec.opclass_key
        counts[key] = counts.get(key, 0) + 1
        key = dec.sassi_key
        if key is not None:
            counts[key] = counts.get(key, 0) + 1
    return counts


#: The save/restore bucket is the union of these counter keys.
SAVE_RESTORE_KEYS = ("sassi.spill", "sassi.fill", "sassi.save_restore")
