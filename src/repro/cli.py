"""Command-line interface (the ``ptxas``/``nvdisasm`` analog).

Subcommands::

    python -m repro.cli compile  kernel.ptx [--sassi FLAGS] [-o out.sass]
    python -m repro.cli disasm   kernel.ptx            # SASS listing
    python -m repro.cli workloads [--run NAME]         # list / verify
    python -m repro.cli study    table1|figure7|table2|table3|figure10
                                 [--jobs N] [--no-cache]
    python -m repro.cli run-all  [output.txt] [--jobs N] [--no-cache]
                                 [--quick] [--injections N]

``compile`` consumes the PTX-like text form (see
:mod:`repro.kernelir.ptxtext`), runs the backend, optionally applies the
SASSI injector with the paper's flag syntax (a no-op handler is bound so
the output is inspectable), and prints/writes the SASS listing.
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_compile(args) -> int:
    from repro.backend import ptxas
    from repro.isa.asmtext import format_kernel
    from repro.kernelir.ptxtext import parse_ptx

    with open(args.input) as handle:
        kernel_ir = parse_ptx(handle.read())
    if args.sassi:
        from repro.sassi import SassiRuntime, spec_from_flags
        from repro.sim import Device

        runtime = SassiRuntime(Device())
        runtime.register_before_handler(lambda ctx: None)
        runtime.register_after_handler(lambda ctx: None)
        kernel = runtime.compile(kernel_ir, spec_from_flags(args.sassi))
        report = runtime.reports[-1]
        print(f"// SASSI: {report.before_sites} before-sites, "
              f"{report.after_sites} after-sites, "
              f"{report.injected_instructions} injected instructions, "
              f"frame 0x{report.max_frame_bytes:x}", file=sys.stderr)
    else:
        kernel = ptxas(kernel_ir)
    listing = format_kernel(kernel)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(listing)
    else:
        print(listing)
    return 0


def _cmd_disasm(args) -> int:
    args.sassi = None
    args.output = None
    return _cmd_compile(args)


def _cmd_workloads(args) -> int:
    from repro.workloads import all_names, make

    if not args.run:
        for name in all_names():
            print(name)
        return 0
    from repro.backend import ptxas
    from repro.sim import Device

    for name in args.run:
        workload = make(name)
        device = Device()
        start = time.perf_counter()
        output = workload.execute(device, ptxas(workload.build_ir()))
        elapsed = time.perf_counter() - start
        status = "ok" if workload.verify(output) else "WRONG RESULT"
        trace = workload.last_trace
        print(f"{name:30s} {status:12s} {elapsed:6.2f}s "
              f"{trace.warp_instructions:>10,} warp instrs "
              f"{trace.kernel_launches:>5} launches")
    return 0


_STUDIES = {
    "table1": ("repro.studies.casestudy1", "main"),
    "figure7": ("repro.studies.casestudy2", "main"),
    "figure8": ("repro.studies.casestudy2", "main"),
    "table2": ("repro.studies.casestudy3", "main"),
    "table3": ("repro.studies.overhead", "main"),
    "figure10": ("repro.studies.casestudy4", "main"),
}


def _cmd_study(args) -> int:
    import importlib

    module_name, fn_name = _STUDIES[args.which]
    module = importlib.import_module(module_name)
    print(getattr(module, fn_name)(jobs=max(1, args.jobs),
                                   use_cache=not args.no_cache))
    return 0


def _cmd_run_all(args) -> int:
    from repro.studies import run_all

    argv = [args.output, "--injections", str(args.injections),
            "--jobs", str(args.jobs)]
    if args.no_cache:
        argv.append("--no-cache")
    if args.quick:
        argv.append("--quick")
    run_all.main(argv)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser(
        "compile", help="compile PTX-like text to SASS")
    compile_parser.add_argument("input")
    compile_parser.add_argument("--sassi", default=None,
                                help='e.g. "-sassi-inst-before=memory '
                                     '-sassi-before-args=mem-info"')
    compile_parser.add_argument("-o", "--output", default=None)
    compile_parser.set_defaults(fn=_cmd_compile)

    disasm_parser = sub.add_parser("disasm",
                                   help="compile and print SASS")
    disasm_parser.add_argument("input")
    disasm_parser.set_defaults(fn=_cmd_disasm)

    workloads_parser = sub.add_parser("workloads",
                                      help="list or run workloads")
    workloads_parser.add_argument("--run", nargs="*", default=None,
                                  help="workload names to run+verify")
    workloads_parser.set_defaults(fn=_cmd_workloads)

    study_parser = sub.add_parser("study", help="regenerate a result")
    study_parser.add_argument("which", choices=sorted(_STUDIES))
    study_parser.add_argument("--jobs", type=int, default=1,
                              help="worker processes for the campaign")
    study_parser.add_argument("--no-cache", action="store_true",
                              help="disable the compile cache")
    study_parser.set_defaults(fn=_cmd_study)

    runall_parser = sub.add_parser(
        "run-all", help="regenerate every table and figure")
    runall_parser.add_argument("output", nargs="?",
                               default="results/full_studies.txt")
    runall_parser.add_argument("--injections", type=int, default=60)
    runall_parser.add_argument("--jobs", type=int, default=1)
    runall_parser.add_argument("--no-cache", action="store_true")
    runall_parser.add_argument("--quick", action="store_true")
    runall_parser.set_defaults(fn=_cmd_run_all)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
