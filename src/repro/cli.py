"""Command-line interface (the ``ptxas``/``nvdisasm`` analog).

Subcommands::

    python -m repro.cli compile  kernel.ptx [--sassi FLAGS] [-o out.sass]
    python -m repro.cli disasm   kernel.ptx            # SASS listing
    python -m repro.cli workloads [--run NAME]         # list / verify
    python -m repro.cli run      NAME [--metrics] [--trace FILE]
                                 [--jsonl FILE]
    python -m repro.cli timeline trace.json   # inspect a Chrome trace
    python -m repro.cli capture  NAME [-o FILE] [--all-spaces]
    python -m repro.cli replay   trace.rptrace [--analysis a,b,...]
                                 [--jobs N]
    python -m repro.cli trace    summary|iters trace.rptrace
                                 [--policy gto|lrr] [--top N]
    python -m repro.cli trace    info trace.rptrace
    python -m repro.cli trace    index trace.rptrace [--force]
    python -m repro.cli trace    query trace.rptrace [--launches N:M]
                                 [--class a,b] [--addr LO:HI] [--warp W]
                                 [--kind instr,mem,branch] [--limit N]
                                 [--count]
    python -m repro.cli trace-info trace.rptrace
    python -m repro.cli trace-diff a.rptrace b.rptrace [--max-deltas N]
    python -m repro.cli study    table1|figure7|table2|table3|figure10
                                 [--jobs N] [--no-cache] [--metrics]
                                 [--trace FILE]
    python -m repro.cli run-all  [output.txt] [--jobs N] [--no-cache]
                                 [--quick] [--injections N] [--metrics]
                                 [--trace FILE]
    python -m repro.cli serve    [--port N] [--shards N] [--workers N]
                                 [--queue-depth N] [--artifact-dir DIR]
    python -m repro.cli submit   campaign|capture|replay|study|bench
                                 --port N [--tenant T] [--share-cache]
                                 [payload flags] [--json] [--no-wait]

``compile`` consumes the PTX-like text form (see
:mod:`repro.kernelir.ptxtext`), runs the backend, optionally applies the
SASSI injector with the paper's flag syntax (a no-op handler is bound so
the output is inspectable), and prints/writes the SASS listing.

``run`` executes one workload with telemetry enabled: ``--trace`` writes
a Chrome ``trace_event`` JSON (open in ``chrome://tracing``/Perfetto),
``--jsonl`` a flat event stream, ``--metrics`` prints the span/counter
summary.  ``timeline`` summarizes a previously written Chrome trace.

``capture``/``replay``/``trace``/``trace-info``/``trace-diff`` drive
the binary event-trace subsystem (:mod:`repro.trace`): record one
instrumented run to an ``.rptrace`` file (capture also writes the
``.rpti`` columnar index sidecar), then answer many questions
offline — ``replay --jobs N`` shards the replay by kernel-launch frame
across worker processes (bit-identical to serial); ``trace summary``
runs the cycle-stepped warp scheduler over the trace and reports
per-kernel cycles, hotspot instructions, bubble regions, and
divergence-serialized spans; ``trace iters`` reports per-launch cycles
and the iteration spread; ``trace info`` prints the manifest plus the
per-launch table from the index; ``trace index`` builds or refreshes
the sidecar for an existing trace; ``trace query`` extracts events by
launch range, opcode class, address range, and warp, seeking straight
to matching launch frames via the index; ``trace-diff`` exits 1 when
the traces differ, like ``diff``.

``serve``/``submit`` are the profiling-as-a-service pair
(:mod:`repro.server`): ``serve`` runs the long-lived sharded job
server, ``submit`` sends one job over the NDJSON protocol and streams
until the terminal event — retrying 429 admission rejections with the
server's retry-after hint.

Usage errors (unknown workload, malformed flags, unwritable paths) exit
with status 2 and a one-line ``repro: ...`` message — never a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
import time


class CliError(Exception):
    """A user-facing error: printed as one line, exit status 2."""


def _check_writable(path: str) -> None:
    """Fail fast (before any expensive work) if *path* can't be written."""
    directory = os.path.dirname(path) or "."
    if not os.path.isdir(directory):
        raise CliError(f"cannot write {path}: "
                       f"directory {directory!r} does not exist")
    existed = os.path.exists(path)
    try:
        with open(path, "a"):
            pass
    except OSError as exc:
        raise CliError(f"cannot write {path}: {exc}")
    if not existed:
        try:
            os.remove(path)
        except OSError:
            pass


def _make_workload(name: str):
    from repro.workloads import make

    try:
        return make(name)
    except KeyError as exc:
        raise CliError(exc.args[0] if exc.args else f"unknown workload "
                       f"{name!r}")


def _cmd_compile(args) -> int:
    from repro.backend import ptxas
    from repro.isa.asmtext import format_kernel
    from repro.kernelir.ptxtext import parse_ptx

    try:
        with open(args.input) as handle:
            kernel_ir = parse_ptx(handle.read())
    except OSError as exc:
        raise CliError(f"cannot read {args.input}: {exc.strerror or exc}")
    except ValueError as exc:
        raise CliError(f"cannot parse {args.input}: {exc}")
    if args.sassi:
        from repro.sassi import SassiRuntime, spec_from_flags
        from repro.sassi.flags import FlagError
        from repro.sim import Device

        try:
            spec = spec_from_flags(args.sassi)
        except FlagError as exc:
            raise CliError(f"bad --sassi flags: {exc}")
        runtime = SassiRuntime(Device())
        runtime.register_before_handler(lambda ctx: None)
        runtime.register_after_handler(lambda ctx: None)
        kernel = runtime.compile(kernel_ir, spec)
        if not runtime.reports:
            raise CliError("instrumentation produced no injection report "
                           "(nothing matched the spec?)")
        report = runtime.reports[-1]
        print(f"// SASSI: {report.before_sites} before-sites, "
              f"{report.after_sites} after-sites, "
              f"{report.injected_instructions} injected instructions, "
              f"frame 0x{report.max_frame_bytes:x}", file=sys.stderr)
    else:
        kernel = ptxas(kernel_ir)
    listing = format_kernel(kernel)
    if args.output:
        _check_writable(args.output)
        with open(args.output, "w") as handle:
            handle.write(listing)
    else:
        print(listing)
    return 0


def _cmd_disasm(args) -> int:
    args.sassi = None
    args.output = None
    return _cmd_compile(args)


def _cmd_workloads(args) -> int:
    from repro.workloads import all_names

    if not args.run:
        for name in all_names():
            print(name)
        return 0
    from repro.backend import ptxas
    from repro.sim import Device

    status = 0
    for name in args.run:
        workload = _make_workload(name)
        device = Device()
        start = time.perf_counter()
        output = workload.execute(device, ptxas(workload.build_ir()))
        elapsed = time.perf_counter() - start
        ok = workload.verify(output)
        status = status or (0 if ok else 1)
        trace = workload.last_trace
        print(f"{name:30s} {'ok' if ok else 'WRONG RESULT':12s} "
              f"{elapsed:6.2f}s "
              f"{trace.warp_instructions:>10,} warp instrs "
              f"{trace.kernel_launches:>5} launches")
    return status


def _telemetry_outputs(args, manifest_extra):
    """Write the trace/jsonl files and print the summary as requested."""
    from repro.telemetry import (TELEMETRY, render_summary, run_manifest,
                                 write_chrome_trace, write_jsonl)

    manifest = run_manifest(extra=manifest_extra)
    if getattr(args, "trace", None):
        write_chrome_trace(args.trace, TELEMETRY, manifest=manifest)
        print(f"chrome trace written to {args.trace}", file=sys.stderr)
    if getattr(args, "jsonl", None):
        write_jsonl(args.jsonl, TELEMETRY, manifest=manifest)
        print(f"jsonl events written to {args.jsonl}", file=sys.stderr)
    if getattr(args, "metrics", False):
        print(render_summary(TELEMETRY))


#: --handler choices: name -> (profiler factory, estimate printer)
RUN_HANDLERS = ("branch_profiler", "memory_divergence", "opcode_histogram",
                "value_profiler", "memtrace")


def _make_profiler(name: str, device):
    if name == "branch_profiler":
        from repro.handlers.branch_profiler import BranchProfiler
        return BranchProfiler(device)
    if name == "memory_divergence":
        from repro.handlers.memory_divergence import MemoryDivergenceProfiler
        return MemoryDivergenceProfiler(device)
    if name == "opcode_histogram":
        from repro.handlers.opcode_histogram import OpcodeHistogram
        return OpcodeHistogram(device)
    if name == "value_profiler":
        from repro.handlers.value_profiler import ValueProfiler
        return ValueProfiler(device)
    if name == "memtrace":
        from repro.handlers.memtrace import MemoryTracer
        return MemoryTracer(device)
    raise CliError(f"unknown handler {name!r}")


def _print_estimates(name: str, profiler, rate: int) -> None:
    from repro.studies.report import render_sampled_counters, sampling_ci

    if name == "opcode_histogram":
        totals = profiler.totals()
        print(render_sampled_counters(list(totals), list(totals.values()),
                                      rate))
        return
    if name == "branch_profiler":
        summary = profiler.summary()
        low, high = sampling_ci(summary.dynamic_branches // max(rate, 1),
                                rate)
        print(f"dynamic branches ~ {summary.dynamic_branches:,} "
              f"CI [{low:,.0f}, {high:,.0f}]; "
              f"divergent {summary.dynamic_pct:.1f}%")
        return
    if name == "memory_divergence":
        print(f"warp accesses touching >1 line: "
              f"{100 * profiler.diverged_fraction():.1f}% "
              f"(estimates at rate 1/{rate})")
        return
    if name == "value_profiler":
        summary = profiler.summary()
        print(f"scalar writes {summary.dynamic_scalar_pct:.1f}%, "
              f"constant bits {summary.dynamic_const_bits_pct:.1f}% "
              f"(weights scaled at rate 1/{rate})")
        return
    if name == "memtrace":
        events = sum(1 for _ in profiler.records())
        # under --budget-ms the period varies; the CI uses the
        # effective average rate the run actually achieved
        effective = max(rate, round(profiler.weighted_events
                                    / max(events, 1)))
        low, high = sampling_ci(events, effective)
        print(f"{events:,} trace events recorded; estimated exact count "
              f"{profiler.weighted_events:,} CI [{low:,.0f}, {high:,.0f}]")


def _build_controller(args):
    """An AdaptiveController from --sample/--toggle/--budget-ms (or
    None when none of them was given).  Returns (controller, rate)."""
    from repro.sassi.runtime import (ActiveSiteMask, AdaptiveController,
                                     TimeBudget, parse_sampling)

    sample = getattr(args, "sample", None)
    toggle = getattr(args, "toggle", None)
    budget_ms = getattr(args, "budget_ms", None)
    if not (sample or toggle or budget_ms):
        return None, 1
    if sample and budget_ms:
        raise CliError("--sample and --budget-ms are mutually exclusive")
    sampling = None
    rate = 1
    if sample:
        try:
            sampling = parse_sampling(sample)
        except ValueError as exc:
            raise CliError(str(exc))
        rate = sampling.n if sampling is not None else 1
    if budget_ms:
        sampling = TimeBudget(budget_ms)
    mask = ActiveSiteMask()
    if toggle:
        try:
            disabled = [int(s, 0) for s in toggle.split(",") if s]
        except ValueError:
            raise CliError(f"bad --toggle value {toggle!r} "
                           "(want comma-separated site ids)")
        mask = mask.disable(disabled)
    return AdaptiveController(mask=mask, sampling=sampling), rate


def _cmd_run(args) -> int:
    from repro.backend import ptxas
    from repro.sim import Device
    from repro.telemetry import TELEMETRY, span

    for path in (args.trace, args.jsonl):
        if path:
            _check_writable(path)
    handler = getattr(args, "handler", None)
    controller, rate = _build_controller(args)
    if controller is not None and handler is None:
        raise CliError("--sample/--toggle/--budget-ms require --handler")
    workload = _make_workload(args.name)
    TELEMETRY.enable(reset=True)
    try:
        device = Device()
        if controller is not None:
            controller.install(device)
        profiler = _make_profiler(handler, device) if handler else None
        with span("run", workload=args.name):
            with span("compile", workload=args.name):
                if profiler is not None:
                    kernel = profiler.compile(workload.build_ir())
                else:
                    kernel = ptxas(workload.build_ir())
            with span("execute", workload=args.name):
                output = workload.execute(device, kernel)
        ok = workload.verify(output)
        trace = workload.last_trace
        print(f"{args.name}: {'ok' if ok else 'WRONG RESULT'} "
              f"({trace.warp_instructions:,} warp instructions, "
              f"{trace.kernel_launches} launches)")
        if profiler is not None:
            _print_estimates(handler, profiler, rate)
        if controller is not None:
            summary = controller.summary()
            print(f"sites: {summary['fired']:,} fired, "
                  f"{summary['skipped']:,} skipped "
                  f"(estimated exact firings "
                  f"{summary['estimated_firings']:,})")
        _telemetry_outputs(args, {"command": "run",
                                  "workload": args.name})
    finally:
        TELEMETRY.disable()
    return 0 if ok else 1


def _cmd_timeline(args) -> int:
    import json

    try:
        with open(args.input) as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise CliError(f"cannot read {args.input}: {exc.strerror or exc}")
    except json.JSONDecodeError as exc:
        raise CliError(f"{args.input} is not valid trace JSON: {exc}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise CliError(f"{args.input} has no traceEvents "
                       "(not a Chrome trace?)")
    events = doc["traceEvents"]
    spans = [e for e in events if e.get("ph") == "X"]
    totals = {}
    for event in spans:
        entry = totals.setdefault(event.get("name", "?"), [0, 0.0])
        entry[0] += 1
        entry[1] += float(event.get("dur", 0.0))
    print(f"{args.input}: {len(spans)} spans, "
          f"{len({e.get('tid') for e in spans})} lanes")
    for name in sorted(totals, key=lambda n: -totals[n][1]):
        count, dur = totals[name]
        print(f"  {name:<24} {count:>6}  {dur / 1e6:>9.4f}s")
    for event in events:
        if event.get("ph") == "C" and event.get("name") == "counters":
            print("counters:")
            for key, value in sorted(event.get("args", {}).items()):
                print(f"  {key:<40} {value:>12}")
    meta = doc.get("metadata", {})
    if meta:
        rev = meta.get("git_rev") or "unknown"
        print(f"manifest: python {meta.get('python', '?')}, "
              f"git {rev[:12]}, schema {meta.get('schema', '?')}")
    return 0


def _default_trace_path(workload: str) -> str:
    safe = "".join(c if c.isalnum() or c in "-_." else "_"
                   for c in workload)
    return f"{safe}.rptrace"


def _cmd_capture(args) -> int:
    from repro.trace import capture_workload

    output = args.output or _default_trace_path(args.name)
    _check_writable(output)
    # fail on unknown workloads before the (long) instrumented run
    _make_workload(args.name)
    manifest, verified, wall = capture_workload(
        args.name, output, global_only=not args.all_spaces)
    counts = ", ".join(f"{kind}={count:,}" for kind, count
                       in sorted(manifest.kind_counts().items()))
    print(f"{output}: {manifest.total_events:,} events ({counts}) "
          f"in {wall:.2f}s, workload "
          f"{'verified' if verified else 'WRONG RESULT'}")
    return 0 if verified else 1


def _open_trace_or_die(path: str):
    from repro.trace import TraceReader

    if not os.path.exists(path):
        raise CliError(f"cannot read {path}: no such file")
    return TraceReader(path)


def _cmd_replay(args) -> int:
    from repro.campaign.engine import JOBS_ENV, default_jobs
    from repro.trace import ANALYSES, TraceFormatError, make_analysis, \
        replay, replay_sharded

    reader = _open_trace_or_die(args.input)
    names = [n.strip() for n in args.analysis.split(",") if n.strip()] \
        if args.analysis else sorted(ANALYSES)
    try:
        analyses = [make_analysis(name) for name in names]
    except KeyError as exc:
        raise CliError(str(exc.args[0]))
    jobs = args.jobs
    if jobs is None:
        jobs = default_jobs() if os.environ.get(JOBS_ENV) else 1
    try:
        start = time.perf_counter()
        if jobs > 1:
            analyses = replay_sharded(args.input, names, jobs=jobs)
        else:
            replay(reader, analyses)
        elapsed = time.perf_counter() - start
    except TraceFormatError as exc:
        raise CliError(f"{args.input}: {exc}")
    for analysis in analyses:
        print(analysis.report())
    suffix = f" (jobs {jobs})" if jobs > 1 else ""
    print(f"replayed {args.input} in {elapsed:.2f}s{suffix}",
          file=sys.stderr)
    return 0


def _timing_report(args):
    """Replay *args.input* through the timing analysis; returns the
    scheduled :class:`~repro.trace.timing.TimingReport`."""
    from repro.trace import TraceFormatError, replay
    from repro.trace.timing import TimingAnalysis

    reader = _open_trace_or_die(args.input)
    analysis = TimingAnalysis(policy=args.policy)
    try:
        replay(reader, [analysis])
    except TraceFormatError as exc:
        raise CliError(f"{args.input}: {exc}")
    return analysis.model.schedule(args.policy)


def _cmd_trace_summary(args) -> int:
    from repro.trace.timing import render_summary

    print(render_summary(_timing_report(args), top=args.top))
    return 0


def _cmd_trace_iters(args) -> int:
    from repro.trace.timing import render_iters

    print(render_iters(_timing_report(args)))
    return 0


#: launch-table rows printed by ``trace info`` before eliding
_INFO_LAUNCH_ROWS = 12


def _sidecar_index(path: str):
    """The ``.rpti`` sidecar's index, if present and still bound to
    *path*'s manifest; ``None`` otherwise (missing/stale/corrupt)."""
    from repro.trace import sidecar_index

    return sidecar_index(path)


def _cmd_trace_info(args) -> int:
    from repro.trace import TraceFormatError, build_index

    reader = _open_trace_or_die(args.input)
    try:
        manifest = reader.manifest()
    except TraceFormatError as exc:
        raise CliError(f"{args.input}: {exc}")
    size = os.path.getsize(args.input)
    print(f"{args.input}: rptrace v{manifest.version}, "
          f"{size:,} bytes, {manifest.total_events:,} events, "
          f"checksum 0x{manifest.checksum:08x}")
    for kind, count in sorted(manifest.kind_counts().items()):
        print(f"  {kind:<12} {count:>12,}")
    # per-launch table: free when the .rpti sidecar is present, else a
    # one-off full scan (we say which, so slow == actionable)
    index = _sidecar_index(args.input)
    source = "index sidecar"
    if index is None:
        try:
            index = build_index(args.input)
        except TraceFormatError as exc:
            raise CliError(f"{args.input}: {exc}")
        source = "full scan — no usable .rpti sidecar; " \
                 "run `repro trace index` to keep one"
    if index.entries:
        print(f"launches ({index.launches}, from {source}):")
        print(f"  {'#':>3} {'kernel':<24} {'grid':>12} {'block':>9} "
              f"{'events':>9} {'instr':>9} {'mem':>9} {'branch':>9}")
        shown = index.entries[:_INFO_LAUNCH_ROWS]
        for ordinal, entry in enumerate(shown):
            grid = "x".join(str(d) for d in entry.grid)
            block = "x".join(str(d) for d in entry.block)
            print(f"  {ordinal:>3} {entry.kernel:<24} {grid:>12} "
                  f"{block:>9} {entry.events:>9,} {entry.instr:>9,} "
                  f"{entry.mem:>9,} {entry.branch:>9,}")
        if index.launches > len(shown):
            print(f"  ... {index.launches - len(shown)} more launches")
    if index.stray_events:
        print(f"  {index.stray_events:,} events outside launch frames "
              "(trace is not shardable)")
    return 0


def _cmd_trace_index(args) -> int:
    from repro.trace import TraceFormatError, build_index, \
        index_path_for, write_index

    _open_trace_or_die(args.input)
    sidecar = index_path_for(args.input)
    _check_writable(sidecar)
    fresh = False
    index = None if args.force else _sidecar_index(args.input)
    if index is None:
        try:
            index = build_index(args.input)
        except TraceFormatError as exc:
            raise CliError(f"{args.input}: {exc}")
        write_index(index, sidecar)
        fresh = True
    state = "written" if fresh else "up to date"
    shard = ("shardable" if index.shardable else
             f"NOT shardable ({index.stray_events:,} events outside "
             "launch frames)")
    print(f"{sidecar}: {state}, {os.path.getsize(sidecar):,} bytes, "
          f"{index.launches} launches, {shard}")
    return 0


def _format_query_hit(hit) -> str:
    from repro.isa.opcodes import Opcode
    from repro.trace.format import BranchEvent, InstrEvent, \
        MEM_FLAG_ATOMIC, MemEvent

    where = f"[{hit.launch:>3} {hit.kernel or '-':<20}]"
    warp = f" w{hit.warp}" if hit.warp is not None else ""
    event = hit.event
    if isinstance(event, InstrEvent):
        return (f"{where}{warp} 0x{event.ins_addr:04x} instr  "
                f"{Opcode(event.opcode).name:<8} "
                f"lanes={event.lanes}")
    if isinstance(event, MemEvent):
        kind = ("atomic" if event.flags & MEM_FLAG_ATOMIC else
                "store" if event.is_store else "load")
        lines = ",".join(f"0x{line:x}"
                         for line in event.line_addresses[:4])
        more = ("..." if len(event.line_addresses) > 4 else "")
        return (f"{where}{warp} 0x{event.ins_addr:04x} mem    "
                f"{kind:<6} w{event.width} "
                f"lanes={event.active_lanes} "
                f"lines[{len(event.line_addresses)}]={lines}{more}")
    if isinstance(event, BranchEvent):
        return (f"{where}{warp} 0x{event.ins_addr:04x} branch "
                f"active={event.active} taken={event.taken} "
                f"not_taken={event.not_taken}")
    return f"{where}{warp} {event!r}"


def _cmd_trace_query(args) -> int:
    from repro.trace import TraceFormatError
    from repro.trace.query import QueryError, QueryFilter, run_query

    _open_trace_or_die(args.input)
    try:
        filt = QueryFilter.parse(launches=args.launches,
                                 classes=args.cls, addr=args.addr,
                                 warp=args.warp, kinds=args.kind)
    except QueryError as exc:
        raise CliError(str(exc))
    sidecar = _sidecar_index(args.input)
    truncated = False
    try:
        hits, stats = run_query(args.input, filt, index=sidecar)
        for hit in hits:
            if not args.count and stats.hits > args.limit:
                truncated = True
                break
            if not args.count:
                print(_format_query_hit(hit))
    except TraceFormatError as exc:
        raise CliError(f"{args.input}: {exc}")
    how = ("(index sidecar)" if stats.used_index
           else "(full scan — no usable .rpti sidecar; "
                "run `repro trace index` to keep one)")
    if truncated:
        print(f"... stopped after --limit {args.limit} hits "
              "(use --count for the exact total)", file=sys.stderr)
        print(f"{args.limit}+ hits {how}")
    else:
        print(f"{stats.hits:,} hits in {stats.launches_visited} of "
              f"{stats.launches_total} launches "
              f"({stats.launches_skipped} skipped), "
              f"{stats.events_scanned:,} events scanned {how}")
    return 0


def _cmd_trace_diff(args) -> int:
    from repro.trace import TraceFormatError, diff_traces

    for path in (args.a, args.b):
        if not os.path.exists(path):
            raise CliError(f"cannot read {path}: no such file")
    try:
        diff = diff_traces(args.a, args.b, max_deltas=args.max_deltas)
    except TraceFormatError as exc:
        raise CliError(str(exc))
    print(diff.report())
    return 0 if diff.identical else 1


_STUDIES = {
    "table1": ("repro.studies.casestudy1", "main"),
    "figure7": ("repro.studies.casestudy2", "main"),
    "figure8": ("repro.studies.casestudy2", "main"),
    "table2": ("repro.studies.casestudy3", "main"),
    "table3": ("repro.studies.overhead", "main"),
    "figure10": ("repro.studies.casestudy4", "main"),
    "tracereplay": ("repro.studies.tracereplay", "main"),
    "schedpolicy": ("repro.studies.schedpolicy", "main"),
}


def _cmd_study(args) -> int:
    import importlib

    from repro.telemetry import TELEMETRY

    if args.trace:
        _check_writable(args.trace)
    telemetry_on = bool(args.trace or args.metrics)
    if telemetry_on:
        TELEMETRY.enable(reset=True)
    try:
        module_name, fn_name = _STUDIES[args.which]
        module = importlib.import_module(module_name)
        print(getattr(module, fn_name)(jobs=max(1, args.jobs),
                                       use_cache=not args.no_cache))
        if telemetry_on:
            _telemetry_outputs(args, {"command": "study",
                                      "study": args.which,
                                      "jobs": max(1, args.jobs)})
    finally:
        if telemetry_on:
            TELEMETRY.disable()
    return 0


def _cmd_run_all(args) -> int:
    from repro.studies import run_all

    if args.trace:
        _check_writable(args.trace)
    argv = [args.output, "--injections", str(args.injections),
            "--jobs", str(args.jobs)]
    if args.no_cache:
        argv.append("--no-cache")
    if args.quick:
        argv.append("--quick")
    if args.trace:
        argv.extend(["--trace", args.trace])
    if args.metrics:
        argv.append("--metrics")
    run_all.main(argv)
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.server.service import ServerConfig, \
        ensure_artifact_dir, serve

    config = ServerConfig(host=args.host, port=args.port,
                          shards=max(1, args.shards),
                          workers=max(1, args.workers),
                          queue_depth=max(1, args.queue_depth),
                          artifact_dir=ensure_artifact_dir(
                              args.artifact_dir))

    def announce(address):
        host, port = address
        print(f"repro-server listening on {host}:{port}", flush=True)

    try:
        asyncio.run(serve(config, announce=announce))
    except KeyboardInterrupt:
        print("repro-server stopped", file=sys.stderr)
    return 0


def _submit_payload(args) -> dict:
    payload = {}
    if args.workload:
        payload["workload"] = args.workload
    if args.command_kind == "campaign":
        payload["injections"] = args.injections
        payload["seed"] = args.seed
        payload["use_cache"] = not args.no_cache
    elif args.command_kind == "capture":
        payload["all_spaces"] = args.all_spaces
    elif args.command_kind == "replay":
        if args.trace_file:
            payload["trace"] = args.trace_file
        if args.artifact:
            payload["artifact"] = args.artifact
        if args.analysis:
            payload["analyses"] = [a.strip()
                                   for a in args.analysis.split(",")
                                   if a.strip()]
        payload["policy"] = args.policy
    elif args.command_kind == "study":
        payload["which"] = args.which
    elif args.command_kind == "bench":
        payload["spin_ms"] = args.spin_ms
        payload["tag"] = args.tag
    return payload


def _cmd_submit(args) -> int:
    import json as json_module

    from repro.server.client import AdmissionRejected, JobFailed, \
        ServerClient, ServerError

    client = ServerClient(args.host, args.port, tenant=args.tenant,
                          share_cache=args.share_cache)
    args.command_kind = args.kind
    payload = _submit_payload(args)
    try:
        if args.no_wait:
            job_id = client.submit(args.kind, payload)
            print(job_id)
            return 0
        record = client.submit_and_wait(args.kind, payload)
    except ConnectionError as exc:
        raise CliError(f"cannot reach server at "
                       f"{args.host}:{args.port}: {exc}") from exc
    except AdmissionRejected as exc:
        raise CliError(f"server queue full (retry after "
                       f"{exc.retry_after}s)") from exc
    except JobFailed as exc:
        raise CliError(str(exc)) from exc
    except ServerError as exc:
        raise CliError(str(exc)) from exc
    if args.json:
        print(json_module.dumps(record, indent=2, sort_keys=True))
    else:
        print(f"{record['job_id']}: {record['kind']} done in "
              f"{record['wall_seconds']:.3f}s")
        result = record["result"]
        if args.kind == "campaign":
            for outcome, count in result["outcomes"].items():
                print(f"  {outcome}: {count}")
        elif args.kind == "capture":
            print(f"  {result['total_events']} events -> "
                  f"{record['artifact_path']}")
        elif args.kind == "replay":
            for analysis in result["analyses"]:
                report = analysis["report"].strip().splitlines()
                print(f"  [{analysis['analysis']}] "
                      f"{report[0] if report else ''}")
        elif args.kind == "study":
            print(result["text"])
    return 0


def _add_telemetry_flags(parser, jsonl: bool = False) -> None:
    parser.add_argument("--metrics", action="store_true",
                        help="print the telemetry span/counter summary")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace_event JSON file")
    if jsonl:
        parser.add_argument("--jsonl", metavar="FILE", default=None,
                            help="write a flat JSONL event stream")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser(
        "compile", help="compile PTX-like text to SASS")
    compile_parser.add_argument("input")
    compile_parser.add_argument("--sassi", default=None,
                                help='e.g. "-sassi-inst-before=memory '
                                     '-sassi-before-args=mem-info"')
    compile_parser.add_argument("-o", "--output", default=None)
    compile_parser.set_defaults(fn=_cmd_compile)

    disasm_parser = sub.add_parser("disasm",
                                   help="compile and print SASS")
    disasm_parser.add_argument("input")
    disasm_parser.set_defaults(fn=_cmd_disasm)

    workloads_parser = sub.add_parser("workloads",
                                      help="list or run workloads")
    workloads_parser.add_argument("--run", nargs="*", default=None,
                                  help="workload names to run+verify")
    workloads_parser.set_defaults(fn=_cmd_workloads)

    run_parser = sub.add_parser(
        "run", help="run one workload with telemetry")
    run_parser.add_argument("name", help="workload name (see `workloads`)")
    run_parser.add_argument("--handler", choices=RUN_HANDLERS, default=None,
                            help="attach a stock SASSI handler")
    run_parser.add_argument("--sample", default=None, metavar="KIND:N",
                            help="sample instrumentation sites: nth:N"
                                 "[,PHASE], warp:N[,SEED], cta:N[,SEED]")
    run_parser.add_argument("--toggle", default=None, metavar="IDS",
                            help="comma-separated site ids to disable "
                                 "at runtime (no recompilation)")
    run_parser.add_argument("--budget-ms", type=float, default=None,
                            help="throttle instrumentation to a "
                                 "wall-clock budget (milliseconds)")
    _add_telemetry_flags(run_parser, jsonl=True)
    run_parser.set_defaults(fn=_cmd_run)

    timeline_parser = sub.add_parser(
        "timeline", help="summarize a Chrome trace file")
    timeline_parser.add_argument("input")
    timeline_parser.set_defaults(fn=_cmd_timeline)

    capture_parser = sub.add_parser(
        "capture", help="record a workload's binary event trace")
    capture_parser.add_argument("name",
                                help="workload name (see `workloads`)")
    capture_parser.add_argument("-o", "--output", default=None,
                                metavar="FILE",
                                help="output .rptrace path "
                                     "(default: <workload>.rptrace)")
    capture_parser.add_argument("--all-spaces", action="store_true",
                                help="record shared/local accesses too, "
                                     "not just global memory")
    capture_parser.set_defaults(fn=_cmd_capture)

    replay_parser = sub.add_parser(
        "replay", help="run offline analyses over a recorded trace")
    replay_parser.add_argument("input", help=".rptrace file")
    replay_parser.add_argument("--analysis", default=None,
                               metavar="A,B,...",
                               help="comma-separated analyses "
                                    "(default: all registered)")
    replay_parser.add_argument("--jobs", type=int, default=None,
                               metavar="N",
                               help="shard the replay by launch frame "
                                    "across N worker processes "
                                    "(default: 1, or $REPRO_JOBS; "
                                    "bit-identical to serial)")
    replay_parser.set_defaults(fn=_cmd_replay)

    trace_parser = sub.add_parser(
        "trace", help="analytics and queries over a recorded trace")
    trace_sub = trace_parser.add_subparsers(dest="trace_command",
                                            required=True)
    summary_parser = trace_sub.add_parser(
        "summary", help="per-kernel cycles, hotspots, bubbles, "
                        "divergence spans")
    summary_parser.add_argument("input", help=".rptrace file")
    summary_parser.add_argument("--policy", choices=["gto", "lrr"],
                                default="gto",
                                help="warp issue policy (default gto)")
    summary_parser.add_argument("--top", type=int, default=5,
                                help="rows per hotspot/bubble/span list")
    summary_parser.set_defaults(fn=_cmd_trace_summary)
    iters_parser = trace_sub.add_parser(
        "iters", help="per-launch cycles and iteration spread")
    iters_parser.add_argument("input", help=".rptrace file")
    iters_parser.add_argument("--policy", choices=["gto", "lrr"],
                              default="gto",
                              help="warp issue policy (default gto)")
    iters_parser.set_defaults(fn=_cmd_trace_iters)
    tinfo_parser = trace_sub.add_parser(
        "info", help="manifest plus the per-launch index table")
    tinfo_parser.add_argument("input", help=".rptrace file")
    tinfo_parser.set_defaults(fn=_cmd_trace_info)
    tindex_parser = trace_sub.add_parser(
        "index", help="build or refresh the .rpti index sidecar")
    tindex_parser.add_argument("input", help=".rptrace file")
    tindex_parser.add_argument("--force", action="store_true",
                               help="rebuild even if the sidecar is "
                                    "current")
    tindex_parser.set_defaults(fn=_cmd_trace_index)
    query_parser = trace_sub.add_parser(
        "query", help="extract events by launch/class/address/warp")
    query_parser.add_argument("input", help=".rptrace file")
    query_parser.add_argument("--launches", default=None, metavar="N:M",
                              help="launch ordinal range (half-open; "
                                   "N, N:, :M also accepted)")
    query_parser.add_argument("--class", dest="cls", default=None,
                              metavar="A,B,...",
                              help="opcode classes (memory, control, "
                                   "sync, numeric, texture, ...); "
                                   "mem/branch events inherit their "
                                   "instruction's class")
    query_parser.add_argument("--addr", default=None, metavar="LO:HI",
                              help="instruction/line address range "
                                   "(hex ok, half-open)")
    query_parser.add_argument("--warp", type=int, default=None,
                              metavar="W",
                              help="global warp ordinal within each "
                                   "launch")
    query_parser.add_argument("--kind", default=None,
                              metavar="instr,mem,branch",
                              help="event kinds to emit (default all)")
    query_parser.add_argument("--limit", type=int, default=50,
                              metavar="N",
                              help="stop after N hits (default 50)")
    query_parser.add_argument("--count", action="store_true",
                              help="print only the total hit count")
    query_parser.set_defaults(fn=_cmd_trace_query)

    info_parser = sub.add_parser(
        "trace-info", help="print a trace's manifest and launch table")
    info_parser.add_argument("input", help=".rptrace file")
    info_parser.set_defaults(fn=_cmd_trace_info)

    diff_parser = sub.add_parser(
        "trace-diff", help="find where two traces first diverge")
    diff_parser.add_argument("a", help="baseline .rptrace")
    diff_parser.add_argument("b", help="comparison .rptrace")
    diff_parser.add_argument("--max-deltas", type=int, default=100_000,
                             help="stop counting differences after N")
    diff_parser.set_defaults(fn=_cmd_trace_diff)

    study_parser = sub.add_parser("study", help="regenerate a result")
    study_parser.add_argument("which", choices=sorted(_STUDIES))
    study_parser.add_argument("--jobs", type=int, default=1,
                              help="worker processes for the campaign")
    study_parser.add_argument("--no-cache", action="store_true",
                              help="disable the compile cache")
    _add_telemetry_flags(study_parser)
    study_parser.set_defaults(fn=_cmd_study)

    runall_parser = sub.add_parser(
        "run-all", help="regenerate every table and figure")
    runall_parser.add_argument("output", nargs="?",
                               default="results/full_studies.txt")
    runall_parser.add_argument("--injections", type=int, default=60)
    runall_parser.add_argument("--jobs", type=int, default=1)
    runall_parser.add_argument("--no-cache", action="store_true")
    runall_parser.add_argument("--quick", action="store_true")
    _add_telemetry_flags(runall_parser)
    runall_parser.set_defaults(fn=_cmd_run_all)

    serve_parser = sub.add_parser(
        "serve", help="run the profiling service")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="0 picks a free port (announced on "
                                   "stdout)")
    serve_parser.add_argument("--shards", type=int, default=1)
    serve_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes per shard")
    serve_parser.add_argument("--queue-depth", type=int, default=8,
                              help="queued jobs per shard before 429s")
    serve_parser.add_argument("--artifact-dir", default=None,
                              help="where capture jobs store traces")
    serve_parser.set_defaults(fn=_cmd_serve)

    submit_parser = sub.add_parser(
        "submit", help="submit a job to a running profiling service")
    submit_parser.add_argument(
        "kind", choices=["campaign", "capture", "replay", "study",
                         "bench"])
    submit_parser.add_argument("--host", default="127.0.0.1")
    submit_parser.add_argument("--port", type=int, required=True)
    submit_parser.add_argument("--tenant", default="default")
    submit_parser.add_argument("--share-cache", action="store_true",
                               help="opt into the shared compile-cache "
                                    "namespace")
    submit_parser.add_argument("--workload", default=None)
    submit_parser.add_argument("--injections", type=int, default=8)
    submit_parser.add_argument("--seed", type=int, default=2015)
    submit_parser.add_argument("--no-cache", action="store_true")
    submit_parser.add_argument("--all-spaces", action="store_true")
    submit_parser.add_argument("--trace-file", default=None,
                               help="replay: server-side trace path")
    submit_parser.add_argument("--artifact", default=None,
                               help="replay: a finished capture job id")
    submit_parser.add_argument("--analysis", default=None,
                               help="replay: comma-separated analyses")
    submit_parser.add_argument("--policy", choices=["gto", "lrr"],
                               default="gto")
    submit_parser.add_argument("--which", default=None,
                               help="study: which table/figure")
    submit_parser.add_argument("--spin-ms", type=float, default=10.0)
    submit_parser.add_argument("--tag", default="")
    submit_parser.add_argument("--no-wait", action="store_true",
                               help="print the job id and return")
    submit_parser.add_argument("--json", action="store_true",
                               help="print the full result record")
    submit_parser.set_defaults(fn=_cmd_submit)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except CliError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
