"""repro — a reproduction of "Flexible Software Profiling of GPU
Architectures" (SASSI, ISCA 2015) on a simulated SIMT substrate.

Layer map (bottom-up):

* :mod:`repro.isa` — the SASS-like native ISA.
* :mod:`repro.kernelir` — the PTX-like IR and the :class:`KernelBuilder`
  front-end used to author workloads.
* :mod:`repro.backend` — the ``ptxas`` analog: lowering, reconvergence
  placement, register allocation, and the pass pipeline whose *final pass*
  is the SASSI injector.
* :mod:`repro.sim` — the GPU: SIMT executor, memory spaces, coalescer,
  caches, launch machinery, and cost model.
* :mod:`repro.sassi` — the paper's contribution: instrumentation
  specification, ABI call-sequence generation, parameter objects, handler
  runtime, and the CUPTI-like host callback library.
* :mod:`repro.handlers` — the case-study instrumentation library.
* :mod:`repro.workloads` — Parboil/Rodinia/miniFE workload analogs.
* :mod:`repro.studies` — drivers that regenerate every table and figure.
"""

__version__ = "0.1.0"
