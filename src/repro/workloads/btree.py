"""Rodinia ``b+tree`` analog: batched B+-tree key lookups.

One thread per query descends a device-resident B+ tree: at each level a
linear scan over the node's keys picks the child.  Scan lengths and
memory targets are data-dependent — b+tree is the most scalar-friendly
yet pointer-chasing workload in the paper's Table 2 (76 % dynamic scalar
operations, since tree levels are shared across a warp's queries)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

FANOUT = 4
LEAVES = 64


@dataclass
class _FlatTree:
    """Array-of-nodes B+ tree: node = [keys[FANOUT], children[FANOUT]]."""

    keys: np.ndarray       # (num_nodes, FANOUT) int32
    children: np.ndarray   # (num_nodes, FANOUT) int32; leaf -> -value-1
    root: int


def _build_tree(sorted_values: np.ndarray) -> _FlatTree:
    level = [(-int(v) - 1, int(v)) for v in sorted_values]  # (ref, minkey)
    keys_rows: List[List[int]] = []
    child_rows: List[List[int]] = []
    node_id = 0
    while len(level) > 1:
        next_level = []
        for start in range(0, len(level), FANOUT):
            group = level[start:start + FANOUT]
            keys = [entry[1] for entry in group]
            children = [entry[0] for entry in group]
            while len(keys) < FANOUT:
                keys.append(2**31 - 1)
                children.append(children[-1])
            keys_rows.append(keys)
            child_rows.append(children)
            next_level.append((node_id, group[0][1]))
            node_id += 1
        level = next_level
    return _FlatTree(
        keys=np.array(keys_rows, dtype=np.int32),
        children=np.array(child_rows, dtype=np.int32),
        root=level[0][0],
    )


def build_btree_ir():
    b = KernelBuilder("btree", [
        ("nqueries", Type.U32), ("queries", PTR), ("keys", PTR),
        ("children", PTR), ("root", Type.S32), ("out", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("nqueries"))):
        i_s = b.cvt(i, Type.S32)
        query = b.load_s32(b.gep(b.param("queries"), i_s, 4))
        node = b.var(b.param("root"), Type.S32)
        # descend until we hit a leaf reference (negative)
        with b.while_(lambda: b.ge(node, 0)):
            chosen = b.var(0, Type.S32)
            with b.for_range(0, FANOUT) as slot:
                key = b.load_s32(b.gep(b.param("keys"),
                                       b.mad(node, FANOUT, slot), 4))
                with b.if_(b.ge(query, key)):
                    b.assign(chosen, slot)
            b.assign(node, b.load_s32(
                b.gep(b.param("children"),
                      b.mad(node, FANOUT, chosen), 4)))
        found = b.sub(b.sub(0, node), 1)   # decode -value-1
        b.store(b.gep(b.param("out"), i_s, 4), found)
    return b.finish()


class BPlusTree(Workload):
    name = "rodinia/b+tree"

    def __init__(self, dataset: str = "default", nqueries: int = 256):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(251)
        self.values = np.sort(rng.choice(10_000, LEAVES, replace=False)) \
            .astype(np.int32)
        self.tree = _build_tree(self.values)
        self.queries = rng.choice(self.values, nqueries).astype(np.int32)

    def build_ir(self):
        return build_btree_ir()

    def _run(self, device, kernel) -> np.ndarray:
        n = len(self.queries)
        args = [
            n,
            device.alloc_array(self.queries),
            device.alloc_array(self.tree.keys),
            device.alloc_array(self.tree.children),
            self.tree.root,
            device.alloc(n * 4),
        ]
        launch_1d(device, kernel, n, 128, args)
        return device.read_array(args[-1], n, np.int32)

    def reference(self) -> np.ndarray:
        # exact-match queries on present values find themselves
        return self.queries.copy()
