"""Rodinia ``hotspot`` analog: thermal simulation stencil.

Temperature update from the power grid and four neighbours with
edge-replication boundary conditions expressed as data-dependent
selects/branches — a lightly divergent stencil (Table 1-adjacent
behaviour; hotspot appears in Tables 2 and 3)."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

SIDE = 32
CAP = 0.5
RX = 0.1
RY = 0.1
RZ = 0.0625


def build_hotspot_ir():
    b = KernelBuilder("hotspot", [
        ("n", Type.U32), ("temp", PTR), ("power", PTR), ("out", PTR),
        ("amb", Type.F32),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        i_s = b.cvt(i, Type.S32)
        x = b.and_(i_s, SIDE - 1)
        y = b.shr(i_s, 5)
        center = b.load_f32(b.gep(b.param("temp"), i_s, 4))

        def clamped_load(index, edge):
            value = b.var(0.0, Type.F32)
            branch = b.if_(edge)
            with branch:
                b.assign(value, center)
            with branch.else_():
                b.assign(value, b.load_f32(b.gep(b.param("temp"),
                                                 index, 4)))
            return value

        north = clamped_load(b.mad(b.sub(y, 1), SIDE, x), b.eq(y, 0))
        south = clamped_load(b.mad(b.add(y, 1), SIDE, x),
                             b.eq(y, SIDE - 1))
        west = clamped_load(b.mad(y, SIDE, b.sub(x, 1)), b.eq(x, 0))
        east = clamped_load(b.mad(y, SIDE, b.add(x, 1)),
                            b.eq(x, SIDE - 1))
        power = b.load_f32(b.gep(b.param("power"), i_s, 4))
        dv = b.fadd(power,
                    b.fadd(
                        b.fmul(b.fsub(b.fadd(north, south),
                                      b.fmul(center, 2.0)), RY),
                        b.fadd(
                            b.fmul(b.fsub(b.fadd(west, east),
                                          b.fmul(center, 2.0)), RX),
                            b.fmul(b.fsub(b.param("amb"), center), RZ))))
        b.store(b.gep(b.param("out"), i_s, 4),
                b.fma(dv, CAP, center))
    return b.finish()


class Hotspot(Workload):
    name = "rodinia/hotspot"

    def __init__(self, dataset: str = "default", iterations: int = 2):
        super().__init__()
        self.dataset = dataset
        self.iterations = iterations
        rng = np.random.default_rng(171)
        self.temp = (rng.random((SIDE, SIDE), dtype=np.float32)
                     * 40 + 320).astype(np.float32)
        self.power = rng.random((SIDE, SIDE), dtype=np.float32)
        self.ambient = np.float32(300.0)

    def build_ir(self):
        return build_hotspot_ir()

    def _run(self, device, kernel) -> np.ndarray:
        n = SIDE * SIDE
        temp = device.alloc_array(self.temp)
        power = device.alloc_array(self.power)
        out = device.alloc(n * 4)
        for _ in range(self.iterations):
            launch_1d(device, kernel, n, 128,
                      [n, temp, power, out, float(self.ambient)])
            temp, out = out, temp
        return device.read_array(temp, n, np.float32).reshape(SIDE, SIDE)

    def reference(self) -> np.ndarray:
        temp = self.temp.copy()
        for _ in range(self.iterations):
            north = np.vstack([temp[:1], temp[:-1]])
            south = np.vstack([temp[1:], temp[-1:]])
            west = np.hstack([temp[:, :1], temp[:, :-1]])
            east = np.hstack([temp[:, 1:], temp[:, -1:]])
            dv = (self.power
                  + np.float32(RY) * (north + south - 2 * temp)
                  + np.float32(RX) * (west + east - 2 * temp)
                  + np.float32(RZ) * (self.ambient - temp))
            temp = dv * np.float32(CAP) + temp
        return temp

    def verify(self, output) -> bool:
        return bool(np.allclose(output, self.reference(),
                                rtol=1e-4, atol=1e-3))
