"""Parboil ``spmv`` analog: CSR sparse matrix–vector multiply, one row
per thread.

Row-pointer indirection makes warp lanes walk rows of different lengths
(branch divergence at the row loop) and gather unrelated cache lines
(address divergence) — the paper uses it in both Case Study I and the
Figure 7 memory-divergence PMFs with three dataset sizes.
"""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d
from repro.workloads.datasets import CSRGraph, sparse_matrix_csr, \
    spmv_reference

DATASETS = {
    "small": dict(num_rows=512, max_row=16, seed=31),
    "medium": dict(num_rows=1024, max_row=32, seed=32),
    "large": dict(num_rows=2048, max_row=48, seed=33),
}


def build_spmv_csr_ir(name: str = "spmv_csr"):
    b = KernelBuilder(name, [
        ("n", Type.U32), ("row_offsets", PTR), ("columns", PTR),
        ("values", PTR), ("x", PTR), ("y", PTR),
    ])
    row = b.global_index_x()
    with b.if_(b.lt(row, b.param("n"))):
        start = b.load_s32(b.gep(b.param("row_offsets"), row, 4))
        end = b.load_s32(b.gep(b.param("row_offsets"), b.add(row, 1), 4))
        acc = b.var(0.0, Type.F32)
        k = b.var(start, Type.S32)
        with b.while_(lambda: b.lt(k, end)):
            column = b.load_s32(b.gep(b.param("columns"), k, 4))
            value = b.load_f32(b.gep(b.param("values"), k, 4))
            xv = b.load_f32(b.gep(b.param("x"), column, 4))
            b.assign(acc, b.fma(value, xv, acc))
            b.assign(k, b.add(k, 1))
        b.store(b.gep(b.param("y"), row, 4), acc)
    return b.finish()


class Spmv(Workload):
    name = "parboil/spmv"

    def __init__(self, dataset: str = "small", block: int = 128):
        super().__init__()
        self.dataset = dataset
        self.block = block
        config = DATASETS[dataset]
        self.matrix: CSRGraph = sparse_matrix_csr(
            config["num_rows"], max_row=config["max_row"],
            seed=config["seed"])
        rng = np.random.default_rng(config["seed"] + 100)
        self.x = rng.random(self.matrix.num_rows, dtype=np.float32)

    def build_ir(self):
        return build_spmv_csr_ir()

    def _run(self, device, kernel) -> np.ndarray:
        matrix = self.matrix
        n = matrix.num_rows
        args = [
            n,
            device.alloc_array(matrix.row_offsets),
            device.alloc_array(matrix.columns),
            device.alloc_array(matrix.values),
            device.alloc_array(self.x),
            device.alloc(n * 4),
        ]
        launch_1d(device, kernel, n, self.block, args)
        return device.read_array(args[-1], n, np.float32)

    def reference(self) -> np.ndarray:
        return spmv_reference(self.matrix, self.x)

    def verify(self, output) -> bool:
        return bool(np.allclose(output, self.reference(),
                                rtol=1e-3, atol=1e-4))
