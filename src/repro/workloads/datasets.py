"""Synthetic dataset generators.

The paper's inputs (Parboil/Rodinia data sets, the 9th DIMACS road
graphs NY/SF, miniFE meshes) are not redistributable here, so each is
replaced by a generator that reproduces the *behavioural property* the
case studies depend on:

* ``scale_free_graph`` — power-law degree distribution (the Parboil
  ``1M``/``UT`` graphs): high degree variance ⇒ branch divergence in BFS.
* ``road_graph`` — 2-D lattice with diagonal shortcuts (the ``NY``/``SF``
  road networks): low degree, huge diameter ⇒ many BFS levels, higher
  dynamic divergence on small frontiers.
* ``sparse_matrix_csr`` / ``to_ell`` — banded-random sparse matrices with
  variable row lengths (spmv, miniFE): CSR's row-pointer indirection
  makes warp lanes fetch unrelated lines (address divergence), while the
  ELL transform pads rows to a rectangle and restores coalescing —
  exactly the CSR-vs-ELL contrast of the paper's Figure 8.

All generators are deterministic in ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class CSRGraph:
    """A graph/matrix in compressed-sparse-row form."""

    row_offsets: np.ndarray   # int32, length n+1
    columns: np.ndarray       # int32, length nnz
    values: np.ndarray        # float32, length nnz (1.0 for graphs)

    @property
    def num_rows(self) -> int:
        return len(self.row_offsets) - 1

    @property
    def nnz(self) -> int:
        return int(self.row_offsets[-1])

    def max_row_length(self) -> int:
        return int(np.diff(self.row_offsets).max())


def scale_free_graph(num_nodes: int, avg_degree: int = 8,
                     seed: int = 1) -> CSRGraph:
    """Power-law out-degrees (Zipf-ish), random targets."""
    rng = np.random.default_rng(seed)
    raw = rng.zipf(1.8, num_nodes)
    degrees = np.minimum(raw, num_nodes - 1).astype(np.int64)
    scale = max(1.0, degrees.mean() / avg_degree)
    degrees = np.maximum(1, (degrees / scale).astype(np.int64))
    row_offsets = np.zeros(num_nodes + 1, dtype=np.int32)
    row_offsets[1:] = np.cumsum(degrees)
    columns = rng.integers(0, num_nodes, int(row_offsets[-1])) \
        .astype(np.int32)
    values = np.ones(len(columns), dtype=np.float32)
    return CSRGraph(row_offsets, columns, values)


def road_graph(side: int, seed: int = 1) -> CSRGraph:
    """A ``side × side`` lattice with a sprinkle of shortcut edges —
    degree ≈ 4, diameter ≈ 2·side (road-network-like)."""
    rng = np.random.default_rng(seed)
    num_nodes = side * side
    rows = []
    for node in range(num_nodes):
        x, y = node % side, node // side
        neighbors = []
        if x > 0:
            neighbors.append(node - 1)
        if x < side - 1:
            neighbors.append(node + 1)
        if y > 0:
            neighbors.append(node - side)
        if y < side - 1:
            neighbors.append(node + side)
        if rng.random() < 0.05:
            neighbors.append(int(rng.integers(0, num_nodes)))
        rows.append(neighbors)
    row_offsets = np.zeros(num_nodes + 1, dtype=np.int32)
    row_offsets[1:] = np.cumsum([len(r) for r in rows])
    columns = np.concatenate(rows).astype(np.int32)
    values = np.ones(len(columns), dtype=np.float32)
    return CSRGraph(row_offsets, columns, values)


def sparse_matrix_csr(num_rows: int, min_row: int = 1, max_row: int = 48,
                      seed: int = 1) -> CSRGraph:
    """Random sparse matrix with highly variable row lengths."""
    rng = np.random.default_rng(seed)
    lengths = rng.integers(min_row, max_row + 1, num_rows)
    row_offsets = np.zeros(num_rows + 1, dtype=np.int32)
    row_offsets[1:] = np.cumsum(lengths)
    columns = rng.integers(0, num_rows, int(row_offsets[-1])) \
        .astype(np.int32)
    values = rng.random(int(row_offsets[-1])).astype(np.float32)
    return CSRGraph(row_offsets, columns, values)


def to_ell(matrix: CSRGraph, pad_to: int = 0
           ) -> Tuple[np.ndarray, np.ndarray, int]:
    """Convert CSR to ELLPACK (column-major padded storage).

    Returns ``(columns, values, width)`` where both arrays have shape
    ``width * num_rows`` laid out column-major (entry *k* of row *r* at
    ``k * num_rows + r``) so that warp lanes reading entry *k* of
    consecutive rows access consecutive memory — the coalescing-friendly
    layout the paper's miniFE-ELL variant uses.  Padding columns point
    at column 0 with value 0.
    """
    num_rows = matrix.num_rows
    width = max(matrix.max_row_length(), pad_to)
    columns = np.zeros(width * num_rows, dtype=np.int32)
    values = np.zeros(width * num_rows, dtype=np.float32)
    for row in range(num_rows):
        start, end = matrix.row_offsets[row], matrix.row_offsets[row + 1]
        for k in range(end - start):
            columns[k * num_rows + row] = matrix.columns[start + k]
            values[k * num_rows + row] = matrix.values[start + k]
    return columns, values, width


def spmv_reference(matrix: CSRGraph, x: np.ndarray) -> np.ndarray:
    """Host CSR spmv in float32 accumulation order (row-major walk,
    matching the kernel's sequential per-row loop)."""
    y = np.zeros(matrix.num_rows, dtype=np.float32)
    for row in range(matrix.num_rows):
        start, end = matrix.row_offsets[row], matrix.row_offsets[row + 1]
        acc = np.float32(0.0)
        for k in range(start, end):
            acc += matrix.values[k] * x[matrix.columns[k]]
        y[row] = acc
    return y


def bfs_reference(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """Host BFS levels (int32, -1 for unreachable)."""
    from collections import deque

    levels = np.full(graph.num_rows, -1, dtype=np.int32)
    levels[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        start, end = graph.row_offsets[node], graph.row_offsets[node + 1]
        for edge in range(start, end):
            neighbor = int(graph.columns[edge])
            if levels[neighbor] < 0:
                levels[neighbor] = levels[node] + 1
                queue.append(neighbor)
    return levels
