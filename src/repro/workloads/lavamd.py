"""Rodinia ``lavaMD`` analog: particle interactions within boxes.

Each thread owns a particle and accumulates a cutoff-limited pairwise
interaction with every particle in its own and the next box — fixed
loop trips with a data-dependent cutoff branch inside, the lavaMD
divergence signature."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

BOX = 16          # particles per box
NUM_BOXES = 16
CUTOFF2 = 0.25


def build_lavamd_ir():
    b = KernelBuilder("lavamd", [
        ("n", Type.U32), ("px", PTR), ("py", PTR), ("charge", PTR),
        ("force", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        i_s = b.cvt(i, Type.S32)
        box = b.shr(i_s, 4)
        xi = b.load_f32(b.gep(b.param("px"), i_s, 4))
        yi = b.load_f32(b.gep(b.param("py"), i_s, 4))
        total = b.var(0.0, Type.F32)
        # own box + neighbour box (wrapping): 2*BOX candidates
        first = b.mul(box, BOX)
        with b.for_range(0, 2 * BOX) as j:
            other = b.add(first, j)
            wrapped = b.select(
                b.lt(other, b.cvt(b.param("n"), Type.S32)),
                other, b.sub(other, b.cvt(b.param("n"), Type.S32)))
            xj = b.load_f32(b.gep(b.param("px"), wrapped, 4))
            yj = b.load_f32(b.gep(b.param("py"), wrapped, 4))
            dx = b.fsub(xi, xj)
            dy = b.fsub(yi, yj)
            r2 = b.fma(dx, dx, b.fmul(dy, dy))
            with b.if_(b.lt(r2, CUTOFF2)):
                qj = b.load_f32(b.gep(b.param("charge"), wrapped, 4))
                b.assign(total, b.fma(qj, b.fsub(CUTOFF2, r2), total))
        b.store(b.gep(b.param("force"), i_s, 4), total)
    return b.finish()


class LavaMD(Workload):
    name = "rodinia/lavaMD"

    def __init__(self, dataset: str = "default"):
        super().__init__()
        self.dataset = dataset
        n = BOX * NUM_BOXES
        rng = np.random.default_rng(241)
        self.px = rng.random(n, dtype=np.float32)
        self.py = rng.random(n, dtype=np.float32)
        self.charge = rng.random(n, dtype=np.float32)

    def build_ir(self):
        return build_lavamd_ir()

    def _run(self, device, kernel) -> np.ndarray:
        n = len(self.px)
        args = [
            n,
            device.alloc_array(self.px),
            device.alloc_array(self.py),
            device.alloc_array(self.charge),
            device.alloc(n * 4),
        ]
        launch_1d(device, kernel, n, 128, args)
        return device.read_array(args[-1], n, np.float32)

    def reference(self) -> np.ndarray:
        n = len(self.px)
        out = np.zeros(n, dtype=np.float32)
        for i in range(n):
            box = i >> 4
            total = np.float32(0.0)
            for j in range(2 * BOX):
                other = box * BOX + j
                if other >= n:
                    other -= n
                dx = self.px[i] - self.px[other]
                dy = self.py[i] - self.py[other]
                r2 = dx * dx + dy * dy
                if r2 < np.float32(CUTOFF2):
                    total += self.charge[other] \
                        * (np.float32(CUTOFF2) - r2)
            out[i] = total
        return out

    def verify(self, output) -> bool:
        return bool(np.allclose(output, self.reference(),
                                rtol=1e-3, atol=1e-4))
