"""Parboil ``sgemm`` analog: tiled dense matrix multiply.

Shared-memory tiling with barriers; every branch is warp-uniform (tile
counts are identical across the warp), so the kernel is *fully
convergent* — Table 1 reports 0 divergent branches for sgemm on both
datasets, which this reproduction preserves.
"""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.ir import Space
from repro.kernelir.types import PTR
from repro.sim import Dim3
from repro.workloads.base import Workload

TILE = 8

DATASETS = {"small": 16, "medium": 32}


def build_sgemm_ir():
    """C = A @ B for square n×n matrices, TILE×TILE thread blocks."""
    b = KernelBuilder("sgemm", [("n", Type.S32), ("a", PTR), ("bm", PTR),
                                ("c", PTR)])
    tile_a = b.shared_array(TILE * TILE * 4)
    tile_b = b.shared_array(TILE * TILE * 4)
    tx, ty = b.tid_x(), b.tid_y()
    row = b.cvt(b.mad(b.ctaid_y(), TILE, ty), Type.S32)
    col = b.cvt(b.mad(b.ctaid_x(), TILE, tx), Type.S32)
    n = b.param("n")
    acc = b.var(0.0, Type.F32)
    num_tiles = b.shr(b.add(n, TILE - 1), 3)  # ceil(n / TILE), TILE = 8
    with b.for_range(0, num_tiles) as t:
        a_col = b.mad(t, TILE, b.cvt(tx, Type.S32))
        b_row = b.mad(t, TILE, b.cvt(ty, Type.S32))
        a_index = b.mad(row, n, a_col)
        b_index = b.mad(b_row, n, col)
        a_value = b.load_f32(b.gep(b.param("a"), a_index, 4))
        b_value = b.load_f32(b.gep(b.param("bm"), b_index, 4))
        local = b.mad(b.cvt(ty, Type.U32), TILE, tx)
        b.store(b.shared_ptr(tile_a, local, 4), a_value,
                space=Space.SHARED)
        b.store(b.shared_ptr(tile_b, local, 4), b_value,
                space=Space.SHARED)
        b.barrier()
        with b.for_range(0, TILE) as k:
            ka = b.load_f32(
                b.shared_ptr(tile_a,
                             b.mad(b.cvt(ty, Type.S32), TILE, k), 4),
                space=Space.SHARED)
            kb = b.load_f32(
                b.shared_ptr(tile_b,
                             b.mad(k, TILE, b.cvt(tx, Type.S32)), 4),
                space=Space.SHARED)
            b.assign(acc, b.fma(ka, kb, acc))
        b.barrier()
    b.store(b.gep(b.param("c"), b.mad(row, n, col), 4), acc)
    return b.finish()


class Sgemm(Workload):
    name = "parboil/sgemm"

    def __init__(self, dataset: str = "small"):
        super().__init__()
        self.dataset = dataset
        self.n = DATASETS[dataset]
        rng = np.random.default_rng(21)
        self.a = rng.random((self.n, self.n), dtype=np.float32)
        self.b = rng.random((self.n, self.n), dtype=np.float32)

    def build_ir(self):
        return build_sgemm_ir()

    def _run(self, device, kernel) -> np.ndarray:
        n = self.n
        pa = device.alloc_array(self.a)
        pb = device.alloc_array(self.b)
        pc = device.alloc(n * n * 4)
        tiles = n // TILE
        device.launch(kernel, Dim3(tiles, tiles), Dim3(TILE, TILE),
                      [n, pa, pb, pc],
                      shared_bytes=2 * TILE * TILE * 4)
        return device.read_array(pc, n * n, np.float32).reshape(n, n)

    def reference(self) -> np.ndarray:
        return (self.a.astype(np.float64) @ self.b.astype(np.float64)) \
            .astype(np.float32)

    def verify(self, output) -> bool:
        return bool(np.allclose(output, self.reference(),
                                rtol=1e-3, atol=1e-3))
