"""The canonical hello-world workload: ``c[i] = a[i] + b[i]``.

Small, single-launch, and branch-light — the reference workload for the
telemetry tests and the ``repro run vectoradd`` smoke path, where its
per-opcode-class counter totals are checked against the executor's
:class:`~repro.sim.executor.KernelStats` exactly.
"""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d


def build_vectoradd_ir():
    b = KernelBuilder("vectoradd", [
        ("n", Type.U32), ("a", PTR), ("b", PTR), ("c", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        lhs = b.load_f32(b.gep(b.param("a"), i, 4))
        rhs = b.load_f32(b.gep(b.param("b"), i, 4))
        b.store(b.gep(b.param("c"), i, 4), b.fadd(lhs, rhs))
    return b.finish()


class VectorAdd(Workload):
    name = "vectoradd"

    def __init__(self, dataset: str = "default", n: int = 1024):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(42)
        self.a = rng.random(n, dtype=np.float32)
        self.b = rng.random(n, dtype=np.float32)

    def build_ir(self):
        return build_vectoradd_ir()

    def _run(self, device, kernel) -> np.ndarray:
        n = len(self.a)
        args = [
            n,
            device.alloc_array(self.a),
            device.alloc_array(self.b),
            device.alloc(n * 4),
        ]
        launch_1d(device, kernel, n, 128, args)
        return device.read_array(args[-1], n, np.float32)

    def reference(self) -> np.ndarray:
        return (self.a + self.b).astype(np.float32)
