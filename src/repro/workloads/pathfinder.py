"""Rodinia ``pathfinder`` analog: dynamic-programming grid walk.

The host sweeps rows; each thread updates one column with
``data + min(prev[left], prev[center], prev[right])``, the edge columns
taking shorter paths — light divergence, many small launches."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

COLS = 256
ROWS = 8


def build_pathfinder_ir():
    b = KernelBuilder("pathfinder", [
        ("cols", Type.U32), ("prev", PTR), ("row", PTR), ("out", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("cols"))):
        i_s = b.cvt(i, Type.S32)
        cols = b.cvt(b.param("cols"), Type.S32)
        best = b.var(0, Type.S32)
        center = b.load_s32(b.gep(b.param("prev"), i_s, 4))
        b.assign(best, center)
        with b.if_(b.gt(i_s, 0)):
            left = b.load_s32(b.gep(b.param("prev"), b.sub(i_s, 1), 4))
            b.assign(best, b.min_(best, left))
        with b.if_(b.lt(i_s, b.sub(cols, 1))):
            right = b.load_s32(b.gep(b.param("prev"), b.add(i_s, 1), 4))
            b.assign(best, b.min_(best, right))
        here = b.load_s32(b.gep(b.param("row"), i_s, 4))
        b.store(b.gep(b.param("out"), i_s, 4), b.add(here, best))
    return b.finish()


class Pathfinder(Workload):
    name = "rodinia/pathfinder"

    def __init__(self, dataset: str = "default"):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(201)
        self.grid = rng.integers(0, 10, (ROWS, COLS)).astype(np.int32)

    def build_ir(self):
        return build_pathfinder_ir()

    def _run(self, device, kernel) -> np.ndarray:
        prev = device.alloc_array(self.grid[0])
        out = device.alloc(COLS * 4)
        for row in range(1, ROWS):
            row_ptr = device.alloc_array(self.grid[row])
            launch_1d(device, kernel, COLS, 128,
                      [COLS, prev, row_ptr, out])
            prev, out = out, prev
        return device.read_array(prev, COLS, np.int32)

    def reference(self) -> np.ndarray:
        prev = self.grid[0].astype(np.int64)
        for row in range(1, ROWS):
            new = np.empty_like(prev)
            for col in range(COLS):
                best = prev[col]
                if col > 0:
                    best = min(best, prev[col - 1])
                if col < COLS - 1:
                    best = min(best, prev[col + 1])
                new[col] = self.grid[row, col] + best
            prev = new
        return prev.astype(np.int32)
