"""Rodinia ``mummergpu`` analog: exact substring matching.

Each thread matches one query against the reference string starting at
its assigned position and records the match length — per-thread variable
match lengths (data-dependent while loop) and byte loads, the signature
of mummergpu's divergence and narrow memory behaviour."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

REF_LEN = 2048
QUERY_LEN = 16


def build_mummer_ir():
    b = KernelBuilder("mummergpu", [
        ("nqueries", Type.U32), ("reference", PTR), ("queries", PTR),
        ("positions", PTR), ("lengths", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("nqueries"))):
        i_s = b.cvt(i, Type.S32)
        position = b.load_s32(b.gep(b.param("positions"), i_s, 4))
        matched = b.var(0, Type.S32)
        with b.while_(lambda: b.lt(matched, QUERY_LEN)):
            q = b.load(b.gep(b.param("queries"),
                             b.mad(i_s, QUERY_LEN, matched), 1),
                       Type.U32)
            r = b.load(b.gep(b.param("reference"),
                             b.add(position, matched), 1), Type.U32)
            with b.if_(b.ne(b.and_(q, 0xFF), b.and_(r, 0xFF))):
                b.break_()
            b.assign(matched, b.add(matched, 1))
        b.store(b.gep(b.param("lengths"), i_s, 4), matched)
    return b.finish()


class MummerGPU(Workload):
    name = "rodinia/mummergpu"

    def __init__(self, dataset: str = "default", nqueries: int = 256):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(261)
        self.reference_str = rng.integers(0, 4, REF_LEN).astype(np.uint8)
        self.positions = rng.integers(
            0, REF_LEN - QUERY_LEN, nqueries).astype(np.int32)
        # queries copied from the reference with random corruption, so
        # match lengths vary per thread
        queries = np.empty((nqueries, QUERY_LEN), dtype=np.uint8)
        for q in range(nqueries):
            start = self.positions[q]
            queries[q] = self.reference_str[start:start + QUERY_LEN]
            if rng.random() < 0.8:
                corrupt_at = rng.integers(0, QUERY_LEN)
                queries[q, corrupt_at] = (queries[q, corrupt_at] + 1) % 4 + 4
        self.queries = queries

    def build_ir(self):
        return build_mummer_ir()

    def _run(self, device, kernel) -> np.ndarray:
        n = len(self.positions)
        args = [
            n,
            device.alloc_array(self.reference_str),
            device.alloc_array(self.queries),
            device.alloc_array(self.positions),
            device.alloc(n * 4),
        ]
        launch_1d(device, kernel, n, 128, args)
        return device.read_array(args[-1], n, np.int32)

    def reference(self) -> np.ndarray:
        out = np.zeros(len(self.positions), dtype=np.int32)
        for q in range(len(self.positions)):
            start = int(self.positions[q])
            matched = 0
            while matched < QUERY_LEN:
                if self.queries[q, matched] \
                        != self.reference_str[start + matched]:
                    break
                matched += 1
            out[q] = matched
        return out
