"""Parboil ``histo`` analog: saturating histogram with global atomics.

Each thread bins one input element.  The saturation test (Parboil's
histogram saturates at 255) adds a data-dependent branch; skewed input
concentrates atomics on hot bins.
"""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

NUM_BINS = 64
SATURATE = 255


def build_histo_ir():
    b = KernelBuilder("histo", [
        ("n", Type.U32), ("data", PTR), ("hist", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        value = b.load_u32(b.gep(b.param("data"), i, 4))
        bin_index = b.and_(value, NUM_BINS - 1)
        bin_ptr = b.gep(b.param("hist"), bin_index, 4)
        current = b.load_u32(bin_ptr)
        with b.if_(b.lt(current, SATURATE)):
            b.atomic_add(bin_ptr, 1)
    return b.finish()


class Histo(Workload):
    name = "parboil/histo"

    def __init__(self, dataset: str = "default", n: int = 4096):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(61)
        # skewed distribution: a few hot bins saturate, as in Parboil
        raw = rng.zipf(1.5, n) % NUM_BINS
        self.data = raw.astype(np.uint32)

    def build_ir(self):
        return build_histo_ir()

    def _run(self, device, kernel) -> np.ndarray:
        n = len(self.data)
        data_ptr = device.alloc_array(self.data)
        hist_ptr = device.alloc(NUM_BINS * 4)
        launch_1d(device, kernel, n, 128, [n, data_ptr, hist_ptr])
        return device.read_array(hist_ptr, NUM_BINS, np.uint32)

    def reference(self) -> np.ndarray:
        # The saturation test in the kernel races benignly (several
        # threads can pass the test before the count reaches 255), so
        # with our serialized warps the result equals min(count, ...)
        # only approximately; we verify bins below saturation exactly.
        hist = np.bincount(self.data & (NUM_BINS - 1),
                           minlength=NUM_BINS).astype(np.uint32)
        return hist

    def verify(self, output) -> bool:
        expected = self.reference()
        below = expected < SATURATE
        if not (output[below] == expected[below]).all():
            return False
        return bool((output[~below] >= SATURATE).all()) \
            if (~below).any() else True
