"""Workload registry: name → factory, plus the per-table benchmark lists
used by the studies and benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.backprop import Backprop
from repro.workloads.base import Workload
from repro.workloads.btree import BPlusTree
from repro.workloads.cutcp import Cutcp
from repro.workloads.gaussian import Gaussian
from repro.workloads.heartwall import Heartwall
from repro.workloads.histo import Histo
from repro.workloads.hotspot import Hotspot
from repro.workloads.kmeans import Kmeans
from repro.workloads.lavamd import LavaMD
from repro.workloads.lbm import Lbm
from repro.workloads.lud import Lud
from repro.workloads.minife import MiniFECSR, MiniFEELL
from repro.workloads.mrig import MriGridding
from repro.workloads.mriq import MriQ
from repro.workloads.mummergpu import MummerGPU
from repro.workloads.nn import NearestNeighbor
from repro.workloads.nw import NeedlemanWunsch
from repro.workloads.parboil_bfs import ParboilBFS
from repro.workloads.pathfinder import Pathfinder
from repro.workloads.rodinia_bfs import RodiniaBFS
from repro.workloads.sad import Sad
from repro.workloads.sgemm import Sgemm
from repro.workloads.spmv import Spmv
from repro.workloads.srad import SradV1, SradV2
from repro.workloads.stencil import Stencil
from repro.workloads.streamcluster import StreamCluster
from repro.workloads.tpacf import Tpacf
from repro.workloads.vectoradd import VectorAdd

#: every workload factory, keyed "suite/name(dataset)"
WORKLOADS: Dict[str, Callable[[], Workload]] = {
    "vectoradd": VectorAdd,
    "parboil/bfs(1M)": lambda: ParboilBFS("1M"),
    "parboil/bfs(NY)": lambda: ParboilBFS("NY"),
    "parboil/bfs(SF)": lambda: ParboilBFS("SF"),
    "parboil/bfs(UT)": lambda: ParboilBFS("UT"),
    "parboil/sgemm(small)": lambda: Sgemm("small"),
    "parboil/sgemm(medium)": lambda: Sgemm("medium"),
    "parboil/spmv(small)": lambda: Spmv("small"),
    "parboil/spmv(medium)": lambda: Spmv("medium"),
    "parboil/spmv(large)": lambda: Spmv("large"),
    "parboil/tpacf(small)": lambda: Tpacf("small"),
    "parboil/stencil": Stencil,
    "parboil/histo": Histo,
    "parboil/sad": Sad,
    "parboil/mri-q": MriQ,
    "parboil/mri-gridding": MriGridding,
    "parboil/cutcp": Cutcp,
    "parboil/lbm": Lbm,
    "rodinia/bfs": RodiniaBFS,
    "rodinia/gaussian": Gaussian,
    "rodinia/heartwall": Heartwall,
    "rodinia/srad_v1": SradV1,
    "rodinia/srad_v2": SradV2,
    "rodinia/streamcluster": StreamCluster,
    "rodinia/nn": NearestNeighbor,
    "rodinia/hotspot": Hotspot,
    "rodinia/kmeans": Kmeans,
    "rodinia/backprop": Backprop,
    "rodinia/pathfinder": Pathfinder,
    "rodinia/nw": NeedlemanWunsch,
    "rodinia/lud": Lud,
    "rodinia/lavaMD": LavaMD,
    "rodinia/b+tree": BPlusTree,
    "rodinia/mummergpu": MummerGPU,
    "miniFE(CSR)": MiniFECSR,
    "miniFE(ELL)": MiniFEELL,
}

#: Table 1 rows (paper order)
TABLE1_BENCHMARKS: List[str] = [
    "parboil/bfs(1M)", "parboil/bfs(NY)", "parboil/bfs(SF)",
    "parboil/bfs(UT)", "parboil/sgemm(small)", "parboil/sgemm(medium)",
    "parboil/tpacf(small)",
    "rodinia/bfs", "rodinia/gaussian", "rodinia/heartwall",
    "rodinia/srad_v1", "rodinia/srad_v2", "rodinia/streamcluster",
]

#: Figure 7 series (paper order)
FIGURE7_BENCHMARKS: List[str] = [
    "parboil/bfs(NY)", "parboil/bfs(SF)", "parboil/bfs(UT)",
    "parboil/spmv(small)", "parboil/spmv(medium)", "parboil/spmv(large)",
    "rodinia/bfs", "rodinia/heartwall", "parboil/mri-gridding",
    "miniFE(ELL)", "miniFE(CSR)",
]

#: Table 2 rows
TABLE2_BENCHMARKS: List[str] = [
    "parboil/bfs(1M)", "parboil/cutcp", "parboil/histo", "parboil/lbm",
    "parboil/mri-gridding", "parboil/mri-q", "parboil/sad",
    "parboil/sgemm(small)", "parboil/spmv(small)", "parboil/stencil",
    "parboil/tpacf(small)",
    "rodinia/b+tree", "rodinia/backprop", "rodinia/bfs",
    "rodinia/gaussian", "rodinia/heartwall", "rodinia/hotspot",
    "rodinia/kmeans", "rodinia/lavaMD", "rodinia/lud",
    "rodinia/mummergpu", "rodinia/nn", "rodinia/nw",
    "rodinia/pathfinder", "rodinia/srad_v1", "rodinia/srad_v2",
    "rodinia/streamcluster",
]

#: Figure 10 applications (a representative subset; 1000 injections per
#: app in the paper, configurable here)
FIGURE10_BENCHMARKS: List[str] = [
    "parboil/sgemm(small)", "parboil/spmv(small)", "parboil/stencil",
    "parboil/sad", "rodinia/nn", "rodinia/hotspot", "rodinia/kmeans",
    "rodinia/pathfinder", "rodinia/srad_v1", "rodinia/heartwall",
]

#: Table 3 rows (paper order: Parboil then Rodinia, sorted by GPU share)
TABLE3_BENCHMARKS: List[str] = [
    "parboil/sgemm(small)", "parboil/spmv(small)", "parboil/bfs(1M)",
    "parboil/mri-q", "parboil/mri-gridding", "parboil/cutcp",
    "parboil/histo", "parboil/stencil", "parboil/sad", "parboil/lbm",
    "parboil/tpacf(small)",
    "rodinia/nn", "rodinia/hotspot", "rodinia/lud", "rodinia/b+tree",
    "rodinia/bfs", "rodinia/pathfinder", "rodinia/srad_v2",
    "rodinia/mummergpu", "rodinia/backprop", "rodinia/kmeans",
    "rodinia/lavaMD", "rodinia/srad_v1", "rodinia/nw",
    "rodinia/gaussian", "rodinia/streamcluster", "rodinia/heartwall",
]


def make(name: str) -> Workload:
    """Instantiate a workload by registry name."""
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; "
                       f"choose from {sorted(WORKLOADS)}") from None


def all_names() -> List[str]:
    return sorted(WORKLOADS)
