"""Parboil ``lbm`` analog: lattice-Boltzmann stream-and-collide.

A simplified D2Q5 update: each cell gathers five distributions from its
neighbours, relaxes toward equilibrium, and writes five distributions
back.  Obstacle cells bounce back (a data-dependent branch, but rare) —
lbm is memory-bound with a huge straight-line body, which is why the
paper's Table 3 shows it suffering the largest kernel-level value-
profiling slowdowns."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.ir import Space
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

SIDE = 24
OMEGA = 0.6
NDIR = 5
# direction offsets: rest, +x, -x, +y, -y
OFFSETS = (0, 1, -1, SIDE, -SIDE)
WEIGHTS = (1.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0)


def build_lbm_ir():
    b = KernelBuilder("lbm", [
        ("ncells", Type.U32), ("src", PTR), ("dst", PTR),
        ("obstacles", PTR),
    ])
    cell = b.global_index_x()
    with b.if_(b.lt(cell, b.param("ncells"))):
        ncells = b.cvt(b.param("ncells"), Type.S32)
        cell_s = b.cvt(cell, Type.S32)
        # gather the five incoming distributions (wrapping at the ends)
        values = []
        density = b.var(0.0, Type.F32)
        for direction in range(NDIR):
            neighbor = b.add(cell_s, -OFFSETS[direction])
            clamped = b.max_(b.min_(neighbor, b.sub(ncells, 1)), 0)
            f = b.load_f32(b.gep(b.param("src"),
                                 b.mad(clamped, NDIR, direction), 4))
            values.append(f)
            b.assign(density, b.fadd(density, f))
        obstacle = b.load_s32(b.gep(b.param("obstacles"), cell_s, 4))
        is_fluid = b.eq(obstacle, 0)
        branch = b.if_(is_fluid)
        with branch:
            for direction in range(NDIR):
                equilibrium = b.fmul(density, WEIGHTS[direction])
                relaxed = b.fma(b.fsub(equilibrium, values[direction]),
                                OMEGA, values[direction])
                b.store(b.gep(b.param("dst"),
                              b.mad(cell_s, NDIR, direction), 4), relaxed)
        with branch.else_():
            # bounce-back: swap opposing directions
            for direction, mirror in ((0, 0), (1, 2), (2, 1), (3, 4),
                                      (4, 3)):
                b.store(b.gep(b.param("dst"),
                              b.mad(cell_s, NDIR, direction), 4),
                        values[mirror])
    return b.finish()


class Lbm(Workload):
    name = "parboil/lbm"

    def __init__(self, dataset: str = "default", iterations: int = 2):
        super().__init__()
        self.dataset = dataset
        self.iterations = iterations
        self.ncells = SIDE * SIDE
        rng = np.random.default_rng(91)
        self.f0 = rng.random((self.ncells, NDIR)).astype(np.float32)
        self.obstacles = (rng.random(self.ncells) < 0.05).astype(np.int32)

    def build_ir(self):
        return build_lbm_ir()

    def _run(self, device, kernel) -> np.ndarray:
        src = device.alloc_array(self.f0)
        dst = device.alloc_array(self.f0)
        obstacles = device.alloc_array(self.obstacles)
        for _ in range(self.iterations):
            launch_1d(device, kernel, self.ncells, 128,
                      [self.ncells, src, dst, obstacles])
            src, dst = dst, src
        return device.read_array(src, self.ncells * NDIR,
                                 np.float32).reshape(self.ncells, NDIR)

    def reference(self) -> np.ndarray:
        f = self.f0.astype(np.float32).copy()
        for _ in range(self.iterations):
            new = np.empty_like(f)
            for cell in range(self.ncells):
                incoming = np.empty(NDIR, dtype=np.float32)
                for direction in range(NDIR):
                    neighbor = cell - OFFSETS[direction]
                    neighbor = min(max(neighbor, 0), self.ncells - 1)
                    incoming[direction] = f[neighbor, direction]
                density = np.float32(0.0)
                for direction in range(NDIR):
                    density += incoming[direction]
                if self.obstacles[cell] == 0:
                    for direction in range(NDIR):
                        eq = density * np.float32(WEIGHTS[direction])
                        new[cell, direction] = (
                            (eq - incoming[direction])
                            * np.float32(OMEGA) + incoming[direction])
                else:
                    mirror = (0, 2, 1, 4, 3)
                    for direction in range(NDIR):
                        new[cell, direction] = incoming[mirror[direction]]
            f = new
        return f

    def verify(self, output) -> bool:
        return bool(np.allclose(output, self.reference(),
                                rtol=1e-3, atol=1e-4))
