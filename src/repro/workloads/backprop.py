"""Rodinia ``backprop`` analog: neural-net forward layer.

One thread per hidden unit: weighted sum over the input layer followed
by a sigmoid (``1 / (1 + e^-x)`` via ``MUFU.EX2``).  Convergent except
for the bounds test; heavy on FFMA and transcendental units."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

LOG2E = float(np.log2(np.e))


def build_backprop_ir():
    b = KernelBuilder("backprop", [
        ("hidden", Type.U32), ("inputs", Type.S32),
        ("x", PTR), ("weights", PTR), ("out", PTR),
    ])
    j = b.global_index_x()
    with b.if_(b.lt(j, b.param("hidden"))):
        j_s = b.cvt(j, Type.S32)
        total = b.var(0.0, Type.F32)
        inputs = b.param("inputs")
        with b.for_range(0, inputs) as i:
            xi = b.load_f32(b.gep(b.param("x"), i, 4))
            w = b.load_f32(b.gep(b.param("weights"),
                                 b.mad(j_s, inputs, i), 4))
            b.assign(total, b.fma(xi, w, total))
        # sigmoid(total) = 1 / (1 + 2^(-total * log2 e))
        exp_term = b.exp2(b.fmul(total, -LOG2E))
        b.store(b.gep(b.param("out"), j_s, 4),
                b.rcp(b.fadd(exp_term, 1.0)))
    return b.finish()


class Backprop(Workload):
    name = "rodinia/backprop"

    def __init__(self, dataset: str = "default", inputs: int = 64,
                 hidden: int = 256):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(191)
        self.x = (rng.random(inputs, dtype=np.float32) - 0.5) \
            .astype(np.float32)
        self.weights = (rng.random((hidden, inputs), dtype=np.float32)
                        - 0.5).astype(np.float32)

    def build_ir(self):
        return build_backprop_ir()

    def _run(self, device, kernel) -> np.ndarray:
        hidden, inputs = self.weights.shape
        args = [
            hidden, inputs,
            device.alloc_array(self.x),
            device.alloc_array(self.weights),
            device.alloc(hidden * 4),
        ]
        launch_1d(device, kernel, hidden, 128, args)
        return device.read_array(args[-1], hidden, np.float32)

    def reference(self) -> np.ndarray:
        totals = self.weights @ self.x
        return (1.0 / (1.0 + np.exp(-totals))).astype(np.float32)

    def verify(self, output) -> bool:
        return bool(np.allclose(output, self.reference(),
                                rtol=1e-3, atol=1e-4))
