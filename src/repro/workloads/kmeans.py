"""Rodinia ``kmeans`` analog: the cluster-assignment kernel.

One thread per point: loop over clusters × features, track the argmin
distance.  The running-minimum update is a data-dependent branch; most
everything else is convergent."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

FEATURES = 4
CLUSTERS = 5


def build_kmeans_ir():
    b = KernelBuilder("kmeans", [
        ("n", Type.U32), ("points", PTR), ("centers", PTR),
        ("membership", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        i_s = b.cvt(i, Type.S32)
        best_dist = b.var(3.4e38, Type.F32)
        best_index = b.var(-1, Type.S32)
        with b.for_range(0, CLUSTERS) as c:
            dist = b.var(0.0, Type.F32)
            with b.for_range(0, FEATURES) as f:
                p = b.load_f32(b.gep(b.param("points"),
                                     b.mad(i_s, FEATURES, f), 4))
                q = b.load_f32(b.gep(b.param("centers"),
                                     b.mad(c, FEATURES, f), 4))
                diff = b.fsub(p, q)
                b.assign(dist, b.fma(diff, diff, dist))
            with b.if_(b.lt(dist, best_dist)):
                b.assign(best_dist, dist)
                b.assign(best_index, c)
        b.store(b.gep(b.param("membership"), i_s, 4), best_index)
    return b.finish()


class Kmeans(Workload):
    name = "rodinia/kmeans"

    def __init__(self, dataset: str = "default", n: int = 512):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(181)
        self.points = rng.random((n, FEATURES), dtype=np.float32)
        self.centers = rng.random((CLUSTERS, FEATURES), dtype=np.float32)

    def build_ir(self):
        return build_kmeans_ir()

    def _run(self, device, kernel) -> np.ndarray:
        n = len(self.points)
        args = [
            n,
            device.alloc_array(self.points),
            device.alloc_array(self.centers),
            device.alloc(n * 4),
        ]
        launch_1d(device, kernel, n, 128, args)
        return device.read_array(args[-1], n, np.int32)

    def reference(self) -> np.ndarray:
        diff = self.points[:, None, :] - self.centers[None, :, :]
        distances = (diff * diff).sum(axis=2)
        return distances.argmin(axis=1).astype(np.int32)
