"""Parboil ``bfs`` analog: level-synchronized breadth-first search.

One thread per node; a thread whose node sits on the current level
relaxes its out-edges.  Degree variance drives branch divergence (the
frontier test and the variable-trip edge loop), which is why the paper
uses it with four datasets of different structure: ``1M``/``UT`` are
scale-free-ish, ``NY``/``SF`` are road networks (low degree, long
diameter ⇒ many small frontiers ⇒ higher dynamic divergence %), matching
Table 1's spread of 4.1–14.9 %.
"""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d
from repro.workloads.datasets import (
    CSRGraph,
    bfs_reference,
    road_graph,
    scale_free_graph,
)

#: dataset name -> graph factory (sizes scaled to simulator throughput)
DATASETS = {
    "1M": lambda: scale_free_graph(2048, avg_degree=8, seed=11),
    "NY": lambda: road_graph(24, seed=12),
    "SF": lambda: road_graph(32, seed=13),
    "UT": lambda: scale_free_graph(1024, avg_degree=4, seed=14),
}


def build_bfs_ir(name: str = "bfs"):
    b = KernelBuilder(name, [
        ("n", Type.U32), ("level", Type.S32), ("levels", PTR),
        ("row_offsets", PTR), ("columns", PTR), ("changed", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        my_level = b.load_s32(b.gep(b.param("levels"), i, 4))
        with b.if_(b.eq(my_level, b.param("level"))):
            start = b.load_s32(b.gep(b.param("row_offsets"), i, 4))
            end = b.load_s32(b.gep(b.param("row_offsets"), b.add(i, 1), 4))
            edge = b.var(start, Type.S32)
            with b.while_(lambda: b.lt(edge, end)):
                neighbor = b.load_s32(b.gep(b.param("columns"), edge, 4))
                nb_level = b.load_s32(b.gep(b.param("levels"), neighbor, 4))
                with b.if_(b.lt(nb_level, 0)):
                    b.store(b.gep(b.param("levels"), neighbor, 4),
                            b.add(b.param("level"), 1))
                    b.store(b.param("changed"), 1)
                b.assign(edge, b.add(edge, 1))
    return b.finish()


class ParboilBFS(Workload):
    """Parboil-style BFS over a synthetic dataset."""

    name = "parboil/bfs"

    def __init__(self, dataset: str = "1M", block: int = 128):
        super().__init__()
        if dataset not in DATASETS:
            raise ValueError(f"unknown bfs dataset {dataset!r}")
        self.dataset = dataset
        self.block = block
        self.graph: CSRGraph = DATASETS[dataset]()

    def build_ir(self):
        return build_bfs_ir()

    def _run(self, device, kernel) -> np.ndarray:
        graph = self.graph
        n = graph.num_rows
        levels = np.full(n, -1, dtype=np.int32)
        levels[0] = 0
        levels_ptr = device.alloc_array(levels)
        rows_ptr = device.alloc_array(graph.row_offsets)
        cols_ptr = device.alloc_array(graph.columns)
        changed_ptr = device.alloc(4)
        level = 0
        while level < n:
            device.memset(changed_ptr, 0, 4)
            launch_1d(device, kernel, n, self.block,
                      [n, level, levels_ptr, rows_ptr, cols_ptr,
                       changed_ptr])
            if device.read_array(changed_ptr, 1, np.int32)[0] == 0:
                break
            level += 1
        return device.read_array(levels_ptr, n, np.int32)

    def reference(self) -> np.ndarray:
        return bfs_reference(self.graph)
