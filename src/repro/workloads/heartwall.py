"""Rodinia ``heartwall`` analog (simplified): template tracking with
data-dependent search windows.

Real heartwall tracks heart-wall sample points through ultrasound frames
with per-point correlation searches; its 161 static branches and 42 %
dynamic divergence (Table 1) come from per-point, data-dependent search
extents and early exits.  This analog keeps that *behavioural* shape:
each thread owns a tracking point with its own window size drawn from
the input, scans the window with an early-exit threshold test, and walks
an if/else classification chain per sample — producing the same heavy,
data-dependent divergence (exact tracked positions are checked against
a host reference)."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

FRAME = 64
MAX_WINDOW = 24


def build_heartwall_ir():
    b = KernelBuilder("heartwall", [
        ("npoints", Type.U32), ("positions", PTR), ("windows", PTR),
        ("frame", PTR), ("template", PTR), ("out", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("npoints"))):
        i_s = b.cvt(i, Type.S32)
        position = b.load_s32(b.gep(b.param("positions"), i_s, 4))
        window = b.load_s32(b.gep(b.param("windows"), i_s, 4))
        target = b.load_s32(b.gep(b.param("template"), i_s, 4))
        best_score = b.var(0x7FFFFFFF, Type.S32)
        best_offset = b.var(0, Type.S32)
        offset = b.var(0, Type.S32)
        with b.while_(lambda: b.lt(offset, window)):
            sample = b.load_s32(b.gep(b.param("frame"),
                                      b.add(position, offset), 4))
            score = b.abs_(b.sub(sample, target))
            # classification chain (the heartwall if-ladder flavour)
            branch = b.if_(b.lt(score, 4))
            with branch:
                b.assign(best_score, score)
                b.assign(best_offset, offset)
                b.break_()          # early exit: good enough
            with branch.else_():
                with b.if_(b.lt(score, best_score)):
                    with b.if_(b.eq(b.and_(sample, 1), 0)):
                        b.assign(best_score, score)
                        b.assign(best_offset, offset)
                    branch2 = b.if_(b.gt(sample, target))
                    with branch2:
                        b.assign(offset, b.add(offset, 1))
                    with branch2.else_():
                        b.assign(offset, b.add(offset, 2))
                with b.if_(b.ge(score, best_score)):
                    b.assign(offset, b.add(offset, 1))
        b.store(b.gep(b.param("out"), i_s, 4),
                b.add(position, best_offset))
    return b.finish()


class Heartwall(Workload):
    name = "rodinia/heartwall"

    def __init__(self, dataset: str = "default", npoints: int = 256):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(211)
        self.frame = rng.integers(0, 64, FRAME * FRAME).astype(np.int32)
        self.positions = rng.integers(
            0, FRAME * FRAME - MAX_WINDOW, npoints).astype(np.int32)
        self.windows = rng.integers(4, MAX_WINDOW, npoints) \
            .astype(np.int32)
        self.template = rng.integers(0, 64, npoints).astype(np.int32)

    def build_ir(self):
        return build_heartwall_ir()

    def _run(self, device, kernel) -> np.ndarray:
        n = len(self.positions)
        args = [
            n,
            device.alloc_array(self.positions),
            device.alloc_array(self.windows),
            device.alloc_array(self.frame),
            device.alloc_array(self.template),
            device.alloc(n * 4),
        ]
        launch_1d(device, kernel, n, 128, args)
        return device.read_array(args[-1], n, np.int32)

    def reference(self) -> np.ndarray:
        out = np.zeros(len(self.positions), dtype=np.int32)
        for i in range(len(self.positions)):
            position = int(self.positions[i])
            window = int(self.windows[i])
            target = int(self.template[i])
            best_score, best_offset = 0x7FFFFFFF, 0
            offset = 0
            while offset < window:
                sample = int(self.frame[position + offset])
                score = abs(sample - target)
                if score < 4:
                    best_score, best_offset = score, offset
                    break
                if score < best_score:
                    if sample & 1 == 0:
                        best_score, best_offset = score, offset
                    offset += 1 if sample > target else 2
                if score >= best_score:
                    offset += 1
            out[i] = position + best_offset
        return out
