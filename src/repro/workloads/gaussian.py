"""Rodinia ``gaussian`` analog: Gaussian elimination.

The Fan2-style elimination kernel, launched once per pivot column by the
host (Rodinia launches hundreds of tiny kernels — the paper's Table 3
lists 2 052 launches, and the overhead study depends on this
launch-heavy profile).  Divergence is minimal (0.2 % in Table 1): only
the shrinking bounds test diverges."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.sim import Dim3
from repro.workloads.base import Workload

SIZE = 16


def build_gaussian_ir():
    b = KernelBuilder("gaussian_fan2", [
        ("size", Type.S32), ("t", Type.S32), ("a", PTR), ("vec", PTR),
    ])
    col = b.cvt(b.mad(b.ctaid_x(), b.ntid_x(), b.tid_x()), Type.S32)
    row = b.cvt(b.mad(b.ctaid_y(), b.ntid_y(), b.tid_y()), Type.S32)
    size, t = b.param("size"), b.param("t")
    rows_left = b.sub(b.sub(size, t), 1)
    in_range = b.pand(b.lt(row, rows_left),
                      b.lt(col, b.sub(size, t)))
    with b.if_(in_range):
        target_row = b.add(b.add(row, t), 1)
        pivot_index = b.mad(target_row, size, t)
        pivot_value = b.load_f32(b.gep(b.param("a"), pivot_index, 4))
        diag = b.load_f32(b.gep(b.param("a"), b.mad(t, size, t), 4))
        multiplier = b.fdiv(pivot_value, diag)
        target_col = b.add(col, t)
        source = b.load_f32(b.gep(b.param("a"),
                                  b.mad(t, size, target_col), 4))
        dest_index = b.mad(target_row, size, target_col)
        dest = b.load_f32(b.gep(b.param("a"), dest_index, 4))
        b.store(b.gep(b.param("a"), dest_index, 4),
                b.fsub(dest, b.fmul(multiplier, source)))
        with b.if_(b.eq(col, 0)):
            rhs_t = b.load_f32(b.gep(b.param("vec"), t, 4))
            rhs = b.load_f32(b.gep(b.param("vec"), target_row, 4))
            b.store(b.gep(b.param("vec"), target_row, 4),
                    b.fsub(rhs, b.fmul(multiplier, rhs_t)))
    return b.finish()


class Gaussian(Workload):
    name = "rodinia/gaussian"

    def __init__(self, dataset: str = "default"):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(131)
        matrix = rng.random((SIZE, SIZE), dtype=np.float32)
        matrix += SIZE * np.eye(SIZE, dtype=np.float32)  # well-conditioned
        self.matrix = matrix
        self.rhs = rng.random(SIZE, dtype=np.float32)

    def build_ir(self):
        return build_gaussian_ir()

    def _run(self, device, kernel) -> np.ndarray:
        a = device.alloc_array(self.matrix)
        vec = device.alloc_array(self.rhs)
        blocks = Dim3((SIZE + 7) // 8, (SIZE + 7) // 8)
        for t in range(SIZE - 1):
            device.launch(kernel, blocks, Dim3(8, 8),
                          [SIZE, t, a, vec])
        upper = device.read_array(a, SIZE * SIZE,
                                  np.float32).reshape(SIZE, SIZE)
        rhs = device.read_array(vec, SIZE, np.float32)
        # host back-substitution, as in Rodinia
        solution = np.zeros(SIZE, dtype=np.float32)
        for i in range(SIZE - 1, -1, -1):
            solution[i] = (rhs[i] - upper[i, i + 1:] @ solution[i + 1:]) \
                / upper[i, i]
        return solution

    def reference(self) -> np.ndarray:
        return np.linalg.solve(self.matrix.astype(np.float64),
                               self.rhs.astype(np.float64)) \
            .astype(np.float32)

    def verify(self, output) -> bool:
        return bool(np.allclose(output, self.reference(),
                                rtol=1e-2, atol=1e-2))
