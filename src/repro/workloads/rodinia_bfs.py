"""Rodinia ``bfs`` analog: frontier-mask breadth-first search.

Unlike the Parboil implementation (level comparison against a levels
array), Rodinia's BFS keeps explicit frontier/updating byte masks and
the host swaps them between launches — the paper highlights that branch
behaviour differs between the two implementations of the same algorithm
(Table 1: Rodinia bfs 14.2 % vs Parboil bfs 4.1 % dynamic divergence on
comparable inputs)."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d
from repro.workloads.datasets import CSRGraph, bfs_reference, \
    scale_free_graph


def build_rodinia_bfs_ir():
    b = KernelBuilder("rodinia_bfs", [
        ("n", Type.U32), ("mask", PTR), ("updating", PTR),
        ("visited", PTR), ("cost", PTR), ("row_offsets", PTR),
        ("columns", PTR), ("changed", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        active = b.load_s32(b.gep(b.param("mask"), i, 4))
        with b.if_(b.ne(active, 0)):
            b.store(b.gep(b.param("mask"), i, 4), 0)
            my_cost = b.load_s32(b.gep(b.param("cost"), i, 4))
            start = b.load_s32(b.gep(b.param("row_offsets"), i, 4))
            end = b.load_s32(b.gep(b.param("row_offsets"),
                                   b.add(i, 1), 4))
            edge = b.var(start, Type.S32)
            with b.while_(lambda: b.lt(edge, end)):
                neighbor = b.load_s32(b.gep(b.param("columns"), edge, 4))
                seen = b.load_s32(b.gep(b.param("visited"), neighbor, 4))
                with b.if_(b.eq(seen, 0)):
                    b.store(b.gep(b.param("cost"), neighbor, 4),
                            b.add(my_cost, 1))
                    b.store(b.gep(b.param("updating"), neighbor, 4), 1)
                    b.store(b.param("changed"), 1)
                b.assign(edge, b.add(edge, 1))
    return b.finish()


class RodiniaBFS(Workload):
    name = "rodinia/bfs"

    def __init__(self, dataset: str = "default", num_nodes: int = 1024,
                 block: int = 128):
        super().__init__()
        self.dataset = dataset
        self.block = block
        self.graph: CSRGraph = scale_free_graph(num_nodes, avg_degree=6,
                                                seed=121)

    def build_ir(self):
        return build_rodinia_bfs_ir()

    def _run(self, device, kernel) -> np.ndarray:
        graph = self.graph
        n = graph.num_rows
        mask = np.zeros(n, dtype=np.int32)
        mask[0] = 1
        visited = np.zeros(n, dtype=np.int32)
        visited[0] = 1
        cost = np.full(n, -1, dtype=np.int32)
        cost[0] = 0
        ptr = {
            "mask": device.alloc_array(mask),
            "updating": device.alloc(n * 4),
            "visited": device.alloc_array(visited),
            "cost": device.alloc_array(cost),
            "rows": device.alloc_array(graph.row_offsets),
            "cols": device.alloc_array(graph.columns),
            "changed": device.alloc(4),
        }
        for _ in range(n):
            device.memset(ptr["changed"], 0, 4)
            launch_1d(device, kernel, n, self.block,
                      [n, ptr["mask"], ptr["updating"], ptr["visited"],
                       ptr["cost"], ptr["rows"], ptr["cols"],
                       ptr["changed"]])
            if device.read_array(ptr["changed"], 1, np.int32)[0] == 0:
                break
            # host-side phase 2: promote updating -> mask/visited
            updating = device.read_array(ptr["updating"], n, np.int32)
            newly = updating != 0
            visited_host = device.read_array(ptr["visited"], n, np.int32)
            visited_host[newly] = 1
            device.memcpy_htod(ptr["visited"], visited_host)
            device.memcpy_htod(ptr["mask"], newly.astype(np.int32))
            device.memset(ptr["updating"], 0, n * 4)
        return device.read_array(ptr["cost"], n, np.int32)

    def reference(self) -> np.ndarray:
        return bfs_reference(self.graph)
