"""Rodinia ``nn`` analog: nearest-neighbour distance computation.

Each thread computes the Euclidean distance of one record to the query
point — a tiny, almost instruction-free kernel (the paper's Table 3
shows nn dominated by host time, with ~1.0× whole-program overheads
under every instrumentation)."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d


def build_nn_ir():
    b = KernelBuilder("nn", [
        ("n", Type.U32), ("lat", PTR), ("lng", PTR),
        ("qlat", Type.F32), ("qlng", Type.F32), ("distances", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        dlat = b.fsub(b.load_f32(b.gep(b.param("lat"), i, 4)),
                      b.param("qlat"))
        dlng = b.fsub(b.load_f32(b.gep(b.param("lng"), i, 4)),
                      b.param("qlng"))
        dist = b.sqrt(b.fma(dlat, dlat, b.fmul(dlng, dlng)))
        b.store(b.gep(b.param("distances"), i, 4), dist)
    return b.finish()


class NearestNeighbor(Workload):
    name = "rodinia/nn"

    def __init__(self, dataset: str = "default", n: int = 1024):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(161)
        self.lat = (rng.random(n, dtype=np.float32) * 90).astype(np.float32)
        self.lng = (rng.random(n, dtype=np.float32) * 180).astype(np.float32)
        self.query = (np.float32(45.0), np.float32(90.0))

    def build_ir(self):
        return build_nn_ir()

    def _run(self, device, kernel) -> np.ndarray:
        n = len(self.lat)
        args = [
            n,
            device.alloc_array(self.lat),
            device.alloc_array(self.lng),
            float(self.query[0]), float(self.query[1]),
            device.alloc(n * 4),
        ]
        launch_1d(device, kernel, n, 128, args)
        return device.read_array(args[-1], n, np.float32)

    def reference(self) -> np.ndarray:
        dlat = self.lat - self.query[0]
        dlng = self.lng - self.query[1]
        return np.sqrt(dlat * dlat + dlng * dlng).astype(np.float32)

    def verify(self, output) -> bool:
        return bool(np.allclose(output, self.reference(),
                                rtol=1e-3, atol=1e-4))
