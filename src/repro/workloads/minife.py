"""NERSC ``miniFE`` analog: the sparse matrix–vector product at the core
of its CG solve, in the two matrix formats the paper contrasts.

* **CSR** — row-per-thread with row-pointer indirection: lanes read rows
  of different lengths from unrelated addresses.  The paper's Figure 7
  shows 73 % of miniFE-CSR thread accesses coming from *fully* diverged
  warp instructions (all 32 lanes on different lines), with the Figure 8
  heat map concentrated on the diagonal.
* **ELL** — rows padded to a rectangle stored column-major: at step *k*
  the warp's lanes read entry *k* of 32 consecutive rows, which sit in
  consecutive memory — the same computation, shifted to low divergence.

The matrix is a 2-D 5-point finite-element-ish operator plus random
fill-in (variable row lengths)."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d
from repro.workloads.datasets import CSRGraph, spmv_reference, to_ell
from repro.workloads.spmv import build_spmv_csr_ir


def _minife_matrix(side: int = 24, seed: int = 271) -> CSRGraph:
    """5-point stencil operator with random extra couplings."""
    rng = np.random.default_rng(seed)
    n = side * side
    rows = []
    values = []
    for node in range(n):
        x, y = node % side, node // side
        cols = [node]
        vals = [4.0]
        for nb in (node - 1 if x > 0 else None,
                   node + 1 if x < side - 1 else None,
                   node - side if y > 0 else None,
                   node + side if y < side - 1 else None):
            if nb is not None:
                cols.append(nb)
                vals.append(-1.0)
        extra = int(rng.integers(0, 6))     # fill-in varies per row
        for _ in range(extra):
            cols.append(int(rng.integers(0, n)))
            vals.append(float(rng.random() * 0.1))
        rows.append(cols)
        values.append(vals)
    row_offsets = np.zeros(n + 1, dtype=np.int32)
    row_offsets[1:] = np.cumsum([len(r) for r in rows])
    return CSRGraph(row_offsets,
                    np.concatenate(rows).astype(np.int32),
                    np.concatenate(values).astype(np.float32))


def build_spmv_ell_ir():
    """ELL spmv: fixed-width loop, column-major coalesced layout."""
    b = KernelBuilder("spmv_ell", [
        ("n", Type.U32), ("width", Type.S32), ("columns", PTR),
        ("values", PTR), ("x", PTR), ("y", PTR),
    ])
    row = b.global_index_x()
    with b.if_(b.lt(row, b.param("n"))):
        row_s = b.cvt(row, Type.S32)
        n_s = b.cvt(b.param("n"), Type.S32)
        acc = b.var(0.0, Type.F32)
        with b.for_range(0, b.param("width")) as k:
            slot = b.mad(k, n_s, row_s)     # column-major: coalesced
            column = b.load_s32(b.gep(b.param("columns"), slot, 4))
            value = b.load_f32(b.gep(b.param("values"), slot, 4))
            xv = b.load_f32(b.gep(b.param("x"), column, 4))
            b.assign(acc, b.fma(value, xv, acc))
        b.store(b.gep(b.param("y"), row, 4), acc)
    return b.finish()


class _MiniFEBase(Workload):
    def __init__(self, side: int = 24):
        super().__init__()
        self.matrix = _minife_matrix(side)
        rng = np.random.default_rng(281)
        self.x = rng.random(self.matrix.num_rows, dtype=np.float32)

    def verify(self, output) -> bool:
        # padded-zero terms perturb float order; compare loosely
        return bool(np.allclose(output, spmv_reference(self.matrix, self.x),
                                rtol=1e-2, atol=1e-3))


class MiniFECSR(_MiniFEBase):
    name = "miniFE"
    dataset = "CSR"

    def build_ir(self):
        return build_spmv_csr_ir("minife_csr")

    def _run(self, device, kernel) -> np.ndarray:
        matrix = self.matrix
        n = matrix.num_rows
        args = [
            n,
            device.alloc_array(matrix.row_offsets),
            device.alloc_array(matrix.columns),
            device.alloc_array(matrix.values),
            device.alloc_array(self.x),
            device.alloc(n * 4),
        ]
        launch_1d(device, kernel, n, 128, args)
        return device.read_array(args[-1], n, np.float32)


class MiniFEELL(_MiniFEBase):
    name = "miniFE"
    dataset = "ELL"

    def __init__(self, side: int = 24):
        super().__init__(side)
        self.ell_columns, self.ell_values, self.width = to_ell(self.matrix)

    def build_ir(self):
        return build_spmv_ell_ir()

    def _run(self, device, kernel) -> np.ndarray:
        n = self.matrix.num_rows
        args = [
            n, self.width,
            device.alloc_array(self.ell_columns),
            device.alloc_array(self.ell_values),
            device.alloc_array(self.x),
            device.alloc(n * 4),
        ]
        launch_1d(device, kernel, n, 128, args)
        return device.read_array(args[-1], n, np.float32)
