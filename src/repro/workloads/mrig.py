"""Parboil ``mri-gridding`` analog: scattered k-space sample gridding.

Each thread takes one irregularly-placed sample and deposits a weighted
contribution onto the 3×3 neighbourhood of grid cells around it with
atomics.  Sample positions are random, so neighbouring lanes update
unrelated cells — one of the memory-address-diverged applications of the
paper's Figure 7."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

GRID = 32
SCALE = 1024  # fixed-point weight scale for integer atomics


def build_mrig_ir():
    b = KernelBuilder("mrig", [
        ("nsamples", Type.U32), ("sx", PTR), ("sy", PTR), ("sval", PTR),
        ("grid_out", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("nsamples"))):
        x = b.load_s32(b.gep(b.param("sx"), i, 4))
        y = b.load_s32(b.gep(b.param("sy"), i, 4))
        value = b.load_s32(b.gep(b.param("sval"), i, 4))
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                cx = b.add(x, dx)
                cy = b.add(y, dy)
                in_bounds = b.pand(
                    b.pand(b.ge(cx, 0), b.lt(cx, GRID)),
                    b.pand(b.ge(cy, 0), b.lt(cy, GRID)))
                with b.if_(in_bounds):
                    weight = 3 - abs(dx) - abs(dy)  # 1..3 kernel weight
                    cell = b.mad(cy, GRID, cx)
                    b.atomic_add(b.gep(b.param("grid_out"), cell, 4),
                                 b.mul(value, weight), type_=Type.S32)
    return b.finish()


class MriGridding(Workload):
    name = "parboil/mri-gridding"

    def __init__(self, dataset: str = "default", nsamples: int = 512):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(111)
        self.sx = rng.integers(0, GRID, nsamples).astype(np.int32)
        self.sy = rng.integers(0, GRID, nsamples).astype(np.int32)
        self.sval = rng.integers(1, SCALE, nsamples).astype(np.int32)

    def build_ir(self):
        return build_mrig_ir()

    def _run(self, device, kernel) -> np.ndarray:
        n = len(self.sx)
        args = [
            n,
            device.alloc_array(self.sx),
            device.alloc_array(self.sy),
            device.alloc_array(self.sval),
            device.alloc(GRID * GRID * 4),
        ]
        launch_1d(device, kernel, n, 128, args)
        return device.read_array(args[-1], GRID * GRID, np.int32)

    def reference(self) -> np.ndarray:
        out = np.zeros(GRID * GRID, dtype=np.int64)
        for x, y, value in zip(self.sx, self.sy, self.sval):
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    cx, cy = int(x) + dx, int(y) + dy
                    if 0 <= cx < GRID and 0 <= cy < GRID:
                        out[cy * GRID + cx] += int(value) \
                            * (3 - abs(dx) - abs(dy))
        return (out & 0xFFFFFFFF).astype(np.uint32).view(np.int32) \
            .astype(np.int32)
