"""Rodinia ``srad`` analogs: speckle-reducing anisotropic diffusion.

Two implementations of the same computation, as in Rodinia:

* **v1** clamps neighbour indices with ``min``/``max`` selects —
  essentially branch-free (Table 1: 0.5 % dynamic divergence);
* **v2** handles each boundary with an explicit if/else chain — the same
  maths, far more divergent (Table 1: 21.3 %).

The paper uses the pair to show that branch behaviour varies across
implementations of one application."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

SIDE = 32
LAMBDA = 0.05


def _diffusion_update(b, center, north, south, west, east):
    laplacian = b.fsub(b.fadd(b.fadd(north, south), b.fadd(west, east)),
                       b.fmul(center, 4.0))
    return b.fma(laplacian, LAMBDA, center)


def build_srad_v1_ir():
    """Clamped-index variant (selects, no divergent branches)."""
    b = KernelBuilder("srad_v1", [
        ("n", Type.U32), ("src", PTR), ("dst", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        i_s = b.cvt(i, Type.S32)
        x = b.and_(i_s, SIDE - 1)
        y = b.shr(i_s, 5)
        xm = b.max_(b.sub(x, 1), 0)
        xp = b.min_(b.add(x, 1), SIDE - 1)
        ym = b.max_(b.sub(y, 1), 0)
        yp = b.min_(b.add(y, 1), SIDE - 1)
        center = b.load_f32(b.gep(b.param("src"), i_s, 4))
        north = b.load_f32(b.gep(b.param("src"), b.mad(ym, SIDE, x), 4))
        south = b.load_f32(b.gep(b.param("src"), b.mad(yp, SIDE, x), 4))
        west = b.load_f32(b.gep(b.param("src"), b.mad(y, SIDE, xm), 4))
        east = b.load_f32(b.gep(b.param("src"), b.mad(y, SIDE, xp), 4))
        b.store(b.gep(b.param("dst"), i_s, 4),
                _diffusion_update(b, center, north, south, west, east))
    return b.finish()


def build_srad_v2_ir():
    """If/else-chain variant (same maths, divergent boundaries)."""
    b = KernelBuilder("srad_v2", [
        ("n", Type.U32), ("src", PTR), ("dst", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        i_s = b.cvt(i, Type.S32)
        x = b.and_(i_s, SIDE - 1)
        y = b.shr(i_s, 5)
        center = b.load_f32(b.gep(b.param("src"), i_s, 4))

        def neighbor(off_var, edge_pred):
            value = b.var(0.0, Type.F32)
            branch = b.if_(edge_pred)
            with branch:
                b.assign(value, center)          # mirror at the edge
            with branch.else_():
                b.assign(value, b.load_f32(
                    b.gep(b.param("src"), off_var, 4)))
            return value

        north = neighbor(b.mad(b.sub(y, 1), SIDE, x), b.eq(y, 0))
        south = neighbor(b.mad(b.add(y, 1), SIDE, x), b.eq(y, SIDE - 1))
        west = neighbor(b.mad(y, SIDE, b.sub(x, 1)), b.eq(x, 0))
        east = neighbor(b.mad(y, SIDE, b.add(x, 1)), b.eq(x, SIDE - 1))
        b.store(b.gep(b.param("dst"), i_s, 4),
                _diffusion_update(b, center, north, south, west, east))
    return b.finish()


class _SradBase(Workload):
    def __init__(self, dataset: str = "default", iterations: int = 2):
        super().__init__()
        self.dataset = dataset
        self.iterations = iterations
        rng = np.random.default_rng(141)
        self.image = rng.random((SIDE, SIDE), dtype=np.float32)

    def _run(self, device, kernel) -> np.ndarray:
        n = SIDE * SIDE
        src = device.alloc_array(self.image)
        dst = device.alloc_array(self.image)
        for _ in range(self.iterations):
            launch_1d(device, kernel, n, 128, [n, src, dst])
            src, dst = dst, src
        return device.read_array(src, n, np.float32).reshape(SIDE, SIDE)

    def _clamped_reference(self, mirror_edges: bool) -> np.ndarray:
        image = self.image.copy()
        for _ in range(self.iterations):
            if mirror_edges:
                north = np.vstack([image[:1], image[:-1]])
                south = np.vstack([image[1:], image[-1:]])
                west = np.hstack([image[:, :1], image[:, :-1]])
                east = np.hstack([image[:, 1:], image[:, -1:]])
            else:
                north = image[np.maximum(np.arange(SIDE) - 1, 0)]
                south = image[np.minimum(np.arange(SIDE) + 1, SIDE - 1)]
                west = image[:, np.maximum(np.arange(SIDE) - 1, 0)]
                east = image[:, np.minimum(np.arange(SIDE) + 1, SIDE - 1)]
            laplacian = (north + south + west + east
                         - np.float32(4.0) * image)
            image = laplacian * np.float32(LAMBDA) + image
        return image

    def verify(self, output) -> bool:
        return bool(np.allclose(output, self.reference(),
                                rtol=1e-4, atol=1e-5))


class SradV1(_SradBase):
    name = "rodinia/srad_v1"

    def build_ir(self):
        return build_srad_v1_ir()

    def reference(self) -> np.ndarray:
        return self._clamped_reference(mirror_edges=False)


class SradV2(_SradBase):
    name = "rodinia/srad_v2"

    def build_ir(self):
        return build_srad_v2_ir()

    def reference(self) -> np.ndarray:
        return self._clamped_reference(mirror_edges=True)
