"""Parboil ``cutcp`` analog: cutoff-limited Coulombic potential.

Each thread owns one lattice point and sums charge/distance over all
atoms *within the cutoff radius* — the cutoff test inside the atom loop
is the data-dependent branch that gives cutcp its moderate divergence
and its sizable instrumentation overhead in Table 3."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

GRID = 16
CUTOFF2 = 1.5


def build_cutcp_ir():
    b = KernelBuilder("cutcp", [
        ("npoints", Type.U32), ("natoms", Type.S32),
        ("ax", PTR), ("ay", PTR), ("aq", PTR), ("potential", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("npoints"))):
        scale = 4.0 / GRID
        px = b.fmul(b.cvt(b.and_(i, GRID - 1), Type.F32), scale)
        py = b.fmul(b.cvt(b.shr(i, 4), Type.F32), scale)
        total = b.var(0.0, Type.F32)
        with b.for_range(0, b.param("natoms")) as a:
            ax = b.load_f32(b.gep(b.param("ax"), a, 4))
            ay = b.load_f32(b.gep(b.param("ay"), a, 4))
            dx = b.fsub(px, ax)
            dy = b.fsub(py, ay)
            dist2 = b.fma(dx, dx, b.fmul(dy, dy))
            with b.if_(b.lt(dist2, CUTOFF2)):
                charge = b.load_f32(b.gep(b.param("aq"), a, 4))
                inv = b.rcp(b.sqrt(b.fadd(dist2, 0.01)))
                b.assign(total, b.fma(charge, inv, total))
        b.store(b.gep(b.param("potential"), i, 4), total)
    return b.finish()


class Cutcp(Workload):
    name = "parboil/cutcp"

    def __init__(self, dataset: str = "default", natoms: int = 48):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(101)
        self.ax = (rng.random(natoms, dtype=np.float32) * 4.0) \
            .astype(np.float32)
        self.ay = (rng.random(natoms, dtype=np.float32) * 4.0) \
            .astype(np.float32)
        self.aq = rng.random(natoms, dtype=np.float32)

    def build_ir(self):
        return build_cutcp_ir()

    def _run(self, device, kernel) -> np.ndarray:
        npoints = GRID * GRID
        args = [
            npoints, len(self.ax),
            device.alloc_array(self.ax),
            device.alloc_array(self.ay),
            device.alloc_array(self.aq),
            device.alloc(npoints * 4),
        ]
        launch_1d(device, kernel, npoints, 64, args)
        return device.read_array(args[-1], npoints, np.float32)

    def reference(self) -> np.ndarray:
        scale = np.float32(4.0 / GRID)
        out = np.zeros(GRID * GRID, dtype=np.float32)
        for i in range(GRID * GRID):
            px = np.float32(i & (GRID - 1)) * scale
            py = np.float32(i >> 4) * scale
            total = np.float32(0.0)
            for a in range(len(self.ax)):
                dx = px - self.ax[a]
                dy = py - self.ay[a]
                dist2 = dx * dx + dy * dy
                if dist2 < np.float32(CUTOFF2):
                    total += self.aq[a] / np.sqrt(
                        dist2 + np.float32(0.01))
            out[i] = total
        return out

    def verify(self, output) -> bool:
        return bool(np.allclose(output, self.reference(),
                                rtol=1e-2, atol=1e-3))
