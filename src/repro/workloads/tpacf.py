"""Parboil ``tpacf`` analog: two-point angular correlation function.

Each thread takes one point and accumulates a histogram of angular
separations against every other point.  The bin search is a
data-dependent loop over bin edges — the paper reports tpacf among the
most divergent Parboil codes (25 % dynamic divergence), which this
per-pair bin-walk reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

NUM_BINS = 8


def build_tpacf_ir():
    b = KernelBuilder("tpacf", [
        ("n", Type.U32), ("xs", PTR), ("ys", PTR), ("zs", PTR),
        ("binb", PTR), ("hist", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("n"))):
        xi = b.load_f32(b.gep(b.param("xs"), i, 4))
        yi = b.load_f32(b.gep(b.param("ys"), i, 4))
        zi = b.load_f32(b.gep(b.param("zs"), i, 4))
        with b.for_range(0, b.cvt(b.param("n"), Type.S32)) as j:
            xj = b.load_f32(b.gep(b.param("xs"), j, 4))
            yj = b.load_f32(b.gep(b.param("ys"), j, 4))
            zj = b.load_f32(b.gep(b.param("zs"), j, 4))
            dot = b.fma(xi, xj, b.fma(yi, yj, b.fmul(zi, zj)))
            # data-dependent bin walk (the divergent part of tpacf)
            bin_index = b.var(0, Type.S32)
            with b.while_(lambda: b.lt(bin_index, NUM_BINS - 1)):
                edge = b.load_f32(b.gep(b.param("binb"), bin_index, 4))
                with b.if_(b.ge(dot, edge)):
                    b.break_()
                b.assign(bin_index, b.add(bin_index, 1))
            b.atomic_add(b.gep(b.param("hist"), bin_index, 4), 1)
    return b.finish()


class Tpacf(Workload):
    name = "parboil/tpacf"

    def __init__(self, dataset: str = "small", block: int = 64):
        super().__init__()
        self.dataset = dataset
        self.block = block
        num_points = {"small": 96, "medium": 160}[dataset]
        rng = np.random.default_rng(41)
        points = rng.normal(size=(num_points, 3)).astype(np.float32)
        points /= np.linalg.norm(points, axis=1, keepdims=True)
        self.points = points
        # descending bin edges over the dot-product range [-1, 1]
        self.binb = np.linspace(0.9, -0.9, NUM_BINS - 1).astype(np.float32)

    def build_ir(self):
        return build_tpacf_ir()

    def _run(self, device, kernel) -> np.ndarray:
        n = len(self.points)
        args = [
            n,
            device.alloc_array(np.ascontiguousarray(self.points[:, 0])),
            device.alloc_array(np.ascontiguousarray(self.points[:, 1])),
            device.alloc_array(np.ascontiguousarray(self.points[:, 2])),
            device.alloc_array(self.binb),
            device.alloc(NUM_BINS * 4),
        ]
        launch_1d(device, kernel, n, self.block, args)
        return device.read_array(args[-1], NUM_BINS, np.uint32)

    def reference(self) -> np.ndarray:
        dots = self.points @ self.points.T
        hist = np.zeros(NUM_BINS, dtype=np.uint32)
        for dot in dots.ravel():
            bin_index = 0
            while bin_index < NUM_BINS - 1:
                if dot >= self.binb[bin_index]:
                    break
                bin_index += 1
            hist[bin_index] += 1
        return hist
