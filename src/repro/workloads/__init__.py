"""Workload analogs of the paper's benchmarks (Parboil v2.5, Rodinia
v2.3, NERSC miniFE), written in the KernelBuilder DSL with synthetic
datasets.

Use :func:`repro.workloads.registry.make` to instantiate by name::

    from repro.workloads import make
    workload = make("parboil/bfs(NY)")
    kernel = ptxas(workload.build_ir())
    output = workload.execute(device, kernel)
    assert workload.verify(output)

The per-table benchmark lists (``TABLE1_BENCHMARKS`` etc.) drive the
studies and benchmarks.
"""

from repro.workloads.base import ExecutionTrace, Workload, launch_1d
from repro.workloads.registry import (
    FIGURE7_BENCHMARKS,
    FIGURE10_BENCHMARKS,
    TABLE1_BENCHMARKS,
    TABLE2_BENCHMARKS,
    TABLE3_BENCHMARKS,
    WORKLOADS,
    all_names,
    make,
)

__all__ = [
    "ExecutionTrace",
    "Workload",
    "launch_1d",
    "FIGURE7_BENCHMARKS",
    "FIGURE10_BENCHMARKS",
    "TABLE1_BENCHMARKS",
    "TABLE2_BENCHMARKS",
    "TABLE3_BENCHMARKS",
    "WORKLOADS",
    "all_names",
    "make",
]
