"""Rodinia ``nw`` analog: Needleman-Wunsch sequence alignment.

The score matrix is filled anti-diagonal by anti-diagonal (one launch
per diagonal, as Rodinia does); each thread computes one cell from its
three predecessors with a max-of-three — short launches, mild
divergence from the diagonal-length bounds test."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

N = 48
PENALTY = 2


def build_nw_ir():
    b = KernelBuilder("nw", [
        ("diag", Type.S32), ("n", Type.S32), ("scores", PTR),
        ("similarity", PTR),
    ])
    t = b.cvt(b.global_index_x(), Type.S32)
    n, diag = b.param("n"), b.param("diag")
    # cells on this anti-diagonal: row = t+1 .. , col = diag - row
    row = b.add(t, 1)
    col = b.sub(diag, row)
    valid = b.pand(b.pand(b.ge(row, 1), b.le(row, n)),
                   b.pand(b.ge(col, 1), b.le(col, n)))
    with b.if_(valid):
        pitch = b.add(n, 1)
        index = b.mad(row, pitch, col)
        northwest = b.load_s32(b.gep(b.param("scores"),
                                     b.sub(b.sub(index, pitch), 1), 4))
        north = b.load_s32(b.gep(b.param("scores"),
                                 b.sub(index, pitch), 4))
        west = b.load_s32(b.gep(b.param("scores"), b.sub(index, 1), 4))
        match = b.load_s32(b.gep(b.param("similarity"), index, 4))
        best = b.max_(b.add(northwest, match),
                      b.max_(b.sub(north, PENALTY),
                             b.sub(west, PENALTY)))
        b.store(b.gep(b.param("scores"), index, 4), best)
    return b.finish()


class NeedlemanWunsch(Workload):
    name = "rodinia/nw"

    def __init__(self, dataset: str = "default"):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(221)
        self.similarity = rng.integers(-3, 4,
                                       (N + 1, N + 1)).astype(np.int32)

    def build_ir(self):
        return build_nw_ir()

    def _initial_scores(self) -> np.ndarray:
        scores = np.zeros((N + 1, N + 1), dtype=np.int32)
        scores[0, :] = -PENALTY * np.arange(N + 1)
        scores[:, 0] = -PENALTY * np.arange(N + 1)
        return scores

    def _run(self, device, kernel) -> np.ndarray:
        scores_ptr = device.alloc_array(self._initial_scores())
        sim_ptr = device.alloc_array(self.similarity)
        for diag in range(2, 2 * N + 1):
            launch_1d(device, kernel, N, 64,
                      [diag, N, scores_ptr, sim_ptr])
        return device.read_array(scores_ptr, (N + 1) * (N + 1),
                                 np.int32).reshape(N + 1, N + 1)

    def reference(self) -> np.ndarray:
        scores = self._initial_scores().astype(np.int64)
        for row in range(1, N + 1):
            for col in range(1, N + 1):
                scores[row, col] = max(
                    scores[row - 1, col - 1]
                    + self.similarity[row, col],
                    scores[row - 1, col] - PENALTY,
                    scores[row, col - 1] - PENALTY)
        return scores.astype(np.int32)
