"""Rodinia ``lud`` analog: LU decomposition (right-looking updates).

The host iterates pivots; each launch scales the pivot column and
updates the trailing submatrix — shrinking bounds tests give mild
divergence, and the many tiny launches mirror Rodinia's profile."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

N = 16


def build_lud_ir():
    b = KernelBuilder("lud_update", [
        ("n", Type.S32), ("k", Type.S32), ("a", PTR),
    ])
    t = b.cvt(b.global_index_x(), Type.S32)
    n, k = b.param("n"), b.param("k")
    remaining = b.sub(b.sub(n, k), 1)
    row = b.add(b.add(t, k), 1)
    with b.if_(b.lt(t, remaining)):
        pivot = b.load_f32(b.gep(b.param("a"), b.mad(k, n, k), 4))
        below = b.load_f32(b.gep(b.param("a"), b.mad(row, n, k), 4))
        factor = b.fdiv(below, pivot)
        b.store(b.gep(b.param("a"), b.mad(row, n, k), 4), factor)
        with b.for_range(b.add(k, 1), n) as col:
            upper = b.load_f32(b.gep(b.param("a"), b.mad(k, n, col), 4))
            current = b.load_f32(b.gep(b.param("a"),
                                       b.mad(row, n, col), 4))
            b.store(b.gep(b.param("a"), b.mad(row, n, col), 4),
                    b.fsub(current, b.fmul(factor, upper)))
    return b.finish()


class Lud(Workload):
    name = "rodinia/lud"

    def __init__(self, dataset: str = "default"):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(231)
        matrix = rng.random((N, N), dtype=np.float32)
        matrix += N * np.eye(N, dtype=np.float32)
        self.matrix = matrix

    def build_ir(self):
        return build_lud_ir()

    def _run(self, device, kernel) -> np.ndarray:
        a = device.alloc_array(self.matrix)
        for k in range(N - 1):
            launch_1d(device, kernel, N, 64, [N, k, a])
        return device.read_array(a, N * N, np.float32).reshape(N, N)

    def reference(self) -> np.ndarray:
        a = self.matrix.astype(np.float32).copy()
        for k in range(N - 1):
            for row in range(k + 1, N):
                factor = np.float32(a[row, k] / a[k, k])
                a[row, k] = factor
                for col in range(k + 1, N):
                    a[row, col] = np.float32(
                        a[row, col] - factor * a[k, col])
        return a

    def verify(self, output) -> bool:
        return bool(np.allclose(output, self.reference(),
                                rtol=1e-2, atol=1e-3))
