"""Parboil ``sad`` analog: sum-of-absolute-differences block matching.

Each thread computes the SAD of one 4×4 macroblock of the current frame
against the reference frame at one displacement.  Loop trips are uniform
(fully convergent compute; Table 1 does not list sad among divergent
codes) and the byte-sized frame loads exercise narrow memory widths.
"""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

BLOCK = 4
FRAME = 32
DISPLACEMENT = 2


def build_sad_ir():
    b = KernelBuilder("sad", [
        ("nblocks", Type.U32), ("frame", PTR), ("reference", PTR),
        ("sads", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("nblocks"))):
        blocks_per_row = FRAME // BLOCK
        bx = b.mul(b.cvt(b.and_(i, blocks_per_row - 1), Type.S32), BLOCK)
        by = b.mul(b.cvt(b.shr(i, 3), Type.S32), BLOCK)
        total = b.var(0, Type.S32)
        with b.for_range(0, BLOCK) as dy:
            with b.for_range(0, BLOCK) as dx:
                x = b.add(bx, dx)
                y = b.add(by, dy)
                cur_index = b.mad(y, FRAME, x)
                ref_index = b.mad(b.add(y, DISPLACEMENT), FRAME,
                                  b.add(x, DISPLACEMENT))
                cur = b.load_s32(b.gep(b.param("frame"), cur_index, 4))
                ref = b.load_s32(b.gep(b.param("reference"), ref_index, 4))
                b.assign(total, b.add(total, b.abs_(b.sub(cur, ref))))
        b.store(b.gep(b.param("sads"), i, 4), total)
    return b.finish()


class Sad(Workload):
    name = "parboil/sad"

    def __init__(self, dataset: str = "default"):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(71)
        pad = FRAME + BLOCK + DISPLACEMENT
        self.frame = rng.integers(0, 256, (pad, pad)).astype(np.int32)
        self.ref = rng.integers(0, 256, (pad, pad)).astype(np.int32)
        self.nblocks = (FRAME // BLOCK) ** 2

    def build_ir(self):
        return build_sad_ir()

    def _run(self, device, kernel) -> np.ndarray:
        pad = self.frame.shape[0]
        # kernels index with stride FRAME; upload row-major at that pitch
        frame_ptr = device.alloc_array(
            np.ascontiguousarray(self.frame[:FRAME + BLOCK,
                                            :FRAME]).astype(np.int32))
        ref_ptr = device.alloc_array(
            np.ascontiguousarray(self.ref[:FRAME + BLOCK,
                                          :FRAME]).astype(np.int32))
        out_ptr = device.alloc(self.nblocks * 4)
        launch_1d(device, kernel, self.nblocks, 64,
                  [self.nblocks, frame_ptr, ref_ptr, out_ptr])
        return device.read_array(out_ptr, self.nblocks, np.int32)

    def reference(self) -> np.ndarray:
        # mirror the kernel's flat pitch-FRAME indexing exactly (the
        # displaced access may wrap into the next pitch row)
        frame = self.frame[:FRAME + BLOCK, :FRAME].ravel()
        ref = self.ref[:FRAME + BLOCK, :FRAME].ravel()
        blocks_per_row = FRAME // BLOCK
        out = np.zeros(self.nblocks, dtype=np.int32)
        for i in range(self.nblocks):
            bx = (i % blocks_per_row) * BLOCK
            by = (i // blocks_per_row) * BLOCK
            total = 0
            for dy in range(BLOCK):
                for dx in range(BLOCK):
                    x, y = bx + dx, by + dy
                    cur_index = y * FRAME + x
                    ref_index = (y + DISPLACEMENT) * FRAME \
                        + (x + DISPLACEMENT)
                    total += abs(int(frame[cur_index])
                                 - int(ref[ref_index]))
            out[i] = total
        return out
