"""Parboil ``stencil`` analog: iterative 5-point Jacobi stencil.

Interior threads are fully convergent; only the boundary test diverges
(once per warp row).  Ping-pong buffers across host-driven iterations.
"""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.sim import Dim3
from repro.workloads.base import Workload


def build_stencil_ir():
    b = KernelBuilder("stencil", [
        ("nx", Type.S32), ("ny", Type.S32), ("src", PTR), ("dst", PTR),
    ])
    x = b.cvt(b.mad(b.ctaid_x(), b.ntid_x(), b.tid_x()), Type.S32)
    y = b.cvt(b.mad(b.ctaid_y(), b.ntid_y(), b.tid_y()), Type.S32)
    nx, ny = b.param("nx"), b.param("ny")
    interior = b.pand(
        b.pand(b.gt(x, 0), b.lt(x, b.sub(nx, 1))),
        b.pand(b.gt(y, 0), b.lt(y, b.sub(ny, 1))))
    with b.if_(interior):
        index = b.mad(y, nx, x)
        center = b.load_f32(b.gep(b.param("src"), index, 4))
        north = b.load_f32(b.gep(b.param("src"), b.sub(index, nx), 4))
        south = b.load_f32(b.gep(b.param("src"), b.add(index, nx), 4))
        west = b.load_f32(b.gep(b.param("src"), b.sub(index, 1), 4))
        east = b.load_f32(b.gep(b.param("src"), b.add(index, 1), 4))
        total = b.fadd(b.fadd(north, south), b.fadd(west, east))
        result = b.fma(center, -4.0, total)
        b.store(b.gep(b.param("dst"), index, 4),
                b.fma(result, 0.2, center))
    return b.finish()


class Stencil(Workload):
    name = "parboil/stencil"

    def __init__(self, dataset: str = "default", size: int = 48,
                 iterations: int = 2):
        super().__init__()
        self.dataset = dataset
        self.size = size
        self.iterations = iterations
        rng = np.random.default_rng(51)
        self.grid0 = rng.random((size, size), dtype=np.float32)

    def build_ir(self):
        return build_stencil_ir()

    def _run(self, device, kernel) -> np.ndarray:
        size = self.size
        src = device.alloc_array(self.grid0)
        dst = device.alloc_array(self.grid0)
        blocks = Dim3((size + 7) // 8, (size + 7) // 8)
        threads = Dim3(8, 8)
        for _ in range(self.iterations):
            device.launch(kernel, blocks, threads, [size, size, src, dst])
            src, dst = dst, src
        return device.read_array(src, size * size,
                                 np.float32).reshape(size, size)

    def reference(self) -> np.ndarray:
        grid = self.grid0.astype(np.float32).copy()
        for _ in range(self.iterations):
            new = grid.copy()
            lap = (grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2]
                   + grid[1:-1, 2:] + np.float32(-4.0) * grid[1:-1, 1:-1])
            new[1:-1, 1:-1] = lap * np.float32(0.2) + grid[1:-1, 1:-1]
            grid = new
        return grid

    def verify(self, output) -> bool:
        return bool(np.allclose(output, self.reference(),
                                rtol=1e-4, atol=1e-5))
