"""Rodinia ``streamcluster`` analog: point-to-center distance kernel.

Each thread computes the squared Euclidean distance between one point
and every cluster center over a fixed dimension count.  All loop bounds
are uniform and there is no boundary test (the launch exactly covers the
points), so the kernel is *fully convergent* — the paper's Table 1
reports 0 divergent branches, which the studies check."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

DIMS = 8
NUM_POINTS = 512     # multiple of the block size: no bounds test
NUM_CENTERS = 4


def build_streamcluster_ir():
    b = KernelBuilder("streamcluster", [
        ("points", PTR), ("centers", PTR), ("distances", PTR),
    ])
    i = b.cvt(b.global_index_x(), Type.S32)
    with b.for_range(0, NUM_CENTERS) as c:
        total = b.var(0.0, Type.F32)
        with b.for_range(0, DIMS) as d:
            p = b.load_f32(b.gep(b.param("points"),
                                 b.mad(i, DIMS, d), 4))
            q = b.load_f32(b.gep(b.param("centers"),
                                 b.mad(c, DIMS, d), 4))
            diff = b.fsub(p, q)
            b.assign(total, b.fma(diff, diff, total))
        b.store(b.gep(b.param("distances"),
                      b.mad(i, NUM_CENTERS, c), 4), total)
    return b.finish()


class StreamCluster(Workload):
    name = "rodinia/streamcluster"

    def __init__(self, dataset: str = "default"):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(151)
        self.points = rng.random((NUM_POINTS, DIMS), dtype=np.float32)
        self.centers = rng.random((NUM_CENTERS, DIMS), dtype=np.float32)

    def build_ir(self):
        return build_streamcluster_ir()

    def _run(self, device, kernel) -> np.ndarray:
        args = [
            device.alloc_array(self.points),
            device.alloc_array(self.centers),
            device.alloc(NUM_POINTS * NUM_CENTERS * 4),
        ]
        launch_1d(device, kernel, NUM_POINTS, 128, args)
        return device.read_array(args[-1], NUM_POINTS * NUM_CENTERS,
                                 np.float32)

    def reference(self) -> np.ndarray:
        diff = self.points[:, None, :] - self.centers[None, :, :]
        return (diff * diff).sum(axis=2).astype(np.float32).ravel()

    def verify(self, output) -> bool:
        return bool(np.allclose(output, self.reference(),
                                rtol=1e-4, atol=1e-5))
