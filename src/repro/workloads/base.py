"""Workload protocol shared by all Parboil/Rodinia/miniFE analogs.

A workload packages: a kernel (built with :class:`KernelBuilder`), input
generation (deterministic per seed), the launch recipe (possibly
iterative, e.g. BFS levels), and a reference computation for
verification.  ``execute`` is the whole "application run" the case
studies instrument and the error-injection campaign replays.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.kernelir.ir import KernelIR
from repro.sim import Device, Dim3
from repro.sim.executor import KernelStats


@dataclass
class ExecutionTrace:
    """Aggregate statistics over the launches of one application run."""

    launches: List[KernelStats] = field(default_factory=list)

    @property
    def kernel_launches(self) -> int:
        return len(self.launches)

    def total(self, attr: str) -> int:
        return sum(getattr(s, attr) for s in self.launches)

    @property
    def cycles(self) -> int:
        return self.total("cycles")

    @property
    def warp_instructions(self) -> int:
        return self.total("warp_instructions")


class Workload(abc.ABC):
    """One benchmark application."""

    #: short name, e.g. ``"parboil/bfs"``
    name: str = "workload"
    #: dataset tag, e.g. ``"1M"`` / ``"NY"`` (paper datasets are scaled)
    dataset: str = "default"

    def __init__(self):
        self.last_trace: Optional[ExecutionTrace] = None

    @abc.abstractmethod
    def build_ir(self) -> KernelIR:
        """The kernel, built fresh (safe to compile per device)."""

    @abc.abstractmethod
    def _run(self, device: Device, kernel) -> np.ndarray:
        """Allocate inputs, launch (possibly repeatedly), return the
        primary output array."""

    def execute(self, device: Device, kernel) -> np.ndarray:
        """Run the full application; collects per-launch statistics
        into ``self.last_trace``."""
        trace = ExecutionTrace()
        device.on_kernel_exit(lambda _d, _k, stats: trace.launches.append(stats))
        try:
            output = self._run(device, kernel)
        finally:
            self.last_trace = trace
        return output

    def reference(self) -> Optional[np.ndarray]:
        """The host-side reference output (None if not practical)."""
        return None

    def verify(self, output: np.ndarray) -> bool:
        expected = self.reference()
        if expected is None:
            return True
        if output.dtype.kind == "f":
            return bool(np.allclose(output, expected,
                                    rtol=1e-4, atol=1e-4))
        return bool((output == expected).all())

    @property
    def full_name(self) -> str:
        return f"{self.name}({self.dataset})"


def launch_1d(device: Device, kernel, total_threads: int, block: int,
              args, shared_bytes: int = 0) -> KernelStats:
    """Convenience 1-D launch covering *total_threads*."""
    grid = Dim3((total_threads + block - 1) // block)
    return device.launch(kernel, grid, Dim3(block), args,
                         shared_bytes=shared_bytes)
