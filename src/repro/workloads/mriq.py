"""Parboil ``mri-q`` analog: MRI Q-matrix computation.

Each thread owns one voxel and accumulates ``cos``/``sin`` phase terms
over all k-space samples — a fully convergent, MUFU-heavy inner loop
(the paper reports high value-profiling overhead for mri-q because
every instruction writes registers)."""

from __future__ import annotations

import numpy as np

from repro.kernelir import KernelBuilder, Type
from repro.kernelir.types import PTR
from repro.workloads.base import Workload, launch_1d

PI2 = float(2.0 * np.pi)


def build_mriq_ir():
    b = KernelBuilder("mriq", [
        ("nvoxels", Type.U32), ("nsamples", Type.S32),
        ("x", PTR), ("kx", PTR), ("phi", PTR), ("qr", PTR), ("qi", PTR),
    ])
    i = b.global_index_x()
    with b.if_(b.lt(i, b.param("nvoxels"))):
        xi = b.load_f32(b.gep(b.param("x"), i, 4))
        real = b.var(0.0, Type.F32)
        imag = b.var(0.0, Type.F32)
        with b.for_range(0, b.param("nsamples")) as k:
            kx = b.load_f32(b.gep(b.param("kx"), k, 4))
            magnitude = b.load_f32(b.gep(b.param("phi"), k, 4))
            angle = b.fmul(b.fmul(kx, xi), PI2)
            b.assign(real, b.fma(magnitude, b.cos(angle), real))
            b.assign(imag, b.fma(magnitude, b.sin(angle), imag))
        b.store(b.gep(b.param("qr"), i, 4), real)
        b.store(b.gep(b.param("qi"), i, 4), imag)
    return b.finish()


class MriQ(Workload):
    name = "parboil/mri-q"

    def __init__(self, dataset: str = "default", nvoxels: int = 256,
                 nsamples: int = 32):
        super().__init__()
        self.dataset = dataset
        rng = np.random.default_rng(81)
        self.x = rng.random(nvoxels, dtype=np.float32)
        self.kx = rng.random(nsamples, dtype=np.float32)
        self.phi = rng.random(nsamples, dtype=np.float32)

    def build_ir(self):
        return build_mriq_ir()

    def _run(self, device, kernel) -> np.ndarray:
        nvoxels, nsamples = len(self.x), len(self.kx)
        args = [
            nvoxels, nsamples,
            device.alloc_array(self.x),
            device.alloc_array(self.kx),
            device.alloc_array(self.phi),
            device.alloc(nvoxels * 4),
            device.alloc(nvoxels * 4),
        ]
        launch_1d(device, kernel, nvoxels, 64, args)
        real = device.read_array(args[-2], nvoxels, np.float32)
        imag = device.read_array(args[-1], nvoxels, np.float32)
        return np.stack([real, imag])

    def reference(self) -> np.ndarray:
        angles = PI2 * np.outer(self.x, self.kx)
        real = (self.phi * np.cos(angles)).sum(axis=1)
        imag = (self.phi * np.sin(angles)).sum(axis=1)
        return np.stack([real, imag]).astype(np.float32)

    def verify(self, output) -> bool:
        return bool(np.allclose(output, self.reference(),
                                rtol=1e-2, atol=1e-3))
