"""Content-addressed compile cache.

A cache entry is keyed on what actually determines the compiled SASS:

* the kernel IR's canonical text (``emit_ptx`` — the same serialization
  the CLI round-trips through), hashed with SHA-256;
* the :class:`~repro.sassi.spec.InstrumentationSpec` (every field that
  changes injected code);
* the :class:`~repro.backend.compiler.CompileOptions` knobs;
* for instrumented kernels, the load address and handler trampoline
  addresses baked into the injected parameter stores.

Because the key is content-addressed, invalidation is automatic: any
change to the kernel, the spec, or the options produces a different
fingerprint and misses.  The cache is in-memory per process by default;
set a directory (or the ``REPRO_CACHE_DIR`` environment variable) to
persist entries on disk and share them across processes and runs.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.backend.compiler import CompileOptions, ptxas
from repro.isa.program import SassKernel
from repro.kernelir.ir import KernelIR
from repro.kernelir.ptxtext import emit_ptx
from repro.sassi.inject import InjectionReport
from repro.sassi.spec import InstrumentationSpec
from repro.telemetry.collector import TELEMETRY, span as telemetry_span

#: Environment variable naming the shared on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def ir_fingerprint(kernel_ir: KernelIR) -> str:
    """SHA-256 of the kernel's canonical PTX-like text."""
    return hashlib.sha256(emit_ptx(kernel_ir).encode()).hexdigest()


def spec_fingerprint(spec: Optional[InstrumentationSpec]) -> str:
    """Canonical string covering every field that shapes injected code."""
    if spec is None:
        return "spec=none"
    return "|".join([
        "before=" + ",".join(sorted(c.value for c in spec.before)),
        "after=" + ",".join(sorted(c.value for c in spec.after)),
        "what=" + ",".join(sorted(w.value for w in spec.what)),
        f"bh={spec.before_handler}",
        f"ah={spec.after_handler}",
        f"wb={int(spec.writeback_registers)}",
        f"srs={int(spec.skip_redundant_spills)}",
        f"cap={spec.handler_register_cap}",
    ])


def options_fingerprint(options: Optional[CompileOptions]) -> str:
    if options is None:
        return "opts=default"
    return f"peephole={int(options.peephole)}"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0


@dataclass
class CompileCache:
    """In-memory (and optionally on-disk) kernel cache.

    Values are ``(SassKernel, Optional[InjectionReport])`` pairs.  Disk
    entries are pickles named by their key hash; corrupt or unreadable
    files are treated as misses, never as errors.
    """

    directory: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)
    _mem: Dict[str, Tuple[SassKernel, Optional[InjectionReport]]] = \
        field(default_factory=dict)

    def _path(self, key: str) -> Optional[str]:
        if not self.directory:
            return None
        digest = hashlib.sha256(key.encode()).hexdigest()
        return os.path.join(self.directory, f"{digest}.pkl")

    def lookup(self, key: str
               ) -> Optional[Tuple[SassKernel, Optional[InjectionReport]]]:
        entry = self._mem.get(key)
        if entry is not None:
            self.stats.hits += 1
            if TELEMETRY.enabled:
                TELEMETRY.incr("compile_cache.hits")
            return entry
        path = self._path(key)
        if path is not None and os.path.exists(path):
            try:
                with open(path, "rb") as handle:
                    entry = pickle.load(handle)
            except Exception:
                entry = None
            if entry is not None:
                self._mem[key] = entry
                self.stats.hits += 1
                if TELEMETRY.enabled:
                    TELEMETRY.incr("compile_cache.hits")
                    TELEMETRY.incr("compile_cache.disk_hits")
                return entry
        self.stats.misses += 1
        if TELEMETRY.enabled:
            TELEMETRY.incr("compile_cache.misses")
        return None

    def store(self, key: str, kernel: SassKernel,
              report: Optional[InjectionReport] = None) -> None:
        # never persist executor decode state attached to the instance
        kernel.__dict__.pop("_decoded", None)
        self._mem[key] = (kernel, report)
        path = self._path(key)
        if path is None:
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        except OSError:
            return  # disk layer is best-effort
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump((kernel, report), handle)
            os.replace(tmp, path)
        except OSError:
            # interrupted write: drop the temp file; readers never see a
            # partial entry because only os.replace publishes it
            try:
                os.remove(tmp)
            except OSError:
                pass

    def clear(self) -> None:
        self._mem.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._mem)


_GLOBAL: Optional[CompileCache] = None


def get_cache() -> CompileCache:
    """The process-wide cache (created on first use).

    Honors ``REPRO_CACHE_DIR`` for disk persistence.  Forked campaign
    workers inherit the parent's warm in-memory entries for free.
    """
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = CompileCache(directory=os.environ.get(CACHE_DIR_ENV))
    return _GLOBAL


def reset_cache() -> None:
    """Drop the process-wide cache (tests)."""
    global _GLOBAL
    _GLOBAL = None


def cached_ptxas(kernel_ir: KernelIR,
                 options: Optional[CompileOptions] = None,
                 cache: Optional[CompileCache] = None) -> SassKernel:
    """:func:`repro.backend.ptxas` with content-addressed memoization.

    Kernels compiled with a ``final_pass`` are not cacheable here (the
    pass is an opaque callable); use :func:`cached_sassi_compile` for
    the SASSI final pass, which has a fingerprintable spec.
    """
    if options is not None and options.final_pass is not None:
        return ptxas(kernel_ir, options)
    cache = cache if cache is not None else get_cache()
    key = "|".join(["ptxas", ir_fingerprint(kernel_ir),
                    options_fingerprint(options)])
    entry = cache.lookup(key)
    if entry is not None:
        return entry[0]
    with telemetry_span("compile", kernel=kernel_ir.name):
        kernel = ptxas(kernel_ir, options)
    cache.store(key, kernel)
    return kernel


def cached_sassi_compile(runtime, kernel_ir: KernelIR,
                         spec: InstrumentationSpec,
                         cache: Optional[CompileCache] = None) -> SassKernel:
    """Instrumented compile through *runtime*, memoized.

    The injected code embeds the kernel's load address and the handler
    trampoline addresses, so those join the key: a cached kernel is
    reused only on a device whose "linker" assigned the same layout
    (always true for the fresh-device-per-trial pattern campaigns use).
    On a hit the runtime still records the injection report, keeping
    ``runtime.reports`` identical to an uncached run.
    """
    cache = cache if cache is not None else get_cache()
    program = runtime.device.program
    fn_addr = program.preassign_base(kernel_ir.name)
    before_addr = program.add_handler_symbol(spec.before_handler) \
        if spec.before else 0
    after_addr = program.add_handler_symbol(spec.after_handler) \
        if spec.after else 0
    key = "|".join(["sassi", ir_fingerprint(kernel_ir),
                    spec_fingerprint(spec),
                    f"fn={fn_addr:#x}",
                    f"before={before_addr:#x}",
                    f"after={after_addr:#x}"])
    entry = cache.lookup(key)
    if entry is not None:
        kernel, report = entry
        runtime.adopt_cached_compile(spec, report)
        return kernel
    kernel = runtime.compile(kernel_ir, spec)
    cache.store(key, kernel, runtime.reports[-1])
    return kernel


def cache_counter_totals() -> Tuple[int, int]:
    """(hits, misses) of the process-wide cache — convenience for the
    telemetry summary and tests."""
    cache = get_cache()
    return cache.stats.hits, cache.stats.misses
