"""Deterministic parallel campaign engine.

Design rules that keep ``jobs=N`` bit-identical to serial runs:

* a task is a pure function of its (picklable) task tuple — no shared
  mutable state crosses the process boundary;
* results are collected **in task order** (``ProcessPoolExecutor.map``),
  so merging is independent of completion order;
* every trial derives its own RNG from ``(campaign_seed, trial_index)``
  via :func:`trial_rng`; a campaign never threads one mutable RNG
  through its trial loop.

Workers are ordinary processes importing :mod:`repro`; task functions
must therefore be module-level (picklable by qualified name).
"""

from __future__ import annotations

import importlib
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.executor import KernelStats
from repro.telemetry.collector import TELEMETRY, Snapshot

#: Environment override for :func:`default_jobs` (clamped to >= 1) —
#: lets server worker pools and CI size themselves without code changes.
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count when the caller asks for "all cores".

    Honors the ``REPRO_JOBS`` environment variable when it parses as an
    integer (clamped to at least 1); malformed values are ignored and
    the CPU count is used instead.
    """
    raw = os.environ.get(JOBS_ENV)
    if raw is not None:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


class TaskError(RuntimeError):
    """A campaign task failed in a worker.

    ``task_index`` names the first task of the failure (exact for an
    ordinary exception; the start of the dispatched chunk when the
    worker process died and took its chunk's attribution with it).
    """

    def __init__(self, message: str, task_index: int = -1):
        super().__init__(message)
        self.task_index = task_index

    def __reduce__(self):
        return (TaskError, (self.args[0], self.task_index))


def _run_chunk(fn: Callable[[Any], Any], start: int,
               chunk: List[Any]) -> List[Any]:
    """Worker side: run one contiguous chunk, attributing any failure
    to the exact task index."""
    out = []
    for offset, task in enumerate(chunk):
        try:
            out.append(fn(task))
        except Exception as exc:
            raise TaskError(
                f"campaign task {start + offset} failed: {exc!r}",
                start + offset) from exc
    return out


@contextmanager
def task_pool(jobs: Optional[int] = None):
    """A reusable worker pool for back-to-back :func:`run_tasks` calls.

    Pool startup (process spawn + interpreter import) dominates short
    parallel phases; callers issuing several task batches — the replay
    benchmark, a server shard draining sharded replays — open one pool
    and pass it to each ``run_tasks(..., pool=...)`` call instead of
    paying that cost per batch.
    """
    pool = ProcessPoolExecutor(
        max_workers=default_jobs() if jobs is None else max(1, jobs))
    try:
        yield pool
    finally:
        pool.shutdown()


def run_tasks(fn: Callable[[Any], Any], tasks: Iterable[Any],
              jobs: int = 1, chunksize: int = 1,
              pool: Optional[ProcessPoolExecutor] = None) -> List[Any]:
    """Map *fn* over *tasks*, serially or across worker processes.

    Results are returned in task order regardless of completion order,
    which is what makes parallel campaign merges deterministic.  *fn*
    must be a module-level function and each task must be picklable
    when ``jobs > 1``.

    A *pool* from :func:`task_pool` is used instead of a private one
    (and left running afterwards); *jobs* is ignored in that case —
    the pool's worker count governs.

    Failure semantics (``jobs > 1``): a task raising re-raises here as
    :class:`TaskError` naming the failing task index; a worker process
    dying (or a ``KeyboardInterrupt``) cancels every pending future and
    shuts the pool down without waiting, so a crashed campaign never
    hangs its caller.
    """
    tasks = list(tasks)
    if len(tasks) <= 1 or (pool is None and jobs <= 1):
        return [fn(task) for task in tasks]
    telemetry_on = TELEMETRY.enabled
    # each task returns (result, telemetry delta); merging in task
    # order keeps counter totals identical to a serial run
    wrapped = _TelemetryTask(fn) if telemetry_on else fn
    chunks = [(start, tasks[start:start + chunksize])
              for start in range(0, len(tasks), max(1, chunksize))]
    owns_pool = pool is None
    if owns_pool:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(tasks)))
    futures = [pool.submit(_run_chunk, wrapped, start, chunk)
               for start, chunk in chunks]
    collected: List[Any] = []
    start, chunk = 0, tasks[:1]
    try:
        for (start, chunk), future in zip(chunks, futures):
            collected.extend(future.result())
    except BaseException as exc:
        for future in futures:
            future.cancel()
        if owns_pool or isinstance(exc, BrokenProcessPool):
            pool.shutdown(wait=False, cancel_futures=True)
        if isinstance(exc, (TaskError, KeyboardInterrupt)):
            raise
        end = start + len(chunk) - 1
        detail = (f"campaign tasks {start}..{end}: worker pool failure"
                  if isinstance(exc, BrokenProcessPool)
                  else f"campaign tasks {start}..{end} failed")
        raise TaskError(f"{detail}: {exc!r}", start) from exc
    if owns_pool:
        pool.shutdown()
    if not telemetry_on:
        return collected
    results = []
    for result, snapshot in collected:
        TELEMETRY.merge_snapshot(snapshot)
        results.append(result)
    return results


class _TelemetryTask:
    """Picklable wrapper shipping each task's telemetry delta home.

    The worker may have inherited (via fork) or not inherited (via
    spawn) the parent's telemetry state; capturing a mark before the
    task and returning only the delta makes both correct.
    """

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def __call__(self, task: Any) -> Tuple[Any, Snapshot]:
        TELEMETRY.enable()
        mark = TELEMETRY.mark()
        result = self.fn(task)
        return result, TELEMETRY.delta_since(mark)


def _invoke(task: Tuple[str, str, tuple, dict]) -> Any:
    """Worker trampoline: import ``module`` and call ``fn(*args, **kw)``."""
    module_name, fn_name, args, kwargs = task
    module = importlib.import_module(module_name)
    return getattr(module, fn_name)(*args, **kwargs)


def map_workloads(module: str, fn: str, names: Sequence[str],
                  jobs: int = 1, **kwargs) -> List[Any]:
    """Run ``module.fn(name, **kwargs)`` for each workload name.

    The study drivers use this to fan their per-benchmark profiling
    loops out across processes; with ``jobs=1`` it degrades to the
    original serial loop (same call order, same results).
    """
    tasks = [(module, fn, (name,), dict(kwargs)) for name in names]
    return run_tasks(_invoke, tasks, jobs=jobs)


def trial_rng(campaign_seed: int, trial_index: int) -> np.random.Generator:
    """The RNG for one trial of a campaign.

    Seeded from ``(campaign_seed, trial_index)`` through numpy's
    ``SeedSequence``, so trial *k* draws the same stream whether it runs
    serially after trial *k-1*, in a worker process, or completely in
    isolation — the reproducibility contract the error-injection
    campaign (and any future campaign) relies on.
    """
    return np.random.default_rng([int(campaign_seed), int(trial_index)])


def merge_kernel_stats(parts: Sequence[KernelStats],
                       kernel: str = "") -> KernelStats:
    """Order-independent reduction of per-launch/per-trial statistics.

    Counters add, opcode histograms merge, and ``max_stack_depth`` takes
    the maximum — every operation commutes, so any partition of the
    campaign produces the same merged row.
    """
    merged = KernelStats(kernel=kernel or (parts[0].kernel if parts else ""))
    for stats in parts:
        merged.warp_instructions += stats.warp_instructions
        merged.thread_instructions += stats.thread_instructions
        merged.sassi_warp_instructions += stats.sassi_warp_instructions
        merged.sassi_thread_instructions += stats.sassi_thread_instructions
        merged.opcode_counts.update(stats.opcode_counts)
        merged.global_mem_instructions += stats.global_mem_instructions
        merged.global_transactions += stats.global_transactions
        merged.handler_calls += stats.handler_calls
        merged.barriers += stats.barriers
        merged.cycles += stats.cycles
        merged.max_stack_depth = max(merged.max_stack_depth,
                                     stats.max_stack_depth)
    return merged
