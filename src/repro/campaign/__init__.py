"""Campaign layer: parallel trial execution and compile caching.

The paper's case studies are embarrassingly parallel campaigns — Case
Study IV runs hundreds of independent error-injection trials per
workload and Table 3 sweeps every workload under several
instrumentation configurations.  This package provides the two pieces
that make those campaigns fast without changing their results:

* :mod:`repro.campaign.engine` — a deterministic fan-out engine.
  Trials are described by picklable task tuples, mapped over a
  ``ProcessPoolExecutor``, and merged in task order, so a campaign's
  result is bit-identical whether it ran with ``jobs=1`` or
  ``jobs=N``.  Per-trial RNGs are derived from the campaign seed and
  the trial index, never shared.
* :mod:`repro.campaign.compile_cache` — a content-addressed compile
  cache keyed on the kernel IR's canonical text, the instrumentation
  spec, and the compile options, so each (workload, spec) pair is
  lowered by ``ptxas`` exactly once per campaign instead of once per
  trial.
"""

from repro.campaign.compile_cache import (
    CompileCache,
    cached_ptxas,
    cached_sassi_compile,
    get_cache,
    ir_fingerprint,
    options_fingerprint,
    spec_fingerprint,
)
from repro.campaign.engine import (
    JOBS_ENV,
    TaskError,
    default_jobs,
    map_workloads,
    merge_kernel_stats,
    run_tasks,
    trial_rng,
)

__all__ = [
    "CompileCache",
    "cached_ptxas",
    "cached_sassi_compile",
    "get_cache",
    "ir_fingerprint",
    "options_fingerprint",
    "spec_fingerprint",
    "JOBS_ENV",
    "TaskError",
    "default_jobs",
    "map_workloads",
    "merge_kernel_stats",
    "run_tasks",
    "trial_rng",
]
