"""Case Study I driver: Table 1 and Figure 5 (branch divergence)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.backend import ptxas
from repro.campaign.compile_cache import get_cache
from repro.campaign.engine import map_workloads
from repro.handlers.branch_profiler import BranchProfiler, BranchStats, \
    DivergenceSummary
from repro.sim import Device
from repro.telemetry import span as telemetry_span
from repro.workloads import TABLE1_BENCHMARKS, make
from repro.studies.report import bar_chart, table


@dataclass
class Table1Row:
    benchmark: str
    summary: DivergenceSummary
    branches: List[BranchStats]


def profile_benchmark(name: str, use_cache: bool = True) -> Table1Row:
    """Run one workload under the branch profiler."""
    with telemetry_span("profile", study="casestudy1", workload=name):
        workload = make(name)
        device = Device()
        profiler = BranchProfiler(device)
        kernel = profiler.compile(workload.build_ir(),
                                  cache=get_cache() if use_cache else None)
        with telemetry_span("execute", workload=name):
            output = workload.execute(device, kernel)
    assert workload.verify(output), f"{name}: wrong result when profiled"
    return Table1Row(benchmark=name, summary=profiler.summary(),
                     branches=profiler.branches())


def run(benchmarks: Optional[Sequence[str]] = None, jobs: int = 1,
        use_cache: bool = True) -> List[Table1Row]:
    names = list(benchmarks or TABLE1_BENCHMARKS)
    return map_workloads("repro.studies.casestudy1", "profile_benchmark",
                         names, jobs=jobs, use_cache=use_cache)


def render_table1(rows: List[Table1Row]) -> str:
    headers = ["Benchmark (Dataset)", "Static Total", "Static Div",
               "Static %", "Dyn Total", "Dyn Div", "Dyn %"]
    body = []
    for row in rows:
        summary = row.summary
        body.append([
            row.benchmark, summary.static_branches,
            summary.static_divergent, f"{summary.static_pct:.0f}",
            summary.dynamic_branches, summary.dynamic_divergent,
            f"{summary.dynamic_pct:.1f}",
        ])
    return table(headers, body,
                 title="Table 1: average branch divergence statistics")


def render_figure5(row: Table1Row, top: int = 12) -> str:
    """Per-branch divergence distribution (one Figure 5 panel)."""
    branches = sorted(row.branches, key=lambda b: -b.total)[:top]
    labels = []
    divergent = []
    for branch in branches:
        marker = "D" if branch.divergent else " "
        labels.append(f"0x{branch.address:05x}{marker}")
        divergent.append(float(branch.total))
    chart = bar_chart(labels, divergent,
                      title=f"Figure 5 ({row.benchmark}): runtime branch "
                            "counts (D = divergent)")
    total_div = sum(b.divergent for b in row.branches)
    return chart + f"\n  divergent executions: {total_div:,}"


def main(benchmarks: Optional[Sequence[str]] = None, jobs: int = 1,
         use_cache: bool = True) -> str:
    rows = run(benchmarks, jobs=jobs, use_cache=use_cache)
    parts = [render_table1(rows)]
    for name in ("parboil/bfs(1M)", "parboil/bfs(UT)"):
        match = next((r for r in rows if r.benchmark == name), None)
        if match is not None:
            parts.append(render_figure5(match))
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
