"""Issue-policy comparison: GTO vs loose round-robin, stall-accurately.

The cycle-stepped scheduler (:mod:`repro.sim.scheduler`) makes the
issue policy a knob, so the classic scheduling question — does greedy-
then-oldest beat round-robin on these kernels? — becomes a replay
experiment: one instrumented run per benchmark feeds a
:class:`~repro.trace.timing.TimingModel`, then both policies schedule
the *same* warp streams.  The table reports total cycles under each
policy, the relative delta, and each policy's bubble fraction (the
share of cycles the issue port sat idle).

Both schedules issue the same instruction multiset (the property suite
holds this invariant), so the cycle delta is pure scheduling effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.campaign.compile_cache import get_cache
from repro.campaign.engine import map_workloads
from repro.studies.report import table
from repro.telemetry import span as telemetry_span
from repro.trace.timing import live_timing

#: the five bench workloads of the executor perf suite
BENCHMARKS = ("rodinia/nn", "rodinia/pathfinder", "rodinia/hotspot",
              "parboil/sgemm(small)", "parboil/spmv(small)")


@dataclass
class PolicyRow:
    benchmark: str
    instructions: int
    gto_cycles: int
    lrr_cycles: int
    gto_bubble_pct: float
    lrr_bubble_pct: float

    @property
    def delta_pct(self) -> float:
        """LRR cycles relative to GTO (positive: LRR is slower)."""
        if not self.gto_cycles:
            return 0.0
        return 100.0 * (self.lrr_cycles - self.gto_cycles) / self.gto_cycles


def _totals(report):
    cycles = report.total_cycles
    busy = sum(l.schedule.busy_cycles for l in report.launches)
    pct = 100.0 * (cycles - busy) / cycles if cycles else 0.0
    return cycles, pct


def measure_workload(name: str, use_cache: bool = True) -> PolicyRow:
    cache = get_cache() if use_cache else None
    with telemetry_span("schedpolicy", workload=name):
        model, verified = live_timing(name, cache=cache)
        if not verified:
            raise RuntimeError(f"{name}: instrumented run failed "
                               "verification")
        gto_cycles, gto_pct = _totals(model.schedule("gto"))
        lrr_cycles, lrr_pct = _totals(model.schedule("lrr"))
        instructions = sum(b.instr_count for b in model.launches)
    return PolicyRow(benchmark=name, instructions=instructions,
                     gto_cycles=gto_cycles, lrr_cycles=lrr_cycles,
                     gto_bubble_pct=gto_pct, lrr_bubble_pct=lrr_pct)


def run(benchmarks: Optional[Sequence[str]] = None, jobs: int = 1,
        use_cache: bool = True) -> List[PolicyRow]:
    names = list(benchmarks or BENCHMARKS)
    return map_workloads("repro.studies.schedpolicy", "measure_workload",
                         names, jobs=jobs, use_cache=use_cache)


def render(rows: List[PolicyRow]) -> str:
    headers = ["Benchmark", "warp instrs", "GTO cycles", "LRR cycles",
               "LRR vs GTO", "GTO bubble", "LRR bubble"]
    body = []
    for row in rows:
        body.append([
            row.benchmark,
            f"{row.instructions:,}",
            f"{row.gto_cycles:,}",
            f"{row.lrr_cycles:,}",
            f"{row.delta_pct:+.1f}%",
            f"{row.gto_bubble_pct:.1f}%",
            f"{row.lrr_bubble_pct:.1f}%",
        ])
    return table(headers, body,
                 title="Issue-policy comparison: the same recorded warp "
                       "streams scheduled under GTO vs loose "
                       "round-robin (bubble = idle issue-port cycles)")


def main(benchmarks: Optional[Sequence[str]] = None, jobs: int = 1,
         use_cache: bool = True) -> str:
    return render(run(benchmarks, jobs=jobs, use_cache=use_cache))


if __name__ == "__main__":
    print(main())
