"""Design-choice ablations (DESIGN.md §5).

1. **ABI call vs inlined counter** — the paper (Section 3.2) argues for
   full ABI-compliant calls despite their cost, for portability and
   CUDA-authored handlers.  The ablation injects the minimal inline
   alternative (three instructions: materialize a counter address and
   ``RED.ADD``) at the same sites and compares injected-instruction
   counts and simulated cycles.
2. **Redundant-spill elimination** — the Section 9.1 future-work
   optimization, available as ``-sassi-skip-redundant-spills``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.backend import CompileOptions, ptxas
from repro.isa.instruction import Imm, Instruction, MemRef, MemSpace
from repro.isa.opcodes import Opcode
from repro.isa.program import SassKernel
from repro.sassi import SassiRuntime, spec_from_flags
from repro.sassi.spec import InstrumentationSpec
from repro.sim import Device


@dataclass
class AblationResult:
    benchmark: str
    baseline_cycles: int
    abi_cycles: int
    inline_cycles: int
    abi_injected: int
    inline_injected: int
    spillopt_cycles: int

    @property
    def abi_ratio(self) -> float:
        return self.abi_cycles / max(self.baseline_cycles, 1)

    @property
    def inline_ratio(self) -> float:
        return self.inline_cycles / max(self.baseline_cycles, 1)

    @property
    def spillopt_ratio(self) -> float:
        return self.spillopt_cycles / max(self.baseline_cycles, 1)


def inline_counter_pass(counter_address: int, spec: InstrumentationSpec):
    """A final pass injecting the minimal inline counter at each
    before-site: two scratch registers beyond the kernel's allocation
    hold the counter address (no spills needed) and a ``RED.ADD``
    bumps it."""

    def final_pass(kernel: SassKernel) -> SassKernel:
        scratch = kernel.num_regs
        if scratch + 2 > 254:
            raise ValueError("no scratch registers left for inlining")
        lo, hi = scratch, scratch + 1
        from repro.isa.registers import GPR

        new_instructions: List[Instruction] = []
        label_at = {}
        for name, index in kernel.labels.items():
            label_at.setdefault(index, []).append(name)
        new_labels = {}
        for index, instr in enumerate(kernel.instructions):
            for name in label_at.get(index, ()):
                new_labels[name] = len(new_instructions)
            if spec.instruments_before(instr):
                new_instructions.extend([
                    Instruction(Opcode.MOV32I, (GPR(lo),),
                                (Imm(counter_address & 0xFFFFFFFF),),
                                tag="sassi"),
                    Instruction(Opcode.MOV32I, (GPR(hi),),
                                (Imm(counter_address >> 32),),
                                tag="sassi"),
                    Instruction(Opcode.RED, (),
                                (MemRef(MemSpace.GLOBAL, GPR(lo)), Imm(1)),
                                mods=("ADD", "U32"), tag="sassi"),
                ])
            new_instructions.append(instr)
        for name, index in kernel.labels.items():
            if index >= len(kernel.instructions):
                new_labels[name] = len(new_instructions)
        return replace(kernel, instructions=tuple(new_instructions),
                       labels=new_labels, num_regs=scratch + 2)

    return final_pass


def run_ablation(name: str,
                 flags: str = "-sassi-inst-before=memory "
                              "-sassi-before-args=mem-info"
                 ) -> AblationResult:
    from repro.workloads import make

    spec = spec_from_flags(flags)

    # baseline
    workload = make(name)
    device = Device()
    workload.execute(device, ptxas(workload.build_ir()))
    baseline = workload.last_trace

    # full ABI instrumentation (no-op handler: cost is the sequence)
    workload = make(name)
    device = Device()
    runtime = SassiRuntime(device, poison_caller_saved=False)
    runtime.register_before_handler(lambda ctx: None)
    abi_kernel = runtime.compile(workload.build_ir(), spec)
    workload.execute(device, abi_kernel)
    abi = workload.last_trace
    abi_injected = runtime.reports[-1].injected_instructions

    # inline counter at the same sites
    workload = make(name)
    device = Device()
    counter = device.alloc(8)
    baseline_kernel = ptxas(workload.build_ir())
    inline_kernel = inline_counter_pass(counter, spec)(baseline_kernel)
    inline_injected = len(inline_kernel.instructions) \
        - len(baseline_kernel.instructions)
    workload.execute(device, inline_kernel)
    inline = workload.last_trace

    # ABI + skip-redundant-spills
    workload = make(name)
    device = Device()
    runtime = SassiRuntime(device, poison_caller_saved=False)
    runtime.register_before_handler(lambda ctx: None)
    opt_spec = replace(spec, skip_redundant_spills=True)
    opt_kernel = runtime.compile(workload.build_ir(), opt_spec)
    workload.execute(device, opt_kernel)
    spillopt = workload.last_trace

    return AblationResult(
        benchmark=name,
        baseline_cycles=baseline.cycles,
        abi_cycles=abi.cycles,
        inline_cycles=inline.cycles,
        abi_injected=abi_injected,
        inline_injected=inline_injected,
        spillopt_cycles=spillopt.cycles,
    )


def render(results: List[AblationResult]) -> str:
    from repro.studies.report import table

    headers = ["Benchmark", "ABI K", "inline K", "ABI+spillopt K",
               "ABI instrs", "inline instrs"]
    rows = [[r.benchmark, f"{r.abi_ratio:.1f}x", f"{r.inline_ratio:.1f}x",
             f"{r.spillopt_ratio:.1f}x", r.abi_injected,
             r.inline_injected] for r in results]
    return table(headers, rows,
                 title="Ablation: ABI call sequences vs inline counters "
                       "vs spill-skipping (before=memory sites)")
