"""Case Study II driver: Figure 7 (unique-line PMFs) and Figure 8
(occupancy × divergence matrices for miniFE CSR vs ELL)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.campaign.compile_cache import get_cache
from repro.campaign.engine import map_workloads
from repro.handlers.memory_divergence import MemoryDivergenceProfiler
from repro.sim import Device
from repro.studies.report import heatmap, pmf_sparkline, table
from repro.telemetry import span as telemetry_span
from repro.workloads import FIGURE7_BENCHMARKS, make


@dataclass
class MemDivergenceResult:
    benchmark: str
    pmf: np.ndarray          # 32-entry thread-access-weighted PMF
    matrix: np.ndarray       # 32x32 occupancy x unique-lines counters
    fully_diverged: float    # mass at 32 unique lines


def profile_benchmark(name: str,
                      use_cache: bool = True) -> MemDivergenceResult:
    with telemetry_span("profile", study="casestudy2", workload=name):
        workload = make(name)
        device = Device()
        profiler = MemoryDivergenceProfiler(device)
        kernel = profiler.compile(workload.build_ir(),
                                  cache=get_cache() if use_cache else None)
        with telemetry_span("execute", workload=name):
            output = workload.execute(device, kernel)
    assert workload.verify(output), f"{name}: wrong result when profiled"
    return MemDivergenceResult(
        benchmark=name,
        pmf=profiler.pmf(),
        matrix=profiler.matrix(),
        fully_diverged=profiler.fully_diverged_fraction(),
    )


def run(benchmarks: Optional[Sequence[str]] = None, jobs: int = 1,
        use_cache: bool = True) -> List[MemDivergenceResult]:
    names = list(benchmarks or FIGURE7_BENCHMARKS)
    return map_workloads("repro.studies.casestudy2", "profile_benchmark",
                         names, jobs=jobs, use_cache=use_cache)


def render_figure7(results: List[MemDivergenceResult]) -> str:
    headers = ["Benchmark", "PMF over unique lines", "fully diverged"]
    rows = [[r.benchmark, pmf_sparkline(r.pmf),
             f"{100 * r.fully_diverged:.0f}%"] for r in results]
    return table(headers, rows,
                 title="Figure 7: distribution (PMF) of unique 32B lines "
                       "requested per warp memory instruction")


def render_figure8(results: List[MemDivergenceResult]) -> str:
    parts = []
    for result in results:
        if result.benchmark.startswith("miniFE"):
            parts.append(heatmap(
                result.matrix,
                title=f"Figure 8 ({result.benchmark}): warp occupancy (x) "
                      "vs unique lines (y), log scale"))
    return "\n\n".join(parts)


def main(benchmarks: Optional[Sequence[str]] = None, jobs: int = 1,
         use_cache: bool = True) -> str:
    results = run(benchmarks, jobs=jobs, use_cache=use_cache)
    return render_figure7(results) + "\n\n" + render_figure8(results)


if __name__ == "__main__":
    print(main())
