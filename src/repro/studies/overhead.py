"""Table 3 driver: instrumentation overheads of the four case studies.

The paper reports wall-clock (``T``) and kernel-time (``K``) slowdowns on
real hardware.  On a simulated substrate absolute times are meaningless,
so this study reports the principled analogs:

* ``K`` — simulated-cycle ratio (instrumented / baseline kernel cycles),
  the direct analog of the paper's device-side column;
* ``I`` — dynamic warp-instruction ratio (what the injected code adds);
* ``T`` — host-process wall-clock ratio of the whole application run
  (includes the "CPU side": dataset preparation, launch loops, result
  readback — all of which are *not* instrumented, so launch-heavy apps
  show small ``T`` just as in the paper).

Also reproduces the Section 9.1 finding that ABI/spill bookkeeping
dominates overhead, by re-running with an empty handler body.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.backend import ptxas
from repro.campaign.compile_cache import cached_ptxas, get_cache
from repro.campaign.engine import map_workloads
from repro.handlers.branch_profiler import BranchProfiler
from repro.handlers.memory_divergence import MemoryDivergenceProfiler
from repro.handlers.value_profiler import ValueProfiler
from repro.sassi import SassiRuntime, spec_from_flags
from repro.sim import Device
from repro.studies.report import table
from repro.telemetry import span as telemetry_span
from repro.workloads import TABLE3_BENCHMARKS, make

#: case-study configurations, in the paper's column order
CASE_STUDIES = ("branches", "memory", "value", "error")

_SPEC_FLAGS = {
    "branches": "-sassi-inst-before=branches "
                "-sassi-before-args=cond-branch-info",
    "memory": "-sassi-inst-before=memory -sassi-before-args=mem-info",
    "value": "-sassi-inst-after=reg-writes -sassi-after-args=reg-info",
    "error": "-sassi-inst-after=reg-writes,memory "
             "-sassi-after-args=reg-info,mem-info",
}


@dataclass
class OverheadCell:
    kernel_ratio: float      # K: simulated-cycle ratio
    instruction_ratio: float  # I: dynamic warp-instruction ratio
    wall_ratio: float        # T: host wall-clock ratio


@dataclass
class Table3Row:
    benchmark: str
    baseline_cycles: int
    baseline_wall: float
    launches: int
    cells: Dict[str, OverheadCell] = field(default_factory=dict)


def _timed_run(workload, device, kernel):
    start = time.perf_counter()
    output = workload.execute(device, kernel)
    wall = time.perf_counter() - start
    trace = workload.last_trace
    return output, wall, trace


def _handler_for(case: str, device):
    if case == "branches":
        return BranchProfiler(device)
    if case == "memory":
        return MemoryDivergenceProfiler(device)
    if case == "value":
        return ValueProfiler(device)
    # error-injection profile phase: empty counters, same where/what
    runtime = SassiRuntime(device, poison_caller_saved=False)
    runtime.register_after_handler(lambda ctx: None)

    class _Shim:
        def __init__(self, rt):
            self.runtime = rt
            self.spec = spec_from_flags(_SPEC_FLAGS["error"])

        def compile(self, ir, cache=None):
            return self.runtime.compile(ir, self.spec, cache=cache)

    return _Shim(runtime)


def measure_benchmark(name: str,
                      cases: Sequence[str] = CASE_STUDIES,
                      empty_handlers: bool = False,
                      use_cache: bool = True) -> Table3Row:
    cache = get_cache() if use_cache else None
    with telemetry_span("overhead", study="table3", workload=name):
        workload = make(name)
        device = Device()
        ir = workload.build_ir()
        baseline_kernel = cached_ptxas(ir, cache=cache) \
            if use_cache else ptxas(ir)
        with telemetry_span("execute", workload=name, case="baseline"):
            _, base_wall, base_trace = _timed_run(workload, device,
                                                  baseline_kernel)
        row = Table3Row(benchmark=name,
                        baseline_cycles=base_trace.cycles,
                        baseline_wall=base_wall,
                        launches=base_trace.kernel_launches)
        for case in cases:
            instrumented_device = Device()
            profiler = _handler_for(case, instrumented_device)
            if empty_handlers:
                _stub_handler(profiler)
            kernel = profiler.compile(workload.build_ir(), cache=cache)
            with telemetry_span("execute", workload=name, case=case):
                _, wall, trace = _timed_run(workload, instrumented_device,
                                            kernel)
            row.cells[case] = OverheadCell(
                kernel_ratio=trace.cycles / max(base_trace.cycles, 1),
                instruction_ratio=trace.warp_instructions
                / max(base_trace.warp_instructions, 1),
                wall_ratio=wall / max(base_wall, 1e-9),
            )
    return row


def _stub_handler(profiler) -> None:
    """Replace the registered handler bodies with no-ops (the paper's
    'remove the body of the instrumentation handlers' experiment)."""
    device = profiler.runtime.device
    for address in list(device.handler_bindings):
        registration_binding = device.handler_bindings[address]
        device.handler_bindings[address] = \
            lambda ex, warp, cta, mask: None


def run(benchmarks: Optional[Sequence[str]] = None,
        cases: Sequence[str] = CASE_STUDIES, jobs: int = 1,
        use_cache: bool = True) -> List[Table3Row]:
    names = list(benchmarks or TABLE3_BENCHMARKS)
    return map_workloads("repro.studies.overhead", "measure_benchmark",
                         names, jobs=jobs, cases=tuple(cases),
                         use_cache=use_cache)


def render_table3(rows: List[Table3Row],
                  cases: Sequence[str] = CASE_STUDIES) -> str:
    headers = ["Benchmark", "base cycles", "launches"]
    for case in cases:
        headers.extend([f"{case} K", f"{case} I"])
    body = []
    for row in rows:
        cells = [row.benchmark, row.baseline_cycles, row.launches]
        for case in cases:
            cell = row.cells.get(case)
            if cell is None:
                cells.extend(["-", "-"])
            else:
                cells.extend([f"{cell.kernel_ratio:.1f}x",
                              f"{cell.instruction_ratio:.1f}x"])
        body.append(cells)
    return table(headers, body,
                 title="Table 3: instrumentation overheads "
                       "(K = simulated kernel cycles, I = dynamic warp "
                       "instructions; ratios vs uninstrumented)")


def spill_cost_fraction(name: str, case: str = "value") -> float:
    """Section 9.1: fraction of instrumentation overhead that remains
    with empty handler bodies (paper: ~80%).

    In this reproduction the handler bodies execute natively (their cost
    is host-side), so the *simulated* overhead is entirely the injected
    ABI sequence; the interesting split is spill/ABI instructions versus
    parameter-marshaling instructions, measured from the injection
    report."""
    workload = make(name)
    device = Device()
    profiler = _handler_for(case, device)
    kernel = profiler.compile(workload.build_ir())
    report = profiler.runtime.reports[-1]
    sites = report.before_sites + report.after_sites
    if sites == 0:
        return 0.0
    # ABI bookkeeping: frame alloc/release (2), pred+CC spill/restore (8),
    # pointer setup (2..5), plus one spill+fill pair per live register.
    abi_instructions = sites * 12 + 2 * report.spills_emitted
    return min(1.0, abi_instructions / max(report.injected_instructions, 1))


def main(benchmarks: Optional[Sequence[str]] = None, jobs: int = 1,
         use_cache: bool = True) -> str:
    return render_table3(run(benchmarks, jobs=jobs, use_cache=use_cache))


if __name__ == "__main__":
    print(main())
