"""Record/replay driver: trace capture cost and replay-many payoff.

The Section 9.4 pitch quantified: recording one fully instrumented run
(every instruction site, memory and branch details marshaled) costs a
one-time slowdown, after which every additional analysis — cache
simulation, branch divergence, memory divergence, opcode histograms —
runs from the trace at replay speed instead of re-executing the
instrumented simulator.

For each benchmark the study reports:

* ``record`` — wall time of the capture run and its ratio over the
  uninstrumented run (the record-overhead column);
* ``live 4x`` — total wall time of the four live-instrumented runs the
  replay replaces (one per analysis, the pre-``repro.trace`` workflow);
* ``replay`` — one streaming pass feeding all four analyses, and the
  resulting replay-vs-live speedup.

Replay results are exactly equal to the live ones (the trace tests
hold them bit-identical), so the speedup column is a true
like-for-like comparison.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.backend import ptxas
from repro.campaign.compile_cache import cached_ptxas, get_cache
from repro.campaign.engine import map_workloads
from repro.handlers.branch_profiler import BranchProfiler
from repro.handlers.memory_divergence import MemoryDivergenceProfiler
from repro.handlers.memtrace import MemoryTracer
from repro.handlers.opcode_histogram import OpcodeHistogram
from repro.sim import Device
from repro.studies.report import table
from repro.telemetry import span as telemetry_span
from repro.trace.capture import capture_workload
from repro.trace.replay import (
    CacheSimAnalysis,
    DivergenceAnalysis,
    MemoryDivergenceAnalysis,
    OpcodeHistogramAnalysis,
    replay,
)
from repro.workloads import make

#: benchmarks for the record/replay table (small, medium, divergent)
BENCHMARKS = ("vectoradd", "parboil/sgemm(small)", "rodinia/pathfinder")

#: the four live profilers one trace replaces
_LIVE_PROFILERS = (OpcodeHistogram, BranchProfiler,
                   MemoryDivergenceProfiler, MemoryTracer)


@dataclass
class ReplayRow:
    benchmark: str
    events: int
    trace_bytes: int
    baseline_wall: float
    record_wall: float
    live_wall: float     # four live-instrumented runs, summed
    replay_wall: float   # one pass, all four analyses

    @property
    def record_overhead(self) -> float:
        return self.record_wall / max(self.baseline_wall, 1e-9)

    @property
    def replay_speedup(self) -> float:
        return self.live_wall / max(self.replay_wall, 1e-9)


def measure_workload(name: str, use_cache: bool = True) -> ReplayRow:
    cache = get_cache() if use_cache else None
    with telemetry_span("tracereplay", workload=name):
        workload = make(name)
        device = Device()
        ir = workload.build_ir()
        kernel = cached_ptxas(ir, cache=cache) if use_cache else ptxas(ir)
        start = time.perf_counter()
        workload.execute(device, kernel)
        baseline_wall = time.perf_counter() - start

        fd, path = tempfile.mkstemp(suffix=".rptrace",
                                    prefix="tracereplay-")
        os.close(fd)
        try:
            manifest, _, record_wall = capture_workload(name, path,
                                                        cache=cache)
            trace_bytes = os.path.getsize(path)

            live_wall = 0.0
            for profiler_cls in _LIVE_PROFILERS:
                live_workload = make(name)
                live_device = Device()
                profiler = profiler_cls(live_device)
                live_kernel = profiler.compile(live_workload.build_ir(),
                                               cache=cache)
                start = time.perf_counter()
                live_workload.execute(live_device, live_kernel)
                live_wall += time.perf_counter() - start
                if profiler_cls is MemoryTracer:
                    profiler.close()

            start = time.perf_counter()
            replay(path, [CacheSimAnalysis(), DivergenceAnalysis(),
                          MemoryDivergenceAnalysis(),
                          OpcodeHistogramAnalysis()])
            replay_wall = time.perf_counter() - start
        finally:
            if os.path.exists(path):
                os.unlink(path)
    return ReplayRow(benchmark=name, events=manifest.total_events,
                     trace_bytes=trace_bytes,
                     baseline_wall=baseline_wall,
                     record_wall=record_wall, live_wall=live_wall,
                     replay_wall=replay_wall)


def run(benchmarks: Optional[Sequence[str]] = None, jobs: int = 1,
        use_cache: bool = True) -> List[ReplayRow]:
    names = list(benchmarks or BENCHMARKS)
    return map_workloads("repro.studies.tracereplay", "measure_workload",
                         names, jobs=jobs, use_cache=use_cache)


def render(rows: List[ReplayRow]) -> str:
    headers = ["Benchmark", "events", "trace KiB", "record",
               "record ovh", "live 4x", "replay", "speedup"]
    body = []
    for row in rows:
        body.append([
            row.benchmark,
            f"{row.events:,}",
            f"{row.trace_bytes / 1024:.1f}",
            f"{row.record_wall:.2f}s",
            f"{row.record_overhead:.1f}x",
            f"{row.live_wall:.2f}s",
            f"{row.replay_wall:.3f}s",
            f"{row.replay_speedup:.0f}x",
        ])
    return table(headers, body,
                 title="Record/replay: capture overhead vs replaying "
                       "four analyses from one trace (live 4x = four "
                       "live-instrumented runs the replay replaces)")


def main(benchmarks: Optional[Sequence[str]] = None, jobs: int = 1,
         use_cache: bool = True) -> str:
    return render(run(benchmarks, jobs=jobs, use_cache=use_cache))


if __name__ == "__main__":
    print(main())
