"""Case Study III driver: Table 2 (value profiling)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.campaign.compile_cache import get_cache
from repro.campaign.engine import map_workloads
from repro.handlers.value_profiler import ValueProfiler, \
    ValueProfileSummary
from repro.sim import Device
from repro.studies.report import table
from repro.telemetry import span as telemetry_span
from repro.workloads import TABLE2_BENCHMARKS, make


@dataclass
class Table2Row:
    benchmark: str
    summary: ValueProfileSummary
    sample_dump: str = ""


def profile_benchmark(name: str, with_dump: bool = False,
                      use_cache: bool = True) -> Table2Row:
    with telemetry_span("profile", study="casestudy3", workload=name):
        workload = make(name)
        device = Device()
        profiler = ValueProfiler(device)
        kernel = profiler.compile(workload.build_ir(),
                                  cache=get_cache() if use_cache else None)
        with telemetry_span("execute", workload=name):
            output = workload.execute(device, kernel)
    assert workload.verify(output), f"{name}: wrong result when profiled"
    dump = ""
    if with_dump:
        profiles = [p for p in profiler.profiles() if p.dsts]
        if profiles:
            best = max(profiles, key=lambda p: p.weight)
            dump = profiler.dump(best)
    return Table2Row(benchmark=name, summary=profiler.summary(),
                     sample_dump=dump)


def run(benchmarks: Optional[Sequence[str]] = None, jobs: int = 1,
        use_cache: bool = True) -> List[Table2Row]:
    names = list(benchmarks or TABLE2_BENCHMARKS)
    return map_workloads("repro.studies.casestudy3", "profile_benchmark",
                         names, jobs=jobs, use_cache=use_cache)


def render_table2(rows: List[Table2Row]) -> str:
    headers = ["Benchmark", "Dyn const bits %", "Dyn scalar %",
               "Static const bits %", "Static scalar %"]
    body = []
    for row in rows:
        summary = row.summary
        body.append([
            row.benchmark,
            f"{summary.dynamic_const_bits_pct:.0f}",
            f"{summary.dynamic_scalar_pct:.0f}",
            f"{summary.static_const_bits_pct:.0f}",
            f"{summary.static_scalar_pct:.0f}",
        ])
    return table(headers, body, title="Table 2: value profiling results")


def main(benchmarks: Optional[Sequence[str]] = None, jobs: int = 1,
         use_cache: bool = True) -> str:
    return render_table2(run(benchmarks, jobs=jobs, use_cache=use_cache))


if __name__ == "__main__":
    print(main())
