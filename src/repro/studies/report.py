"""ASCII rendering helpers shared by the study drivers."""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np


def table(headers: Sequence[str], rows: Iterable[Sequence],
          title: str = "") -> str:
    """A fixed-width ASCII table."""
    rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) if _numeric(cell)
                               else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value and abs(value) < 0.01:
            return f"{value:.4f}"
        return f"{value:,.2f}" if abs(value) < 1000 else f"{value:,.0f}"
    if isinstance(value, (int, np.integer)):
        return f"{int(value):,}"
    return str(value)


def _numeric(cell: str) -> bool:
    return bool(cell) and cell.replace(",", "").replace(".", "") \
        .replace("-", "").replace("x", "").replace("%", "").isdigit()


def bar_chart(labels: Sequence[str], values: Sequence[float],
              title: str = "", width: int = 40, unit: str = "") -> str:
    """Horizontal ASCII bars (the textual Figure 5/10 analog)."""
    peak = max(values) if len(values) else 1.0
    peak = peak or 1.0
    lines: List[str] = [title] if title else []
    label_width = max((len(l) for l in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{label.ljust(label_width)} |{bar} "
                     f"{value:,.2f}{unit}")
    return "\n".join(lines)


def stacked_rows(labels: Sequence[str],
                 series: Sequence[Sequence[float]],
                 categories: Sequence[str],
                 title: str = "") -> str:
    """Per-row percentage breakdown (the Figure 10 stacked bars)."""
    headers = ["benchmark", *categories]
    rows = []
    for label, values in zip(labels, series):
        rows.append([label, *[f"{100 * v:.1f}%" for v in values]])
    return table(headers, rows, title=title)


def pmf_sparkline(pmf: np.ndarray, buckets=(1, 2, 4, 8, 16, 32)) -> str:
    """Compact PMF summary: probability mass at key unique-line counts."""
    parts = []
    previous = 0
    for bucket in buckets:
        mass = float(pmf[previous:bucket].sum())
        parts.append(f"{previous + 1}-{bucket}:{100 * mass:.0f}%")
        previous = bucket
    return " ".join(parts)


def heatmap(matrix: np.ndarray, title: str = "") -> str:
    """Log-scale character heat map of the 32×32 Figure 8 matrix
    (x = warp occupancy, y = unique lines, as in the paper)."""
    glyphs = " .:-=+*#%@"
    lines: List[str] = [title] if title else []
    display = matrix.T[::-1]  # rows: unique lines (top = 32)
    logs = np.log10(np.maximum(display.astype(np.float64), 0.1))
    top = max(logs.max(), 1.0)
    for row_index, row in enumerate(logs):
        scaled = np.clip((row / top) * (len(glyphs) - 1), 0,
                         len(glyphs) - 1).astype(int)
        scaled[display[row_index] == 0] = 0
        label = 32 - row_index
        lines.append(f"{label:>3} |" + "".join(glyphs[g] for g in scaled))
    lines.append("    +" + "-" * 32)
    lines.append("     occupancy 1..32 ->")
    return "\n".join(lines)


# ----------------------------------------------------- sampled counters

def scaled_estimate(count, rate: int) -> int:
    """The unbiased estimate a sampled counter stands for.

    Handlers already multiply their increments by the firing's sample
    rate, so counters read back from the device *are* scaled estimates
    and ``rate`` here is 1; use this helper when aggregating raw
    (unscaled) event counts, e.g. trace-event tallies.
    """
    return int(count) * int(rate)


def sampling_ci(count, rate: int, z: float = 1.96):
    """A normal-approximation confidence interval for a 1/``rate``
    sampled counter whose *scaled* estimate is ``count * rate``.

    Each retained firing contributes ``rate`` to the estimate; modeling
    retained firings as Poisson with the observed mean gives a standard
    error of ``rate * sqrt(count)``.  Returns ``(low, high)`` clamped at
    zero.  At rate 1 the interval collapses onto the exact count.
    """
    count = int(count)
    rate = int(rate)
    estimate = count * rate
    if rate <= 1:
        return float(estimate), float(estimate)
    half = z * rate * float(np.sqrt(count))
    return max(0.0, estimate - half), estimate + half


def render_sampled_counters(names: Sequence[str], counts: Sequence[int],
                            rate: int, z: float = 1.96) -> str:
    """An ASCII table of scaled estimates with confidence intervals."""
    rows = []
    for name, count in zip(names, counts):
        low, high = sampling_ci(count // max(rate, 1), rate, z=z)
        rows.append([name, int(count), f"[{low:,.0f}, {high:,.0f}]"])
    return table(["counter", f"estimate (x{rate})", f"{z:.2f}-sigma CI"],
                 rows, title=f"sampled counters at rate 1/{rate}")
