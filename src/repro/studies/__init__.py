"""Experiment drivers, one per paper table/figure.

Each module exposes ``run(...)`` returning a structured result and a
``render(result)`` that prints the same rows/series the paper reports:

* :mod:`repro.studies.casestudy1` — Table 1 + Figure 5 (branch divergence)
* :mod:`repro.studies.casestudy2` — Figure 7 + Figure 8 (memory divergence)
* :mod:`repro.studies.casestudy3` — Table 2 (value profiling)
* :mod:`repro.studies.casestudy4` — Figure 10 (error injection)
* :mod:`repro.studies.overhead` — Table 3 (instrumentation overheads)

``EXPERIMENTS.md`` records paper-vs-measured values for each.
"""
