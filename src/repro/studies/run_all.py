"""Regenerate every table and figure in one go.

Usage::

    python -m repro.studies.run_all [output.txt] [--injections N]
                                    [--jobs N] [--no-cache] [--quick]

Writes the rendered tables/figures (with timing) to the output file
(default ``results/full_studies.txt``) and echoes progress to stdout.

``--jobs N`` fans the per-benchmark profiling loops and the
error-injection trials out over N worker processes through
:mod:`repro.campaign.engine`; results are bit-identical to a serial
run.  ``--no-cache`` disables the content-addressed compile cache
(:mod:`repro.campaign.compile_cache`).  ``--quick`` runs a small, fast
benchmark subset — the CI smoke configuration.
"""

from __future__ import annotations

import argparse
import json
import os
import time

#: ``--quick`` benchmark subsets: small datasets that finish in seconds
#: while still exercising every study's full pipeline.
QUICK_TABLE1 = ["parboil/bfs(UT)", "parboil/sgemm(small)"]
QUICK_FIGURE7 = ["parboil/spmv(small)", "parboil/bfs(UT)"]
QUICK_TABLE2 = ["rodinia/nn", "rodinia/pathfinder"]
QUICK_TABLE3 = ["parboil/sgemm(small)", "rodinia/nn", "rodinia/hotspot"]
QUICK_ABLATION = ["parboil/sgemm(small)"]
QUICK_FIGURE10 = ["rodinia/nn", "parboil/sgemm(small)"]
FULL_ABLATION = ["parboil/sgemm(small)", "parboil/spmv(small)",
                 "rodinia/hotspot"]


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?",
                        default="results/full_studies.txt")
    parser.add_argument("--injections", type=int, default=60,
                        help="error injections per application")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for campaign fan-out")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the compile cache")
    parser.add_argument("--quick", action="store_true",
                        help="small benchmark subset (CI smoke run)")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="enable telemetry and write a Chrome "
                             "trace_event JSON file")
    parser.add_argument("--metrics", action="store_true",
                        help="enable telemetry and print the counter/span "
                             "summary to stdout")
    args = parser.parse_args(argv)

    from repro.studies import (ablation, casestudy1, casestudy2,
                               casestudy3, casestudy4, overhead)
    from repro.telemetry import (TELEMETRY, render_summary, run_manifest,
                                 write_chrome_trace)

    if args.trace:
        # fail fast, before minutes of study work, if the path is bad
        probe_dir = os.path.dirname(args.trace) or "."
        if not os.path.isdir(probe_dir):
            parser.error(f"--trace directory does not exist: {probe_dir}")
    if args.trace or args.metrics:
        TELEMETRY.enable(reset=True)

    jobs = max(1, args.jobs)
    use_cache = not args.no_cache
    if args.quick:
        table1, figure7 = QUICK_TABLE1, QUICK_FIGURE7
        table2, table3 = QUICK_TABLE2, QUICK_TABLE3
        ablations, figure10 = QUICK_ABLATION, QUICK_FIGURE10
        injections = min(args.injections, 10)
    else:
        table1 = figure7 = table2 = table3 = figure10 = None
        ablations = FULL_ABLATION
        injections = args.injections

    os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
    start = time.time()
    with open(args.output, "w") as sink:
        # timing goes to stdout only: the artifact must be byte-identical
        # across serial and --jobs runs, so no wall-clock in the file
        def emit(title: str, text: str) -> None:
            sink.write(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n")
            sink.write(text + "\n")
            sink.flush()
            print(f"done: {title} at {time.time() - start:.0f}s",
                  flush=True)

        emit("CASE STUDY I (Table 1 + Figure 5)",
             casestudy1.main(table1, jobs=jobs, use_cache=use_cache))
        emit("CASE STUDY II (Figure 7 + Figure 8)",
             casestudy2.main(figure7, jobs=jobs, use_cache=use_cache))
        emit("CASE STUDY III (Table 2)",
             casestudy3.main(table2, jobs=jobs, use_cache=use_cache))
        emit("TABLE 3 (overheads)",
             overhead.main(table3, jobs=jobs, use_cache=use_cache))
        emit("ABLATION (ABI vs inline, spill skipping)",
             ablation.render([ablation.run_ablation(name)
                              for name in ablations]))
        emit("CASE STUDY IV (Figure 10)",
             casestudy4.main(figure10, num_injections=injections,
                             jobs=jobs, use_cache=use_cache))
    if args.trace or args.metrics:
        # the manifest carries timestamps/pids, so it lives in sidecar
        # files -- the study artifact itself must stay byte-identical
        # between serial and --jobs runs
        manifest = run_manifest(extra={
            "command": "run-all", "jobs": jobs, "quick": bool(args.quick),
            "use_cache": use_cache, "injections": injections,
        })
        if args.trace:
            write_chrome_trace(args.trace, TELEMETRY, manifest=manifest)
            print(f"chrome trace written to {args.trace}")
        if args.metrics:
            print(render_summary(TELEMETRY))
        manifest_path = args.output + ".manifest.json"
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"run manifest written to {manifest_path}")
    print(f"all studies written to {args.output} "
          f"in {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
