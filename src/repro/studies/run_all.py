"""Regenerate every table and figure in one go.

Usage::

    python -m repro.studies.run_all [output.txt] [--injections N]

Writes the rendered tables/figures (with timing) to the output file
(default ``results/full_studies.txt``) and echoes progress to stdout.
"""

from __future__ import annotations

import argparse
import os
import time


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?",
                        default="results/full_studies.txt")
    parser.add_argument("--injections", type=int, default=60,
                        help="error injections per application")
    args = parser.parse_args()

    from repro.studies import (ablation, casestudy1, casestudy2,
                               casestudy3, casestudy4, overhead)

    os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
    start = time.time()
    with open(args.output, "w") as sink:
        def emit(title: str, text: str) -> None:
            sink.write(f"\n{'=' * 72}\n{title}  "
                       f"[t={time.time() - start:.0f}s]\n{'=' * 72}\n")
            sink.write(text + "\n")
            sink.flush()
            print(f"done: {title} at {time.time() - start:.0f}s",
                  flush=True)

        emit("CASE STUDY I (Table 1 + Figure 5)", casestudy1.main())
        emit("CASE STUDY II (Figure 7 + Figure 8)", casestudy2.main())
        emit("CASE STUDY III (Table 2)", casestudy3.main())
        emit("TABLE 3 (overheads)", overhead.main())
        ablations = [ablation.run_ablation(name) for name in
                     ("parboil/sgemm(small)", "parboil/spmv(small)",
                      "rodinia/hotspot")]
        emit("ABLATION (ABI vs inline, spill skipping)",
             ablation.render(ablations))
        emit("CASE STUDY IV (Figure 10)",
             casestudy4.main(num_injections=args.injections))
    print(f"all studies written to {args.output} "
          f"in {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
