"""Case Study IV driver: Figure 10 (error-injection outcomes)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.handlers.error_injection import (
    CampaignResult,
    ErrorInjectionCampaign,
    InjectionOutcome,
)
from repro.studies.report import stacked_rows
from repro.telemetry import span as telemetry_span
from repro.workloads import FIGURE10_BENCHMARKS, make

#: Figure 10 legend order
OUTCOME_ORDER = [
    InjectionOutcome.MASKED,
    InjectionOutcome.CRASH,
    InjectionOutcome.HANG,
    InjectionOutcome.FAILURE_SYMPTOM,
    InjectionOutcome.SDC_STDOUT,
    InjectionOutcome.SDC_OUTPUT,
]


def inject_benchmark(name: str, num_injections: int = 100,
                     seed: int = 2015, jobs: int = 1,
                     use_cache: bool = True) -> CampaignResult:
    with telemetry_span("campaign", study="casestudy4", workload=name,
                        injections=num_injections):
        campaign = ErrorInjectionCampaign(make(name),
                                          num_injections=num_injections,
                                          seed=seed, workload_name=name,
                                          use_cache=use_cache)
        return campaign.run(jobs=jobs)


def run(benchmarks: Optional[Sequence[str]] = None,
        num_injections: int = 100, jobs: int = 1,
        use_cache: bool = True) -> List[CampaignResult]:
    return [inject_benchmark(name, num_injections, jobs=jobs,
                             use_cache=use_cache)
            for name in (benchmarks or FIGURE10_BENCHMARKS)]


def render_figure10(results: List[CampaignResult]) -> str:
    labels = [r.workload for r in results]
    series = []
    for result in results:
        fractions = result.fractions()
        series.append([fractions[outcome] for outcome in OUTCOME_ORDER])
    categories = [outcome.value for outcome in OUTCOME_ORDER]
    body = stacked_rows(labels, series, categories,
                        title="Figure 10: error-injection outcomes")
    if results:
        total = sum(len(r.records) for r in results)
        masked = sum(r.outcome_counts().get(InjectionOutcome.MASKED, 0)
                     for r in results)
        crash_hang = sum(
            r.outcome_counts().get(InjectionOutcome.CRASH, 0)
            + r.outcome_counts().get(InjectionOutcome.HANG, 0)
            for r in results)
        body += (f"\n  overall: {100 * masked / total:.0f}% masked, "
                 f"{100 * crash_hang / total:.0f}% crash/hang "
                 f"(paper: ~79% masked, ~10% crash/hang)")
    return body


def main(benchmarks: Optional[Sequence[str]] = None,
         num_injections: int = 60, jobs: int = 1,
         use_cache: bool = True) -> str:
    return render_figure10(run(benchmarks, num_injections, jobs=jobs,
                               use_cache=use_cache))


if __name__ == "__main__":
    print(main())
