"""Fast-path differential suite: the fused-superblock / vector-memory
executor must be architecturally AND statistically invisible.

Three executors run every workload:

* **fast** — the default config (superblock fusion + vector memory);
* **slow** — ``SimConfig(fuse_blocks=False, vector_memory=False)``,
  per-instruction dispatch with per-lane scalar memory;
* **stepped** — an executor driven one raw :class:`Instruction` at a
  time through the public ``Executor.step`` API.

All three must produce bit-identical outputs, :class:`KernelStats`
(every field, including cycles, transactions, and the opcode Counter),
and telemetry dispatch counters — with and without SASSI
instrumentation.  Captured binary traces must be byte-identical
between fast and slow configs.
"""

from __future__ import annotations

import filecmp

import numpy as np
import pytest

from repro.backend import ptxas
from repro.sassi import SassiRuntime, spec_from_flags
from repro.sim import Device
from repro.sim.executor import Executor, SimConfig, decode_kernel
from repro.telemetry.collector import TELEMETRY
from repro.trace.capture import TraceRecorder
from repro.trace.io import TraceWriter
from repro.workloads import make

WORKLOADS = [
    "rodinia/nn",
    "rodinia/pathfinder",
    "rodinia/hotspot",
    "parboil/sgemm(small)",
    "parboil/spmv(small)",
]

HEAVY_FLAGS = ("-sassi-inst-before=all "
               "-sassi-before-args=mem-info,reg-info,cond-branch-info")


def _slow_config() -> SimConfig:
    return SimConfig(fuse_blocks=False, vector_memory=False)


class _StepExecutor(Executor):
    """Drives warps through the public single-step API only."""

    def _run_warp(self, warp, cta, counter):
        kernel = self._kernel
        decoded = decode_kernel(kernel)
        self._decoded = decoded
        self._targets = decoded.targets
        instructions = kernel.instructions
        limit = len(instructions)
        while not warp.done and not warp.at_barrier:
            pc = warp.pc
            assert 0 <= pc < limit
            self._watchdog += 1
            self.step(warp, cta, instructions[pc], counter)


def _run(name, config=None, flags=None, executor_cls=None):
    """One full application run.

    Returns ``(output, stats_list, telemetry_counters)`` with
    telemetry enabled for the duration of the run.
    """
    import repro.sim.device as device_mod

    workload = make(name)
    device = Device(config=config)
    if flags is None:
        kernel = ptxas(workload.build_ir())
    else:
        runtime = SassiRuntime(device, poison_caller_saved=False)
        spec = spec_from_flags(flags)
        runtime.register_before_handler(lambda ctx: None)
        kernel = runtime.compile(workload.build_ir(), spec)
    stats_list = []
    device.on_kernel_exit(lambda _d, _k, stats: stats_list.append(stats))
    original = device_mod.Executor
    if executor_cls is not None:
        device_mod.Executor = executor_cls
    TELEMETRY.enable(reset=True)
    try:
        output = workload.execute(device, kernel)
        counters = dict(TELEMETRY.counters)
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()
        device_mod.Executor = original
    return output, stats_list, counters


def _assert_equivalent(name, base, other, what):
    base_out, base_stats, base_counters = base
    other_out, other_stats, other_counters = other
    assert np.array_equal(base_out, other_out), \
        f"{name}: output differs on the {what} path"
    assert len(base_stats) == len(other_stats)
    for index, (a, b) in enumerate(zip(base_stats, other_stats)):
        assert a == b, \
            f"{name}: KernelStats differ on the {what} path " \
            f"(launch #{index}):\n  fast={a}\n  {what}={b}"
    assert base_counters == other_counters, \
        f"{name}: telemetry counters differ on the {what} path"


@pytest.mark.parametrize("name", WORKLOADS)
def test_slow_path_bit_identical(name):
    fast = _run(name)
    slow = _run(name, config=_slow_config())
    _assert_equivalent(name, fast, slow, "slow")


@pytest.mark.parametrize("name", WORKLOADS)
def test_slow_path_bit_identical_instrumented(name):
    fast = _run(name, flags=HEAVY_FLAGS)
    slow = _run(name, config=_slow_config(), flags=HEAVY_FLAGS)
    _assert_equivalent(name, fast, slow, "slow")


@pytest.mark.parametrize("name", ["rodinia/nn", "rodinia/pathfinder",
                                  "parboil/sgemm(small)"])
def test_step_path_bit_identical(name):
    fast = _run(name)
    stepped = _run(name, executor_cls=_StepExecutor)
    _assert_equivalent(name, fast, stepped, "stepped")


@pytest.mark.parametrize("name", ["rodinia/nn", "parboil/sgemm(small)",
                                  "parboil/spmv(small)"])
def test_trace_capture_bit_identical(name, tmp_path):
    paths = {}
    for label, config in (("fast", None), ("slow", _slow_config())):
        workload = make(name)
        device = Device(config=config)
        path = str(tmp_path / f"{label}.rptrace")
        with TraceWriter(path) as writer:
            recorder = TraceRecorder(device, writer)
            kernel = recorder.compile(workload.build_ir())
            workload.execute(device, kernel)
        paths[label] = path
    assert filecmp.cmp(paths["fast"], paths["slow"], shallow=False), \
        f"{name}: captured traces differ between fast and slow configs"
