"""Instrumented fast/slow differential suite: the warp-wide handler
fast lanes must be invisible.

Each of the five stock handlers runs every workload twice:

* **fast** — default config: fused site plans
  (``fuse_handler_calls=True``), vectorized contexts, and the handler's
  warp-wide body;
* **scalar** — ``SimConfig(fuse_blocks=False, vector_memory=False,
  fuse_handler_calls=False)``, ``SassiRuntime`` with
  ``vectorize_contexts=False``, and the handler's per-lane reference
  body (``vectorized=False``).

Both paths must produce bit-identical workload outputs, handler
results, :class:`KernelStats`, and telemetry counters; captured traces
must be byte-identical files.
"""

from __future__ import annotations

import filecmp

import numpy as np
import pytest

from repro.handlers.branch_profiler import BranchProfiler
from repro.handlers.memory_divergence import MemoryDivergenceProfiler
from repro.handlers.memtrace import MemoryTracer
from repro.handlers.opcode_histogram import OpcodeHistogram
from repro.handlers.value_profiler import ValueProfiler
from repro.sim import Device
from repro.sim.executor import SimConfig
from repro.telemetry.collector import TELEMETRY
from repro.trace.capture import TraceRecorder
from repro.trace.io import TraceWriter
from repro.workloads import make

WORKLOADS = [
    "rodinia/nn",
    "rodinia/pathfinder",
    "parboil/sgemm(small)",
]


def _scalar_config() -> SimConfig:
    return SimConfig(fuse_blocks=False, vector_memory=False,
                     fuse_handler_calls=False)


def _run_profiled(name, make_profiler, collect, scalar):
    """Run *name* under a profiler; return
    ``(output, handler_result, stats_list, telemetry_counters)``."""
    workload = make(name)
    device = Device(config=_scalar_config() if scalar else None)
    profiler = make_profiler(device, vectorized=not scalar)
    if scalar:
        profiler.runtime.vectorize_contexts = False
    stats_list = []
    device.on_kernel_exit(lambda _d, _k, stats: stats_list.append(stats))
    TELEMETRY.enable(reset=True)
    try:
        kernel = profiler.compile(workload.build_ir())
        output = workload.execute(device, kernel)
        counters = dict(TELEMETRY.counters)
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()
    return output, collect(profiler), stats_list, counters


def _assert_identical(name, fast, scalar, what):
    fast_out, fast_result, fast_stats, fast_counters = fast
    slow_out, slow_result, slow_stats, slow_counters = scalar
    assert np.array_equal(fast_out, slow_out), \
        f"{name}: workload output differs for {what}"
    assert fast_result == slow_result, \
        f"{name}: handler results differ for {what}:\n" \
        f"  fast={fast_result}\n  scalar={slow_result}"
    assert fast_stats == slow_stats, \
        f"{name}: KernelStats differ for {what}"
    assert fast_counters == slow_counters, \
        f"{name}: telemetry counters differ for {what}"


def _differential(name, make_profiler, collect, what):
    fast = _run_profiled(name, make_profiler, collect, scalar=False)
    scalar = _run_profiled(name, make_profiler, collect, scalar=True)
    _assert_identical(name, fast, scalar, what)


@pytest.mark.parametrize("name", WORKLOADS)
def test_branch_profiler_differential(name):
    _differential(
        name,
        lambda device, vectorized: BranchProfiler(device,
                                                  vectorized=vectorized),
        lambda p: p.branches(),
        "branch_profiler")


@pytest.mark.parametrize("name", WORKLOADS)
def test_memory_divergence_differential(name):
    _differential(
        name,
        lambda device, vectorized: MemoryDivergenceProfiler(
            device, vectorized=vectorized),
        lambda p: p.matrix().tolist(),
        "memory_divergence")


@pytest.mark.parametrize("name", WORKLOADS)
def test_opcode_histogram_differential(name):
    _differential(
        name,
        lambda device, vectorized: OpcodeHistogram(device,
                                                   vectorized=vectorized),
        lambda p: p.totals(),
        "opcode_histogram")


@pytest.mark.parametrize("name", WORKLOADS)
def test_value_profiler_differential(name):
    _differential(
        name,
        lambda device, vectorized: ValueProfiler(device,
                                                 vectorized=vectorized),
        lambda p: p.profiles(),
        "value_profiler")


@pytest.mark.parametrize("name", WORKLOADS)
def test_memtrace_differential(name, tmp_path):
    def factory(device, vectorized):
        label = "fast" if vectorized else "scalar"
        return MemoryTracer(device, path=str(tmp_path / f"{label}.rptrace"),
                            vectorized=vectorized)

    _differential(name, factory, lambda p: list(p.records()), "memtrace")
    assert filecmp.cmp(str(tmp_path / "fast.rptrace"),
                       str(tmp_path / "scalar.rptrace"), shallow=False), \
        f"{name}: memtrace files differ between fast and scalar paths"


@pytest.mark.parametrize("name", WORKLOADS)
def test_trace_capture_differential(name, tmp_path):
    paths = {}
    for label, scalar in (("fast", False), ("scalar", True)):
        workload = make(name)
        device = Device(config=_scalar_config() if scalar else None)
        path = str(tmp_path / f"{label}.rptrace")
        with TraceWriter(path) as writer:
            recorder = TraceRecorder(device, writer,
                                     vectorized=not scalar)
            if scalar:
                recorder.runtime.vectorize_contexts = False
            kernel = recorder.compile(workload.build_ir())
            workload.execute(device, kernel)
        paths[label] = path
    assert filecmp.cmp(paths["fast"], paths["scalar"], shallow=False), \
        f"{name}: captured traces differ between fast and scalar paths"
